#!/bin/sh
# Regenerates every paper table/figure. Scale via IAM_BENCH_* env vars.
#
# Simulation mode: IAM_BENCH_SIMULATE_CORES=N runs the thread-sweeping
# benches (table7_batch_inference, table8_training_time) with N worker
# threads even when the host has fewer physical cores. This exercises the
# N-core sharding/determinism paths, but the wall-clock numbers are NOT
# comparable to a real N-core host — both benches stamp the simulated
# count into BENCH_inference.json / BENCH_training.json next to
# "host_parallelism" so downstream readers can tell the runs apart.
#
# Accuracy gates: IAM_BENCH_QUANT_BUDGET bounds the max q-error the
# quantized (f16/int8) fused tables may show vs f32 in
# table7_batch_inference; the bench aborts if the budget is exceeded.
set -eux
cargo bench -p iam-bench --bench table2_wisdm
cargo bench -p iam-bench --bench table3_twi
cargo bench -p iam-bench --bench table4_higgs
cargo bench -p iam-bench --bench table5_imdb
cargo bench -p iam-bench --bench fig4_inference_time
cargo bench -p iam-bench --bench table6_model_size
cargo bench -p iam-bench --bench table7_batch
cargo bench -p iam-bench --bench table7_batch_inference
cargo bench -p iam-bench --bench fig5_end_to_end
cargo bench -p iam-bench --bench fig6_training_curve
cargo bench -p iam-bench --bench table8_training_time
cargo bench -p iam-bench --bench table9_11_reducers
cargo bench -p iam-bench --bench fig7_components
cargo bench -p iam-bench --bench table12_size_vs_components
cargo bench -p iam-bench --bench ablations
cargo bench -p iam-bench --bench qerror_accuracy
cargo bench -p iam-bench --bench micro -- --quick --noplot
