#!/bin/sh
# Regenerates every paper table/figure. Scale via IAM_BENCH_* env vars.
set -eux
cargo bench -p iam-bench --bench table2_wisdm
cargo bench -p iam-bench --bench table3_twi
cargo bench -p iam-bench --bench table4_higgs
cargo bench -p iam-bench --bench table5_imdb
cargo bench -p iam-bench --bench fig4_inference_time
cargo bench -p iam-bench --bench table6_model_size
cargo bench -p iam-bench --bench table7_batch
cargo bench -p iam-bench --bench table7_batch_inference
cargo bench -p iam-bench --bench fig5_end_to_end
cargo bench -p iam-bench --bench fig6_training_curve
cargo bench -p iam-bench --bench table8_training_time
cargo bench -p iam-bench --bench table9_11_reducers
cargo bench -p iam-bench --bench fig7_components
cargo bench -p iam-bench --bench table12_size_vs_components
cargo bench -p iam-bench --bench ablations
cargo bench -p iam-bench --bench qerror_accuracy
cargo bench -p iam-bench --bench micro -- --quick --noplot
