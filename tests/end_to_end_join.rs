//! Cross-crate end-to-end test: join-cardinality estimation and the
//! optimizer pipeline on the synthetic IMDB schema.

use iam_core::{IamConfig, IamEstimator};
use iam_join::flat::{exact_card, flatten_foj, FlatJoinEstimator};
use iam_join::imdb::{synthetic_imdb, ImdbConfig};
use iam_join::workload::JoinWorkloadGenerator;
use iam_opt::{
    execute, optimize, ExactCardEstimator, FlatCardEstimator, IndependenceCardEstimator,
    JoinCardEstimator,
};

fn quick_cfg(seed: u64) -> IamConfig {
    IamConfig {
        components: 12,
        hidden: vec![64, 64],
        embed_dim: 8,
        epochs: 6,
        lr: 5e-3,
        samples: 300,
        factorize_threshold: 256,
        seed,
        ..IamConfig::default()
    }
}

#[test]
fn iam_join_estimates_are_sane() {
    let star = synthetic_imdb(&ImdbConfig { movies: 1500, seed: 1 });
    let (flat, schema) = flatten_foj(&star, 9000, 2);
    let iam = IamEstimator::fit(&flat, quick_cfg(2));
    let mut est = FlatJoinEstimator::new(iam, schema);
    let mut gen = JoinWorkloadGenerator::new(&star, 3);
    let mut errs: Vec<f64> = Vec::new();
    for q in gen.gen_queries(25) {
        let truth = exact_card(&star, &q).max(1.0);
        let got = est.estimate_card(&q).max(1.0);
        errs.push((truth / got).max(got / truth));
    }
    errs.sort_by(f64::total_cmp);
    let median = errs[errs.len() / 2];
    assert!(median < 5.0, "median join q-error {median} ({errs:?})");
}

#[test]
fn optimizer_plans_execute_to_the_same_cardinality() {
    // any estimator's plan must produce the same final result as ground
    // truth — estimates affect *order*, never correctness
    let star = synthetic_imdb(&ImdbConfig { movies: 800, seed: 4 });
    let (flat, schema) = flatten_foj(&star, 5000, 5);
    let iam = IamEstimator::fit(&flat, quick_cfg(5));
    let mut arms: Vec<Box<dyn JoinCardEstimator>> = vec![
        Box::new(ExactCardEstimator::new(&star)),
        Box::new(IndependenceCardEstimator::new(&star)),
        Box::new(FlatCardEstimator::new(iam, schema)),
    ];
    let mut gen = JoinWorkloadGenerator::new(&star, 6);
    for q in gen.gen_queries(12) {
        let truth = exact_card(&star, &q) as u64;
        for est in arms.iter_mut() {
            let plan = optimize(&q, est.as_mut());
            let rep = execute(&star, &q, &plan);
            assert_eq!(rep.card, truth, "estimator {} broke correctness", est.name());
        }
    }
}

#[test]
fn better_estimates_do_not_increase_work() {
    let star = synthetic_imdb(&ImdbConfig { movies: 1200, seed: 7 });
    let mut exact = ExactCardEstimator::new(&star);
    let mut pg = IndependenceCardEstimator::new(&star);
    let mut gen = JoinWorkloadGenerator::new(&star, 8);
    let (mut w_exact, mut w_pg) = (0u64, 0u64);
    for q in gen.gen_queries(30) {
        let p1 = optimize(&q, &mut exact);
        let p2 = optimize(&q, &mut pg);
        w_exact += execute(&star, &q, &p1).intermediate_tuples;
        w_pg += execute(&star, &q, &p2).intermediate_tuples;
    }
    assert!(
        w_exact <= w_pg,
        "exact-cardinality plans must not do more work: exact {w_exact} vs postgres {w_pg}"
    );
}

#[test]
fn foj_sample_reflects_indicator_semantics() {
    let star = synthetic_imdb(&ImdbConfig { movies: 600, seed: 9 });
    let (flat, schema) = flatten_foj(&star, 8000, 10);
    // fraction of FOJ rows with dim t present ≈ Σ_m cnt>0-weighted share
    for (t, dim) in star.dims.iter().enumerate() {
        let ind_col = schema.dim_offsets[t];
        let present = (0..flat.nrows())
            .filter(|&r| flat.columns[ind_col].value_as_f64(r) == 1.0)
            .count() as f64
            / flat.nrows() as f64;
        // expected = Σ_m [cnt>0]·w_m / Σ w_m
        let mut num = 0.0;
        let mut den = 0.0;
        for m in 0..star.hub.nrows() {
            let mut w = 1.0;
            for d in &star.dims {
                w *= d.rows_of[m].len().max(1) as f64;
            }
            den += w;
            if !dim.rows_of[m].is_empty() {
                num += w;
            }
        }
        let expected = num / den;
        assert!(
            (present - expected).abs() < 0.03,
            "dim {t}: sampled presence {present} vs expected {expected}"
        );
    }
}
