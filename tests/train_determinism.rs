//! End-to-end thread-count invariance of the parallel training pipeline:
//! `IamConfig::train_threads` partitions work over fixed shards and reduces
//! in a fixed order, so the trained model must be *bitwise* identical for
//! every thread count — not merely statistically equivalent.

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_nn::Parameters;

fn fit(train_threads: usize) -> IamEstimator {
    // batch 150 with 64-row shards gives shards of 64/64/22 rows, so the
    // sweep exercises uneven tails and more workers than shards (threads=4
    // clamps to 3 live workers)
    let table = Dataset::Wisdm.generate(1500, 7);
    let cfg = IamConfig {
        components: 6,
        hidden: vec![32, 32],
        embed_dim: 8,
        epochs: 2,
        batch_size: 150,
        samples: 64,
        train_threads,
        seed: 7,
        ..IamConfig::default()
    };
    IamEstimator::fit(&table, cfg)
}

fn weight_bits(est: &mut IamEstimator) -> Vec<u32> {
    let mut bits = Vec::new();
    est.net_mut().visit_params(&mut |w, _| bits.extend(w.iter().map(|v| v.to_bits())));
    bits
}

#[test]
fn trained_weights_are_bitwise_invariant_to_train_threads() {
    let mut base = fit(1);
    let base_bits = weight_bits(&mut base);
    assert!(!base_bits.is_empty());

    for threads in [2, 4] {
        let mut est = fit(threads);
        assert_eq!(
            weight_bits(&mut est),
            base_bits,
            "weights diverged between train_threads=1 and train_threads={threads}"
        );
        for (e, (a, b)) in base.stats.iter().zip(&est.stats).enumerate() {
            assert_eq!(
                a.ar_loss.to_bits(),
                b.ar_loss.to_bits(),
                "epoch {e} ar loss diverged at train_threads={threads}"
            );
            assert_eq!(
                a.gmm_loss.to_bits(),
                b.gmm_loss.to_bits(),
                "epoch {e} gmm loss diverged at train_threads={threads}"
            );
        }
    }
}

#[test]
fn train_threads_zero_means_auto_and_stays_invariant() {
    let mut auto = fit(0); // one worker per available core
    let mut one = fit(1);
    assert_eq!(weight_bits(&mut auto), weight_bits(&mut one));
}
