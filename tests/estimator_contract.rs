//! Contract tests every estimator must satisfy: unconstrained queries
//! estimate ≈ 1, contradictions estimate ≈ 0, and widening a range never
//! *decreases* the estimate (for the deterministic estimators).

use iam_data::query::{Interval, Op, Predicate, Query};
use iam_data::synth::Dataset;
use iam_data::{
    exact_selectivity, RangeQuery, SelectivityEstimator, Table, WorkloadConfig, WorkloadGenerator,
};
use iam_estimators::spn::SpnConfig;
use iam_estimators::{
    mscn::MscnConfig, ChowLiuNet, KdeEstimator, Mhist, MscnLite, Postgres1d, QuickSelLite,
    SamplingEstimator, SpnEstimator,
};

fn table() -> Table {
    Dataset::Wisdm.generate(6000, 33)
}

fn training(t: &Table) -> Vec<(RangeQuery, f64)> {
    let mut gen = WorkloadGenerator::new(t, WorkloadConfig::default(), 44);
    gen.gen_queries(150)
        .into_iter()
        .map(|q| (q.normalize(t.ncols()).unwrap().0, exact_selectivity(t, &q)))
        .collect()
}

/// All estimators, boxed. The bool marks deterministic monotone evaluators
/// (histogram/kernel families) for the monotonicity check.
fn all_estimators(t: &Table) -> Vec<(Box<dyn SelectivityEstimator>, bool)> {
    let train = training(t);
    vec![
        (Box::new(SamplingEstimator::new(t, 0.05, 1)), true),
        (Box::new(Postgres1d::new(t)), true),
        (Box::new(Mhist::new(t, 256)), true),
        (Box::new(ChowLiuNet::new(t)), true),
        (Box::new(KdeEstimator::new(t, 500, 2)), true),
        (Box::new(SpnEstimator::new(t, SpnConfig::default())), true),
        (
            Box::new(MscnLite::fit(t, &train, MscnConfig { epochs: 10, ..Default::default() })),
            false, // learned regressor: not structurally monotone
        ),
        (Box::new(QuickSelLite::fit(t, &train, 60, 200)), true),
    ]
}

#[test]
fn unconstrained_estimates_one() {
    let t = table();
    for (mut est, _) in all_estimators(&t) {
        let sel = est.estimate(&RangeQuery::unconstrained(t.ncols()));
        assert!(sel > 0.9, "{}: unconstrained sel {sel}", est.name());
    }
}

#[test]
fn contradictions_estimate_near_zero() {
    let t = table();
    let mut rq = RangeQuery::unconstrained(t.ncols());
    // x (col 2) simultaneously below and above its support
    rq.cols[2] = Some(Interval::closed(1e8, 2e8));
    for (mut est, _) in all_estimators(&t) {
        let sel = est.estimate(&rq);
        assert!(sel < 0.05, "{}: impossible query sel {sel}", est.name());
    }
}

#[test]
fn widening_a_range_is_monotone_for_deterministic_estimators() {
    let t = table();
    for (mut est, monotone) in all_estimators(&t) {
        if !monotone {
            continue;
        }
        let mut prev = -1.0f64;
        for bound in [-10.0, 0.0, 10.0, 30.0, 200.0] {
            let q = Query::new(vec![Predicate { col: 2, op: Op::Le, value: bound }]);
            let (rq, _) = q.normalize(t.ncols()).unwrap();
            let sel = est.estimate(&rq);
            assert!(
                sel >= prev - 1e-9,
                "{}: widening to ≤{bound} shrank the estimate: {prev} -> {sel}",
                est.name()
            );
            prev = sel;
        }
    }
}

#[test]
fn estimates_are_valid_probabilities_across_a_workload() {
    let t = table();
    let mut gen = WorkloadGenerator::new(&t, WorkloadConfig::default(), 77);
    let queries: Vec<RangeQuery> =
        gen.gen_queries(60).into_iter().map(|q| q.normalize(t.ncols()).unwrap().0).collect();
    for (mut est, _) in all_estimators(&t) {
        for rq in &queries {
            let sel = est.estimate(rq);
            assert!(
                (0.0..=1.0).contains(&sel) && sel.is_finite(),
                "{}: estimate out of range: {sel}",
                est.name()
            );
        }
    }
}

#[test]
fn model_sizes_are_reported() {
    let t = table();
    for (est, _) in all_estimators(&t) {
        assert!(est.model_size_bytes() > 0, "{} reports no size", est.name());
    }
}
