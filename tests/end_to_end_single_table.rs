//! Cross-crate end-to-end test: the full IAM pipeline on a synthetic
//! single-table dataset, against ground truth.

use iam_core::{neurocard_lite, IamConfig, IamEstimator, RangeMassMode, ReducerKind};
use iam_data::synth::Dataset;
use iam_data::{
    exact_selectivity, q_error, RangeQuery, SelectivityEstimator, WorkloadConfig, WorkloadGenerator,
};

fn quick_cfg(seed: u64) -> IamConfig {
    IamConfig {
        components: 16,
        hidden: vec![64, 64],
        embed_dim: 8,
        epochs: 8,
        lr: 5e-3,
        samples: 300,
        factorize_threshold: 256,
        seed,
        ..IamConfig::default()
    }
}

fn median_q_error(est: &mut dyn SelectivityEstimator, table: &iam_data::Table, n: usize) -> f64 {
    let mut gen = WorkloadGenerator::new(table, WorkloadConfig::default(), 1234);
    let mut errs: Vec<f64> = gen
        .gen_queries(n)
        .into_iter()
        .map(|q| {
            let truth = exact_selectivity(table, &q);
            let (rq, _) = q.normalize(table.ncols()).unwrap();
            q_error(truth, est.estimate(&rq), table.nrows())
        })
        .collect();
    errs.sort_by(f64::total_cmp);
    errs[errs.len() / 2]
}

#[test]
fn iam_tracks_truth_on_twi() {
    let table = Dataset::Twi.generate(8000, 5);
    let mut iam = IamEstimator::fit(&table, quick_cfg(5));
    let median = median_q_error(&mut iam, &table, 40);
    assert!(median < 1.8, "median q-error {median}");
}

#[test]
fn iam_tracks_truth_on_wisdm_mixed_types() {
    let table = Dataset::Wisdm.generate(8000, 6);
    let mut iam = IamEstimator::fit(&table, quick_cfg(6));
    let median = median_q_error(&mut iam, &table, 40);
    assert!(median < 2.5, "median q-error {median}");
}

#[test]
fn neurocard_mode_is_competitive_but_larger() {
    let table = Dataset::Twi.generate(6000, 7);
    let iam = IamEstimator::fit(&table, quick_cfg(7));
    let mut nc = IamEstimator::fit(&table, neurocard_lite(quick_cfg(7)));
    let m_nc = median_q_error(&mut nc, &table, 30);
    assert!(m_nc < 3.0, "Neurocard median {m_nc}");
    assert!(
        iam.model_size_bytes() < nc.model_size_bytes(),
        "domain reduction must shrink the model: IAM {} vs NC {}",
        iam.model_size_bytes(),
        nc.model_size_bytes()
    );
}

#[test]
fn monte_carlo_range_mass_matches_exact_mode() {
    let table = Dataset::Twi.generate(5000, 8);
    let mut exact = IamEstimator::fit(&table, quick_cfg(8));
    let mut mc = IamEstimator::fit(
        &table,
        IamConfig {
            range_mass: RangeMassMode::MonteCarlo { samples_per_component: 10_000 },
            ..quick_cfg(8)
        },
    );
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 99);
    for q in gen.gen_queries(15) {
        let (rq, _) = q.normalize(2).unwrap();
        let a = exact.estimate(&rq);
        let b = mc.estimate(&rq);
        assert!((a - b).abs() < 0.05 + 0.5 * a, "exact {a} vs monte-carlo {b} should agree");
    }
}

#[test]
fn alternative_reducers_run_end_to_end() {
    let table = Dataset::Higgs.generate(5000, 9);
    for kind in [ReducerKind::Hist, ReducerKind::Spline, ReducerKind::Umm] {
        let cfg = IamConfig { reducer: kind, ..quick_cfg(9) };
        let mut est = IamEstimator::fit(&table, cfg);
        let median = median_q_error(&mut est, &table, 20);
        assert!(median < 5.0, "{}: median {median}", kind.name());
        let sel = est.estimate(&RangeQuery::unconstrained(table.ncols()));
        assert!((sel - 1.0).abs() < 1e-9, "{}: unconstrained {sel}", kind.name());
    }
}

#[test]
fn separate_training_still_works() {
    // the paper argues joint training is better, but separate (frozen GMM)
    // training must remain correct
    let table = Dataset::Twi.generate(5000, 10);
    let cfg = IamConfig { joint_training: false, ..quick_cfg(10) };
    let mut est = IamEstimator::fit(&table, cfg);
    let median = median_q_error(&mut est, &table, 25);
    assert!(median < 2.5, "median {median}");
}

#[test]
fn wildcard_skipping_off_is_supported() {
    let table = Dataset::Twi.generate(4000, 11);
    let cfg = IamConfig { wildcard_skipping: false, ..quick_cfg(11) };
    let mut est = IamEstimator::fit(&table, cfg);
    let median = median_q_error(&mut est, &table, 20);
    assert!(median < 3.0, "median {median}");
}

#[test]
fn training_curve_is_observable() {
    // Figure 6's mechanism: error decreases (or at least stats accumulate)
    // across resumed training
    let table = Dataset::Twi.generate(4000, 12);
    let mut est = IamEstimator::build(&table, quick_cfg(12));
    est.train_epochs(&table, 2);
    assert_eq!(est.stats.len(), 2);
    let early = est.stats.last().unwrap().ar_loss;
    est.train_epochs(&table, 6);
    assert_eq!(est.stats.len(), 8);
    let late = est.stats.last().unwrap().ar_loss;
    assert!(late < early, "loss should keep falling: {early} -> {late}");
}
