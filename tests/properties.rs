//! Property-based tests (proptest) on the core invariants:
//! interval algebra vs. exact scans, encodings, q-error axioms, GMM
//! numerics and factorised range semantics.

use iam_data::column::{Column, ContColumn};
use iam_data::query::{Interval, Op, Predicate, Query};
use iam_data::{exact_selectivity, q_error, ColumnEncoding, Table};
use iam_gmm::Gmm1d;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Normalising predicates to intervals preserves exact selectivity.
    #[test]
    fn normalisation_preserves_selectivity(
        values in prop::collection::vec(-100.0f64..100.0, 1..200),
        ops in prop::collection::vec(0usize..5, 1..5),
        bounds in prop::collection::vec(-120.0f64..120.0, 5),
    ) {
        let table = Table::new(
            "p",
            vec![Column::Continuous(ContColumn::new("x", values))],
        ).unwrap();
        let preds: Vec<Predicate> = ops
            .iter()
            .zip(&bounds)
            .map(|(&o, &v)| Predicate {
                col: 0,
                op: [Op::Eq, Op::Lt, Op::Le, Op::Gt, Op::Ge][o],
                value: v,
            })
            .collect();
        let q = Query::new(preds);
        let truth = exact_selectivity(&table, &q);
        let (rq, _) = q.normalize(1).unwrap();
        let via_ranges = iam_data::exec::exact_selectivity_ranges(&table, &rq);
        prop_assert!((truth - via_ranges).abs() < 1e-12);
    }

    /// Interval intersection is commutative and conservative.
    #[test]
    fn interval_intersection_properties(
        a in -50.0f64..50.0, b in -50.0f64..50.0,
        c in -50.0f64..50.0, d in -50.0f64..50.0,
        probe in -60.0f64..60.0,
    ) {
        let i1 = Interval::closed(a.min(b), a.max(b));
        let i2 = Interval::closed(c.min(d), c.max(d));
        let both = i1.intersect(&i2);
        let flipped = i2.intersect(&i1);
        prop_assert_eq!(both, flipped);
        prop_assert_eq!(
            both.contains(probe),
            i1.contains(probe) && i2.contains(probe)
        );
    }

    /// Encoding round-trips and preserves order.
    #[test]
    fn encoding_round_trip(values in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let col = Column::Continuous(ContColumn::new("x", values.clone()));
        let enc = ColumnEncoding::from_column(&col);
        for &v in &values {
            let idx = enc.encode(v).expect("present value must encode");
            prop_assert_eq!(enc.decode(idx), v);
        }
        // order preservation
        for w in enc.distinct.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Q-error axioms: ≥ 1, symmetric, identity at equality.
    #[test]
    fn q_error_axioms(a in 0.0f64..1.0, b in 0.0f64..1.0, n in 10usize..100_000) {
        let e = q_error(a, b, n);
        prop_assert!(e >= 1.0);
        prop_assert!((q_error(b, a, n) - e).abs() < 1e-9);
        prop_assert!((q_error(a, a, n) - 1.0).abs() < 1e-12);
    }

    /// GMM posteriors are a distribution and argmax assignment is their
    /// maximiser; exact range mass is monotone in the range.
    #[test]
    fn gmm_invariants(
        means in prop::collection::vec(-50.0f64..50.0, 2..6),
        x in -60.0f64..60.0,
        lo in -60.0f64..0.0,
        width in 0.0f64..80.0,
    ) {
        let k = means.len();
        let gmm = Gmm1d::new(vec![1.0; k], means, vec![2.0; k]);
        let post = gmm.posteriors(x);
        prop_assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let assigned = gmm.assign(x);
        let best = post
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        // ties broken consistently; probabilities must match at least
        prop_assert!((post[assigned] - post[best]).abs() < 1e-12);

        let small = gmm.range_mass_exact(lo, lo + width / 2.0);
        let large = gmm.range_mass_exact(lo, lo + width);
        for (s, l) in small.iter().zip(&large) {
            prop_assert!(l + 1e-12 >= *s, "range mass must grow with the range");
        }
    }

    /// Factorised encoding `(v / base, v % base)` round-trips and range
    /// decomposition covers exactly the ordinal range.
    #[test]
    fn factorised_range_cover(
        domain in 10usize..5000,
        base in 2usize..64,
        a_frac in 0.0f64..1.0,
        b_frac in 0.0f64..1.0,
    ) {
        let a = ((domain - 1) as f64 * a_frac.min(b_frac)) as usize;
        let b = ((domain - 1) as f64 * a_frac.max(b_frac)) as usize;
        // reconstruct the admissible (hi, lo) pairs exactly as the sampler
        // does and verify they tile [a, b]
        let mut covered = Vec::new();
        for hi in a / base..=b / base {
            let lo_start = if hi == a / base { a % base } else { 0 };
            let lo_end = if hi == b / base { b % base } else { base - 1 };
            for lo in lo_start..=lo_end {
                let v = hi * base + lo;
                if v < domain {
                    covered.push(v);
                }
            }
        }
        let want: Vec<usize> = (a..=b).collect();
        prop_assert_eq!(covered, want);
    }
}
