//! Theorem 5.1: the modified progressive sampling is an *unbiased*
//! estimator of the model's own probability mass.
//!
//! Strategy: build a small model whose implied selectivity can be computed
//! *exhaustively* (enumerating every tuple of the reduced domain), then
//! check that the mean of many independent progressive-sampling runs
//! converges to it — both for plain AR columns and for GMM-reduced columns
//! with the `P̂_GMM(R)` bias correction.

use iam_core::{IamConfig, IamEstimator};
use iam_data::column::{CatColumn, Column, ContColumn};
use iam_data::query::{Interval, Op, Predicate, Query};
use iam_data::{RangeQuery, SelectivityEstimator, Table};
use iam_gmm::Gmm1d;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A small mixed table: categorical(4) × categorical(3) × continuous
/// (reduced by a GMM).
fn small_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut x = Vec::new();
    let blobs = Gmm1d::new(vec![0.4, 0.35, 0.25], vec![-6.0, 0.0, 7.0], vec![1.0, 0.8, 1.3]);
    for _ in 0..n {
        let ai = rng.random_range(0..4u32);
        let bi = (ai + rng.random_range(0..2u32)) % 3;
        a.push(ai);
        b.push(bi);
        x.push(blobs.sample(&mut rng) + ai as f64);
    }
    Table::new(
        "small",
        vec![
            Column::Categorical(CatColumn::from_codes_dense("a", a, 4)),
            Column::Categorical(CatColumn::from_codes_dense("b", b, 3)),
            Column::Continuous(ContColumn::new("x", x)),
        ],
    )
    .unwrap()
}

/// Exhaustively compute the trained model's implied estimate for `rq`:
/// enumerate every reduced tuple, chain the AR conditionals, and apply the
/// same per-slot constraint weights the sampler uses.
fn exhaustive_model_selectivity(est: &mut IamEstimator, rq: &RangeQuery) -> f64 {
    use iam_core::SlotConstraint;
    let plan = match est.schema.query_plan(rq) {
        Some(p) => p,
        None => return 0.0,
    };
    let nslots = est.schema.nslots();

    // recursive enumeration over slot values, carrying prefix probability
    fn recurse(
        est: &mut IamEstimator,
        plan: &[iam_core::SlotConstraint],
        prefix: &mut Vec<usize>,
        slot: usize,
        nslots: usize,
    ) -> f64 {
        if slot == nslots {
            return 1.0;
        }
        match &plan[slot] {
            SlotConstraint::Wildcard => {
                // wildcard skipping: feed MASK, weight 1
                prefix.push(usize::MAX); // placeholder meaning MASK
                let total = recurse(est, plan, prefix, slot + 1, nslots);
                prefix.pop();
                total
            }
            constraint => {
                let probs = conditional(est, prefix, slot);
                let mut total = 0.0;
                for (v, &p) in probs.iter().enumerate() {
                    let w = match constraint {
                        SlotConstraint::Range(a, b) => {
                            if v >= *a && v <= *b {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        SlotConstraint::Weights(w) => w[v],
                        SlotConstraint::FactorLo { .. } => unreachable!("no factorised cols here"),
                        SlotConstraint::Wildcard => unreachable!(),
                    };
                    if p * w == 0.0 {
                        continue;
                    }
                    prefix.push(v);
                    total += p * w * recurse(est, plan, prefix, slot + 1, nslots);
                    prefix.pop();
                }
                total
            }
        }
    }

    /// AR conditional for `slot` given a prefix (usize::MAX = MASK).
    fn conditional(est: &mut IamEstimator, prefix: &[usize], slot: usize) -> Vec<f64> {
        let nslots = est.schema.nslots();
        let net = est.net_mut();
        let mut inputs = vec![0usize; nslots];
        for s in 0..nslots {
            inputs[s] = if s < prefix.len() && prefix[s] != usize::MAX {
                prefix[s]
            } else {
                net.mask_token(s)
            };
        }
        let mut logits = Vec::new();
        net.forward_column(&inputs, 1, slot, &mut logits);
        let mut probs = Vec::new();
        net.row_softmax(&logits, 0, net.domain_size(slot), &mut probs);
        probs.iter().map(|&p| p as f64).collect()
    }

    let mut prefix = Vec::new();
    recurse(est, &plan, &mut prefix, 0, nslots)
}

fn check_unbiased(mut est: IamEstimator, rq: &RangeQuery, runs: usize, tol: f64) {
    let expected = exhaustive_model_selectivity(&mut est, rq);
    let mut total = 0.0;
    for r in 0..runs {
        est.reseed(0xBEEF + r as u64);
        total += est.estimate(rq);
    }
    let mean = total / runs as f64;
    assert!(
        (mean - expected).abs() <= tol * expected.max(1e-3),
        "progressive sampling biased: mean {mean} vs exhaustive {expected}"
    );
}

fn cfg() -> IamConfig {
    IamConfig {
        components: 6,
        hidden: vec![32, 32],
        embed_dim: 8,
        epochs: 4,
        samples: 400,
        seed: 3,
        reduce_threshold: 100,
        ..IamConfig::default()
    }
}

#[test]
fn unbiased_on_plain_ar_columns() {
    let table = small_table(4000, 1);
    let est = IamEstimator::fit(&table, cfg());
    // range touches only the two categorical (Direct) columns
    let q = Query::new(vec![
        Predicate { col: 0, op: Op::Le, value: 1.0 },
        Predicate { col: 1, op: Op::Ge, value: 1.0 },
    ]);
    let (rq, _) = q.normalize(3).unwrap();
    check_unbiased(est, &rq, 30, 0.05);
}

#[test]
fn unbiased_with_gmm_corrected_column() {
    let table = small_table(4000, 2);
    let est = IamEstimator::fit(&table, cfg());
    // range on the GMM-reduced continuous column — the Theorem 5.1 case
    let q = Query::new(vec![
        Predicate { col: 2, op: Op::Ge, value: -2.0 },
        Predicate { col: 2, op: Op::Le, value: 5.0 },
    ]);
    let (rq, _) = q.normalize(3).unwrap();
    check_unbiased(est, &rq, 30, 0.05);
}

#[test]
fn unbiased_on_mixed_constraints() {
    let table = small_table(4000, 3);
    let est = IamEstimator::fit(&table, cfg());
    // categorical point + categorical range + continuous range, with the
    // middle column acting through conditionals
    let q = Query::new(vec![
        Predicate { col: 0, op: Op::Eq, value: 2.0 },
        Predicate { col: 2, op: Op::Le, value: 1.5 },
    ]);
    let (rq, _) = q.normalize(3).unwrap();
    check_unbiased(est, &rq, 40, 0.08);
}

#[test]
fn interval_edge_cases_agree() {
    let table = small_table(3000, 4);
    let mut est = IamEstimator::fit(&table, cfg());
    // full-domain range over the reduced column behaves like no constraint
    let mut rq_full = RangeQuery::unconstrained(3);
    rq_full.cols[2] = Some(Interval::closed(-1e9, 1e9));
    let sel = est.estimate(&rq_full);
    assert!((sel - 1.0).abs() < 0.02, "covering range should estimate ~1, got {sel}");
}
