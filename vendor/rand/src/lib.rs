//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the tiny slice of the `rand` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] core trait
//! and the [`RngExt`] extension methods (`random`, `random_range`,
//! `random_bool`). The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic, high-quality, and fast; it is **not** cryptographically
//! secure, which is fine for sampling and shuffling.
//!
//! Determinism contract: for a fixed seed the stream of `next_u64` values —
//! and hence every derived `random*` call sequence — is stable across
//! platforms and releases. Model persistence and the serving layer's
//! bitwise-reproducibility tests rely on this.

#![deny(missing_docs)]

/// Core randomness source: everything derives from `next_u64`.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from their "standard" distribution:
/// `[0, 1)` for floats, the full domain for integers and `bool`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform on [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn uniformly from (`random_range`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full 64-bit domain
                }
                let off = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A standard-distribution value: `[0, 1)` floats, any-bit integers.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range` (half-open or inclusive).
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64. Deliberately **not** `Clone`:
    /// thread-cloned estimators must reseed explicitly so parallel streams
    /// diverge on purpose rather than by accident.
    #[derive(Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
            let v = rng.random_range(10..=12u32);
            assert!((10..=12).contains(&v));
            let w = rng.random_range(-3..3i64);
            assert!((-3..3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "{frac}");
    }
}
