//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of the proptest API its property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range
//! strategies over integers and floats, [`collection::vec`],
//! [`prop_assert!`] / [`prop_assert_eq!`], and [`prelude::ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports the generated inputs
//!   verbatim (`Debug`-printed) instead of a minimised counterexample;
//! * **deterministic seeding** — each test's RNG is seeded from a hash of
//!   the test function's name, so failures reproduce exactly and CI is
//!   stable. Set `PROPTEST_SEED` to explore a different stream.
//!
//! Strategies compose only as far as the workspace needs; extend this shim
//! rather than reaching for the real crate.

#![deny(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator for test inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_CAFE }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + ((self.next_u64() as u128 * (hi - lo) as u128) >> 64) as usize
    }
}

/// Something that can generate values for a property test.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;
    /// Generate one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

/// A fixed value ("just this"), mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Build from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted but unused (no shrinking in this shim).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// FNV-1a over the test name: per-test deterministic seed.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };

    /// The `prop::` namespace (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::Just;
    }
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case (with its generated inputs) is reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}: {}",
            a,
            b,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Define property tests. Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(-1.0f64..1.0, 1..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // render inputs up front: the body may move the values
                    let inputs: Vec<String> =
                        vec![$(format!("  {} = {:?}", stringify!($arg), $arg)),+];
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\ninputs:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e.message,
                            inputs.join("\n"),
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -1.5f64..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        /// Doc comments on cases must parse.
        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn exact_size_vecs(v in prop::collection::vec(0.0f64..1.0, 5)) {
            prop_assert_eq!(v.len(), 5);
        }
    }

    #[test]
    fn failures_panic_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0usize..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }
}
