//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of the criterion API its
//! micro-benchmarks use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery this shim warms up briefly,
//! then times batches of iterations until a wall-clock budget is spent and
//! reports the mean, best and worst per-iteration time. Good enough to
//! compare hot paths before/after a change; not a substitute for real
//! criterion when statistical rigour matters.
//!
//! Environment knobs: `IAM_BENCH_WARMUP_MS` (default 200) and
//! `IAM_BENCH_MEASURE_MS` (default 1000).

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run `f` as a named benchmark and print a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let warmup = env_ms("IAM_BENCH_WARMUP_MS", 200);
        let measure = env_ms("IAM_BENCH_MEASURE_MS", 1000);
        let mut b =
            Bencher { mode: Mode::Warmup { budget: warmup }, samples: Vec::new(), iters: 0 };
        f(&mut b);
        // calibrated: run again in measurement mode
        let per_iter_hint = b.per_iter_hint();
        let mut b = Bencher {
            mode: Mode::Measure { budget: measure, per_iter_hint },
            samples: Vec::new(),
            iters: 0,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default))
}

#[derive(Debug)]
enum Mode {
    Warmup { budget: Duration },
    Measure { budget: Duration, per_iter_hint: Duration },
}

/// Timing loop driver (the `b` in `bench_function("x", |b| b.iter(..))`).
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    /// Per-batch (batch_len, elapsed) samples.
    samples: Vec<(u64, Duration)>,
    iters: u64,
}

impl Bencher {
    /// Repeatedly run `routine`, timing batches until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (budget, batch) = match self.mode {
            Mode::Warmup { budget } => (budget, 1u64),
            Mode::Measure { budget, per_iter_hint } => {
                // target ~1ms per timed batch to drown out timer overhead
                let hint = per_iter_hint.as_nanos().max(1);
                (budget, (1_000_000 / hint).clamp(1, 1_000_000) as u64)
            }
        };
        let start = Instant::now();
        while start.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push((batch, t0.elapsed()));
            self.iters += batch;
        }
    }

    fn per_iter_hint(&self) -> Duration {
        let total: Duration = self.samples.iter().map(|(_, d)| *d).sum();
        if self.iters == 0 {
            Duration::from_nanos(1)
        } else {
            total / self.iters.max(1) as u32
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no iterations)");
            return;
        }
        let per: Vec<f64> =
            self.samples.iter().map(|(n, d)| d.as_secs_f64() * 1e9 / *n as f64).collect();
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        let best = per.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = per.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{name:<40} mean {:>12} best {:>12} worst {:>12} ({} iters)",
            fmt_ns(mean),
            fmt_ns(best),
            fmt_ns(worst),
            self.iters
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Collect benchmark functions into one group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        std::env::set_var("IAM_BENCH_WARMUP_MS", "5");
        std::env::set_var("IAM_BENCH_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }
}
