//! A plain fully-connected network for the query-driven baselines.
//!
//! MSCN-style estimators featurise a query into a fixed-length vector and
//! regress its (log-)selectivity. This MLP has ReLU hidden layers and a
//! single linear output trained with mean-squared error.

use crate::init::Initializer;
use crate::linear::{Linear, Relu};
use crate::Parameters;

/// Configuration of an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Hidden widths, e.g. `[256, 256]` (the paper's MSCN setting).
    pub hidden: Vec<usize>,
    /// Weight init seed.
    pub seed: u64,
}

/// MLP with scalar output.
#[derive(Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    relus: Vec<Relu>,
    bufs: Vec<Vec<f32>>,
    grads: Vec<Vec<f32>>,
}

impl Mlp {
    /// Build from config.
    pub fn new(cfg: &MlpConfig) -> Self {
        let mut init = Initializer::new(cfg.seed);
        let mut layers = Vec::new();
        let mut prev = cfg.in_dim;
        for &h in &cfg.hidden {
            layers.push(Linear::new(prev, h, &mut init));
            prev = h;
        }
        layers.push(Linear::new(prev, 1, &mut init));
        let nl = layers.len();
        Mlp {
            relus: vec![Relu::default(); nl - 1],
            layers,
            bufs: vec![Vec::new(); nl + 1],
            grads: vec![Vec::new(); nl + 1],
        }
    }

    /// Forward `batch` rows of features; returns one scalar per row.
    pub fn predict(&mut self, x: &[f32], batch: usize, out: &mut Vec<f32>) {
        self.forward(x, batch, false);
        out.clear();
        out.extend_from_slice(&self.bufs[self.layers.len()]);
    }

    fn forward(&mut self, x: &[f32], batch: usize, cache: bool) {
        self.bufs[0].clear();
        self.bufs[0].extend_from_slice(x);
        let nl = self.layers.len();
        for l in 0..nl {
            let (head, tail) = self.bufs.split_at_mut(l + 1);
            let (xin, y) = (&head[l], &mut tail[0]);
            if cache {
                self.layers[l].forward(xin, batch, y);
            } else {
                self.layers[l].forward_no_cache(xin, batch, y);
            }
            if l + 1 < nl {
                if cache {
                    self.relus[l].forward(y);
                } else {
                    Relu::forward_no_cache(y);
                }
            }
        }
    }

    /// One MSE training step on `(x, y)`; gradients accumulated for the
    /// optimiser. Returns the batch MSE.
    pub fn train_batch(&mut self, x: &[f32], y: &[f32], batch: usize) -> f32 {
        assert_eq!(y.len(), batch);
        self.forward(x, batch, true);
        let nl = self.layers.len();
        let preds = &self.bufs[nl];
        let mut loss = 0.0f32;
        let mut dy = vec![0.0f32; batch];
        let scale = 1.0 / batch as f32;
        for b in 0..batch {
            let err = preds[b] - y[b];
            loss += err * err;
            dy[b] = 2.0 * err * scale;
        }
        loss *= scale;
        self.grads[nl] = dy;
        for l in (0..nl).rev() {
            let (head, tail) = self.grads.split_at_mut(l + 1);
            let (gin, gout) = (&mut head[l], &tail[0]);
            let mut d = gout.clone();
            if l + 1 < nl {
                self.relus[l].backward(&mut d);
            }
            self.layers[l].backward(&d, gin);
        }
        loss
    }
}

impl Parameters for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::{Adam, AdamConfig};

    #[test]
    fn fits_a_linear_function() {
        // y = 2 x0 - x1 + 0.5
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let a = (i % 20) as f32 / 20.0;
            let b = (i % 7) as f32 / 7.0;
            xs.push(a);
            xs.push(b);
            ys.push(2.0 * a - b + 0.5);
        }
        let mut mlp = Mlp::new(&MlpConfig { in_dim: 2, hidden: vec![16], seed: 3 });
        let mut opt = Adam::new(AdamConfig { lr: 1e-2, ..Default::default() });
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            last = mlp.train_batch(&xs, &ys, 200);
            opt.step(&mut mlp);
        }
        assert!(last < 1e-3, "final MSE {last}");
        let mut out = Vec::new();
        mlp.predict(&[0.5, 0.5], 1, &mut out);
        assert!((out[0] - 1.0).abs() < 0.1, "{}", out[0]);
    }

    #[test]
    fn fits_a_nonlinear_function() {
        // y = |x| needs the hidden layer
        let xs: Vec<f32> = (-50..50).map(|i| i as f32 / 25.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| x.abs()).collect();
        let mut mlp = Mlp::new(&MlpConfig { in_dim: 1, hidden: vec![32, 32], seed: 4 });
        let mut opt = Adam::new(AdamConfig { lr: 5e-3, ..Default::default() });
        let mut last = f32::INFINITY;
        for _ in 0..600 {
            last = mlp.train_batch(&xs, &ys, xs.len());
            opt.step(&mut mlp);
        }
        assert!(last < 5e-3, "final MSE {last}");
    }

    #[test]
    fn predict_is_pure() {
        let mut mlp = Mlp::new(&MlpConfig { in_dim: 3, hidden: vec![8], seed: 5 });
        let x = [0.1, 0.2, 0.3];
        let mut a = Vec::new();
        let mut b = Vec::new();
        mlp.predict(&x, 1, &mut a);
        mlp.predict(&x, 1, &mut b);
        assert_eq!(a, b);
    }
}
