//! Learned per-column embedding tables.

use crate::init::Initializer;

/// An embedding table of `rows × dim`, typically `domain_size + 1` rows
/// where the final row is the MASK token used by wildcard skipping.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Number of rows (vocabulary size, including any MASK row).
    pub rows: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Table, row-major.
    pub table: Vec<f32>,
    /// Gradients.
    pub grad: Vec<f32>,
    last_ids: Vec<usize>,
}

impl Embedding {
    /// New table with small uniform init.
    pub fn new(rows: usize, dim: usize, init: &mut Initializer) -> Self {
        Embedding {
            rows,
            dim,
            table: init.uniform(rows * dim, 0.1),
            grad: vec![0.0; rows * dim],
            last_ids: Vec::new(),
        }
    }

    /// The embedding vector of token `id` (used when precomputing fused
    /// embedding→layer-1 token tables, which fold `W₁ × row(id)` into one
    /// cached hidden vector per token).
    pub fn row(&self, id: usize) -> &[f32] {
        debug_assert!(id < self.rows, "embedding id {id} out of range {}", self.rows);
        &self.table[id * self.dim..(id + 1) * self.dim]
    }

    /// Gather rows for a batch of ids into `out[offset + b*stride ..]`,
    /// caching ids for backward. `stride` is the full input row width of the
    /// downstream layer so multiple embeddings can write into one buffer.
    pub fn forward_into(&mut self, ids: &[usize], out: &mut [f32], offset: usize, stride: usize) {
        self.last_ids.clear();
        self.last_ids.extend_from_slice(ids);
        self.gather(ids, out, offset, stride);
    }

    /// Gather without caching (inference).
    pub fn gather(&self, ids: &[usize], out: &mut [f32], offset: usize, stride: usize) {
        for (b, &id) in ids.iter().enumerate() {
            debug_assert!(id < self.rows, "embedding id {id} out of range {}", self.rows);
            let src = &self.table[id * self.dim..(id + 1) * self.dim];
            let dst = &mut out[b * stride + offset..b * stride + offset + self.dim];
            dst.copy_from_slice(src);
        }
    }

    /// Scatter-accumulate gradients from `dx[offset + b*stride ..]`.
    pub fn backward_from(&mut self, dx: &[f32], offset: usize, stride: usize) {
        for (b, &id) in self.last_ids.iter().enumerate() {
            let src = &dx[b * stride + offset..b * stride + offset + self.dim];
            let dst = &mut self.grad[id * self.dim..(id + 1) * self.dim];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Scatter-accumulate into a caller-provided gradient buffer (`&self`):
    /// the sharded-training variant of [`Self::backward_from`], with ids
    /// passed explicitly instead of read from the forward cache.
    pub fn scatter_grad(
        &self,
        ids: &[usize],
        dx: &[f32],
        offset: usize,
        stride: usize,
        grad: &mut [f32],
    ) {
        debug_assert_eq!(grad.len(), self.table.len());
        for (b, &id) in ids.iter().enumerate() {
            let src = &dx[b * stride + offset..b * stride + offset + self.dim];
            let dst = &mut grad[id * self.dim..(id + 1) * self.dim];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Visit (param, grad).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.table, &mut self.grad);
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_and_scatter_round_trip() {
        let mut init = Initializer::new(7);
        let mut e = Embedding::new(4, 3, &mut init);
        e.table = (0..12).map(|i| i as f32).collect();
        let mut buf = vec![0.0; 2 * 5]; // batch 2, stride 5, offset 1
        e.forward_into(&[2, 0], &mut buf, 1, 5);
        assert_eq!(&buf[1..4], &[6.0, 7.0, 8.0]);
        assert_eq!(&buf[6..9], &[0.0, 1.0, 2.0]);
        // scatter unit upstream grads
        let dx = vec![1.0; 10];
        e.backward_from(&dx, 1, 5);
        assert_eq!(&e.grad[6..9], &[1.0, 1.0, 1.0]); // row 2
        assert_eq!(&e.grad[0..3], &[1.0, 1.0, 1.0]); // row 0
        assert_eq!(&e.grad[3..6], &[0.0, 0.0, 0.0]); // untouched row 1
    }

    #[test]
    fn duplicate_ids_accumulate() {
        let mut init = Initializer::new(7);
        let mut e = Embedding::new(2, 2, &mut init);
        let mut buf = vec![0.0; 3 * 2];
        e.forward_into(&[1, 1, 1], &mut buf, 0, 2);
        let dx = vec![1.0; 6];
        e.backward_from(&dx, 0, 2);
        assert_eq!(&e.grad[2..4], &[3.0, 3.0]);
    }
}
