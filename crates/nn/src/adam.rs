//! The Adam optimiser (Kingma & Ba), the paper's training method.

use crate::Parameters;

/// Adam hyper-parameters.
#[derive(Debug, Clone)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
    /// Optional global gradient-norm clip (0 disables).
    pub clip_norm: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 2e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip_norm: 5.0 }
    }
}

/// Adam state: first/second moment buffers laid out in visit order.
#[derive(Clone)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    initialized: bool,
}

impl Adam {
    /// New optimiser.
    pub fn new(cfg: AdamConfig) -> Self {
        Adam { cfg, m: Vec::new(), v: Vec::new(), t: 0, initialized: false }
    }

    /// Apply one update to every parameter of `model` and zero the grads.
    pub fn step<P: Parameters + ?Sized>(&mut self, model: &mut P) {
        if !self.initialized {
            let mut total = 0usize;
            model.visit_params(&mut |p, _| total += p.len());
            self.m = vec![0.0; total];
            self.v = vec![0.0; total];
            self.initialized = true;
        }
        // optional global grad clipping
        let scale = if self.cfg.clip_norm > 0.0 {
            let mut norm_sq = 0.0f64;
            model.visit_params(&mut |_, g| {
                norm_sq += g.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>()
            });
            let norm = norm_sq.sqrt() as f32;
            if norm > self.cfg.clip_norm {
                self.cfg.clip_norm / norm
            } else {
                1.0
            }
        } else {
            1.0
        };

        self.t += 1;
        let lr = self.cfg.lr;
        let (b1, b2, eps) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut cursor = 0usize;
        model.visit_params(&mut |p, g| {
            let ms = &mut m[cursor..cursor + p.len()];
            let vs = &mut v[cursor..cursor + p.len()];
            cursor += p.len();
            for i in 0..p.len() {
                let gi = g[i] * scale;
                ms[i] = b1 * ms[i] + (1.0 - b1) * gi;
                vs[i] = b2 * vs[i] + (1.0 - b2) * gi * gi;
                let mhat = ms[i] / bc1;
                let vhat = vs[i] / bc2;
                p[i] -= lr * mhat / (vhat.sqrt() + eps);
                g[i] = 0.0;
            }
        });
    }

    /// Change the learning rate (for simple schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-parameter quadratic "model": loss = (w - 3)².
    struct Quad {
        w: Vec<f32>,
        g: Vec<f32>,
    }

    impl Parameters for Quad {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
            f(&mut self.w, &mut self.g);
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let mut q = Quad { w: vec![-5.0], g: vec![0.0] };
        let mut opt = Adam::new(AdamConfig { lr: 0.1, clip_norm: 0.0, ..Default::default() });
        for _ in 0..500 {
            q.g[0] = 2.0 * (q.w[0] - 3.0);
            opt.step(&mut q);
        }
        assert!((q.w[0] - 3.0).abs() < 0.05, "w = {}", q.w[0]);
    }

    #[test]
    fn grads_zeroed_after_step() {
        let mut q = Quad { w: vec![0.0], g: vec![1.0] };
        let mut opt = Adam::new(AdamConfig::default());
        opt.step(&mut q);
        assert_eq!(q.g[0], 0.0);
    }

    #[test]
    fn clipping_limits_update_magnitude() {
        let mut q = Quad { w: vec![0.0, 0.0], g: vec![1e6, 1e6] };
        let mut opt = Adam::new(AdamConfig { lr: 0.1, clip_norm: 1.0, ..Default::default() });
        opt.step(&mut q);
        // with clipping the effective gradient norm is 1, so the Adam step is
        // bounded by lr
        assert!(q.w.iter().all(|w| w.abs() <= 0.11), "{:?}", q.w);
    }

    #[test]
    fn zero_grad_is_noop_update() {
        let mut q = Quad { w: vec![1.5], g: vec![0.0] };
        let mut opt = Adam::new(AdamConfig::default());
        opt.step(&mut q);
        assert_eq!(q.w[0], 1.5);
    }
}
