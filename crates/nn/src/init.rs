//! Deterministic weight initialisation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded initialiser producing Kaiming-uniform weights.
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// New initialiser from a seed.
    pub fn new(seed: u64) -> Self {
        Initializer { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform in `[-bound, bound]`.
    pub fn uniform(&mut self, n: usize, bound: f32) -> Vec<f32> {
        (0..n).map(|_| (self.rng.random::<f32>() * 2.0 - 1.0) * bound).collect()
    }

    /// Kaiming-uniform for a `fan_in`-input layer: `bound = sqrt(1/fan_in)`.
    pub fn kaiming(&mut self, n: usize, fan_in: usize) -> Vec<f32> {
        let bound = (1.0 / fan_in.max(1) as f32).sqrt();
        self.uniform(n, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = Initializer::new(5).kaiming(100, 64);
        let b = Initializer::new(5).kaiming(100, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn bounded() {
        let w = Initializer::new(1).kaiming(1000, 16);
        let bound = (1.0f32 / 16.0).sqrt();
        assert!(w.iter().all(|&x| x.abs() <= bound));
        // not degenerate
        assert!(w.iter().any(|&x| x.abs() > bound * 0.5));
    }
}
