//! A minimal neural-network library with manual backpropagation.
//!
//! The paper trains ResMADE — a masked autoregressive MLP with residual
//! connections (4 hidden layers of 256/128/128/256 units) — on mini-batches
//! with Adam. At that scale a GPU framework is unnecessary: this crate
//! provides exactly the pieces IAM and the deep baselines need, in pure
//! Rust `f32`:
//!
//! * [`linear::Linear`] — (optionally masked) affine layers with cached
//!   activations and analytic gradients;
//! * [`embedding::Embedding`] — learned per-column lookup tables with an
//!   extra MASK row for wildcard skipping;
//! * [`adam::Adam`] — the Adam optimiser over a flat parameter visitor;
//! * [`made::MadeNet`] — MADE/ResMADE: degree-based autoregressive masks,
//!   per-column softmax heads, cross-entropy training, and batched
//!   conditional inference for progressive sampling;
//! * [`mlp::Mlp`] — a plain MLP used by the query-driven baselines (MSCN).

#![deny(missing_docs)]

pub mod adam;
pub mod embedding;
pub mod init;
pub mod linear;
pub mod made;
pub mod mlp;

pub use adam::{Adam, AdamConfig};
pub use embedding::Embedding;
pub use linear::Linear;
pub use made::{FusedTables, InferScratch, MadeConfig, MadeNet, TablePrecision};
pub use mlp::{Mlp, MlpConfig};

/// Visitor over (parameter, gradient) pairs — the contract between models
/// and the optimiser. Implementations must visit the same tensors in the
/// same order on every call.
pub trait Parameters {
    /// Call `f(param, grad)` for every parameter tensor.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Zero all gradient buffers.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.iter_mut().for_each(|x| *x = 0.0));
    }

    /// Total number of scalar parameters.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }
}
