//! MADE / ResMADE — the masked autoregressive network (paper §3).
//!
//! The network consumes one embedded token per column and produces, for
//! every column `i`, the logits of `P̂(A_i | A_1..A_{i-1})`. Autoregressive
//! structure is enforced with degree-based binary masks (Germain et al.,
//! MADE): input group `i` carries degree `i+1`, hidden unit `k` carries
//! degree `d_k ∈ [1, n−1]` assigned cyclically, and
//!
//! * first layer:    hidden `k` sees input group `j` iff `j+1 ≤ d_k`;
//! * hidden layers:  unit `k₂` sees unit `k₁` iff `d_{k₂} ≥ d_{k₁}`;
//! * output layer:   column `i`'s logits see hidden `k` iff `d_k ≤ i`.
//!
//! Residual (ResMADE) skips are added between consecutive hidden layers of
//! equal width; the cyclic degree assignment gives positionally identical
//! degrees, so identity skips preserve the autoregressive property.
//!
//! Every column's embedding table carries one extra MASK row (id =
//! `domain_size`) used for *wildcard skipping* (§5.3): during training a
//! random subset of input columns is replaced by MASK so the conditionals
//! marginalise over unqueried columns at inference time.

use crate::embedding::Embedding;
use crate::init::Initializer;
use crate::linear::{Linear, Relu};
use crate::Parameters;

/// Rows per gradient shard in [`MadeNet::train_batch_sharded`]. The shard
/// decomposition is a function of the batch size ALONE — never of the
/// thread count — so the fixed-order shard reduction yields bitwise
/// identical gradients for every `threads` value.
pub const TRAIN_SHARD_ROWS: usize = 64;

/// Configuration of a [`MadeNet`].
#[derive(Debug, Clone)]
pub struct MadeConfig {
    /// Reduced domain size of each column, in autoregressive order.
    pub domain_sizes: Vec<usize>,
    /// Hidden layer widths, e.g. the paper's `[256, 128, 128, 256]`.
    pub hidden: Vec<usize>,
    /// Per-column embedding dimension.
    pub embed_dim: usize,
    /// Add residual skips between equal-width hidden layers (ResMADE).
    pub residual: bool,
    /// Seed for weight init.
    pub seed: u64,
}

impl Default for MadeConfig {
    fn default() -> Self {
        MadeConfig {
            domain_sizes: Vec::new(),
            hidden: vec![256, 128, 128, 256],
            embed_dim: 16,
            residual: true,
            seed: 42,
        }
    }
}

/// Reusable activation buffers for the immutable inference path
/// ([`MadeNet::forward_column_into`]). One scratch per thread lets many
/// threads run forward passes over one shared `&MadeNet` concurrently.
#[derive(Debug, Clone, Default)]
pub struct InferScratch {
    bufs: Vec<Vec<f32>>,
    ids: Vec<usize>,
}

impl InferScratch {
    /// Fresh, empty scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_layers(&mut self, nlayers: usize) {
        if self.bufs.len() < nlayers {
            self.bufs.resize(nlayers, Vec::new());
        }
    }
}

/// Precomputed per-(slot, token) first-layer contributions: since the
/// input row of the MADE first layer is a concatenation of per-slot
/// embeddings, `T[slot][token] = W₁[:, slot·e..(slot+1)·e] × embed_slot(token)`
/// can be cached once per model (reduced domains are tiny, K ≈ 30 plus one
/// MASK row). The first hidden layer then becomes a fixed-slot-order sum
/// of `nslots` cached hidden-dim vectors plus bias — the exact scalars, in
/// the exact order, the grouped input-layer kernel produces
/// (`Linear::forward_grouped_no_cache` with one group per slot), so fused
/// and non-fused forwards agree bitwise. The O(nslots·e·h₀) layer-1 GEMM
/// per row collapses to O(nslots·h₀) adds, and the embedding gather is
/// skipped entirely.
///
/// Tables are a pure function of the first layer's weights and the
/// embedding tables: rebuild after every parameter update (training,
/// snapshot load).
#[derive(Debug, Clone)]
pub struct FusedTables {
    /// Per slot: `(domain_size + 1) × hidden₀` row-major token table (the
    /// extra row is the MASK token), stored at `precision`.
    slots: Vec<SlotTable>,
    /// First hidden layer width.
    h0: usize,
    /// Per-slot embedding width at build time (for flop accounting).
    embed_dim: usize,
    /// Storage precision the tables were built at.
    precision: TablePrecision,
}

/// Storage precision for the fused per-(slot,token) tables.
///
/// `F32` is the golden path: fused forwards are bitwise identical to the
/// grouped non-fused kernel. `F16` and `Int8` trade bounded accuracy for
/// smaller tables (half / quarter the bytes plus per-row metadata); they
/// keep the canonical per-slot summation order — only the *values* added
/// change, never the order — so estimates degrade smoothly and stay within
/// a measured q-error budget (gated in `table7_batch_inference`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TablePrecision {
    /// Full-precision tables; fused forward is bit-exact vs unfused.
    #[default]
    F32,
    /// Bit-truncated f32 (top 16 bits, i.e. bfloat16 layout): 8-bit
    /// exponent preserved, mantissa cut to 7 bits. Dequantization is a
    /// pure bit shift, so `F16` never over/underflows relative to f32.
    F16,
    /// Per-(slot,token)-row affine u8 quantization: for each token row,
    /// `scale = (max − min) / 255`, `zero = min`, `q = round((v − zero) /
    /// scale)`; dequantized as `zero + scale · q`. Degenerate rows
    /// (`max == min`) store `scale = 0` and reproduce the row exactly.
    Int8,
}

impl TablePrecision {
    /// Stable lowercase name (bench JSON, STATS lines, persist logs).
    pub fn name(&self) -> &'static str {
        match self {
            TablePrecision::F32 => "f32",
            TablePrecision::F16 => "f16",
            TablePrecision::Int8 => "int8",
        }
    }

    /// Stable wire tag (persist trailer byte).
    pub fn tag(&self) -> u8 {
        match self {
            TablePrecision::F32 => 0,
            TablePrecision::F16 => 1,
            TablePrecision::Int8 => 2,
        }
    }

    /// Inverse of [`Self::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(TablePrecision::F32),
            1 => Some(TablePrecision::F16),
            2 => Some(TablePrecision::Int8),
            _ => None,
        }
    }
}

/// One slot's token table at its storage precision. All reads go through
/// [`SlotTable::accumulate_row`] — the single grouped-summation choke
/// point — so every precision shares the canonical accumulate order
/// (enforced by the `fused-forward` audit rule: no ad-hoc table indexing
/// outside this module's build/accumulate functions).
#[derive(Debug, Clone)]
enum SlotTable {
    /// Row-major `(domain+1) × h0` f32 table (golden path).
    F32(Vec<f32>),
    /// Same layout, each value bit-truncated to its top 16 bits.
    F16(Vec<u16>),
    /// Same layout quantized to u8 with per-token-row affine metadata.
    Int8 { q: Vec<u8>, scale: Vec<f32>, zero: Vec<f32> },
}

impl SlotTable {
    /// Dequantize-on-accumulate: add token `tok`'s cached `h0`-wide hidden
    /// vector onto `y`. This is the only place table storage is indexed;
    /// callers iterate slots in ascending order, so the per-slot summation
    /// order is identical across precisions.
    #[inline]
    fn accumulate_row(&self, tok: usize, h0: usize, y: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if std::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by runtime AVX2 detection.
            return unsafe { self.accumulate_row_avx2(tok, h0, y) };
        }
        self.accumulate_row_scalar(tok, h0, y)
    }

    /// Portable body of [`Self::accumulate_row`]; also the reference the
    /// AVX2 variant is tested against.
    #[inline]
    fn accumulate_row_scalar(&self, tok: usize, h0: usize, y: &mut [f32]) {
        match self {
            SlotTable::F32(t) => {
                let trow = &t[tok * h0..(tok + 1) * h0];
                for (yk, tk) in y.iter_mut().zip(trow) {
                    *yk += tk;
                }
            }
            SlotTable::F16(t) => {
                let trow = &t[tok * h0..(tok + 1) * h0];
                for (yk, &tk) in y.iter_mut().zip(trow) {
                    *yk += f16_bits_to_f32(tk);
                }
            }
            SlotTable::Int8 { q, scale, zero } => {
                let (s, z) = (scale[tok], zero[tok]);
                let trow = &q[tok * h0..(tok + 1) * h0];
                for (yk, &tk) in y.iter_mut().zip(trow) {
                    *yk += z + s * tk as f32;
                }
            }
        }
    }

    /// AVX2 [`Self::accumulate_row`]. Every lane performs the scalar
    /// body's exact per-element ops — f32 add; f16's pure `<< 16` bit
    /// shift then add; int8's `z + s·q` (u8→f32 conversion is exact, mul
    /// and add round once each, identically to scalar) — and elements are
    /// independent (no reduction), so results are bitwise identical to
    /// [`Self::accumulate_row_scalar`]. Caller must ensure AVX2 is
    /// available. Allowlisted alongside `accumulate_row` in the
    /// `fused-forward` audit rule's quantized choke points.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn accumulate_row_avx2(&self, tok: usize, h0: usize, y: &mut [f32]) {
        use std::arch::x86_64::*;
        debug_assert!(y.len() >= h0);
        match self {
            SlotTable::F32(t) => {
                let trow = &t[tok * h0..(tok + 1) * h0];
                let mut i = 0;
                while i + 8 <= h0 {
                    // SAFETY: `i + 8 <= h0` bounds both 8-float accesses.
                    let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                    let tv = _mm256_loadu_ps(trow.as_ptr().add(i));
                    _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_add_ps(yv, tv));
                    i += 8;
                }
                for k in i..h0 {
                    y[k] += trow[k];
                }
            }
            SlotTable::F16(t) => {
                let trow = &t[tok * h0..(tok + 1) * h0];
                let mut i = 0;
                while i + 8 <= h0 {
                    // SAFETY: `i + 8 <= h0` bounds the 8-u16 and 8-f32 accesses.
                    let bits = _mm_loadu_si128(trow.as_ptr().add(i) as *const __m128i);
                    let tv =
                        _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(bits)));
                    let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                    _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_add_ps(yv, tv));
                    i += 8;
                }
                for k in i..h0 {
                    y[k] += f16_bits_to_f32(trow[k]);
                }
            }
            SlotTable::Int8 { q, scale, zero } => {
                let (s, z) = (scale[tok], zero[tok]);
                let sv = _mm256_set1_ps(s);
                let zv = _mm256_set1_ps(z);
                let trow = &q[tok * h0..(tok + 1) * h0];
                let mut i = 0;
                while i + 8 <= h0 {
                    // SAFETY: `i + 8 <= h0` bounds the 8-u8 and 8-f32 accesses.
                    let qb = _mm_loadl_epi64(trow.as_ptr().add(i) as *const __m128i);
                    let qf = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(qb));
                    let tv = _mm256_add_ps(zv, _mm256_mul_ps(sv, qf));
                    let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                    _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_add_ps(yv, tv));
                    i += 8;
                }
                for k in i..h0 {
                    y[k] += z + s * trow[k] as f32;
                }
            }
        }
    }

    /// Resident bytes of this slot's table, including quantization
    /// metadata.
    fn size_bytes(&self) -> usize {
        match self {
            SlotTable::F32(t) => std::mem::size_of_val(t.as_slice()),
            SlotTable::F16(t) => std::mem::size_of_val(t.as_slice()),
            SlotTable::Int8 { q, scale, zero } => {
                std::mem::size_of_val(q.as_slice())
                    + std::mem::size_of_val(scale.as_slice())
                    + std::mem::size_of_val(zero.as_slice())
            }
        }
    }
}

/// Truncate an f32 to its top 16 bits (sign, full exponent, 7 mantissa
/// bits — the bfloat16 layout). Pure truncation: rounds toward zero in
/// the mantissa, never changes the exponent.
#[inline]
fn f32_to_f16_bits(v: f32) -> u16 {
    (v.to_bits() >> 16) as u16
}

/// Widen truncated 16-bit storage back to f32 (exact: low bits are zero).
#[inline]
fn f16_bits_to_f32(v: u16) -> f32 {
    f32::from_bits((v as u32) << 16)
}

/// Quantize one slot's freshly built f32 table (`rows` token rows of
/// width `h0`) to the requested storage precision.
fn quantize_slot(table: Vec<f32>, rows: usize, h0: usize, precision: TablePrecision) -> SlotTable {
    match precision {
        TablePrecision::F32 => SlotTable::F32(table),
        TablePrecision::F16 => SlotTable::F16(table.iter().map(|&v| f32_to_f16_bits(v)).collect()),
        TablePrecision::Int8 => {
            let mut q = vec![0u8; table.len()];
            let mut scale = vec![0.0f32; rows];
            let mut zero = vec![0.0f32; rows];
            for tok in 0..rows {
                let row = &table[tok * h0..(tok + 1) * h0];
                let lo = row.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let s = (hi - lo) / 255.0;
                zero[tok] = lo;
                if s > 0.0 && s.is_finite() {
                    scale[tok] = s;
                    for (qv, &v) in q[tok * h0..(tok + 1) * h0].iter_mut().zip(row) {
                        *qv = (((v - lo) / s).round()).clamp(0.0, 255.0) as u8;
                    }
                }
                // degenerate row (hi == lo): scale stays 0, q stays 0, and
                // dequantization reproduces the constant row exactly.
            }
            SlotTable::Int8 { q, scale, zero }
        }
    }
}

impl FusedTables {
    /// Resident size of the cached tables, in bytes (quantization
    /// metadata included).
    pub fn size_bytes(&self) -> usize {
        self.slots.iter().map(SlotTable::size_bytes).sum()
    }

    /// Storage precision the tables were built at.
    pub fn precision(&self) -> TablePrecision {
        self.precision
    }

    /// First hidden layer width.
    pub fn hidden0(&self) -> usize {
        self.h0
    }

    /// Nominal first-layer FLOPs a fused forward of `rows` sample rows
    /// avoids: per (hidden unit, slot) a `2·e`-flop dot product collapses
    /// to one add.
    pub fn skipped_layer1_flops(&self, rows: usize) -> u64 {
        (rows * self.slots.len() * self.h0) as u64 * (2 * self.embed_dim as u64 - 1)
    }
}

/// Per-shard training scratch for [`MadeNet::train_batch_sharded`]:
/// activations, ReLU activation masks, activation gradients and private
/// parameter-gradient buffers. One scratch per shard (not per thread) so
/// the gradient reduction order is independent of the thread count;
/// buffers are allocated on first use and reused across batches.
#[derive(Debug, Clone, Default)]
pub struct TrainScratch {
    bufs: Vec<Vec<f32>>,
    masks: Vec<Vec<bool>>,
    grads: Vec<Vec<f32>>,
    dy: Vec<f32>,
    probs: Vec<f32>,
    dlogits: Vec<f32>,
    ids: Vec<usize>,
    /// Per-layer weight/bias gradients, same shapes as the model's.
    gw: Vec<Vec<f32>>,
    gb: Vec<Vec<f32>>,
    /// Per-column embedding-table gradients.
    gemb: Vec<Vec<f32>>,
    /// Summed (not yet batch-normalised) NLL of the shard's rows, nats.
    loss: f64,
}

impl TrainScratch {
    fn ensure(&mut self, net: &MadeNet) {
        let nl = net.layers.len();
        if self.bufs.len() < nl + 1 {
            self.bufs.resize(nl + 1, Vec::new());
            self.grads.resize(nl + 1, Vec::new());
            self.masks.resize(nl.saturating_sub(1), Vec::new());
        }
        if self.gw.len() != nl {
            self.gw = net.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
            self.gb = net.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
            self.gemb = net.embeddings.iter().map(|e| vec![0.0; e.table.len()]).collect();
        } else {
            for g in self.gw.iter_mut().chain(self.gb.iter_mut()).chain(self.gemb.iter_mut()) {
                g.fill(0.0);
            }
        }
        self.loss = 0.0;
    }
}

/// `dst += src`, elementwise; the shard-gradient reduction primitive.
fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// The masked autoregressive network with manual backprop.
#[derive(Clone)]
pub struct MadeNet {
    cfg: MadeConfig,
    embeddings: Vec<Embedding>,
    layers: Vec<Linear>,
    relus: Vec<Relu>,
    /// `skip_from[l] == true` → add layer `l`'s input to its activated output.
    skip_from: Vec<bool>,
    /// Start offset of column `i`'s logits within the output vector.
    logit_offsets: Vec<usize>,
    total_logits: usize,
    // training scratch buffers
    bufs: Vec<Vec<f32>>,
    grads: Vec<Vec<f32>>,
    // scratch for the &mut convenience wrapper around the immutable path
    infer_scratch: InferScratch,
    // per-shard scratch pool for train_batch_sharded, reused across batches
    train_pool: Vec<TrainScratch>,
}

impl MadeNet {
    /// Build the network with degree-based masks.
    pub fn new(cfg: MadeConfig) -> Self {
        let n = cfg.domain_sizes.len();
        assert!(n >= 1, "need at least one column");
        assert!(!cfg.hidden.is_empty(), "need at least one hidden layer");
        let mut init = Initializer::new(cfg.seed);
        let e = cfg.embed_dim;

        let embeddings: Vec<Embedding> = cfg
            .domain_sizes
            .iter()
            .map(|&d| Embedding::new(d + 1, e, &mut init)) // +1: MASK row
            .collect();

        // degree of hidden unit k in any hidden layer of width `width`
        let max_deg = n.saturating_sub(1).max(1);
        let degree = |k: usize| (k % max_deg) + 1;

        let mut layers = Vec::new();
        let mut skip_from = Vec::new();

        // input layer: (n*e) -> hidden[0]
        let in_dim = n * e;
        let h0 = cfg.hidden[0];
        let mut mask = vec![0.0f32; h0 * in_dim];
        for k in 0..h0 {
            let dk = if n == 1 { 0 } else { degree(k) };
            for j in 0..n {
                if j < dk {
                    for t in 0..e {
                        mask[k * in_dim + j * e + t] = 1.0;
                    }
                }
            }
        }
        layers.push(Linear::new_masked(in_dim, h0, mask, &mut init));
        skip_from.push(false);

        // hidden-to-hidden layers
        for l in 1..cfg.hidden.len() {
            let (hin, hout) = (cfg.hidden[l - 1], cfg.hidden[l]);
            let mut mask = vec![0.0f32; hout * hin];
            for k2 in 0..hout {
                for k1 in 0..hin {
                    if degree(k2) >= degree(k1) {
                        mask[k2 * hin + k1] = 1.0;
                    }
                }
            }
            layers.push(Linear::new_masked(hin, hout, mask, &mut init));
            skip_from.push(cfg.residual && hin == hout);
        }

        // output layer: hidden[last] -> Σ dom_i
        let hlast = cfg.hidden[cfg.hidden.len() - 1];
        let mut logit_offsets = Vec::with_capacity(n);
        let mut total_logits = 0usize;
        for &d in &cfg.domain_sizes {
            logit_offsets.push(total_logits);
            total_logits += d;
        }
        let mut mask = vec![0.0f32; total_logits * hlast];
        for (i, &d) in cfg.domain_sizes.iter().enumerate() {
            for o in logit_offsets[i]..logit_offsets[i] + d {
                for k in 0..hlast {
                    if n > 1 && degree(k) <= i {
                        mask[o * hlast + k] = 1.0;
                    }
                    // column 0 (and the n == 1 case) sees nothing: marginal
                    // learned purely through the output bias.
                }
            }
        }
        layers.push(Linear::new_masked(hlast, total_logits, mask, &mut init));
        skip_from.push(false);

        let nlayers = layers.len();
        MadeNet {
            cfg,
            embeddings,
            relus: vec![Relu::default(); nlayers.saturating_sub(1)],
            layers,
            skip_from,
            logit_offsets,
            total_logits,
            bufs: vec![Vec::new(); nlayers + 1],
            grads: vec![Vec::new(); nlayers + 1],
            infer_scratch: InferScratch::new(),
            train_pool: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cfg.domain_sizes.len()
    }

    /// Domain size of column `i`.
    pub fn domain_size(&self, col: usize) -> usize {
        self.cfg.domain_sizes[col]
    }

    /// The MASK token id of column `i` (one past its domain).
    pub fn mask_token(&self, col: usize) -> usize {
        self.cfg.domain_sizes[col]
    }

    /// Total output width `Σ |A_i|`.
    pub fn total_logits(&self) -> usize {
        self.total_logits
    }

    /// Byte-range of column `i`'s logits within an output row.
    pub fn logit_range(&self, col: usize) -> std::ops::Range<usize> {
        let start = self.logit_offsets[col];
        start..start + self.cfg.domain_sizes[col]
    }

    fn embed(&mut self, inputs: &[usize], batch: usize, cache: bool) {
        let n = self.ncols();
        let e = self.cfg.embed_dim;
        let stride = n * e;
        let buf = &mut self.bufs[0];
        buf.resize(batch * stride, 0.0);
        // per-column id slices
        for (col, emb) in self.embeddings.iter_mut().enumerate() {
            // gather ids of this column
            let ids: Vec<usize> = (0..batch).map(|b| inputs[b * n + col]).collect();
            if cache {
                emb.forward_into(&ids, buf, col * e, stride);
            } else {
                emb.gather(&ids, buf, col * e, stride);
            }
        }
    }

    /// Forward pass producing `batch × total_logits` logits in `out`.
    ///
    /// `inputs` is row-major `batch × ncols` of encoded values; a value equal
    /// to `mask_token(col)` feeds the MASK embedding. When `cache` is true,
    /// activations are retained for a subsequent backward pass.
    pub fn forward(&mut self, inputs: &[usize], batch: usize, cache: bool, out: &mut Vec<f32>) {
        assert_eq!(inputs.len(), batch * self.ncols());
        self.embed(inputs, batch, cache);
        let nlayers = self.layers.len();
        let e = self.cfg.embed_dim;
        for l in 0..nlayers {
            let (head, tail) = self.bufs.split_at_mut(l + 1);
            let x = &head[l];
            let y = &mut tail[0];
            // the input layer runs the grouped kernel (one group per slot
            // embedding) on every path so the fused token-table inference
            // path can replay it bitwise from cached per-token vectors
            if l == 0 {
                if cache {
                    self.layers[0].forward_grouped(x, batch, e, y);
                } else {
                    self.layers[0].forward_grouped_no_cache(x, batch, e, y);
                }
            } else if cache {
                self.layers[l].forward(x, batch, y);
            } else {
                self.layers[l].forward_no_cache(x, batch, y);
            }
            if l + 1 < nlayers {
                if cache {
                    self.relus[l].forward(y);
                } else {
                    Relu::forward_no_cache(y);
                }
                if self.skip_from[l] {
                    for (yi, xi) in y.iter_mut().zip(x.iter()) {
                        *yi += xi;
                    }
                }
            }
        }
        out.clear();
        out.extend_from_slice(&self.bufs[nlayers]);
    }

    /// Inference forward computing only column `col`'s logits
    /// (`batch × domain_size(col)` into `out`). Progressive sampling calls
    /// this once per column per step; skipping the other columns' output
    /// rows is the difference between `O(H · |A_col|)` and
    /// `O(H · Σ|A_i|)` per step.
    pub fn forward_column(
        &mut self,
        inputs: &[usize],
        batch: usize,
        col: usize,
        out: &mut Vec<f32>,
    ) {
        let mut scratch = std::mem::take(&mut self.infer_scratch);
        self.forward_column_into(&mut scratch, inputs, batch, col, out);
        self.infer_scratch = scratch;
    }

    /// Immutable variant of [`Self::forward_column`]: all activations live
    /// in the caller-provided `scratch`, so a single `&MadeNet` can serve
    /// concurrent forward passes from many threads (each with its own
    /// scratch). This is the kernel behind parallel batched inference and
    /// the serving layer.
    pub fn forward_column_into(
        &self,
        scratch: &mut InferScratch,
        inputs: &[usize],
        batch: usize,
        col: usize,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(inputs.len(), batch * self.ncols());
        let nlayers = self.layers.len();
        scratch.ensure_layers(nlayers);
        let InferScratch { bufs, ids } = scratch;

        // embed into bufs[0]
        let n = self.ncols();
        let e = self.cfg.embed_dim;
        let stride = n * e;
        {
            let buf = &mut bufs[0];
            buf.resize(batch * stride, 0.0);
            for (c, emb) in self.embeddings.iter().enumerate() {
                ids.clear();
                ids.extend((0..batch).map(|b| inputs[b * n + c]));
                emb.gather(ids, buf, c * e, stride);
            }
        }
        {
            let (head, tail) = bufs.split_at_mut(1);
            self.layers[0].forward_grouped_no_cache(&head[0], batch, e, &mut tail[0]);
        }
        self.finish_forward_column(bufs, batch, col, out);
    }

    /// Precompute the fused embedding→layer-1 token tables for this model's
    /// current parameters (see [`FusedTables`]). Cheap relative to one
    /// training epoch: `Σ_slots (domain+1) · h₀` dot products of width `e`.
    pub fn build_fused_tables(&self) -> FusedTables {
        self.build_fused_tables_with(TablePrecision::F32)
    }

    /// [`Self::build_fused_tables`] at an explicit storage precision.
    /// Tables are always computed in f32 first, then quantized per slot;
    /// the f32 golden path is therefore always rebuildable regardless of
    /// what precision a caller last asked for.
    pub fn build_fused_tables_with(&self, precision: TablePrecision) -> FusedTables {
        let e = self.cfg.embed_dim;
        let l0 = &self.layers[0];
        let h0 = l0.out_dim;
        let slots = self
            .embeddings
            .iter()
            .enumerate()
            .map(|(s, emb)| {
                let mut table = vec![0.0f32; emb.rows * h0];
                for tok in 0..emb.rows {
                    let erow = emb.row(tok);
                    for k in 0..h0 {
                        table[tok * h0 + k] = l0.group_dot(k, s * e, erow);
                    }
                }
                quantize_slot(table, emb.rows, h0, precision)
            })
            .collect();
        FusedTables { slots, h0, embed_dim: e, precision }
    }

    /// [`Self::forward_column_into`] through precomputed token tables: the
    /// embedding gather and the first-layer GEMM are replaced by summing
    /// `nslots` cached hidden-dim vectors onto the bias, in ascending slot
    /// order — at [`TablePrecision::F32`] bitwise identical to the grouped
    /// non-fused path (the cached vectors ARE the grouped kernel's
    /// per-group scalars; see [`FusedTables`]). Quantized tables keep the
    /// same summation order via dequantize-on-accumulate, so only the
    /// added values change, never the order. `tables` must have been built
    /// from this model's current parameters.
    pub fn forward_column_fused(
        &self,
        tables: &FusedTables,
        scratch: &mut InferScratch,
        inputs: &[usize],
        batch: usize,
        col: usize,
        out: &mut Vec<f32>,
    ) {
        let n = self.ncols();
        assert_eq!(inputs.len(), batch * n);
        debug_assert_eq!(tables.slots.len(), n, "tables built for a different model");
        let nlayers = self.layers.len();
        scratch.ensure_layers(nlayers);
        let bufs = &mut scratch.bufs;
        let h0 = tables.h0;
        let bias = &self.layers[0].b;
        {
            let buf = &mut bufs[1];
            buf.resize(batch * h0, 0.0);
            for b in 0..batch {
                let y = &mut buf[b * h0..(b + 1) * h0];
                y.copy_from_slice(bias);
                for (s, table) in tables.slots.iter().enumerate() {
                    let tok = inputs[b * n + s];
                    table.accumulate_row(tok, h0, y);
                }
            }
        }
        self.finish_forward_column(bufs, batch, col, out);
    }

    /// Shared inference tail: `bufs[1]` holds the first layer's
    /// pre-activations; apply its ReLU, run the remaining hidden layers,
    /// and produce column `col`'s logits. (`skip_from[0]` is always false —
    /// the input layer has no residual — so `bufs[0]` is never read and the
    /// fused path may leave it stale.)
    fn finish_forward_column(
        &self,
        bufs: &mut [Vec<f32>],
        batch: usize,
        col: usize,
        out: &mut Vec<f32>,
    ) {
        let nlayers = self.layers.len();
        debug_assert!(!self.skip_from[0]);
        // Degree filter: column `col`'s logits depend only on hidden units
        // with degree ≤ col (the head mask zeroes the rest, and the
        // hidden-hidden masks never feed a lower degree from a higher one).
        // Degrees are cyclic (`(k % max_deg) + 1`), so the live units are
        // the first `min(col, max_deg)` positions of every max_deg-block —
        // a strided-runs GEMM computes just those and zeroes the rest.
        // Skipped positions stay finite (zero, or the residual input) and
        // meet only exactly-0.0 masked weights downstream, so the computed
        // bits are identical to the full forward.
        let n = self.ncols();
        let max_deg = n.saturating_sub(1).max(1);
        let keep = if n == 1 { 0 } else { col.min(max_deg) };
        for l in 0..nlayers - 1 {
            if l > 0 {
                let (head, tail) = bufs.split_at_mut(l + 1);
                if keep < max_deg {
                    self.layers[l].forward_strided_runs_no_cache(
                        &head[l],
                        batch,
                        max_deg,
                        keep,
                        &mut tail[0],
                    );
                } else {
                    self.layers[l].forward_no_cache(&head[l], batch, &mut tail[0]);
                }
            }
            let (head, tail) = bufs.split_at_mut(l + 1);
            let x = &head[l];
            let y = &mut tail[0];
            Relu::forward_no_cache(y);
            if self.skip_from[l] {
                for (yi, xi) in y.iter_mut().zip(x.iter()) {
                    *yi += xi;
                }
            }
        }
        let hlast = &bufs[nlayers - 1];
        self.layers[nlayers - 1].forward_rows_no_cache(hlast, batch, self.logit_range(col), out);
    }

    /// Softmax over a `batch × width` logits buffer (as produced by
    /// [`Self::forward_column`]) for batch row `b`, written into `probs`.
    pub fn row_softmax(&self, logits: &[f32], b: usize, width: usize, probs: &mut Vec<f32>) {
        let seg = &logits[b * width..(b + 1) * width];
        probs.clear();
        probs.reserve(width);
        let max = seg.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0f32;
        for &l in seg {
            let p = (l - max).exp();
            total += p;
            probs.push(p);
        }
        let inv = 1.0 / total;
        for p in probs.iter_mut() {
            *p *= inv;
        }
    }

    /// Softmax of column `col`'s logits for batch row `b` of `logits`,
    /// written into `probs`.
    pub fn column_softmax(&self, logits: &[f32], b: usize, col: usize, probs: &mut Vec<f32>) {
        let row = &logits[b * self.total_logits..(b + 1) * self.total_logits];
        let seg = &row[self.logit_range(col)];
        probs.clear();
        probs.reserve(seg.len());
        let max = seg.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0f32;
        for &l in seg {
            let p = (l - max).exp();
            total += p;
            probs.push(p);
        }
        let inv = 1.0 / total;
        for p in probs.iter_mut() {
            *p *= inv;
        }
    }

    /// One training step: forward with cache, per-column softmax
    /// cross-entropy against `targets`, backward, gradients accumulated
    /// (caller runs the optimiser). Returns the mean per-tuple negative
    /// log-likelihood (Eq. 3, in nats).
    pub fn train_batch(&mut self, inputs: &[usize], targets: &[usize], batch: usize) -> f32 {
        let n = self.ncols();
        assert_eq!(targets.len(), batch * n);
        let mut logits = Vec::new();
        self.forward(inputs, batch, true, &mut logits);

        // dL/dlogits and loss
        let mut dlogits = vec![0.0f32; logits.len()];
        let mut loss = 0.0f64;
        let scale = 1.0 / batch as f32;
        let mut probs = Vec::new();
        for b in 0..batch {
            for col in 0..n {
                self.column_softmax(&logits, b, col, &mut probs);
                let target = targets[b * n + col];
                debug_assert!(target < self.cfg.domain_sizes[col]);
                loss -= (probs[target].max(1e-30) as f64).ln();
                let base = b * self.total_logits + self.logit_offsets[col];
                for (j, &p) in probs.iter().enumerate() {
                    dlogits[base + j] = (p - if j == target { 1.0 } else { 0.0 }) * scale;
                }
            }
        }

        self.backward(&dlogits, batch);
        (loss / batch as f64) as f32
    }

    /// Data-parallel training step. The mini-batch is split into fixed
    /// [`TRAIN_SHARD_ROWS`]-row shards; each shard runs forward/backward
    /// into its own gradient buffers ([`TrainScratch`]), shards are dealt
    /// round-robin to `threads` scoped workers, and shard gradients are
    /// reduced into the model's accumulators in ascending shard order.
    ///
    /// Determinism contract (mirrors `estimate_batch_parallel` on the
    /// inference side): the shard decomposition and the reduction order
    /// depend only on the batch size, so the accumulated gradient — and
    /// therefore any model trained through this path — is bitwise
    /// identical for every `threads` value, including 1. Returns the mean
    /// per-tuple negative log-likelihood (Eq. 3, nats), reduced in the
    /// same fixed order.
    pub fn train_batch_sharded(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        threads: usize,
    ) -> f32 {
        let n = self.ncols();
        assert!(batch > 0, "empty training batch");
        assert_eq!(inputs.len(), batch * n);
        assert_eq!(targets.len(), batch * n);
        let nshards = batch.div_ceil(TRAIN_SHARD_ROWS);
        let mut pool = std::mem::take(&mut self.train_pool);
        if pool.len() < nshards {
            pool.resize(nshards, TrainScratch::default());
        }
        let inv_batch = 1.0 / batch as f32;
        let workers = threads.clamp(1, nshards);
        {
            let net = &*self;
            let run_shard = |s: usize, scratch: &mut TrainScratch| {
                let r0 = s * TRAIN_SHARD_ROWS;
                let rows = (batch - r0).min(TRAIN_SHARD_ROWS);
                net.train_shard(
                    scratch,
                    &inputs[r0 * n..(r0 + rows) * n],
                    &targets[r0 * n..(r0 + rows) * n],
                    rows,
                    inv_batch,
                );
            };
            if workers == 1 {
                for (s, scratch) in pool.iter_mut().take(nshards).enumerate() {
                    run_shard(s, scratch);
                }
            } else {
                let mut work: Vec<Vec<(usize, &mut TrainScratch)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (s, scratch) in pool.iter_mut().take(nshards).enumerate() {
                    work[s % workers].push((s, scratch));
                }
                std::thread::scope(|sc| {
                    let mut work = work.into_iter();
                    let mine = work.next().expect("workers >= 1");
                    for assigned in work {
                        let run_shard = &run_shard;
                        sc.spawn(move || {
                            for (s, scratch) in assigned {
                                run_shard(s, scratch);
                            }
                        });
                    }
                    for (s, scratch) in mine {
                        run_shard(s, scratch);
                    }
                });
            }
        }

        // fixed-order reduction: ascending shard index, so float summation
        // grouping never depends on the thread count
        let _reduce = iam_obs::span!("train.reduce");
        let mut loss = 0.0f64;
        for shard in pool.iter().take(nshards) {
            loss += shard.loss;
            for (l, layer) in self.layers.iter_mut().enumerate() {
                add_assign(&mut layer.gw, &shard.gw[l]);
                add_assign(&mut layer.gb, &shard.gb[l]);
            }
            for (c, emb) in self.embeddings.iter_mut().enumerate() {
                add_assign(&mut emb.grad, &shard.gemb[c]);
            }
        }
        // the connectivity mask is applied once to the reduced gradient
        for layer in &mut self.layers {
            if let Some(mask) = &layer.mask {
                for (g, m) in layer.gw.iter_mut().zip(mask) {
                    *g *= m;
                }
            }
        }
        self.train_pool = pool;
        (loss / batch as f64) as f32
    }

    /// One shard's forward/backward (`&self`): activations live in the
    /// shard's scratch, parameter gradients accumulate into the shard's
    /// private buffers (already scaled by `inv_batch`, the full mini-batch
    /// normaliser), and the shard's summed NLL lands in `scratch.loss`.
    /// The connectivity mask is applied after reduction, not here.
    fn train_shard(
        &self,
        scratch: &mut TrainScratch,
        inputs: &[usize],
        targets: &[usize],
        rows: usize,
        inv_batch: f32,
    ) {
        let _gemm = iam_obs::span!("train.gemm");
        scratch.ensure(self);
        let n = self.ncols();
        let e = self.cfg.embed_dim;
        let stride = n * e;
        let nlayers = self.layers.len();
        let TrainScratch { bufs, masks, grads, dy, probs, dlogits, ids, gw, gb, gemb, loss } =
            scratch;

        // embed into bufs[0]
        {
            let buf = &mut bufs[0];
            buf.resize(rows * stride, 0.0);
            for (c, emb) in self.embeddings.iter().enumerate() {
                ids.clear();
                ids.extend((0..rows).map(|b| inputs[b * n + c]));
                emb.gather(ids, buf, c * e, stride);
            }
        }

        // forward, recording activation patterns per shard; the input
        // layer uses the grouped kernel, matching the inference paths
        for l in 0..nlayers {
            let (head, tail) = bufs.split_at_mut(l + 1);
            let x = &head[l];
            let y = &mut tail[0];
            if l == 0 {
                self.layers[0].forward_grouped_no_cache(x, rows, e, y);
            } else {
                self.layers[l].forward_no_cache(x, rows, y);
            }
            if l + 1 < nlayers {
                Relu::forward_masked(y, &mut masks[l]);
                if self.skip_from[l] {
                    for (yi, xi) in y.iter_mut().zip(x.iter()) {
                        *yi += xi;
                    }
                }
            }
        }

        // per-column softmax cross-entropy: loss and dL/dlogits
        let logits = &bufs[nlayers];
        dlogits.resize(logits.len(), 0.0);
        let mut nll = 0.0f64;
        for b in 0..rows {
            for col in 0..n {
                self.column_softmax(logits, b, col, probs);
                let target = targets[b * n + col];
                debug_assert!(target < self.cfg.domain_sizes[col]);
                nll -= (probs[target].max(1e-30) as f64).ln();
                let base = b * self.total_logits + self.logit_offsets[col];
                for (j, &p) in probs.iter().enumerate() {
                    dlogits[base + j] = (p - if j == target { 1.0 } else { 0.0 }) * inv_batch;
                }
            }
        }
        *loss = nll;

        // backward through the layers into the shard's gradient buffers
        grads[nlayers].clear();
        grads[nlayers].extend_from_slice(dlogits);
        for l in (0..nlayers).rev() {
            let (gin, gout) = {
                let (head, tail) = grads.split_at_mut(l + 1);
                (&mut head[l], &tail[0])
            };
            dy.clear();
            dy.extend_from_slice(gout);
            if l + 1 < nlayers {
                Relu::backward_masked(dy, &masks[l]);
            }
            self.layers[l].backward_into(&bufs[l], dy, rows, &mut gw[l], &mut gb[l], gin);
            if l + 1 < nlayers && self.skip_from[l] {
                for (gi, go) in gin.iter_mut().zip(gout.iter()) {
                    *gi += go;
                }
            }
        }

        // scatter into the shard's embedding-gradient buffers
        let dx0 = &grads[0];
        debug_assert_eq!(dx0.len(), rows * stride);
        for (c, emb) in self.embeddings.iter().enumerate() {
            ids.clear();
            ids.extend((0..rows).map(|b| inputs[b * n + c]));
            emb.scatter_grad(ids, dx0, c * e, stride, &mut gemb[c]);
        }
    }

    fn backward(&mut self, dlogits: &[f32], batch: usize) {
        let nlayers = self.layers.len();
        self.grads[nlayers].clear();
        self.grads[nlayers].extend_from_slice(dlogits);
        for l in (0..nlayers).rev() {
            let (gin, gout) = {
                let (head, tail) = self.grads.split_at_mut(l + 1);
                (&mut head[l], &tail[0])
            };
            // undo post-activation residual: skip contributes identity grad
            let mut dy = gout.clone();
            if l + 1 < nlayers {
                self.relus[l].backward(&mut dy);
            }
            self.layers[l].backward(&dy, gin);
            if l + 1 < nlayers && self.skip_from[l] {
                // the skip path: d(input) += d(output)
                for (gi, go) in gin.iter_mut().zip(gout.iter()) {
                    *gi += go;
                }
            }
        }
        // scatter into embedding tables
        let n = self.ncols();
        let e = self.cfg.embed_dim;
        let stride = n * e;
        let dx0 = &self.grads[0];
        debug_assert_eq!(dx0.len(), batch * stride);
        for (col, emb) in self.embeddings.iter_mut().enumerate() {
            emb.backward_from(dx0, col * e, stride);
        }
    }

    /// Stored size in bytes (all dense parameters at f32).
    pub fn size_bytes(&mut self) -> usize {
        self.num_params() * std::mem::size_of::<f32>()
    }

    /// The parameter count [`MadeNet::new`] would produce for this shape,
    /// computed **without allocating anything** and with checked
    /// arithmetic (`None` on overflow). Deserialisers use it to reject an
    /// implausible snapshot config *before* network construction commits
    /// the memory (a hostile few-hundred-byte header must not be able to
    /// request a terabyte-scale allocation).
    pub fn param_count_for(domains: &[usize], hidden: &[usize], embed_dim: usize) -> Option<u64> {
        if domains.is_empty() || hidden.is_empty() {
            return None;
        }
        let e = embed_dim as u64;
        let mut total: u64 = 0;
        // embeddings: one (domain + 1 MASK row) × e table per column
        for &d in domains {
            total = total.checked_add((d as u64).checked_add(1)?.checked_mul(e)?)?;
        }
        // input layer: (n·e) × h0 weights + h0 bias
        let in_dim = (domains.len() as u64).checked_mul(e)?;
        let mut prev = in_dim;
        for &h in hidden {
            let h = h as u64;
            total = total.checked_add(prev.checked_mul(h)?.checked_add(h)?)?;
            prev = h;
        }
        // output layer: h_last × Σ|A_i| weights + Σ|A_i| bias
        let logits = domains.iter().try_fold(0u64, |a, &d| a.checked_add(d as u64))?;
        total = total.checked_add(prev.checked_mul(logits)?.checked_add(logits)?)?;
        Some(total)
    }
}

impl Parameters for MadeNet {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for e in &mut self.embeddings {
            e.visit_params(f);
        }
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::{Adam, AdamConfig};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn tiny_net(domains: Vec<usize>, seed: u64) -> MadeNet {
        MadeNet::new(MadeConfig {
            domain_sizes: domains,
            hidden: vec![32, 32],
            embed_dim: 8,
            residual: true,
            seed,
        })
    }

    #[test]
    fn simd_accumulate_row_matches_scalar_bitwise() {
        // the AVX2 accumulate must be invisible at every precision and for
        // ragged widths (full 8-blocks plus scalar tails)
        for h0 in [8usize, 16, 23, 48, 51] {
            let rows = 5;
            let table: Vec<f32> = (0..rows * h0)
                .map(|i| ((i * 2654435761usize) % 997) as f32 * 0.0041 - 2.0)
                .collect();
            for precision in [TablePrecision::F32, TablePrecision::F16, TablePrecision::Int8] {
                let t = quantize_slot(table.clone(), rows, h0, precision);
                for tok in 0..rows {
                    let mut a: Vec<f32> = (0..h0).map(|k| (k as f32) * 0.37 - 1.0).collect();
                    let mut b = a.clone();
                    t.accumulate_row(tok, h0, &mut a);
                    t.accumulate_row_scalar(tok, h0, &mut b);
                    for (k, (x, y)) in a.iter().zip(&b).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{} h0={h0} tok={tok} k={k} drifted",
                            precision.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn autoregressive_property_holds() {
        // logits of column i must not change when inputs at columns >= i change
        let mut net = tiny_net(vec![4, 3, 5], 1);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        net.forward(&[2, 1, 4], 1, false, &mut out_a);
        net.forward(&[2, 1, 0], 1, false, &mut out_b); // change col 2
        assert_eq!(&out_a[net.logit_range(0)], &out_b[net.logit_range(0)]);
        assert_eq!(&out_a[net.logit_range(1)], &out_b[net.logit_range(1)]);

        net.forward(&[2, 2, 4], 1, false, &mut out_b); // change col 1
        assert_eq!(&out_a[net.logit_range(0)], &out_b[net.logit_range(0)]);
        // col 2 SHOULD see col 1
        let r2 = net.logit_range(2);
        assert_ne!(&out_a[r2.clone()], &out_b[r2]);
    }

    #[test]
    fn first_column_is_a_pure_marginal() {
        let mut net = tiny_net(vec![4, 3], 2);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        net.forward(&[0, 0], 1, false, &mut out_a);
        net.forward(&[3, 2], 1, false, &mut out_b);
        assert_eq!(&out_a[net.logit_range(0)], &out_b[net.logit_range(0)]);
    }

    #[test]
    fn column_softmax_normalises() {
        let mut net = tiny_net(vec![4, 3], 3);
        let mut out = Vec::new();
        net.forward(&[1, 1, 2, 0], 2, false, &mut out);
        let mut p = Vec::new();
        for b in 0..2 {
            for col in 0..2 {
                net.column_softmax(&out, b, col, &mut p);
                assert_eq!(p.len(), net.domain_size(col));
                assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
                assert!(p.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn learns_a_dependent_joint_distribution() {
        // P(a) uniform over {0,1}; b = a with prob 0.9 else 1-a
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4000;
        let mut data = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let a = rng.random_range(0..2usize);
            let b = if rng.random::<f64>() < 0.9 { a } else { 1 - a };
            data.push(a);
            data.push(b);
        }
        let mut net = tiny_net(vec![2, 2], 4);
        let mut opt = Adam::new(AdamConfig { lr: 5e-3, ..Default::default() });
        let bs = 128;
        for epoch in 0..30 {
            let _ = epoch;
            for chunk in data.chunks_exact(bs * 2) {
                net.train_batch(chunk, chunk, bs);
                opt.step(&mut net);
            }
        }
        // check P(b | a=0) ≈ (0.9, 0.1)
        let mut logits = Vec::new();
        net.forward(&[0, net.mask_token(1)], 1, false, &mut logits);
        let mut p = Vec::new();
        net.column_softmax(&logits, 0, 1, &mut p);
        assert!((p[0] - 0.9).abs() < 0.05, "P(b=0|a=0) = {}", p[0]);
        // and P(a) ≈ uniform
        net.column_softmax(&logits, 0, 0, &mut p);
        assert!((p[0] - 0.5).abs() < 0.05, "P(a=0) = {}", p[0]);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 2000;
        let mut data = Vec::with_capacity(n * 3);
        for _ in 0..n {
            let a = rng.random_range(0..5usize);
            data.push(a);
            data.push((a * 2) % 7); // deterministic function of a
            data.push(rng.random_range(0..3usize));
        }
        let mut net = tiny_net(vec![5, 7, 3], 5);
        let mut opt = Adam::new(AdamConfig::default());
        let bs = 100;
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            for chunk in data.chunks_exact(bs * 3) {
                last = net.train_batch(chunk, chunk, bs);
                first.get_or_insert(last);
                opt.step(&mut net);
            }
        }
        let first = first.unwrap();
        assert!(last.is_finite() && first.is_finite());
        // the b column is a deterministic function of a: plenty of loss to shed
        assert!(last < first - 1.0, "loss should fall materially: {first} -> {last}");
    }

    #[test]
    fn wildcard_mask_token_feeds_distinct_embedding() {
        let mut net = tiny_net(vec![4, 3], 6);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        // same prefix, col-0 value vs MASK: col-1 conditionals must differ
        net.forward(&[1, 0], 1, false, &mut out_a);
        net.forward(&[net.mask_token(0), 0], 1, false, &mut out_b);
        let r1 = net.logit_range(1);
        assert_ne!(&out_a[r1.clone()], &out_b[r1]);
    }

    #[test]
    fn forward_column_matches_full_forward() {
        let mut net = tiny_net(vec![4, 3, 5], 11);
        let inputs = [1usize, 2, 0, 3, 1, 4];
        let mut full = Vec::new();
        net.forward(&inputs, 2, false, &mut full);
        for col in 0..3 {
            let mut partial = Vec::new();
            net.forward_column(&inputs, 2, col, &mut partial);
            let width = net.domain_size(col);
            for b in 0..2 {
                let want = &full[b * net.total_logits() + net.logit_range(col).start..][..width];
                let got = &partial[b * width..(b + 1) * width];
                assert_eq!(want, got, "col {col} batch {b}");
            }
            // softmaxes agree too
            let mut p1 = Vec::new();
            let mut p2 = Vec::new();
            net.column_softmax(&full, 1, col, &mut p1);
            net.row_softmax(&partial, 1, width, &mut p2);
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn immutable_forward_column_matches_mut_path() {
        let mut net = tiny_net(vec![4, 3, 5], 12);
        let inputs = [1usize, 2, 0, 3, 1, 4];
        for col in 0..3 {
            let mut via_mut = Vec::new();
            net.forward_column(&inputs, 2, col, &mut via_mut);
            let mut scratch = InferScratch::new();
            let mut via_ref = Vec::new();
            net.forward_column_into(&mut scratch, &inputs, 2, col, &mut via_ref);
            assert_eq!(via_mut, via_ref, "col {col}");
        }
    }

    #[test]
    fn fused_forward_matches_unfused_bitwise() {
        let mut net = tiny_net(vec![4, 3, 5], 19);
        // make the weights non-trivial: a few training steps
        let data: Vec<usize> = (0..60).map(|i| [i % 4, i % 3, i % 5][i % 3]).collect();
        let mut opt = Adam::new(AdamConfig::default());
        for chunk in data.chunks_exact(30) {
            net.train_batch(chunk, chunk, 10);
            opt.step(&mut net);
        }
        let tables = net.build_fused_tables();
        assert!(tables.size_bytes() > 0);
        // inputs covering sampled values and MASK tokens
        let inputs = [
            1usize,
            2,
            0,
            net.mask_token(0),
            net.mask_token(1),
            net.mask_token(2),
            3,
            net.mask_token(1),
            4,
        ];
        let mut scratch = InferScratch::new();
        for col in 0..3 {
            let mut plain = Vec::new();
            net.forward_column_into(&mut scratch, &inputs, 3, col, &mut plain);
            let mut fused = Vec::new();
            net.forward_column_fused(&tables, &mut scratch, &inputs, 3, col, &mut fused);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&plain), bits(&fused), "col {col}");
        }
    }

    #[test]
    fn quantized_tables_approximate_f32_and_shrink() {
        let mut net = tiny_net(vec![6, 4, 5], 29);
        let data: Vec<usize> = (0..90).map(|i| [i % 6, i % 4, i % 5][i % 3]).collect();
        let mut opt = Adam::new(AdamConfig::default());
        for chunk in data.chunks_exact(30) {
            net.train_batch(chunk, chunk, 10);
            opt.step(&mut net);
        }
        let f32t = net.build_fused_tables_with(TablePrecision::F32);
        let f16t = net.build_fused_tables_with(TablePrecision::F16);
        let i8t = net.build_fused_tables_with(TablePrecision::Int8);
        assert_eq!(f32t.precision(), TablePrecision::F32);
        assert_eq!(f16t.precision(), TablePrecision::F16);
        assert_eq!(i8t.precision(), TablePrecision::Int8);
        // quantized storage must actually shrink: f16 is half, int8 a
        // quarter plus per-row metadata
        assert!(f16t.size_bytes() < f32t.size_bytes());
        assert!(i8t.size_bytes() < f16t.size_bytes());
        let inputs = [1usize, 2, 0, net.mask_token(0), net.mask_token(1), net.mask_token(2)];
        let mut scratch = InferScratch::new();
        for col in 0..3 {
            let mut want = Vec::new();
            net.forward_column_fused(&f32t, &mut scratch, &inputs, 2, col, &mut want);
            for (tables, tol) in [(&f16t, 0.05f32), (&i8t, 0.1f32)] {
                let mut got = Vec::new();
                net.forward_column_fused(tables, &mut scratch, &inputs, 2, col, &mut got);
                assert_eq!(want.len(), got.len());
                for (w, g) in want.iter().zip(&got) {
                    assert!(
                        (w - g).abs() <= tol * w.abs().max(1.0),
                        "{:?} col {col}: {w} vs {g}",
                        tables.precision()
                    );
                }
            }
        }
    }

    #[test]
    fn int8_degenerate_row_dequantizes_exactly() {
        // a constant token row has max == min: scale must collapse to 0
        // and dequantization must reproduce the constant exactly
        let table = vec![0.25f32, 0.25, 0.25, 0.25, 1.0, -2.0, 3.0, 0.5];
        let slot = quantize_slot(table, 2, 4, TablePrecision::Int8);
        let mut y = vec![0.0f32; 4];
        slot.accumulate_row(0, 4, &mut y);
        assert_eq!(y, vec![0.25f32; 4]);
        // the non-degenerate row stays within half a quantization step
        let mut y1 = vec![0.0f32; 4];
        slot.accumulate_row(1, 4, &mut y1);
        let step = (3.0f32 - (-2.0)) / 255.0;
        for (got, want) in y1.iter().zip([1.0f32, -2.0, 3.0, 0.5]) {
            assert!((got - want).abs() <= 0.5 * step + 1e-6, "{got} vs {want}");
        }
        // row extrema are exact by construction (q=0 and q=255)
        assert_eq!(y1[1], -2.0);
    }

    #[test]
    fn f16_truncation_roundtrips_through_top_bits() {
        for v in [0.0f32, -0.0, 1.0, -1.5, 3.25e-20, -7.5e18, f32::MIN_POSITIVE] {
            let t = f16_bits_to_f32(f32_to_f16_bits(v));
            // truncation keeps sign and exponent; relative error < 2^-7
            assert!(t == 0.0 || (v - t).abs() / v.abs() < 1.0 / 128.0, "{v} -> {t}");
            assert_eq!(v.is_sign_negative(), t.is_sign_negative());
        }
    }

    #[test]
    fn fused_tables_track_parameter_updates() {
        let mut net = tiny_net(vec![3, 3], 23);
        let stale = net.build_fused_tables();
        let data = [0usize, 1, 2, 0, 1, 2];
        let mut opt = Adam::new(AdamConfig::default());
        net.train_batch(&data, &data, 3);
        opt.step(&mut net);
        let fresh = net.build_fused_tables();
        let inputs = [net.mask_token(0), net.mask_token(1)];
        let mut scratch = InferScratch::new();
        let mut want = Vec::new();
        net.forward_column_into(&mut scratch, &inputs, 1, 1, &mut want);
        let mut got = Vec::new();
        net.forward_column_fused(&fresh, &mut scratch, &inputs, 1, 1, &mut got);
        assert_eq!(want, got);
        let mut old = Vec::new();
        net.forward_column_fused(&stale, &mut scratch, &inputs, 1, 1, &mut old);
        assert_ne!(want, old, "stale tables must not match the updated model");
    }

    #[test]
    fn shared_net_forwards_concurrently() {
        let net = tiny_net(vec![4, 3, 5], 13);
        let inputs = [1usize, 2, 0, 3, 1, 4];
        let mut want = Vec::new();
        net.forward_column_into(&mut InferScratch::new(), &inputs, 2, 2, &mut want);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (net, want, inputs) = (&net, &want, &inputs);
                s.spawn(move || {
                    let mut scratch = InferScratch::new();
                    let mut out = Vec::new();
                    for _ in 0..50 {
                        net.forward_column_into(&mut scratch, inputs, 2, 2, &mut out);
                        assert_eq!(&out, want);
                    }
                });
            }
        });
    }

    /// Gradients (post-`train_batch_sharded`, pre-optimiser) as bit
    /// patterns, for exact comparisons.
    fn grad_bits(net: &mut MadeNet) -> Vec<u32> {
        let mut bits = Vec::new();
        net.visit_params(&mut |_, g| bits.extend(g.iter().map(|v| v.to_bits())));
        bits
    }

    #[test]
    fn sharded_gradients_are_thread_count_invariant() {
        // 150 rows -> 3 shards (64/64/22); the shard decomposition and
        // reduction order are fixed, so every thread count must produce
        // bitwise-identical gradients and loss
        let mut rng = StdRng::seed_from_u64(21);
        let batch = 150;
        let data: Vec<usize> = (0..batch * 3).map(|_| rng.random_range(0..3usize)).collect();
        let mut reference: Option<(Vec<u32>, u32)> = None;
        for threads in [1usize, 2, 4, 7] {
            let mut net = tiny_net(vec![3, 3, 3], 17);
            let loss = net.train_batch_sharded(&data, &data, batch, threads);
            let got = (grad_bits(&mut net), loss.to_bits());
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(want, &got, "threads={threads}"),
            }
        }
    }

    #[test]
    fn sharded_training_learns_like_the_sequential_path() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 2000;
        let mut data = Vec::with_capacity(n * 3);
        for _ in 0..n {
            let a = rng.random_range(0..5usize);
            data.push(a);
            data.push((a * 2) % 7);
            data.push(rng.random_range(0..3usize));
        }
        let mut net = tiny_net(vec![5, 7, 3], 5);
        let mut opt = Adam::new(AdamConfig::default());
        let bs = 100;
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            for chunk in data.chunks_exact(bs * 3) {
                last = net.train_batch_sharded(chunk, chunk, bs, 2);
                first.get_or_insert(last);
                opt.step(&mut net);
            }
        }
        let first = first.unwrap();
        assert!(last.is_finite() && first.is_finite());
        assert!(last < first - 1.0, "loss should fall materially: {first} -> {last}");
    }

    #[test]
    fn param_count_and_size() {
        let mut net = tiny_net(vec![4, 3], 8);
        let n_params = net.num_params();
        // embeddings: (4+1)*8 + (3+1)*8 = 72; layers exist too
        assert!(n_params > 72);
        assert_eq!(net.size_bytes(), n_params * 4);
    }

    #[test]
    fn param_count_for_matches_construction() {
        for (domains, hidden, embed) in [
            (vec![4usize, 3], vec![16usize, 16], 8usize),
            (vec![7], vec![32], 4),
            (vec![2, 9, 5, 11], vec![24, 12, 24], 6),
        ] {
            let mut net = MadeNet::new(MadeConfig {
                domain_sizes: domains.clone(),
                hidden: hidden.clone(),
                embed_dim: embed,
                residual: true,
                seed: 3,
            });
            assert_eq!(
                MadeNet::param_count_for(&domains, &hidden, embed),
                Some(net.num_params() as u64),
                "shape {domains:?} {hidden:?} e={embed}"
            );
        }
        // degenerate and overflowing shapes answer None instead of lying
        assert_eq!(MadeNet::param_count_for(&[], &[8], 4), None);
        assert_eq!(MadeNet::param_count_for(&[4], &[], 4), None);
        assert_eq!(MadeNet::param_count_for(&[usize::MAX, usize::MAX], &[8], usize::MAX), None);
    }

    #[test]
    fn single_column_model_learns_marginal() {
        let mut data = Vec::new();
        for _ in 0..300 {
            data.push(0usize);
            data.push(0);
            data.push(1);
        } // P(0)=2/3
        let mut net = tiny_net(vec![2], 10);
        let mut opt = Adam::new(AdamConfig { lr: 1e-2, ..Default::default() });
        for _ in 0..40 {
            for chunk in data.chunks_exact(90) {
                net.train_batch(chunk, chunk, 90);
                opt.step(&mut net);
            }
        }
        let mut logits = Vec::new();
        net.forward(&[net.mask_token(0)], 1, false, &mut logits);
        let mut p = Vec::new();
        net.column_softmax(&logits, 0, 0, &mut p);
        assert!((p[0] - 2.0 / 3.0).abs() < 0.05, "P(0) = {}", p[0]);
    }
}
