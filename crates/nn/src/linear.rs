//! (Optionally masked) affine layers with manual backprop.
//!
//! The forward/backward kernels are register-blocked: dot products are
//! split over `LANES` independent partial accumulators (making the
//! float-summation order explicit so the compiler can vectorise without
//! reassociating), and the forward micro-kernel processes `ROW_BLOCK`
//! batch rows per weight-row load so `w` rows stay in registers/L1. The
//! per-`(batch, out)` result depends only on the weight row and the input
//! row — never on which batch block or output range it was computed in —
//! so full forwards, row-range forwards, and sharded training forwards
//! agree bitwise.

use crate::init::Initializer;

/// Independent partial sums per dot product (one SIMD lane each).
const LANES: usize = 8;

/// Batch rows processed per forward micro-kernel invocation.
const ROW_BLOCK: usize = 4;

/// Fixed tree reduction of the lane accumulators; every kernel uses this
/// same order so identical `(w, x)` pairs give identical results.
#[inline(always)]
fn reduce_lanes(acc: [f32; LANES]) -> f32 {
    let mut s = acc;
    let mut width = LANES / 2;
    while width > 0 {
        for l in 0..width {
            s[l] += s[l + width];
        }
        width /= 2;
    }
    s[0]
}

/// Lane-blocked dot product. The tail reuses the lane accumulators (lane
/// `l` takes tail element `l`) so the result is a pure function of the
/// element sequence, not of the caller. Dispatches to the AVX2 variant
/// when the CPU supports it — bitwise identical by construction (see
/// [`simd`]).
#[inline(always)]
pub(crate) fn dot_lanes(w: &[f32], x: &[f32]) -> f32 {
    debug_assert_eq!(w.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    if simd::enabled() {
        // SAFETY: guarded by runtime AVX2 detection.
        return unsafe { simd::dot_lanes_avx2(w, x) };
    }
    dot_lanes_scalar(w, x)
}

/// Portable scalar body of [`dot_lanes`]; also the reference the SIMD
/// variant is tested against.
#[inline(always)]
fn dot_lanes_scalar(w: &[f32], x: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut i = 0;
    while i + LANES <= w.len() {
        for l in 0..LANES {
            acc[l] += w[i + l] * x[i + l];
        }
        i += LANES;
    }
    for (l, (wi, xi)) in w[i..].iter().zip(&x[i..]).enumerate() {
        acc[l] += wi * xi;
    }
    reduce_lanes(acc)
}

/// Four dot products against one weight row, lane-for-lane identical to
/// four [`dot_lanes`] calls — the row block only buys cache reuse.
#[inline(always)]
fn dot4_lanes(w: &[f32], x: [&[f32]; ROW_BLOCK]) -> [f32; ROW_BLOCK] {
    #[cfg(target_arch = "x86_64")]
    if simd::enabled() {
        // SAFETY: guarded by runtime AVX2 detection.
        return unsafe { simd::dot4_lanes_avx2(w, x) };
    }
    dot4_lanes_scalar(w, x)
}

/// Portable scalar body of [`dot4_lanes`].
#[inline(always)]
fn dot4_lanes_scalar(w: &[f32], x: [&[f32]; ROW_BLOCK]) -> [f32; ROW_BLOCK] {
    let mut acc = [[0.0f32; LANES]; ROW_BLOCK];
    let mut i = 0;
    while i + LANES <= w.len() {
        for r in 0..ROW_BLOCK {
            for l in 0..LANES {
                acc[r][l] += w[i + l] * x[r][i + l];
            }
        }
        i += LANES;
    }
    for (l, wi) in w[i..].iter().enumerate() {
        for r in 0..ROW_BLOCK {
            acc[r][l] += wi * x[r][i + l];
        }
    }
    let mut out = [0.0f32; ROW_BLOCK];
    for r in 0..ROW_BLOCK {
        out[r] = reduce_lanes(acc[r]);
    }
    out
}

/// Runtime-dispatched AVX2 variants of the lane kernels.
///
/// `LANES == 8` is exactly one `__m256`, and the scalar kernels already
/// keep eight *independent* partial sums with `acc[l] += w[i+l] * x[i+l]`
/// per step. The packed form performs the same per-lane IEEE single mul
/// and add in the same sequence — no reassociation, no FMA contraction
/// (`_mm256_mul_ps` + `_mm256_add_ps` round each op exactly like the
/// scalar code) — so results are bitwise identical to the scalar kernels,
/// which the `simd_kernels_match_scalar_bitwise` test pins. The tail and
/// the final tree reduction run through the identical scalar code.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::{reduce_lanes, LANES, ROW_BLOCK};
    use std::arch::x86_64::*;

    /// Whether the AVX2 paths may run (cached by the detection macro).
    #[inline(always)]
    pub(super) fn enabled() -> bool {
        std::is_x86_feature_detected!("avx2")
    }

    /// AVX2 [`super::dot_lanes`]. Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_lanes_avx2(w: &[f32], x: &[f32]) -> f32 {
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= w.len() {
            // SAFETY: `i + LANES <= len` bounds both 8-float loads.
            let wv = _mm256_loadu_ps(w.as_ptr().add(i));
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, xv));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (l, (wi, xi)) in w[i..].iter().zip(&x[i..]).enumerate() {
            lanes[l] += wi * xi;
        }
        reduce_lanes(lanes)
    }

    /// AVX2 [`super::dot4_lanes`]. Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot4_lanes_avx2(w: &[f32], x: [&[f32]; ROW_BLOCK]) -> [f32; ROW_BLOCK] {
        let mut acc = [_mm256_setzero_ps(); ROW_BLOCK];
        let mut i = 0;
        while i + LANES <= w.len() {
            // SAFETY: `i + LANES <= len` bounds every 8-float load (the
            // four batch rows share the weight row's length).
            let wv = _mm256_loadu_ps(w.as_ptr().add(i));
            for r in 0..ROW_BLOCK {
                let xv = _mm256_loadu_ps(x[r].as_ptr().add(i));
                acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(wv, xv));
            }
            i += LANES;
        }
        let mut lanes = [[0.0f32; LANES]; ROW_BLOCK];
        for r in 0..ROW_BLOCK {
            _mm256_storeu_ps(lanes[r].as_mut_ptr(), acc[r]);
        }
        for (l, wi) in w[i..].iter().enumerate() {
            for r in 0..ROW_BLOCK {
                lanes[r][l] += wi * x[r][i + l];
            }
        }
        let mut out = [0.0f32; ROW_BLOCK];
        for r in 0..ROW_BLOCK {
            out[r] = reduce_lanes(lanes[r]);
        }
        out
    }
}

/// Blocked `out[b][oj] = bias[o] + w[o]·x[b]` over an output-row range.
/// `out` is `batch × rows.len()`, already sized by the caller.
fn gemm_bias_rows(
    w: &[f32],
    bias: &[f32],
    in_dim: usize,
    rows: std::ops::Range<usize>,
    x: &[f32],
    batch: usize,
    out: &mut [f32],
) {
    let width = rows.len();
    debug_assert_eq!(x.len(), batch * in_dim);
    debug_assert_eq!(out.len(), batch * width);
    let mut b0 = 0;
    while b0 + ROW_BLOCK <= batch {
        let xs = [
            &x[b0 * in_dim..(b0 + 1) * in_dim],
            &x[(b0 + 1) * in_dim..(b0 + 2) * in_dim],
            &x[(b0 + 2) * in_dim..(b0 + 3) * in_dim],
            &x[(b0 + 3) * in_dim..(b0 + 4) * in_dim],
        ];
        for (oj, o) in rows.clone().enumerate() {
            let d = dot4_lanes(&w[o * in_dim..(o + 1) * in_dim], xs);
            let bo = bias[o];
            for r in 0..ROW_BLOCK {
                out[(b0 + r) * width + oj] = bo + d[r];
            }
        }
        b0 += ROW_BLOCK;
    }
    for bi in b0..batch {
        let xrow = &x[bi * in_dim..(bi + 1) * in_dim];
        for (oj, o) in rows.clone().enumerate() {
            out[bi * width + oj] = bias[o] + dot_lanes(&w[o * in_dim..(o + 1) * in_dim], xrow);
        }
    }
}

/// Group-blocked `out[b][o] = bias[o] + Σ_g w[o][g·group..]·x[b][g·group..]`
/// where the input row is a concatenation of `in_dim / group` contiguous
/// groups of width `group` (the per-slot embeddings of the MADE input
/// layer). Each group's dot product is lane-reduced to a scalar first
/// ([`dot_lanes`]), then the group scalars are added to the bias in
/// ascending group order. That makes every output a fixed-group-order sum
/// of per-`(group, input-group-content)` scalars — the summation order the
/// fused token-table inference path reproduces exactly, so cached
/// `W·embed` contributions are bitwise identical to this kernel.
fn gemm_bias_grouped(
    w: &[f32],
    bias: &[f32],
    in_dim: usize,
    group: usize,
    x: &[f32],
    batch: usize,
    out: &mut [f32],
) {
    debug_assert!(group > 0 && in_dim.is_multiple_of(group), "groups must tile the input row");
    let out_dim = bias.len();
    debug_assert_eq!(x.len(), batch * in_dim);
    debug_assert_eq!(out.len(), batch * out_dim);
    let ngroups = in_dim / group;
    let mut b0 = 0;
    while b0 + ROW_BLOCK <= batch {
        let xs = [
            &x[b0 * in_dim..(b0 + 1) * in_dim],
            &x[(b0 + 1) * in_dim..(b0 + 2) * in_dim],
            &x[(b0 + 2) * in_dim..(b0 + 3) * in_dim],
            &x[(b0 + 3) * in_dim..(b0 + 4) * in_dim],
        ];
        for o in 0..out_dim {
            let wrow = &w[o * in_dim..(o + 1) * in_dim];
            let mut acc = [bias[o]; ROW_BLOCK];
            for g in 0..ngroups {
                let gr = g * group..(g + 1) * group;
                let d = dot4_lanes(
                    &wrow[gr.clone()],
                    [&xs[0][gr.clone()], &xs[1][gr.clone()], &xs[2][gr.clone()], &xs[3][gr]],
                );
                for r in 0..ROW_BLOCK {
                    acc[r] += d[r];
                }
            }
            for r in 0..ROW_BLOCK {
                out[(b0 + r) * out_dim + o] = acc[r];
            }
        }
        b0 += ROW_BLOCK;
    }
    for bi in b0..batch {
        let xrow = &x[bi * in_dim..(bi + 1) * in_dim];
        for o in 0..out_dim {
            let wrow = &w[o * in_dim..(o + 1) * in_dim];
            let mut acc = bias[o];
            for g in 0..ngroups {
                let gr = g * group..(g + 1) * group;
                acc += dot_lanes(&wrow[gr.clone()], &xrow[gr]);
            }
            out[bi * out_dim + o] = acc;
        }
    }
}

/// Backward kernel: accumulates `gw`/`gb` and adds `dL/dx` into `dx`
/// (caller zeroes `dx`). Output-row outer loop keeps one `w`/`gw` row
/// cache-hot across the whole batch, and the two separate elementwise
/// loops vectorise without reordering any accumulation: per element the
/// summation order (ascending `b` for `gw`/`gb`, ascending `o` for `dx`)
/// matches the naive kernel exactly.
#[allow(clippy::too_many_arguments)]
fn backward_kernel(
    w: &[f32],
    in_dim: usize,
    out_dim: usize,
    x: &[f32],
    dy: &[f32],
    batch: usize,
    gw: &mut [f32],
    gb: &mut [f32],
    dx: &mut [f32],
) {
    debug_assert_eq!(x.len(), batch * in_dim);
    debug_assert_eq!(dy.len(), batch * out_dim);
    debug_assert_eq!(dx.len(), batch * in_dim);
    debug_assert_eq!(gw.len(), out_dim * in_dim);
    debug_assert_eq!(gb.len(), out_dim);
    for o in 0..out_dim {
        let wrow = &w[o * in_dim..(o + 1) * in_dim];
        let gwrow = &mut gw[o * in_dim..(o + 1) * in_dim];
        for bi in 0..batch {
            let g = dy[bi * out_dim + o];
            if g == 0.0 {
                // ReLU/CE gradients are sparse; skipping zeros is exact
                continue;
            }
            gb[o] += g;
            let xrow = &x[bi * in_dim..(bi + 1) * in_dim];
            for (gw_i, xi) in gwrow.iter_mut().zip(xrow) {
                *gw_i += g * xi;
            }
            let dxrow = &mut dx[bi * in_dim..(bi + 1) * in_dim];
            for (dx_i, wi) in dxrow.iter_mut().zip(wrow) {
                *dx_i += g * wi;
            }
        }
    }
}

/// A dense affine layer `y = x Wᵀ + b`, optionally constrained by a binary
/// connectivity mask (MADE-style).
///
/// Masking is enforced by construction and by masking *gradients*: masked
/// weights start at zero and Adam updates of an always-zero gradient keep
/// them exactly zero, so the hot forward path is a plain GEMM.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Input features.
    pub in_dim: usize,
    /// Output features.
    pub out_dim: usize,
    /// Weights, row-major `out_dim × in_dim`.
    pub w: Vec<f32>,
    /// Bias, `out_dim`.
    pub b: Vec<f32>,
    /// Optional 0/1 connectivity mask, same layout as `w`.
    pub mask: Option<Vec<f32>>,
    /// Weight gradients.
    pub gw: Vec<f32>,
    /// Bias gradients.
    pub gb: Vec<f32>,
    last_input: Vec<f32>,
    last_batch: usize,
}

impl Linear {
    /// New unmasked layer with Kaiming init.
    pub fn new(in_dim: usize, out_dim: usize, init: &mut Initializer) -> Self {
        Linear {
            in_dim,
            out_dim,
            w: init.kaiming(in_dim * out_dim, in_dim),
            b: vec![0.0; out_dim],
            mask: None,
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            last_input: Vec::new(),
            last_batch: 0,
        }
    }

    /// New masked layer; `mask` is row-major `out_dim × in_dim` of 0/1.
    pub fn new_masked(
        in_dim: usize,
        out_dim: usize,
        mask: Vec<f32>,
        init: &mut Initializer,
    ) -> Self {
        assert_eq!(mask.len(), in_dim * out_dim);
        let mut layer = Self::new(in_dim, out_dim, init);
        for (w, m) in layer.w.iter_mut().zip(&mask) {
            *w *= m;
        }
        layer.mask = Some(mask);
        layer
    }

    /// Forward for a `batch × in_dim` input; writes `batch × out_dim` into
    /// `out` (resized as needed) and caches the input for backward.
    pub fn forward(&mut self, x: &[f32], batch: usize, out: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), batch * self.in_dim);
        out.resize(batch * self.out_dim, 0.0);
        self.last_input.clear();
        self.last_input.extend_from_slice(x);
        self.last_batch = batch;
        self.forward_no_cache(x, batch, out);
    }

    /// Forward without caching — for inference-only paths and for sharded
    /// training, where each shard keeps its own activation buffers.
    pub fn forward_no_cache(&self, x: &[f32], batch: usize, out: &mut Vec<f32>) {
        out.resize(batch * self.out_dim, 0.0);
        gemm_bias_rows(&self.w, &self.b, self.in_dim, 0..self.out_dim, x, batch, out);
    }

    /// Grouped forward (see `gemm_bias_grouped`): the input row is
    /// treated as `in_dim / group` contiguous groups and every output is a
    /// fixed-group-order sum of per-group scalar dots plus the bias. Used
    /// for the MADE input layer (one group per slot embedding) on *every*
    /// path — training, inference, and the fused token-table path — so the
    /// three agree bitwise. Caches the input for a backward pass.
    pub fn forward_grouped(&mut self, x: &[f32], batch: usize, group: usize, out: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), batch * self.in_dim);
        out.resize(batch * self.out_dim, 0.0);
        self.last_input.clear();
        self.last_input.extend_from_slice(x);
        self.last_batch = batch;
        self.forward_grouped_no_cache(x, batch, group, out);
    }

    /// [`Self::forward_grouped`] without the backward cache.
    pub fn forward_grouped_no_cache(
        &self,
        x: &[f32],
        batch: usize,
        group: usize,
        out: &mut Vec<f32>,
    ) {
        out.resize(batch * self.out_dim, 0.0);
        gemm_bias_grouped(&self.w, &self.b, self.in_dim, group, x, batch, out);
    }

    /// One group's scalar contribution to output unit `o`: the lane-reduced
    /// dot of weight row `o`'s `[offset, offset + x.len())` block against
    /// `x`. This is exactly the scalar `gemm_bias_grouped` adds for that
    /// group, so values cached from here (the fused token tables) replay
    /// the grouped kernel bit for bit.
    pub fn group_dot(&self, o: usize, offset: usize, x: &[f32]) -> f32 {
        let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
        dot_lanes(&row[offset..offset + x.len()], x)
    }

    /// Forward computing only the output units whose index satisfies
    /// `o % stride < keep`, writing `0.0` for every other unit (full
    /// `batch × out_dim` output). Computed units get exactly the
    /// [`Self::forward_no_cache`] value — per-unit dots are independent of
    /// which other units run — so this is safe for inference paths where
    /// the skipped units' *outgoing* weights are exactly zero (MADE's
    /// degree masks: a later-degree unit never feeds an earlier-degree
    /// one). `keep == stride` degenerates to the full forward.
    pub fn forward_strided_runs_no_cache(
        &self,
        x: &[f32],
        batch: usize,
        stride: usize,
        keep: usize,
        out: &mut Vec<f32>,
    ) {
        debug_assert!(stride > 0 && keep <= stride);
        debug_assert_eq!(x.len(), batch * self.in_dim);
        let width = self.out_dim;
        out.resize(batch * width, 0.0);
        out.fill(0.0);
        let in_dim = self.in_dim;
        let mut b0 = 0;
        while b0 + ROW_BLOCK <= batch {
            let xs = [
                &x[b0 * in_dim..(b0 + 1) * in_dim],
                &x[(b0 + 1) * in_dim..(b0 + 2) * in_dim],
                &x[(b0 + 2) * in_dim..(b0 + 3) * in_dim],
                &x[(b0 + 3) * in_dim..(b0 + 4) * in_dim],
            ];
            for run in (0..width).step_by(stride) {
                for o in run..(run + keep).min(width) {
                    let d = dot4_lanes(&self.w[o * in_dim..(o + 1) * in_dim], xs);
                    let bo = self.b[o];
                    for r in 0..ROW_BLOCK {
                        out[(b0 + r) * width + o] = bo + d[r];
                    }
                }
            }
            b0 += ROW_BLOCK;
        }
        for bi in b0..batch {
            let xrow = &x[bi * in_dim..(bi + 1) * in_dim];
            for run in (0..width).step_by(stride) {
                for o in run..(run + keep).min(width) {
                    out[bi * width + o] =
                        self.b[o] + dot_lanes(&self.w[o * in_dim..(o + 1) * in_dim], xrow);
                }
            }
        }
    }

    /// Forward computing only output rows `rows` (inference): writes
    /// `batch × rows.len()` into `out`.
    pub fn forward_rows_no_cache(
        &self,
        x: &[f32],
        batch: usize,
        rows: std::ops::Range<usize>,
        out: &mut Vec<f32>,
    ) {
        debug_assert!(rows.end <= self.out_dim);
        out.resize(batch * rows.len(), 0.0);
        gemm_bias_rows(&self.w, &self.b, self.in_dim, rows, x, batch, out);
    }

    /// Backward: given `dL/dy` (`batch × out_dim`), accumulate `gw`/`gb`
    /// and write `dL/dx` into `dx`.
    pub fn backward(&mut self, dy: &[f32], dx: &mut Vec<f32>) {
        let batch = self.last_batch;
        debug_assert_eq!(dy.len(), batch * self.out_dim);
        dx.resize(batch * self.in_dim, 0.0);
        dx.fill(0.0);
        backward_kernel(
            &self.w,
            self.in_dim,
            self.out_dim,
            &self.last_input,
            dy,
            batch,
            &mut self.gw,
            &mut self.gb,
            dx,
        );
        // enforce the connectivity mask on the weight gradients
        if let Some(mask) = &self.mask {
            for (g, m) in self.gw.iter_mut().zip(mask) {
                *g *= m;
            }
        }
    }

    /// Backward into caller-provided gradient buffers (`&self`): the shard
    /// kernel of data-parallel training, where every shard accumulates into
    /// its own `gw`/`gb` and the shards are reduced afterwards. The
    /// connectivity mask is NOT applied here — apply it once after the
    /// shard reduction (see `MadeNet::train_batch_sharded`).
    pub fn backward_into(
        &self,
        x: &[f32],
        dy: &[f32],
        batch: usize,
        gw: &mut [f32],
        gb: &mut [f32],
        dx: &mut Vec<f32>,
    ) {
        dx.resize(batch * self.in_dim, 0.0);
        dx.fill(0.0);
        backward_kernel(&self.w, self.in_dim, self.out_dim, x, dy, batch, gw, gb, dx);
    }

    /// Visit (param, grad) pairs.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    /// Scalar parameter count (masked weights included; they are stored).
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// ReLU with cached activation pattern.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    active: Vec<bool>,
}

impl Relu {
    /// The single activation predicate shared by the training and
    /// inference paths: a unit is active iff its pre-activation is
    /// strictly positive, so NaN and -0.0 both clamp to +0.0 everywhere.
    #[inline(always)]
    fn is_active(v: f32) -> bool {
        v > 0.0
    }

    /// In-place forward, caching which units were active.
    pub fn forward(&mut self, x: &mut [f32]) {
        Self::forward_masked(x, &mut self.active);
    }

    /// In-place forward recording the activation pattern into a
    /// caller-provided mask (sharded training keeps one mask per shard).
    pub fn forward_masked(x: &mut [f32], active: &mut Vec<bool>) {
        active.clear();
        active.reserve(x.len());
        for v in x.iter_mut() {
            let on = Self::is_active(*v);
            active.push(on);
            if !on {
                *v = 0.0;
            }
        }
    }

    /// In-place forward without caching (inference).
    pub fn forward_no_cache(x: &mut [f32]) {
        for v in x.iter_mut() {
            if !Self::is_active(*v) {
                *v = 0.0;
            }
        }
    }

    /// In-place backward: zero gradients of inactive units.
    pub fn backward(&self, dy: &mut [f32]) {
        Self::backward_masked(dy, &self.active);
    }

    /// Backward against an externally-held activation mask.
    pub fn backward_masked(dy: &mut [f32], active: &[bool]) {
        debug_assert_eq!(dy.len(), active.len());
        for (g, &on) in dy.iter_mut().zip(active) {
            if !on {
                *g = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_matmul() {
        let mut init = Initializer::new(1);
        let mut l = Linear::new(3, 2, &mut init);
        l.w = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // row0=[1,2,3], row1=[4,5,6]
        l.b = vec![0.5, -0.5];
        let mut out = Vec::new();
        l.forward(&[1.0, 0.0, -1.0, 2.0, 2.0, 2.0], 2, &mut out);
        assert_eq!(out, vec![1.0 - 3.0 + 0.5, 4.0 - 6.0 - 0.5, 12.0 + 0.5, 30.0 - 0.5]);
    }

    #[test]
    fn simd_kernels_match_scalar_bitwise() {
        // the AVX2 dispatch must be invisible: same lanes, same per-lane
        // op order, same tail and tree reduction — every length (full
        // 8-blocks and ragged tails) must agree to the bit
        let vals = |seed: u32, n: usize| -> Vec<f32> {
            (0..n)
                .map(|i| {
                    (((i as u32).wrapping_mul(2654435761) ^ seed) % 1000) as f32 * 0.00317 - 1.2
                })
                .collect()
        };
        for n in [1usize, 7, 8, 9, 16, 23, 40, 48, 51, 64] {
            let w = vals(1, n);
            let xs: Vec<Vec<f32>> = (0..4).map(|r| vals(100 + r, n)).collect();
            let x4 = [&xs[0][..], &xs[1][..], &xs[2][..], &xs[3][..]];
            assert_eq!(
                dot_lanes(&w, &xs[0]).to_bits(),
                dot_lanes_scalar(&w, &xs[0]).to_bits(),
                "dot_lanes drifted at n={n}"
            );
            let a = dot4_lanes(&w, x4);
            let b = dot4_lanes_scalar(&w, x4);
            for r in 0..4 {
                assert_eq!(a[r].to_bits(), b[r].to_bits(), "dot4_lanes row {r} drifted at n={n}");
            }
        }
    }

    #[test]
    fn strided_runs_forward_matches_full_on_kept_units() {
        // kept units (o % stride < keep) must carry the exact full-forward
        // bits; skipped units must read exactly 0.0
        let mut init = Initializer::new(21);
        let l = Linear::new(40, 48, &mut init);
        let x: Vec<f32> = (0..5 * 40).map(|i| ((i * 37 + 11) % 17) as f32 * 0.21 - 1.7).collect();
        let mut full = Vec::new();
        l.forward_no_cache(&x, 5, &mut full);
        for (stride, keep) in [(4usize, 0usize), (4, 1), (4, 3), (4, 4), (6, 2), (5, 5)] {
            let mut part = vec![f32::NAN; 3]; // stale garbage must be overwritten
            l.forward_strided_runs_no_cache(&x, 5, stride, keep, &mut part);
            for b in 0..5 {
                for o in 0..48 {
                    let got = part[b * 48 + o];
                    if o % stride < keep {
                        assert_eq!(
                            got.to_bits(),
                            full[b * 48 + o].to_bits(),
                            "kept unit {o} drifted (stride {stride}, keep {keep})"
                        );
                    } else {
                        assert_eq!(got.to_bits(), 0.0f32.to_bits(), "skipped unit {o} not zeroed");
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_forward_is_batch_position_invariant() {
        // the same input row must produce bitwise-identical outputs whether
        // it lands in a 4-row micro-kernel block or the scalar tail, and
        // whether the full output or only a row range is computed
        let mut init = Initializer::new(9);
        let l = Linear::new(37, 19, &mut init); // odd dims exercise lane tails
        let row: Vec<f32> = (0..37).map(|i| ((i * 31 + 7) % 13) as f32 * 0.173 - 0.8).collect();
        for batch in [1usize, 3, 4, 5, 8, 11] {
            let x: Vec<f32> = row.iter().copied().cycle().take(batch * 37).collect();
            let mut full = Vec::new();
            l.forward_no_cache(&x, batch, &mut full);
            for b in 0..batch {
                assert_eq!(&full[b * 19..(b + 1) * 19], &full[0..19], "batch {batch} row {b}");
            }
            let mut part = Vec::new();
            l.forward_rows_no_cache(&x, batch, 6..13, &mut part);
            for b in 0..batch {
                assert_eq!(&part[b * 7..(b + 1) * 7], &full[b * 19 + 6..b * 19 + 13]);
            }
        }
    }

    #[test]
    fn grouped_forward_is_a_fixed_order_sum_of_group_dots() {
        // the grouped kernel must equal bias + per-group dot_lanes scalars
        // added in ascending group order, for every batch position (micro-
        // kernel block and scalar tail alike) — the contract the fused
        // token tables rely on
        let mut init = Initializer::new(11);
        let l = Linear::new(4 * 6, 9, &mut init); // 4 groups of width 6
        let x: Vec<f32> = (0..7 * 24).map(|i| ((i * 17 + 3) % 29) as f32 * 0.11 - 1.2).collect();
        for batch in [1usize, 3, 4, 5, 7] {
            let mut got = Vec::new();
            l.forward_grouped_no_cache(&x[..batch * 24], batch, 6, &mut got);
            for b in 0..batch {
                let xrow = &x[b * 24..(b + 1) * 24];
                for o in 0..9 {
                    let mut want = l.b[o];
                    for g in 0..4 {
                        want += l.group_dot(o, g * 6, &xrow[g * 6..(g + 1) * 6]);
                    }
                    assert_eq!(
                        want.to_bits(),
                        got[b * 9 + o].to_bits(),
                        "batch {batch} row {b} out {o}"
                    );
                }
            }
        }
        // one group spanning the whole row degenerates to the plain kernel
        let mut flat = Vec::new();
        let mut whole = Vec::new();
        l.forward_no_cache(&x[..5 * 24], 5, &mut flat);
        l.forward_grouped_no_cache(&x[..5 * 24], 5, 24, &mut whole);
        assert_eq!(flat, whole);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut init = Initializer::new(2);
        let mut l = Linear::new(4, 3, &mut init);
        let x: Vec<f32> = vec![0.3, -0.7, 1.2, 0.1, -0.4, 0.9, 0.0, 2.0];
        // loss = sum(y^2)/2 so dL/dy = y
        let mut out = Vec::new();
        l.forward(&x, 2, &mut out);
        let dy = out.clone();
        let mut dx = Vec::new();
        l.backward(&dy, &mut dx);

        let h = 1e-3f32;
        let loss = |layer: &Linear| {
            let mut o = Vec::new();
            layer.forward_no_cache(&x, 2, &mut o);
            o.iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        // check a few weight grads
        for idx in [0, 5, 11] {
            let mut lp = l.clone();
            lp.w[idx] += h;
            let mut lm = l.clone();
            lm.w[idx] -= h;
            let fd = (loss(&lp) - loss(&lm)) / (2.0 * h);
            assert!((fd - l.gw[idx]).abs() < 1e-2, "w[{idx}]: fd {fd} vs {}", l.gw[idx]);
        }
        // check a bias grad
        let mut lp = l.clone();
        lp.b[1] += h;
        let mut lm = l.clone();
        lm.b[1] -= h;
        let fd = (loss(&lp) - loss(&lm)) / (2.0 * h);
        assert!((fd - l.gb[1]).abs() < 1e-2);
        // check dx by perturbing an input
        let mut xp = x.clone();
        xp[2] += h;
        let mut xm = x.clone();
        xm[2] -= h;
        let mut o = Vec::new();
        l.forward_no_cache(&xp, 2, &mut o);
        let up: f32 = o.iter().map(|v| v * v).sum::<f32>() / 2.0;
        l.forward_no_cache(&xm, 2, &mut o);
        let dn: f32 = o.iter().map(|v| v * v).sum::<f32>() / 2.0;
        let fd = (up - dn) / (2.0 * h);
        assert!((fd - dx[2]).abs() < 1e-2, "dx[2]: fd {fd} vs {}", dx[2]);
    }

    #[test]
    fn backward_into_matches_cached_backward() {
        let mut init = Initializer::new(4);
        let mut l = Linear::new(9, 6, &mut init);
        let x: Vec<f32> = (0..45).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut out = Vec::new();
        l.forward(&x, 5, &mut out);
        let dy: Vec<f32> = out.iter().map(|v| v * 0.5 - 0.1).collect();
        let mut dx = Vec::new();
        l.backward(&dy, &mut dx);

        let mut gw = vec![0.0f32; l.w.len()];
        let mut gb = vec![0.0f32; l.b.len()];
        let mut dx2 = Vec::new();
        l.backward_into(&x, &dy, 5, &mut gw, &mut gb, &mut dx2);
        assert_eq!(l.gw, gw);
        assert_eq!(l.gb, gb);
        assert_eq!(dx, dx2);
    }

    #[test]
    fn masked_weights_start_and_stay_consistent() {
        let mut init = Initializer::new(3);
        // 2x2 with anti-diagonal masked out
        let mask = vec![1.0, 0.0, 0.0, 1.0];
        let mut l = Linear::new_masked(2, 2, mask, &mut init);
        assert_eq!(l.w[1], 0.0);
        assert_eq!(l.w[2], 0.0);
        let mut out = Vec::new();
        l.forward(&[1.0, 1.0], 1, &mut out);
        let mut dx = Vec::new();
        l.backward(&[1.0, 1.0], &mut dx);
        assert_eq!(l.gw[1], 0.0);
        assert_eq!(l.gw[2], 0.0);
        // masked connection contributes nothing to dx either... note dx uses
        // w (already zero at masked positions), so it is consistent.
        assert!((dx[0] - l.w[0]).abs() < 1e-6);
    }

    #[test]
    fn relu_round_trip() {
        let mut r = Relu::default();
        let mut x = vec![-1.0, 2.0, 0.0, 3.0];
        r.forward(&mut x);
        assert_eq!(x, vec![0.0, 2.0, 0.0, 3.0]);
        let mut g = vec![1.0, 1.0, 1.0, 1.0];
        r.backward(&mut g);
        assert_eq!(g, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_paths_agree_on_nan_and_negative_zero() {
        // regression: forward_no_cache used `*v < 0.0`, which left NaN in
        // place while the cached training path zeroed it
        let src = vec![f32::NAN, -0.0, 0.0, -1.5, 2.5, f32::NEG_INFINITY, f32::INFINITY];
        let mut a = src.clone();
        let mut b = src.clone();
        let mut r = Relu::default();
        r.forward(&mut a);
        Relu::forward_no_cache(&mut b);
        assert_eq!(a, vec![0.0, 0.0, 0.0, 0.0, 2.5, 0.0, f32::INFINITY]);
        // bitwise agreement, including the sign bit of clamped -0.0
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }
}
