//! (Optionally masked) affine layers with manual backprop.

use crate::init::Initializer;

/// A dense affine layer `y = x Wᵀ + b`, optionally constrained by a binary
/// connectivity mask (MADE-style).
///
/// Masking is enforced by construction and by masking *gradients*: masked
/// weights start at zero and Adam updates of an always-zero gradient keep
/// them exactly zero, so the hot forward path is a plain GEMM.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Input features.
    pub in_dim: usize,
    /// Output features.
    pub out_dim: usize,
    /// Weights, row-major `out_dim × in_dim`.
    pub w: Vec<f32>,
    /// Bias, `out_dim`.
    pub b: Vec<f32>,
    /// Optional 0/1 connectivity mask, same layout as `w`.
    pub mask: Option<Vec<f32>>,
    /// Weight gradients.
    pub gw: Vec<f32>,
    /// Bias gradients.
    pub gb: Vec<f32>,
    last_input: Vec<f32>,
    last_batch: usize,
}

impl Linear {
    /// New unmasked layer with Kaiming init.
    pub fn new(in_dim: usize, out_dim: usize, init: &mut Initializer) -> Self {
        Linear {
            in_dim,
            out_dim,
            w: init.kaiming(in_dim * out_dim, in_dim),
            b: vec![0.0; out_dim],
            mask: None,
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            last_input: Vec::new(),
            last_batch: 0,
        }
    }

    /// New masked layer; `mask` is row-major `out_dim × in_dim` of 0/1.
    pub fn new_masked(
        in_dim: usize,
        out_dim: usize,
        mask: Vec<f32>,
        init: &mut Initializer,
    ) -> Self {
        assert_eq!(mask.len(), in_dim * out_dim);
        let mut layer = Self::new(in_dim, out_dim, init);
        for (w, m) in layer.w.iter_mut().zip(&mask) {
            *w *= m;
        }
        layer.mask = Some(mask);
        layer
    }

    /// Forward for a `batch × in_dim` input; writes `batch × out_dim` into
    /// `out` (resized as needed) and caches the input for backward.
    pub fn forward(&mut self, x: &[f32], batch: usize, out: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), batch * self.in_dim);
        out.resize(batch * self.out_dim, 0.0);
        self.last_input.clear();
        self.last_input.extend_from_slice(x);
        self.last_batch = batch;
        self.forward_no_cache(x, batch, out);
    }

    /// Forward without caching — for inference-only paths.
    pub fn forward_no_cache(&self, x: &[f32], batch: usize, out: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), batch * self.in_dim);
        out.resize(batch * self.out_dim, 0.0);
        for bi in 0..batch {
            let xrow = &x[bi * self.in_dim..(bi + 1) * self.in_dim];
            let orow = &mut out[bi * self.out_dim..(bi + 1) * self.out_dim];
            for (o, (wrow, bias)) in
                orow.iter_mut().zip(self.w.chunks_exact(self.in_dim).zip(&self.b))
            {
                let mut acc = *bias;
                for (wi, xi) in wrow.iter().zip(xrow) {
                    acc += wi * xi;
                }
                *o = acc;
            }
        }
    }

    /// Forward computing only output rows `rows` (inference): writes
    /// `batch × rows.len()` into `out`.
    pub fn forward_rows_no_cache(
        &self,
        x: &[f32],
        batch: usize,
        rows: std::ops::Range<usize>,
        out: &mut Vec<f32>,
    ) {
        debug_assert_eq!(x.len(), batch * self.in_dim);
        debug_assert!(rows.end <= self.out_dim);
        let width = rows.len();
        out.resize(batch * width, 0.0);
        for bi in 0..batch {
            let xrow = &x[bi * self.in_dim..(bi + 1) * self.in_dim];
            let orow = &mut out[bi * width..(bi + 1) * width];
            for (oi, o) in rows.clone().zip(orow.iter_mut()) {
                let wrow = &self.w[oi * self.in_dim..(oi + 1) * self.in_dim];
                let mut acc = self.b[oi];
                for (wi, xi) in wrow.iter().zip(xrow) {
                    acc += wi * xi;
                }
                *o = acc;
            }
        }
    }

    /// Backward: given `dL/dy` (`batch × out_dim`), accumulate `gw`/`gb`
    /// and write `dL/dx` into `dx`.
    pub fn backward(&mut self, dy: &[f32], dx: &mut Vec<f32>) {
        let batch = self.last_batch;
        debug_assert_eq!(dy.len(), batch * self.out_dim);
        dx.resize(batch * self.in_dim, 0.0);
        dx.iter_mut().for_each(|v| *v = 0.0);
        for bi in 0..batch {
            let xrow = &self.last_input[bi * self.in_dim..(bi + 1) * self.in_dim];
            let dyrow = &dy[bi * self.out_dim..(bi + 1) * self.out_dim];
            let dxrow = &mut dx[bi * self.in_dim..(bi + 1) * self.in_dim];
            for (o, &g) in dyrow.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                self.gb[o] += g;
                let wrow = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                let gwrow = &mut self.gw[o * self.in_dim..(o + 1) * self.in_dim];
                for i in 0..self.in_dim {
                    gwrow[i] += g * xrow[i];
                    dxrow[i] += g * wrow[i];
                }
            }
        }
        // enforce the connectivity mask on the weight gradients
        if let Some(mask) = &self.mask {
            for (g, m) in self.gw.iter_mut().zip(mask) {
                *g *= m;
            }
        }
    }

    /// Visit (param, grad) pairs.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    /// Scalar parameter count (masked weights included; they are stored).
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// ReLU with cached activation pattern.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    active: Vec<bool>,
}

impl Relu {
    /// In-place forward, caching which units were active.
    pub fn forward(&mut self, x: &mut [f32]) {
        self.active.clear();
        self.active.reserve(x.len());
        for v in x.iter_mut() {
            let on = *v > 0.0;
            self.active.push(on);
            if !on {
                *v = 0.0;
            }
        }
    }

    /// In-place forward without caching (inference).
    pub fn forward_no_cache(x: &mut [f32]) {
        for v in x.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// In-place backward: zero gradients of inactive units.
    pub fn backward(&self, dy: &mut [f32]) {
        debug_assert_eq!(dy.len(), self.active.len());
        for (g, &on) in dy.iter_mut().zip(&self.active) {
            if !on {
                *g = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_matmul() {
        let mut init = Initializer::new(1);
        let mut l = Linear::new(3, 2, &mut init);
        l.w = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // row0=[1,2,3], row1=[4,5,6]
        l.b = vec![0.5, -0.5];
        let mut out = Vec::new();
        l.forward(&[1.0, 0.0, -1.0, 2.0, 2.0, 2.0], 2, &mut out);
        assert_eq!(out, vec![1.0 - 3.0 + 0.5, 4.0 - 6.0 - 0.5, 12.0 + 0.5, 30.0 - 0.5]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut init = Initializer::new(2);
        let mut l = Linear::new(4, 3, &mut init);
        let x: Vec<f32> = vec![0.3, -0.7, 1.2, 0.1, -0.4, 0.9, 0.0, 2.0];
        // loss = sum(y^2)/2 so dL/dy = y
        let mut out = Vec::new();
        l.forward(&x, 2, &mut out);
        let dy = out.clone();
        let mut dx = Vec::new();
        l.backward(&dy, &mut dx);

        let h = 1e-3f32;
        let loss = |layer: &Linear| {
            let mut o = Vec::new();
            layer.forward_no_cache(&x, 2, &mut o);
            o.iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        // check a few weight grads
        for idx in [0, 5, 11] {
            let mut lp = l.clone();
            lp.w[idx] += h;
            let mut lm = l.clone();
            lm.w[idx] -= h;
            let fd = (loss(&lp) - loss(&lm)) / (2.0 * h);
            assert!((fd - l.gw[idx]).abs() < 1e-2, "w[{idx}]: fd {fd} vs {}", l.gw[idx]);
        }
        // check a bias grad
        let mut lp = l.clone();
        lp.b[1] += h;
        let mut lm = l.clone();
        lm.b[1] -= h;
        let fd = (loss(&lp) - loss(&lm)) / (2.0 * h);
        assert!((fd - l.gb[1]).abs() < 1e-2);
        // check dx by perturbing an input
        let mut xp = x.clone();
        xp[2] += h;
        let mut xm = x.clone();
        xm[2] -= h;
        let mut o = Vec::new();
        l.forward_no_cache(&xp, 2, &mut o);
        let up: f32 = o.iter().map(|v| v * v).sum::<f32>() / 2.0;
        l.forward_no_cache(&xm, 2, &mut o);
        let dn: f32 = o.iter().map(|v| v * v).sum::<f32>() / 2.0;
        let fd = (up - dn) / (2.0 * h);
        assert!((fd - dx[2]).abs() < 1e-2, "dx[2]: fd {fd} vs {}", dx[2]);
    }

    #[test]
    fn masked_weights_start_and_stay_consistent() {
        let mut init = Initializer::new(3);
        // 2x2 with anti-diagonal masked out
        let mask = vec![1.0, 0.0, 0.0, 1.0];
        let mut l = Linear::new_masked(2, 2, mask, &mut init);
        assert_eq!(l.w[1], 0.0);
        assert_eq!(l.w[2], 0.0);
        let mut out = Vec::new();
        l.forward(&[1.0, 1.0], 1, &mut out);
        let mut dx = Vec::new();
        l.backward(&[1.0, 1.0], &mut dx);
        assert_eq!(l.gw[1], 0.0);
        assert_eq!(l.gw[2], 0.0);
        // masked connection contributes nothing to dx either... note dx uses
        // w (already zero at masked positions), so it is consistent.
        assert!((dx[0] - l.w[0]).abs() < 1e-6);
    }

    #[test]
    fn relu_round_trip() {
        let mut r = Relu::default();
        let mut x = vec![-1.0, 2.0, 0.0, 3.0];
        r.forward(&mut x);
        assert_eq!(x, vec![0.0, 2.0, 0.0, 3.0]);
        let mut g = vec![1.0, 1.0, 1.0, 1.0];
        r.backward(&mut g);
        assert_eq!(g, vec![0.0, 1.0, 0.0, 1.0]);
    }
}
