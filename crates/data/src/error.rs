//! Error types shared across the data layer.

use std::fmt;

/// Errors raised while constructing or querying tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A column index was out of bounds for the table schema.
    ColumnOutOfBounds {
        /// The offending column index.
        col: usize,
        /// Number of columns in the schema.
        ncols: usize,
    },
    /// Columns passed to a table constructor had differing lengths.
    RaggedColumns {
        /// Length of the first column.
        expected: usize,
        /// Length of the offending column.
        got: usize,
        /// Index of the offending column.
        col: usize,
    },
    /// A predicate referenced a categorical value absent from the dictionary.
    UnknownCategory {
        /// Column index.
        col: usize,
        /// The value that was not found.
        value: String,
    },
    /// A predicate's operand type did not match the column type.
    TypeMismatch {
        /// Column index.
        col: usize,
    },
    /// The table has zero rows, so selectivities are undefined.
    EmptyTable,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ColumnOutOfBounds { col, ncols } => {
                write!(f, "column index {col} out of bounds for schema of {ncols} columns")
            }
            DataError::RaggedColumns { expected, got, col } => {
                write!(f, "column {col} has {got} rows but the first column has {expected}")
            }
            DataError::UnknownCategory { col, value } => {
                write!(f, "value {value:?} not present in dictionary of column {col}")
            }
            DataError::TypeMismatch { col } => {
                write!(f, "operand type does not match the type of column {col}")
            }
            DataError::EmptyTable => write!(f, "table has no rows"),
        }
    }
}

impl std::error::Error for DataError {}
