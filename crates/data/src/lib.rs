//! Columnar tables, queries, synthetic datasets, workloads and metrics.
//!
//! This crate is the substrate shared by every estimator in the IAM
//! reproduction: it defines the in-memory [`Table`] representation
//! (dictionary-encoded categorical columns and raw `f64` continuous
//! columns), conjunctive range [`Query`]s and their normalised
//! [`RangeQuery`] form, an exact ground-truth executor, the paper's
//! query-workload generator (§6.1.3), the Q-error metric, dataset
//! diagnostics (NCIE correlation and Fisher skewness), and synthetic
//! stand-ins for the paper's four real-world datasets.

#![deny(missing_docs)]

pub mod column;
pub mod csv;
pub mod encode;
pub mod error;
pub mod estimator;
pub mod exec;
pub mod metrics;
pub mod query;
pub mod stats;
pub mod synth;
pub mod table;
pub mod workload;

pub use column::{CatColumn, Column, ContColumn};
pub use encode::ColumnEncoding;
pub use error::DataError;
pub use estimator::{EstimatorHarness, SelectivityEstimator};
pub use exec::exact_selectivity;
pub use metrics::{q_error, ErrorSummary};
pub use query::{Interval, Op, Predicate, Query, RangeQuery};
pub use table::Table;
pub use workload::{WorkloadConfig, WorkloadGenerator};
