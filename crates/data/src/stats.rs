//! Dataset diagnostics: Fisher skewness and NCIE correlation (§6.1.1).
//!
//! The paper characterises each dataset by Fisher's moment skewness and by
//! the Nonlinear Correlation Information Entropy (NCIE) of Wang, Shen &
//! Zhang (2005). NCIE is computed from the eigenvalues of the nonlinear
//! correlation coefficient (NCC) matrix, where each pairwise NCC is a
//! normalised mutual information estimated on an equal-frequency `b × b`
//! grid of the ranks.
//!
//! Note: in the original definition NCIE grows with correlation strength;
//! the paper reports a *decreasing* variant ("smaller NCIE indicates
//! stronger correlation"). [`ncie_paper`] therefore returns `1 − NCIE` so
//! our diagnostics read on the same scale as the paper's Table values.

use crate::column::Column;
use crate::table::Table;

/// Fisher's moment coefficient of skewness `g1 = m3 / m2^{3/2}`.
pub fn fisher_skewness(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let (mut m2, mut m3) = (0.0, 0.0);
    for &v in values {
        let d = v - mean;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= n as f64;
    m3 /= n as f64;
    if m2 <= 0.0 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// Mean Fisher skewness over the continuous columns of a table — the
/// dataset-level skewness figure the paper quotes.
pub fn table_skewness(table: &Table) -> f64 {
    let conts: Vec<&Vec<f64>> = table
        .columns
        .iter()
        .filter_map(|c| match c {
            Column::Continuous(cc) => Some(&cc.values),
            Column::Categorical(_) => None,
        })
        .collect();
    if conts.is_empty() {
        return 0.0;
    }
    conts.iter().map(|v| fisher_skewness(v)).sum::<f64>() / conts.len() as f64
}

/// Rank values into `b` equal-frequency bins; returns per-row bin ids.
fn rank_bins(values: &[f64], b: usize) -> Vec<usize> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut bins = vec![0usize; n];
    for (rank, &row) in order.iter().enumerate() {
        bins[row] = (rank * b / n).min(b - 1);
    }
    bins
}

/// Pairwise nonlinear correlation coefficient: mutual information on a
/// `b × b` equal-frequency grid, normalised by `log b` so a bijective
/// dependence yields 1 and independence 0.
pub fn ncc(x: &[f64], y: &[f64], b: usize) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n == 0 || b < 2 {
        return 0.0;
    }
    let bx = rank_bins(x, b);
    let by = rank_bins(y, b);
    let mut joint = vec![0usize; b * b];
    for i in 0..n {
        joint[bx[i] * b + by[i]] += 1;
    }
    // equal-frequency marginals are ~uniform; compute exactly anyway
    let mut mx = vec![0usize; b];
    let mut my = vec![0usize; b];
    for i in 0..n {
        mx[bx[i]] += 1;
        my[by[i]] += 1;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for i in 0..b {
        for j in 0..b {
            let c = joint[i * b + j];
            if c == 0 {
                continue;
            }
            let pij = c as f64 / nf;
            let pi = mx[i] as f64 / nf;
            let pj = my[j] as f64 / nf;
            mi += pij * (pij / (pi * pj)).ln();
        }
    }
    (mi / (b as f64).ln()).clamp(0.0, 1.0)
}

/// Eigenvalues of a small symmetric matrix via cyclic Jacobi rotations.
pub fn symmetric_eigenvalues(mat: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(mat.len(), n * n);
    let mut a = mat.to_vec();
    for _sweep in 0..100 {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += a[p * n + q] * a[p * n + q];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-18 {
                    continue;
                }
                let theta = (a[q * n + q] - a[p * n + p]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
            }
        }
    }
    (0..n).map(|i| a[i * n + i]).collect()
}

/// Standard NCIE in `[0, 1]`: `1 + Σ (λ_i/N) log_N (λ_i/N)` over the
/// eigenvalues of the NCC matrix. 0 = fully independent, 1 = fully
/// dependent.
pub fn ncie_standard(table: &Table, bins: usize) -> f64 {
    let cols: Vec<Vec<f64>> =
        table.columns.iter().map(|c| (0..c.len()).map(|r| c.value_as_f64(r)).collect()).collect();
    let n = cols.len();
    if n < 2 {
        return 0.0;
    }
    let mut mat = vec![0.0; n * n];
    for i in 0..n {
        mat[i * n + i] = 1.0;
        for j in (i + 1)..n {
            let c = ncc(&cols[i], &cols[j], bins);
            mat[i * n + j] = c;
            mat[j * n + i] = c;
        }
    }
    let eig = symmetric_eigenvalues(&mat, n);
    let nf = n as f64;
    let mut h = 0.0;
    for l in eig {
        let p = (l / nf).max(0.0);
        if p > 0.0 {
            h += p * p.ln() / nf.ln();
        }
    }
    (1.0 + h).clamp(0.0, 1.0)
}

/// The paper-style NCIE where *smaller means more correlated*
/// (`1 − ncie_standard`).
pub fn ncie_paper(table: &Table, bins: usize) -> f64 {
    1.0 - ncie_standard(table, bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ContColumn;

    #[test]
    fn skewness_of_symmetric_data_is_zero() {
        let v: Vec<f64> = (-100..=100).map(|i| i as f64).collect();
        assert!(fisher_skewness(&v).abs() < 1e-9);
    }

    #[test]
    fn skewness_of_right_tail_is_positive() {
        let mut v: Vec<f64> = vec![0.0; 100];
        v.extend([50.0, 80.0, 100.0]);
        assert!(fisher_skewness(&v) > 1.0);
    }

    #[test]
    fn ncc_of_identical_series_is_high() {
        let x: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert!(ncc(&x, &x, 30) > 0.95);
    }

    #[test]
    fn ncc_of_independent_series_is_low() {
        // deterministic pseudo-independent pair
        let x: Vec<f64> = (0..2000).map(|i| (i as f64 * 1.6180339887).fract()).collect();
        let y: Vec<f64> = (0..2000).map(|i| (i as f64 * std::f64::consts::E).fract()).collect();
        assert!(ncc(&x, &y, 30) < 0.2);
    }

    #[test]
    fn jacobi_eigenvalues_of_diagonal() {
        let m = vec![3.0, 0.0, 0.0, 1.0];
        let mut e = symmetric_eigenvalues(&m, 2);
        e.sort_by(f64::total_cmp);
        assert!((e[0] - 1.0).abs() < 1e-9 && (e[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_eigenvalues_of_2x2() {
        // [[2,1],[1,2]] -> eigenvalues 1, 3
        let m = vec![2.0, 1.0, 1.0, 2.0];
        let mut e = symmetric_eigenvalues(&m, 2);
        e.sort_by(f64::total_cmp);
        assert!((e[0] - 1.0).abs() < 1e-9 && (e[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ncie_orders_dependence() {
        let x: Vec<f64> = (0..2000).map(|i| (i as f64 * 1.618).fract()).collect();
        let y_dep: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        let y_ind: Vec<f64> = (0..2000).map(|i| (i as f64 * std::f64::consts::E).fract()).collect();
        let dep = Table::new(
            "dep",
            vec![
                crate::column::Column::Continuous(ContColumn::new("x", x.clone())),
                crate::column::Column::Continuous(ContColumn::new("y", y_dep)),
            ],
        )
        .unwrap();
        let ind = Table::new(
            "ind",
            vec![
                crate::column::Column::Continuous(ContColumn::new("x", x)),
                crate::column::Column::Continuous(ContColumn::new("y", y_ind)),
            ],
        )
        .unwrap();
        let s_dep = ncie_standard(&dep, 30);
        let s_ind = ncie_standard(&ind, 30);
        assert!(s_dep > s_ind, "dependent {s_dep} should exceed independent {s_ind}");
        // paper-style flips the ordering
        assert!(ncie_paper(&dep, 30) < ncie_paper(&ind, 30));
    }
}
