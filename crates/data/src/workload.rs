//! Random query workload generation following the paper (§6.1.3).
//!
//! For each query we draw a subset of attributes; a categorical attribute
//! gets a uniformly drawn domain value and an operator from `{=, ≤, ≥}`; a
//! continuous attribute gets a uniform value between its minimum and
//! maximum and an operator from `{≤, ≥}`.

use crate::column::Column;
use crate::query::{Op, Predicate, Query};
use crate::table::Table;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for the workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Minimum number of predicates per query (≥ 1).
    pub min_predicates: usize,
    /// Maximum number of predicates per query (≤ number of columns).
    pub max_predicates: usize,
    /// Allow `=` on categorical attributes (the paper does).
    pub categorical_eq: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig { min_predicates: 1, max_predicates: usize::MAX, categorical_eq: true }
    }
}

/// Seeded random query generator over one table.
pub struct WorkloadGenerator<'t> {
    table: &'t Table,
    cfg: WorkloadConfig,
    rng: StdRng,
    /// Cached (min, max) per continuous column.
    cont_bounds: Vec<Option<(f64, f64)>>,
}

impl<'t> WorkloadGenerator<'t> {
    /// Build a generator for `table` with the given config and seed.
    pub fn new(table: &'t Table, cfg: WorkloadConfig, seed: u64) -> Self {
        let cont_bounds = table
            .columns
            .iter()
            .map(|c| match c {
                Column::Continuous(cc) => cc.min().zip(cc.max()),
                Column::Categorical(_) => None,
            })
            .collect();
        WorkloadGenerator { table, cfg, rng: StdRng::seed_from_u64(seed), cont_bounds }
    }

    /// Generate one random conjunctive query.
    pub fn gen_query(&mut self) -> Query {
        let ncols = self.table.ncols();
        let max_p = self.cfg.max_predicates.min(ncols).max(1);
        let min_p = self.cfg.min_predicates.clamp(1, max_p);
        let k = self.rng.random_range(min_p..=max_p);
        // choose k distinct columns by partial Fisher-Yates
        let mut cols: Vec<usize> = (0..ncols).collect();
        for i in 0..k {
            let j = self.rng.random_range(i..ncols);
            cols.swap(i, j);
        }
        let mut predicates = Vec::with_capacity(k);
        for &col in &cols[..k] {
            predicates.push(self.gen_predicate(col));
        }
        Query::new(predicates)
    }

    fn gen_predicate(&mut self, col: usize) -> Predicate {
        match &self.table.columns[col] {
            Column::Categorical(c) => {
                let value = self.rng.random_range(0..c.domain_size() as u32) as f64;
                let op = if self.cfg.categorical_eq {
                    match self.rng.random_range(0..3u8) {
                        0 => Op::Eq,
                        1 => Op::Le,
                        _ => Op::Ge,
                    }
                } else if self.rng.random_range(0..2u8) == 0 {
                    Op::Le
                } else {
                    Op::Ge
                };
                Predicate { col, op, value }
            }
            Column::Continuous(_) => {
                let (lo, hi) = self.cont_bounds[col].unwrap_or((0.0, 1.0));
                let value = lo + self.rng.random::<f64>() * (hi - lo);
                let op = if self.rng.random_range(0..2u8) == 0 { Op::Le } else { Op::Ge };
                Predicate { col, op, value }
            }
        }
    }

    /// Generate a batch of queries.
    pub fn gen_queries(&mut self, n: usize) -> Vec<Query> {
        (0..n).map(|_| self.gen_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{CatColumn, ContColumn};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::Categorical(CatColumn::from_codes_dense(
                    "c",
                    (0..100u32).map(|i| i % 7).collect(),
                    7,
                )),
                Column::Continuous(ContColumn::new("x", (0..100).map(|i| i as f64).collect())),
            ],
        )
        .unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let t = table();
        let q1 = WorkloadGenerator::new(&t, WorkloadConfig::default(), 7).gen_queries(10);
        let q2 = WorkloadGenerator::new(&t, WorkloadConfig::default(), 7).gen_queries(10);
        assert_eq!(q1, q2);
        let q3 = WorkloadGenerator::new(&t, WorkloadConfig::default(), 8).gen_queries(10);
        assert_ne!(q1, q3);
    }

    #[test]
    fn predicate_count_respects_config() {
        let t = table();
        let cfg = WorkloadConfig { min_predicates: 2, max_predicates: 2, categorical_eq: true };
        let mut g = WorkloadGenerator::new(&t, cfg, 1);
        for q in g.gen_queries(50) {
            assert_eq!(q.predicates.len(), 2);
            // distinct columns
            assert_ne!(q.predicates[0].col, q.predicates[1].col);
        }
    }

    #[test]
    fn continuous_ops_are_range_only() {
        let t = table();
        let mut g = WorkloadGenerator::new(&t, WorkloadConfig::default(), 3);
        for q in g.gen_queries(200) {
            for p in &q.predicates {
                if t.columns[p.col].is_continuous() {
                    assert!(matches!(p.op, Op::Le | Op::Ge));
                    assert!((0.0..=99.0).contains(&p.value));
                } else {
                    assert!(matches!(p.op, Op::Eq | Op::Le | Op::Ge));
                    assert!((0.0..7.0).contains(&p.value));
                }
            }
        }
    }
}
