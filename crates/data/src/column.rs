//! Column storage: dictionary-encoded categorical and raw continuous columns.

/// A dictionary-encoded categorical column.
///
/// The dictionary is kept sorted lexicographically, so the integer codes
/// preserve the order of the original values — exactly the encoding strategy
/// of the paper (§3, "Encoding Strategy"): `dog → 1, cat → 0, monkey → 2`.
#[derive(Debug, Clone, PartialEq)]
pub struct CatColumn {
    /// Column name.
    pub name: String,
    /// Sorted distinct values; `codes[i]` indexes into this.
    pub dict: Vec<String>,
    /// Per-row codes, each `< dict.len()`.
    pub codes: Vec<u32>,
}

impl CatColumn {
    /// Build a categorical column from raw string values.
    ///
    /// The dictionary is the sorted set of distinct values and codes follow
    /// lexicographic order.
    pub fn from_values(name: impl Into<String>, values: &[&str]) -> Self {
        let mut dict: Vec<String> = values.iter().map(|s| s.to_string()).collect();
        dict.sort_unstable();
        dict.dedup();
        let codes = values
            .iter()
            .map(|v| dict.binary_search_by(|d| d.as_str().cmp(v)).expect("value in dict") as u32)
            .collect();
        CatColumn { name: name.into(), dict, codes }
    }

    /// Build directly from codes and an already-sorted dictionary.
    ///
    /// # Panics
    /// Panics (in debug builds) if any code is out of range or the dictionary
    /// is not sorted.
    pub fn from_codes(name: impl Into<String>, codes: Vec<u32>, dict: Vec<String>) -> Self {
        debug_assert!(dict.windows(2).all(|w| w[0] <= w[1]), "dictionary must be sorted");
        debug_assert!(codes.iter().all(|&c| (c as usize) < dict.len()));
        CatColumn { name: name.into(), codes, dict }
    }

    /// Build a categorical column whose "dictionary" is just the code space
    /// `0..domain` rendered as zero-padded strings (used by synthetic data).
    pub fn from_codes_dense(name: impl Into<String>, codes: Vec<u32>, domain: u32) -> Self {
        let width = (domain.max(1) as f64).log10().floor() as usize + 1;
        let dict = (0..domain).map(|c| format!("{c:0width$}")).collect();
        Self::from_codes(name, codes, dict)
    }

    /// Number of distinct values.
    pub fn domain_size(&self) -> usize {
        self.dict.len()
    }

    /// Look up the code for a raw value.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.dict.binary_search_by(|d| d.as_str().cmp(value)).ok().map(|i| i as u32)
    }
}

/// A continuous `f64` column.
#[derive(Debug, Clone, PartialEq)]
pub struct ContColumn {
    /// Column name.
    pub name: String,
    /// Per-row values. NaNs are rejected at construction.
    pub values: Vec<f64>,
}

impl ContColumn {
    /// Build a continuous column, asserting the values are NaN-free.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        debug_assert!(values.iter().all(|v| !v.is_nan()), "continuous columns must be NaN-free");
        ContColumn { name: name.into(), values }
    }

    /// Minimum value, or `None` for an empty column.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum value, or `None` for an empty column.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }
}

/// A table column: categorical or continuous.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Dictionary-encoded categorical column.
    Categorical(CatColumn),
    /// Raw `f64` column.
    Continuous(ContColumn),
}

impl Column {
    /// Column name.
    pub fn name(&self) -> &str {
        match self {
            Column::Categorical(c) => &c.name,
            Column::Continuous(c) => &c.name,
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical(c) => c.codes.len(),
            Column::Continuous(c) => c.values.len(),
        }
    }

    /// True when the column stores no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for [`Column::Continuous`].
    pub fn is_continuous(&self) -> bool {
        matches!(self, Column::Continuous(_))
    }

    /// Row value projected to the shared `f64` comparison space:
    /// categorical rows yield their code as `f64`, continuous rows the value.
    #[inline]
    pub fn value_as_f64(&self, row: usize) -> f64 {
        match self {
            Column::Categorical(c) => c.codes[row] as f64,
            Column::Continuous(c) => c.values[row],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_is_sorted_and_codes_preserve_order() {
        let col = CatColumn::from_values("pet", &["dog", "cat", "monkey", "cat"]);
        assert_eq!(col.dict, vec!["cat", "dog", "monkey"]);
        assert_eq!(col.codes, vec![1, 0, 2, 0]);
        assert_eq!(col.domain_size(), 3);
        assert_eq!(col.code_of("monkey"), Some(2));
        assert_eq!(col.code_of("ferret"), None);
    }

    #[test]
    fn dense_dictionary_orders_numerically() {
        let col = CatColumn::from_codes_dense("id", vec![0, 11, 5], 12);
        // zero-padded rendering keeps lexicographic == numeric order
        assert_eq!(col.dict[0], "00");
        assert_eq!(col.dict[11], "11");
        assert!(col.dict.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn continuous_min_max() {
        let col = ContColumn::new("x", vec![3.0, -1.0, 2.5]);
        assert_eq!(col.min(), Some(-1.0));
        assert_eq!(col.max(), Some(3.0));
        assert_eq!(ContColumn::new("e", vec![]).min(), None);
    }

    #[test]
    fn column_f64_projection() {
        let cat = Column::Categorical(CatColumn::from_values("c", &["b", "a"]));
        let cont = Column::Continuous(ContColumn::new("x", vec![1.5]));
        assert_eq!(cat.value_as_f64(0), 1.0);
        assert_eq!(cat.value_as_f64(1), 0.0);
        assert_eq!(cont.value_as_f64(0), 1.5);
        assert!(!cat.is_continuous());
        assert!(cont.is_continuous());
    }
}
