//! The Q-error metric and quantile summaries used throughout the evaluation.

/// Q-error of one estimate (§6.1.3, "Evaluation Metrics"):
/// `max(actsel/estsel, estsel/actsel)` with both selectivities floored at
/// `1/|T|` to avoid division by zero — exactly the paper's convention.
pub fn q_error(actsel: f64, estsel: f64, nrows: usize) -> f64 {
    let floor = 1.0 / nrows.max(1) as f64;
    let a = actsel.max(floor);
    let e = estsel.max(floor);
    (a / e).max(e / a)
}

/// Quantile summary of a batch of Q-errors, matching the columns of
/// Tables 2–5 (Mean / Median / 95th / 99th / Max).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Number of queries summarised.
    pub count: usize,
}

impl ErrorSummary {
    /// Summarise a batch of Q-errors. Returns `None` for an empty batch.
    pub fn from_errors(errors: &[f64]) -> Option<Self> {
        if errors.is_empty() {
            return None;
        }
        let mut sorted = errors.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(ErrorSummary {
            mean,
            median: quantile(&sorted, 0.50),
            p95: quantile(&sorted, 0.95),
            p99: quantile(&sorted, 0.99),
            max: *sorted.last().expect("nonempty"),
            count: sorted.len(),
        })
    }

    /// Render as a fixed-width table row: `name  mean median 95th 99th max`.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
            fmt3(self.mean),
            fmt3(self.median),
            fmt3(self.p95),
            fmt3(self.p99),
            fmt3(self.max)
        )
    }
}

/// Linear-interpolation quantile of an already-sorted slice.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Compact 3-significant-digit formatting used in printed tables.
pub fn fmt3(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 10_000.0 {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(0.1, 0.1, 100), 1.0);
        assert!((q_error(0.2, 0.1, 100) - 2.0).abs() < 1e-12);
        assert!((q_error(0.1, 0.2, 100) - 2.0).abs() < 1e-12);
        // floor: actsel 0 is treated as 1/|T|
        assert!((q_error(0.0, 0.01, 100) - 1.0).abs() < 1e-12 || q_error(0.0, 0.01, 100) > 1.0);
        assert_eq!(q_error(0.0, 0.0, 100), 1.0);
    }

    #[test]
    fn q_error_never_below_one() {
        for (a, e) in [(0.5, 0.25), (0.25, 0.5), (1.0, 1.0), (0.0, 1.0)] {
            assert!(q_error(a, e, 1000) >= 1.0);
        }
    }

    #[test]
    fn summary_quantiles() {
        let errs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = ErrorSummary::from_errors(&errs).unwrap();
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!(s.p95 > 94.0 && s.p95 < 97.0);
        assert!(s.p99 > 98.0 && s.p99 <= 100.0);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn empty_summary_is_none() {
        assert!(ErrorSummary::from_errors(&[]).is_none());
    }

    #[test]
    fn quantile_endpoints() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 3.0);
        assert_eq!(quantile(&v, 0.5), 2.0);
    }

    #[test]
    fn fmt3_ranges() {
        assert_eq!(fmt3(1.234), "1.23");
        assert_eq!(fmt3(12.34), "12.3");
        assert_eq!(fmt3(123.4), "123");
        assert!(fmt3(1.93e5).contains('e'));
    }
}
