//! Minimal CSV ingestion: load a file (or reader) into a [`Table`],
//! inferring per-column types.
//!
//! Dependency-free by design: handles the common subset of RFC 4180 —
//! comma separation, double-quoted fields with `""` escapes, a header
//! row, and `\r\n`/`\n` line endings. A column becomes
//! [`crate::Column::Continuous`] when every non-empty value parses as a
//! float, otherwise categorical (dictionary-encoded). Empty fields become
//! NaN-free sentinels: the column's minimum for continuous columns, the
//! empty string for categorical ones.

use crate::column::{CatColumn, Column, ContColumn};
use crate::error::DataError;
use crate::table::Table;
use std::io::BufRead;
use std::path::Path;

/// Parse one CSV record (handles quotes); returns the fields.
fn parse_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Load a table from any buffered reader. The first record is the header.
pub fn read_csv<R: BufRead>(name: &str, reader: R) -> Result<Table, DataError> {
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(Ok(h)) => h,
        _ => return Err(DataError::EmptyTable),
    };
    let names = parse_record(header.trim_end_matches('\r'));
    let ncols = names.len();
    let mut raw: Vec<Vec<String>> = vec![Vec::new(); ncols];
    for line in lines {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(line);
        for (c, slot) in raw.iter_mut().enumerate() {
            slot.push(fields.get(c).cloned().unwrap_or_default());
        }
    }
    if raw.first().is_none_or(|c| c.is_empty()) {
        return Err(DataError::EmptyTable);
    }

    let columns =
        names.into_iter().zip(raw).map(|(name, values)| build_column(name, values)).collect();
    Table::new(name, columns)
}

/// Load a table from a CSV file; the table takes the file stem as name.
pub fn read_csv_file(path: impl AsRef<Path>) -> Result<Table, DataError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|_| DataError::EmptyTable)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("csv").to_string();
    read_csv(&name, std::io::BufReader::new(file))
}

fn build_column(name: String, values: Vec<String>) -> Column {
    let mut parsed: Vec<Option<f64>> = Vec::with_capacity(values.len());
    let mut numeric = true;
    for v in &values {
        if v.is_empty() {
            parsed.push(None);
            continue;
        }
        match v.trim().parse::<f64>() {
            Ok(f) if f.is_finite() => parsed.push(Some(f)),
            _ => {
                numeric = false;
                break;
            }
        }
    }
    if numeric && parsed.iter().any(Option::is_some) {
        let min = parsed.iter().flatten().copied().fold(f64::INFINITY, f64::min);
        let vals = parsed.into_iter().map(|v| v.unwrap_or(min)).collect();
        Column::Continuous(ContColumn::new(name, vals))
    } else {
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        Column::Categorical(CatColumn::from_values(name, &refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn infers_types_from_header_and_rows() {
        let csv = "city,lat,pop\nParis,48.85,100\n\"Los, Angeles\",34.05,200\nParis,48.90,\n";
        let t = read_csv("demo", Cursor::new(csv)).unwrap();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 3);
        match &t.columns[0] {
            Column::Categorical(c) => {
                assert_eq!(c.domain_size(), 2);
                assert_eq!(c.dict[0], "Los, Angeles"); // 'L' < 'P'
            }
            _ => panic!("city must be categorical"),
        }
        assert!(t.columns[1].is_continuous());
        match &t.columns[2] {
            // empty pop field becomes the column minimum (100)
            Column::Continuous(c) => assert_eq!(c.values, vec![100.0, 200.0, 100.0]),
            _ => panic!("pop must be continuous"),
        }
    }

    #[test]
    fn quoted_escapes() {
        let csv = "a\n\"say \"\"hi\"\"\"\nplain\n";
        let t = read_csv("q", Cursor::new(csv)).unwrap();
        match &t.columns[0] {
            Column::Categorical(c) => {
                assert!(c.dict.contains(&"say \"hi\"".to_string()));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn empty_input_errors() {
        assert!(read_csv("e", Cursor::new("")).is_err());
        assert!(read_csv("e", Cursor::new("a,b\n")).is_err());
    }

    #[test]
    fn mixed_column_falls_back_to_categorical() {
        let csv = "x\n1.5\nnot_a_number\n2.5\n";
        let t = read_csv("m", Cursor::new(csv)).unwrap();
        assert!(!t.columns[0].is_continuous());
    }

    #[test]
    fn crlf_line_endings() {
        let csv = "a,b\r\n1,2\r\n3,4\r\n";
        let t = read_csv("crlf", Cursor::new(csv)).unwrap();
        assert_eq!(t.nrows(), 2);
        assert!(t.columns.iter().all(|c| c.is_continuous()));
    }
}
