//! The estimator abstraction every method in the evaluation implements.

use crate::query::{Op, Predicate, Query, RangeQuery};

/// A single-table selectivity estimator.
///
/// Implementations answer normalised [`RangeQuery`]s; `Ne` predicates and
/// disjunctions are layered on top by [`EstimatorHarness`] via
/// inclusion–exclusion, as described in the paper (§2.1).
pub trait SelectivityEstimator {
    /// Human-readable name used in result tables.
    fn name(&self) -> &str;

    /// Estimated selectivity in `[0, 1]` for a conjunctive range query.
    fn estimate(&mut self, q: &RangeQuery) -> f64;

    /// In-memory footprint of the trained model in bytes (Table 6/12).
    fn model_size_bytes(&self) -> usize {
        0
    }
}

/// Helpers layered over any [`SelectivityEstimator`]: predicate queries with
/// `Ne`, and disjunctions via inclusion–exclusion.
pub struct EstimatorHarness;

impl EstimatorHarness {
    /// Estimate a predicate [`Query`], rewriting `Ne` conjuncts as
    /// `sel(rest) − sel(A=v ∧ rest)` recursively.
    pub fn estimate_query<E: SelectivityEstimator + ?Sized>(
        est: &mut E,
        q: &Query,
        ncols: usize,
    ) -> f64 {
        let (rq, nes) = match q.normalize(ncols) {
            Ok(v) => v,
            Err(_) => return 0.0,
        };
        Self::estimate_with_nes(est, rq, &nes)
    }

    fn estimate_with_nes<E: SelectivityEstimator + ?Sized>(
        est: &mut E,
        rq: RangeQuery,
        nes: &[Predicate],
    ) -> f64 {
        match nes.split_first() {
            None => {
                if rq.cols.iter().flatten().any(|iv| iv.is_empty()) {
                    return 0.0;
                }
                est.estimate(&rq).clamp(0.0, 1.0)
            }
            Some((ne, rest)) => {
                debug_assert_eq!(ne.op, Op::Ne);
                // sel(rest ∧ A≠v) = sel(rest) − sel(rest ∧ A=v)
                let without = Self::estimate_with_nes(est, rq.clone(), rest);
                let mut with_eq = rq;
                let point = crate::query::Interval::point(ne.value);
                with_eq.cols[ne.col] = Some(match with_eq.cols[ne.col] {
                    Some(prev) => prev.intersect(&point),
                    None => point,
                });
                let eq = Self::estimate_with_nes(est, with_eq, rest);
                (without - eq).max(0.0)
            }
        }
    }

    /// Estimate a disjunction of conjunctive queries via inclusion–exclusion:
    /// `sel(q1 ∨ q2) = sel(q1) + sel(q2) − sel(q1 ∧ q2)` generalised to any
    /// number of disjuncts. Exponential in the number of disjuncts, which is
    /// fine for the small disjunctions the paper targets.
    pub fn estimate_disjunction<E: SelectivityEstimator + ?Sized>(
        est: &mut E,
        disjuncts: &[Query],
        ncols: usize,
    ) -> f64 {
        let n = disjuncts.len();
        if n == 0 {
            return 0.0;
        }
        assert!(n <= 20, "inclusion-exclusion over >20 disjuncts is intractable");
        let mut total = 0.0;
        for mask in 1u32..(1 << n) {
            let mut merged = Query::default();
            for (i, d) in disjuncts.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    merged.predicates.extend_from_slice(&d.predicates);
                }
            }
            let sel = Self::estimate_query(est, &merged, ncols);
            if mask.count_ones() % 2 == 1 {
                total += sel;
            } else {
                total -= sel;
            }
        }
        total.clamp(0.0, 1.0)
    }
}

/// An oracle estimator answering from the table itself — useful for testing
/// harness algebra and as the "true cardinalities" arm of the end-to-end
/// experiment (Fig. 5).
pub struct ExactOracle {
    table: crate::table::Table,
}

impl ExactOracle {
    /// Wrap a table.
    pub fn new(table: crate::table::Table) -> Self {
        ExactOracle { table }
    }
}

impl SelectivityEstimator for ExactOracle {
    fn name(&self) -> &str {
        "exact"
    }

    fn estimate(&mut self, q: &RangeQuery) -> f64 {
        crate::exec::exact_selectivity_ranges(&self.table, q)
    }

    fn model_size_bytes(&self) -> usize {
        // The oracle "model" is the data itself.
        self.table.columns.iter().map(|c| c.len() * 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ContColumn};
    use crate::exec::exact_selectivity;
    use crate::query::{Op, Predicate};
    use crate::table::Table;

    fn table() -> Table {
        Table::new(
            "t",
            vec![Column::Continuous(ContColumn::new("x", (0..10).map(|i| i as f64).collect()))],
        )
        .unwrap()
    }

    #[test]
    fn ne_rewrite_matches_exact() {
        let t = table();
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Ne, value: 3.0 },
            Predicate { col: 0, op: Op::Le, value: 5.0 },
        ]);
        let truth = exact_selectivity(&t, &q);
        let mut oracle = ExactOracle::new(t);
        let est = EstimatorHarness::estimate_query(&mut oracle, &q, 1);
        assert!((est - truth).abs() < 1e-12, "{est} vs {truth}");
    }

    #[test]
    fn multiple_ne_rewrites() {
        let t = table();
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Ne, value: 3.0 },
            Predicate { col: 0, op: Op::Ne, value: 7.0 },
        ]);
        let truth = exact_selectivity(&t, &q);
        let mut oracle = ExactOracle::new(t);
        let est = EstimatorHarness::estimate_query(&mut oracle, &q, 1);
        assert!((est - truth).abs() < 1e-12);
    }

    #[test]
    fn disjunction_inclusion_exclusion() {
        let t = table();
        // x <= 2 OR x >= 8  -> 5/10
        let q1 = Query::new(vec![Predicate { col: 0, op: Op::Le, value: 2.0 }]);
        let q2 = Query::new(vec![Predicate { col: 0, op: Op::Ge, value: 8.0 }]);
        let mut oracle = ExactOracle::new(t);
        let est = EstimatorHarness::estimate_disjunction(&mut oracle, &[q1, q2], 1);
        assert!((est - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlapping_disjunction() {
        let t = table();
        // x <= 5 OR x >= 3 -> everything
        let q1 = Query::new(vec![Predicate { col: 0, op: Op::Le, value: 5.0 }]);
        let q2 = Query::new(vec![Predicate { col: 0, op: Op::Ge, value: 3.0 }]);
        let mut oracle = ExactOracle::new(t);
        let est = EstimatorHarness::estimate_disjunction(&mut oracle, &[q1, q2], 1);
        assert!((est - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contradictory_range_is_zero() {
        let t = table();
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Gt, value: 5.0 },
            Predicate { col: 0, op: Op::Lt, value: 5.0 },
        ]);
        let mut oracle = ExactOracle::new(t);
        assert_eq!(EstimatorHarness::estimate_query(&mut oracle, &q, 1), 0.0);
    }
}
