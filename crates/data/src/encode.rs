//! Ordinal encoding of column domains.
//!
//! The AR model consumes each attribute as an integer in `[0, |A_i|)`
//! following the paper's encoding strategy (§3): the mapping is the rank of
//! the value among the sorted distinct values, so order is preserved and
//! range predicates translate to contiguous index ranges.

use crate::column::Column;
use crate::query::Interval;

/// The ordinal encoding of one column: its sorted distinct values
/// (projected to the shared `f64` space).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnEncoding {
    /// Sorted distinct values; the encoded form of `distinct[i]` is `i`.
    pub distinct: Vec<f64>,
}

impl ColumnEncoding {
    /// Build the encoding for a column by collecting and sorting its
    /// distinct values.
    pub fn from_column(col: &Column) -> Self {
        let mut distinct: Vec<f64> = match col {
            Column::Categorical(c) => (0..c.dict.len()).map(|i| i as f64).collect(),
            Column::Continuous(c) => {
                let mut v = c.values.clone();
                v.sort_unstable_by(f64::total_cmp);
                v.dedup();
                v
            }
        };
        distinct.shrink_to_fit();
        ColumnEncoding { distinct }
    }

    /// Domain size `|A_i|`.
    pub fn domain_size(&self) -> usize {
        self.distinct.len()
    }

    /// Encode a raw value to its ordinal, or `None` if absent.
    pub fn encode(&self, v: f64) -> Option<usize> {
        self.distinct.binary_search_by(|d| d.total_cmp(&v)).ok()
    }

    /// Decode an ordinal back to the raw value.
    pub fn decode(&self, idx: usize) -> f64 {
        self.distinct[idx]
    }

    /// Translate a value interval into the inclusive ordinal range
    /// `[lo_idx, hi_idx]` of distinct values it covers, or `None` when no
    /// distinct value falls inside.
    pub fn index_range(&self, iv: &Interval) -> Option<(usize, usize)> {
        let lo_idx = if iv.lo == f64::NEG_INFINITY {
            0
        } else if iv.lo_strict {
            self.distinct.partition_point(|&d| d <= iv.lo)
        } else {
            self.distinct.partition_point(|&d| d < iv.lo)
        };
        let hi_end = if iv.hi == f64::INFINITY {
            self.distinct.len()
        } else if iv.hi_strict {
            self.distinct.partition_point(|&d| d < iv.hi)
        } else {
            self.distinct.partition_point(|&d| d <= iv.hi)
        };
        if lo_idx >= hi_end {
            None
        } else {
            Some((lo_idx, hi_end - 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{CatColumn, ContColumn};
    use crate::query::Op;

    fn enc() -> ColumnEncoding {
        ColumnEncoding::from_column(&Column::Continuous(ContColumn::new(
            "x",
            vec![5.0, 1.0, 3.0, 1.0, 9.0],
        )))
    }

    #[test]
    fn distinct_sorted_dedup() {
        let e = enc();
        assert_eq!(e.distinct, vec![1.0, 3.0, 5.0, 9.0]);
        assert_eq!(e.domain_size(), 4);
        assert_eq!(e.encode(3.0), Some(1));
        assert_eq!(e.encode(4.0), None);
        assert_eq!(e.decode(2), 5.0);
    }

    #[test]
    fn categorical_encoding_is_code_space() {
        let e = ColumnEncoding::from_column(&Column::Categorical(CatColumn::from_values(
            "c",
            &["b", "a", "c", "a"],
        )));
        assert_eq!(e.distinct, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn index_range_closed_and_strict() {
        let e = enc(); // [1,3,5,9]
        assert_eq!(e.index_range(&Interval::closed(3.0, 5.0)), Some((1, 2)));
        assert_eq!(e.index_range(&Interval::from_op(Op::Gt, 3.0)), Some((2, 3)));
        assert_eq!(e.index_range(&Interval::from_op(Op::Lt, 1.0)), None);
        assert_eq!(e.index_range(&Interval::from_op(Op::Le, 1.0)), Some((0, 0)));
        assert_eq!(e.index_range(&Interval::full()), Some((0, 3)));
        assert_eq!(e.index_range(&Interval::closed(3.5, 4.5)), None);
        assert_eq!(e.index_range(&Interval::point(9.0)), Some((3, 3)));
    }
}
