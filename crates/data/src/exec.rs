//! Exact selectivity computation by columnar scan — the ground truth.

use crate::query::{Query, RangeQuery};
use crate::table::Table;

/// Count rows of `table` matching the conjunction `q` exactly.
pub fn exact_count(table: &Table, q: &Query) -> usize {
    // Columnar evaluation: start from all-true and narrow per predicate,
    // cheapest-first is unnecessary at our scales.
    let n = table.nrows();
    let mut alive: Vec<bool> = vec![true; n];
    for p in &q.predicates {
        let col = &table.columns[p.col];
        match col {
            crate::column::Column::Categorical(c) => {
                for (a, &code) in alive.iter_mut().zip(&c.codes) {
                    if *a && !p.matches(code as f64) {
                        *a = false;
                    }
                }
            }
            crate::column::Column::Continuous(c) => {
                for (a, &v) in alive.iter_mut().zip(&c.values) {
                    if *a && !p.matches(v) {
                        *a = false;
                    }
                }
            }
        }
    }
    alive.iter().filter(|&&a| a).count()
}

/// Exact selectivity `actsel(q) ∈ [0, 1]` of a conjunctive query.
pub fn exact_selectivity(table: &Table, q: &Query) -> f64 {
    if table.nrows() == 0 {
        return 0.0;
    }
    exact_count(table, q) as f64 / table.nrows() as f64
}

/// Exact selectivity of a normalised range query.
pub fn exact_selectivity_ranges(table: &Table, rq: &RangeQuery) -> f64 {
    let n = table.nrows();
    if n == 0 {
        return 0.0;
    }
    let mut alive: Vec<bool> = vec![true; n];
    for (ci, iv) in rq.cols.iter().enumerate() {
        let Some(iv) = iv else { continue };
        let col = &table.columns[ci];
        for (r, a) in alive.iter_mut().enumerate() {
            if *a && !iv.contains(col.value_as_f64(r)) {
                *a = false;
            }
        }
    }
    alive.iter().filter(|&&a| a).count() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{CatColumn, Column, ContColumn};
    use crate::query::{Interval, Op, Predicate};

    fn toy() -> Table {
        Table::new(
            "t",
            vec![
                Column::Categorical(CatColumn::from_values("c", &["a", "b", "a", "c"])),
                Column::Continuous(ContColumn::new("x", vec![1.0, 2.0, 3.0, 4.0])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn exact_conjunction() {
        let t = toy();
        // c = "a" AND x >= 2   -> row 2 only
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Eq, value: 0.0 },
            Predicate { col: 1, op: Op::Ge, value: 2.0 },
        ]);
        assert_eq!(exact_count(&t, &q), 1);
        assert!((exact_selectivity(&t, &q) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_query_selects_all() {
        let t = toy();
        assert_eq!(exact_selectivity(&t, &Query::default()), 1.0);
    }

    #[test]
    fn ne_predicate() {
        let t = toy();
        let q = Query::new(vec![Predicate { col: 0, op: Op::Ne, value: 0.0 }]);
        assert_eq!(exact_count(&t, &q), 2);
    }

    #[test]
    fn range_query_matches_predicate_query() {
        let t = toy();
        let q = Query::new(vec![
            Predicate { col: 1, op: Op::Ge, value: 2.0 },
            Predicate { col: 1, op: Op::Lt, value: 4.0 },
        ]);
        let (rq, _) = q.normalize(t.ncols()).unwrap();
        assert_eq!(exact_selectivity(&t, &q), exact_selectivity_ranges(&t, &rq));
        assert_eq!(exact_count(&t, &q), 2);
    }

    #[test]
    fn unconstrained_range_query_is_one() {
        let t = toy();
        let rq = RangeQuery::unconstrained(2);
        assert_eq!(exact_selectivity_ranges(&t, &rq), 1.0);
        let _ = Interval::full(); // silence unused import in some cfgs
    }
}
