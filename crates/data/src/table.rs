//! The in-memory columnar [`Table`].

use crate::column::Column;
use crate::error::DataError;

/// An immutable in-memory columnar relation.
#[derive(Debug, Clone)]
pub struct Table {
    /// Relation name.
    pub name: String,
    /// Columns, all the same length.
    pub columns: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// Construct a table, validating that all columns have equal length.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self, DataError> {
        let nrows = columns.first().map_or(0, |c| c.len());
        for (i, c) in columns.iter().enumerate() {
            if c.len() != nrows {
                return Err(DataError::RaggedColumns { expected: nrows, got: c.len(), col: i });
            }
        }
        Ok(Table { name: name.into(), columns, nrows })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// Look up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Borrow a column, checking bounds.
    pub fn column(&self, col: usize) -> Result<&Column, DataError> {
        self.columns.get(col).ok_or(DataError::ColumnOutOfBounds { col, ncols: self.columns.len() })
    }

    /// A new table keeping only the rows whose index appears in `rows`.
    pub fn take_rows(&self, rows: &[usize]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Categorical(cc) => Column::Categorical(crate::column::CatColumn {
                    name: cc.name.clone(),
                    dict: cc.dict.clone(),
                    codes: rows.iter().map(|&r| cc.codes[r]).collect(),
                }),
                Column::Continuous(cc) => Column::Continuous(crate::column::ContColumn {
                    name: cc.name.clone(),
                    values: rows.iter().map(|&r| cc.values[r]).collect(),
                }),
            })
            .collect();
        Table { name: self.name.clone(), columns, nrows: rows.len() }
    }

    /// Row `row` projected to the shared `f64` space, one entry per column.
    pub fn row_as_f64(&self, row: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.columns.iter().map(|c| c.value_as_f64(row)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{CatColumn, ContColumn};

    fn toy() -> Table {
        Table::new(
            "toy",
            vec![
                Column::Categorical(CatColumn::from_values("pet", &["dog", "cat", "dog"])),
                Column::Continuous(ContColumn::new("x", vec![1.0, 2.0, 3.0])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let t = toy();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.column_index("x"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert!(t.column(5).is_err());
    }

    #[test]
    fn ragged_columns_rejected() {
        let err = Table::new(
            "bad",
            vec![
                Column::Continuous(ContColumn::new("a", vec![1.0])),
                Column::Continuous(ContColumn::new("b", vec![1.0, 2.0])),
            ],
        )
        .unwrap_err();
        assert_eq!(err, DataError::RaggedColumns { expected: 1, got: 2, col: 1 });
    }

    #[test]
    fn take_rows_projects_all_columns() {
        let t = toy().take_rows(&[2, 0]);
        assert_eq!(t.nrows(), 2);
        match &t.columns[1] {
            Column::Continuous(c) => assert_eq!(c.values, vec![3.0, 1.0]),
            _ => panic!(),
        }
    }

    #[test]
    fn row_projection() {
        let t = toy();
        let mut buf = Vec::new();
        t.row_as_f64(1, &mut buf);
        assert_eq!(buf, vec![0.0, 2.0]); // "cat" encodes to 0
    }
}
