//! Conjunctive predicates and their normalised per-column range form.

use crate::error::DataError;
use crate::table::Table;

/// Comparison operators supported by predicates (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

/// A single-attribute predicate `A_col op value`.
///
/// For categorical columns `value` is the dictionary code (as `f64`);
/// for continuous columns it is the raw value. Codes below 2^53 are exact
/// in `f64`, so the shared comparison space loses nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// Column index within the table.
    pub col: usize,
    /// Comparison operator.
    pub op: Op,
    /// Operand in the shared `f64` space.
    pub value: f64,
}

impl Predicate {
    /// Evaluate the predicate against a single value.
    #[inline]
    pub fn matches(&self, v: f64) -> bool {
        match self.op {
            Op::Eq => v == self.value,
            Op::Ne => v != self.value,
            Op::Lt => v < self.value,
            Op::Le => v <= self.value,
            Op::Gt => v > self.value,
            Op::Ge => v >= self.value,
        }
    }
}

/// A conjunction of predicates over one table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// The conjuncts. Multiple predicates may reference the same column
    /// (e.g. `30 ≤ A ∧ A ≤ 100`).
    pub predicates: Vec<Predicate>,
}

impl Query {
    /// Build a query from predicate triples.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Query { predicates }
    }

    /// Convenience constructor for a predicate referencing a column by name,
    /// resolving categorical operands through the dictionary.
    pub fn pred_by_name(
        table: &Table,
        name: &str,
        op: Op,
        operand: &str,
    ) -> Result<Predicate, DataError> {
        let col = table
            .column_index(name)
            .ok_or(DataError::ColumnOutOfBounds { col: usize::MAX, ncols: table.ncols() })?;
        let value = match table.column(col)? {
            crate::column::Column::Categorical(c) => c
                .code_of(operand)
                .ok_or_else(|| DataError::UnknownCategory { col, value: operand.to_string() })?
                as f64,
            crate::column::Column::Continuous(_) => {
                operand.parse::<f64>().map_err(|_| DataError::TypeMismatch { col })?
            }
        };
        Ok(Predicate { col, op, value })
    }

    /// Normalise the conjunction into one optional [`Interval`] per column.
    ///
    /// `Ne` predicates cannot be expressed as a single interval; they are
    /// returned separately so the harness can apply inclusion–exclusion
    /// (`sel(A≠v ∧ rest) = sel(rest) − sel(A=v ∧ rest)`).
    pub fn normalize(&self, ncols: usize) -> Result<(RangeQuery, Vec<Predicate>), DataError> {
        let mut ranges: Vec<Option<Interval>> = vec![None; ncols];
        let mut nes = Vec::new();
        for p in &self.predicates {
            if p.col >= ncols {
                return Err(DataError::ColumnOutOfBounds { col: p.col, ncols });
            }
            if p.op == Op::Ne {
                nes.push(*p);
                continue;
            }
            let iv = Interval::from_op(p.op, p.value);
            let slot = &mut ranges[p.col];
            *slot = Some(match slot.take() {
                Some(prev) => prev.intersect(&iv),
                None => iv,
            });
        }
        Ok((RangeQuery { cols: ranges }, nes))
    }
}

/// A (possibly half-open) interval over the shared `f64` comparison space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (`-inf` if unbounded).
    pub lo: f64,
    /// Upper bound (`+inf` if unbounded).
    pub hi: f64,
    /// When true the lower bound is exclusive.
    pub lo_strict: bool,
    /// When true the upper bound is exclusive.
    pub hi_strict: bool,
}

impl Interval {
    /// The full line `(-inf, +inf)`.
    pub fn full() -> Self {
        Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY, lo_strict: false, hi_strict: false }
    }

    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Self {
        Interval { lo, hi, lo_strict: false, hi_strict: false }
    }

    /// Degenerate point interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Self::closed(v, v)
    }

    /// The interval equivalent of `op value` (for all ops except `Ne`).
    pub fn from_op(op: Op, value: f64) -> Self {
        match op {
            Op::Eq => Self::point(value),
            Op::Lt => {
                Interval { lo: f64::NEG_INFINITY, hi: value, lo_strict: false, hi_strict: true }
            }
            Op::Le => {
                Interval { lo: f64::NEG_INFINITY, hi: value, lo_strict: false, hi_strict: false }
            }
            Op::Gt => Interval { lo: value, hi: f64::INFINITY, lo_strict: true, hi_strict: false },
            Op::Ge => Interval { lo: value, hi: f64::INFINITY, lo_strict: false, hi_strict: false },
            Op::Ne => panic!("Ne is not an interval; handled via inclusion-exclusion"),
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        let lo_ok = if self.lo_strict { v > self.lo } else { v >= self.lo };
        let hi_ok = if self.hi_strict { v < self.hi } else { v <= self.hi };
        lo_ok && hi_ok
    }

    /// Intersection of two intervals (possibly empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let (lo, lo_strict) = if self.lo > other.lo {
            (self.lo, self.lo_strict)
        } else if other.lo > self.lo {
            (other.lo, other.lo_strict)
        } else {
            (self.lo, self.lo_strict || other.lo_strict)
        };
        let (hi, hi_strict) = if self.hi < other.hi {
            (self.hi, self.hi_strict)
        } else if other.hi < self.hi {
            (other.hi, other.hi_strict)
        } else {
            (self.hi, self.hi_strict || other.hi_strict)
        };
        Interval { lo, hi, lo_strict, hi_strict }
    }

    /// True when no value can satisfy the interval.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && (self.lo_strict || self.hi_strict))
    }

    /// True when the interval is the full line.
    pub fn is_full(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }
}

/// A query normalised to one optional interval per table column.
///
/// `cols[i] == None` means column `i` is unconstrained (a *wildcard*).
#[derive(Debug, Clone, PartialEq)]
pub struct RangeQuery {
    /// Per-column constraint.
    pub cols: Vec<Option<Interval>>,
}

impl RangeQuery {
    /// An unconstrained query over `ncols` columns (selectivity 1).
    pub fn unconstrained(ncols: usize) -> Self {
        RangeQuery { cols: vec![None; ncols] }
    }

    /// Number of constrained columns.
    pub fn num_constrained(&self) -> usize {
        self.cols.iter().filter(|c| c.is_some()).count()
    }

    /// True when a full row (projected to `f64`) satisfies every constraint.
    #[inline]
    pub fn matches_row(&self, row: &[f64]) -> bool {
        self.cols.iter().zip(row).all(|(c, v)| c.as_ref().is_none_or(|iv| iv.contains(*v)))
    }

    /// A canonical 64-bit fingerprint of the query: FNV-1a over the
    /// constrained columns in index order, with endpoints normalised
    /// (`-0.0` → `0.0`, full intervals treated as unconstrained). Two
    /// queries that constrain the same columns to the same ranges hash
    /// identically, independent of how they were constructed.
    ///
    /// The serving layer keys its result cache on this value, and
    /// deterministic inference derives per-query sampling seeds from it,
    /// so a query's estimate is a pure function of (model, query) — which
    /// is exactly what makes cached and freshly computed results agree.
    pub fn canonical_key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        #[inline]
        fn mix(h: u64, v: u64) -> u64 {
            let mut h = h;
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        #[inline]
        fn norm_bits(v: f64) -> u64 {
            // collapse -0.0 / +0.0; NaN endpoints are rejected upstream but
            // canonicalise anyway so the hash is total
            if v == 0.0 {
                0.0f64.to_bits()
            } else if v.is_nan() {
                f64::NAN.to_bits()
            } else {
                v.to_bits()
            }
        }
        let mut h = mix(OFFSET, self.cols.len() as u64);
        for (col, iv) in self.cols.iter().enumerate() {
            let Some(iv) = iv else { continue };
            if iv.is_full() {
                continue;
            }
            h = mix(h, col as u64);
            h = mix(h, norm_bits(iv.lo));
            h = mix(h, norm_bits(iv.hi));
            h = mix(h, (iv.lo_strict as u64) << 1 | iv.hi_strict as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_ops_match_semantics() {
        let cases = [
            (Op::Eq, 2.0, vec![(2.0, true), (3.0, false)]),
            (Op::Ne, 2.0, vec![(2.0, false), (3.0, true)]),
            (Op::Lt, 2.0, vec![(1.9, true), (2.0, false)]),
            (Op::Le, 2.0, vec![(2.0, true), (2.1, false)]),
            (Op::Gt, 2.0, vec![(2.1, true), (2.0, false)]),
            (Op::Ge, 2.0, vec![(2.0, true), (1.9, false)]),
        ];
        for (op, value, checks) in cases {
            let p = Predicate { col: 0, op, value };
            for (v, want) in checks {
                assert_eq!(p.matches(v), want, "{op:?} {value} vs {v}");
            }
        }
    }

    #[test]
    fn normalize_intersects_same_column() {
        // 30 <= A0 <= 100
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Ge, value: 30.0 },
            Predicate { col: 0, op: Op::Le, value: 100.0 },
        ]);
        let (rq, nes) = q.normalize(2).unwrap();
        assert!(nes.is_empty());
        let iv = rq.cols[0].unwrap();
        assert!(iv.contains(30.0) && iv.contains(100.0));
        assert!(!iv.contains(29.9) && !iv.contains(100.1));
        assert!(rq.cols[1].is_none());
        assert_eq!(rq.num_constrained(), 1);
    }

    #[test]
    fn normalize_separates_ne() {
        let q = Query::new(vec![Predicate { col: 1, op: Op::Ne, value: 5.0 }]);
        let (rq, nes) = q.normalize(2).unwrap();
        assert!(rq.cols[1].is_none());
        assert_eq!(nes.len(), 1);
    }

    #[test]
    fn normalize_rejects_out_of_bounds() {
        let q = Query::new(vec![Predicate { col: 9, op: Op::Eq, value: 0.0 }]);
        assert!(q.normalize(2).is_err());
    }

    #[test]
    fn interval_intersection_and_emptiness() {
        let a = Interval::from_op(Op::Ge, 1.0);
        let b = Interval::from_op(Op::Lt, 1.0);
        assert!(a.intersect(&b).is_empty());
        let c = Interval::from_op(Op::Le, 1.0);
        let ac = a.intersect(&c);
        assert!(!ac.is_empty());
        assert!(ac.contains(1.0));
        // strictness is kept when bounds tie
        let d = Interval::from_op(Op::Gt, 1.0).intersect(&a);
        assert!(!d.contains(1.0));
    }

    #[test]
    fn empty_intersection_point() {
        let p = Interval::point(3.0);
        let q = Interval::from_op(Op::Gt, 3.0);
        assert!(p.intersect(&q).is_empty());
    }

    #[test]
    fn range_query_row_match() {
        let mut rq = RangeQuery::unconstrained(3);
        rq.cols[0] = Some(Interval::closed(0.0, 1.0));
        rq.cols[2] = Some(Interval::point(5.0));
        assert!(rq.matches_row(&[0.5, 99.0, 5.0]));
        assert!(!rq.matches_row(&[0.5, 99.0, 4.0]));
        assert!(!rq.matches_row(&[2.0, 99.0, 5.0]));
    }
}
