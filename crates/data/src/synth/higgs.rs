//! Synthetic HIGGS: high-level kinematic features of particle collisions.
//!
//! Paper profile: 11M rows, 7 continuous columns (`m_jj`, `m_jjj`, `m_lv`,
//! `m_jlv`, `m_bb`, `m_wbb`, `m_wwbb`; domains 3 × 10^5 – 8 × 10^6), *weak*
//! cross-column correlation (NCIE 0.67 on the paper's decreasing scale) and
//! *extreme* positive skew (Fisher ≈ 81): invariant masses are heavy-tailed.

use super::normal;
use crate::column::{Column, ContColumn};
use crate::table::Table;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The seven high-level feature names used in the paper.
pub const FEATURES: [&str; 7] = ["m_jj", "m_jjj", "m_lv", "m_jlv", "m_bb", "m_wbb", "m_wwbb"];

/// Generate a HIGGS-like table with `nrows` rows.
pub fn higgs(nrows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4849_4747); // "HIGG"

    // Per-feature lognormal body parameters. σ grows across features so the
    // tails differ; the tiny shared-latent coefficient keeps correlation weak.
    struct Feature {
        mu: f64,
        sigma: f64,
        shared_coef: f64,
        tail_p: f64,   // probability of a deep power-law tail event
        tail_amp: f64, // amplitude of tail events
    }
    let feats: Vec<Feature> = (0..FEATURES.len())
        .map(|i| Feature {
            mu: -0.2 + 0.15 * i as f64,
            sigma: 0.35 + 0.08 * i as f64 + 0.1 * rng.random::<f64>(),
            shared_coef: 0.12 + 0.05 * rng.random::<f64>(),
            tail_p: 0.002 + 0.002 * rng.random::<f64>(),
            tail_amp: 20.0 + 60.0 * rng.random::<f64>(),
        })
        .collect();

    let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(nrows); FEATURES.len()];
    for _ in 0..nrows {
        let shared = normal(&mut rng);
        for (j, f) in feats.iter().enumerate() {
            let own = normal(&mut rng);
            let z = f.shared_coef * shared + (1.0 - f.shared_coef * f.shared_coef).sqrt() * own;
            let mut v = (f.mu + f.sigma * z).exp();
            if rng.random::<f64>() < f.tail_p {
                // Pareto-style tail event: this is what drives Fisher
                // skewness into the tens, as in real HIGGS masses.
                let u: f64 = rng.random::<f64>();
                v += f.tail_amp * u.powf(-0.7);
            }
            cols[j].push(v);
        }
    }

    Table::new(
        "higgs",
        cols.into_iter()
            .zip(FEATURES)
            .map(|(values, name)| Column::Continuous(ContColumn::new(name, values)))
            .collect(),
    )
    .expect("columns constructed with equal length")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let t = higgs(1000, 1);
        assert_eq!(t.ncols(), 7);
        assert!(t.columns.iter().all(|c| c.is_continuous()));
        for (c, name) in t.columns.iter().zip(FEATURES) {
            assert_eq!(c.name(), name);
        }
    }

    #[test]
    fn values_positive_and_heavy_tailed() {
        let t = higgs(30_000, 2);
        for c in &t.columns {
            let Column::Continuous(cc) = c else { unreachable!() };
            assert!(cc.min().unwrap() > 0.0, "masses are positive");
        }
        let skew = crate::stats::table_skewness(&t);
        assert!(skew > 5.0, "HIGGS must be strongly right-skewed, got {skew}");
    }

    #[test]
    fn weak_correlation() {
        let t = higgs(8000, 3);
        // paper-scale: HIGGS NCIE (decreasing scale) is the *largest* of the
        // three datasets; here we only assert absolute weakness.
        let n = crate::stats::ncie_standard(&t, 30);
        assert!(n < 0.35, "expected weak correlation, got standard NCIE {n}");
    }
}
