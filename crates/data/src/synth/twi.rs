//! Synthetic TWI: geo-tagged tweets in the continental US.
//!
//! Paper profile: 19M rows, 2 continuous columns (`latitude`, `longitude`,
//! ≈ 3 × 10^6 distinct values each), strong spatial correlation (tweets
//! cluster around cities) and near-symmetric marginals (Fisher ≈ −1).

use super::{cumsum, normal, sample_cdf, zipf_weights};
use crate::column::{Column, ContColumn};
use crate::table::Table;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of synthetic population centres.
const CITIES: usize = 60;
/// Continental-US-like bounding box.
const LAT_RANGE: (f64, f64) = (24.5, 49.0);
const LON_RANGE: (f64, f64) = (-124.8, -66.9);

/// Generate a TWI-like table with `nrows` rows.
pub fn twi(nrows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5457_4931); // "TWI1"

    struct City {
        lat: f64,
        lon: f64,
        sigma_lat: f64,
        sigma_lon: f64,
        rho: f64, // orientation of the metro area
    }
    // Larger cities are denser and tighter, suburbs sprawl.
    let cities: Vec<City> = (0..CITIES)
        .map(|rank| {
            let tight = 1.0 / (1.0 + rank as f64 * 0.15);
            City {
                lat: LAT_RANGE.0 + (LAT_RANGE.1 - LAT_RANGE.0) * rng.random::<f64>(),
                lon: LON_RANGE.0 + (LON_RANGE.1 - LON_RANGE.0) * rng.random::<f64>(),
                sigma_lat: 0.05 + 0.6 * tight * rng.random::<f64>(),
                sigma_lon: 0.05 + 0.8 * tight * rng.random::<f64>(),
                rho: -0.9 + 1.8 * rng.random::<f64>(),
            }
        })
        .collect();
    let city_cdf = cumsum(&zipf_weights(CITIES, 1.05));

    let mut lats = Vec::with_capacity(nrows);
    let mut lons = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        // a sliver of genuinely rural tweets spreads over the whole box
        if rng.random::<f64>() < 0.03 {
            lats.push(LAT_RANGE.0 + (LAT_RANGE.1 - LAT_RANGE.0) * rng.random::<f64>());
            lons.push(LON_RANGE.0 + (LON_RANGE.1 - LON_RANGE.0) * rng.random::<f64>());
            continue;
        }
        let c = &cities[sample_cdf(&mut rng, &city_cdf)];
        let z0 = normal(&mut rng);
        let z1 = normal(&mut rng);
        let lat = c.lat + c.sigma_lat * z0;
        let lon = c.lon + c.sigma_lon * (c.rho * z0 + (1.0 - c.rho * c.rho).sqrt() * z1);
        lats.push(lat.clamp(LAT_RANGE.0, LAT_RANGE.1));
        lons.push(lon.clamp(LON_RANGE.0, LON_RANGE.1));
    }

    Table::new(
        "twi",
        vec![
            Column::Continuous(ContColumn::new("latitude", lats)),
            Column::Continuous(ContColumn::new("longitude", lons)),
        ],
    )
    .expect("columns constructed with equal length")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_bounds() {
        let t = twi(3000, 1);
        assert_eq!(t.ncols(), 2);
        for c in &t.columns {
            let Column::Continuous(cc) = c else { panic!("TWI is all-continuous") };
            assert!(cc.min().unwrap() >= LAT_RANGE.0.min(LON_RANGE.0));
            assert!(cc.max().unwrap() <= LAT_RANGE.1.max(LON_RANGE.1));
        }
    }

    #[test]
    fn spatially_clustered() {
        // the densest 1-degree lat cell should hold far more than the
        // uniform share — evidence of city clustering
        let t = twi(20_000, 2);
        let Column::Continuous(lat) = &t.columns[0] else { unreachable!() };
        let mut hist = [0usize; 25];
        for &v in &lat.values {
            let b = ((v - LAT_RANGE.0) / (LAT_RANGE.1 - LAT_RANGE.0) * 25.0) as usize;
            hist[b.min(24)] += 1;
        }
        let max = *hist.iter().max().unwrap();
        assert!(max as f64 > 3.0 * (20_000.0 / 25.0), "max cell {max}");
    }

    #[test]
    fn near_symmetric_marginals() {
        let t = twi(20_000, 3);
        let skew = crate::stats::table_skewness(&t).abs();
        assert!(skew < 3.0, "TWI skew should be modest, got {skew}");
    }
}
