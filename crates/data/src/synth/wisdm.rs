//! Synthetic WISDM: smartphone/smartwatch sensor readings.
//!
//! Paper profile: 4.8M rows, 2 categorical columns (`subject_id`: 51,
//! `activity_code`: 18) and 3 continuous sensor axes (`x`, `y`, `z`, domain
//! ≈ 10^6 distinct values each); strong correlation (activities shape the
//! sensor distribution), moderate positive skew (≈ 2.3).

use super::{cumsum, normal, sample_cdf, zipf_weights};
use crate::column::{CatColumn, Column, ContColumn};
use crate::table::Table;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SUBJECTS: usize = 51;
const ACTIVITIES: usize = 18;

/// Generate a WISDM-like table with `nrows` rows.
pub fn wisdm(nrows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5749_5344); // "WISD"

    // Subjects contribute unevenly (some wore the watch longer).
    let subject_cdf = cumsum(&zipf_weights(SUBJECTS, 0.6));
    // Each subject prefers a handful of activities: a per-subject Zipf
    // permutation over the 18 activity codes.
    let mut subject_activity_cdf = Vec::with_capacity(SUBJECTS);
    for _ in 0..SUBJECTS {
        let mut perm: Vec<usize> = (0..ACTIVITIES).collect();
        for i in (1..ACTIVITIES).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        let base = zipf_weights(ACTIVITIES, 1.0);
        let mut w = vec![0.0; ACTIVITIES];
        for (rank, &act) in perm.iter().enumerate() {
            w[act] = base[rank];
        }
        subject_activity_cdf.push(cumsum(&w));
    }

    // Per-activity sensor signature: mean vector and scale for (x, y, z),
    // plus a cross-axis coupling so axes correlate within an activity.
    struct Signature {
        mean: [f64; 3],
        scale: [f64; 3],
        couple: f64,
        burst: f64, // probability of a high-energy burst (adds right skew)
    }
    let signatures: Vec<Signature> = (0..ACTIVITIES)
        .map(|_| Signature {
            mean: [
                -12.0 + 24.0 * rng.random::<f64>(),
                -12.0 + 24.0 * rng.random::<f64>(),
                -12.0 + 24.0 * rng.random::<f64>(),
            ],
            scale: [
                0.3 + 2.7 * rng.random::<f64>(),
                0.3 + 2.7 * rng.random::<f64>(),
                0.3 + 2.7 * rng.random::<f64>(),
            ],
            couple: 0.5 + 0.45 * rng.random::<f64>(),
            burst: 0.01 + 0.04 * rng.random::<f64>(),
        })
        .collect();

    let mut subjects = Vec::with_capacity(nrows);
    let mut activities = Vec::with_capacity(nrows);
    let mut xs = Vec::with_capacity(nrows);
    let mut ys = Vec::with_capacity(nrows);
    let mut zs = Vec::with_capacity(nrows);

    for _ in 0..nrows {
        let s = sample_cdf(&mut rng, &subject_cdf);
        let a = sample_cdf(&mut rng, &subject_activity_cdf[s]);
        let sig = &signatures[a];
        // shared latent makes the three axes correlated
        let shared = normal(&mut rng);
        let c = sig.couple;
        let orth = (1.0 - c * c).sqrt();
        let mut axes = [0.0; 3];
        for (i, axis) in axes.iter_mut().enumerate() {
            let own = normal(&mut rng);
            *axis = sig.mean[i] + sig.scale[i] * (c * shared + orth * own);
        }
        // occasional high-energy bursts give the positive skew the paper
        // reports (Fisher ≈ 2.3)
        if rng.random::<f64>() < sig.burst {
            // bursts are large relative to the *global* spread of the mixture
            // (means span ±12), not just the within-activity scale
            let boost = 40.0 + 80.0 * rng.random::<f64>();
            for axis in &mut axes {
                *axis += boost;
            }
        }
        subjects.push(s as u32);
        activities.push(a as u32);
        xs.push(axes[0]);
        ys.push(axes[1]);
        zs.push(axes[2]);
    }

    Table::new(
        "wisdm",
        vec![
            Column::Categorical(CatColumn::from_codes_dense(
                "subject_id",
                subjects,
                SUBJECTS as u32,
            )),
            Column::Categorical(CatColumn::from_codes_dense(
                "activity_code",
                activities,
                ACTIVITIES as u32,
            )),
            Column::Continuous(ContColumn::new("x", xs)),
            Column::Continuous(ContColumn::new("y", ys)),
            Column::Continuous(ContColumn::new("z", zs)),
        ],
    )
    .expect("columns constructed with equal length")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let t = wisdm(2000, 1);
        assert_eq!(t.ncols(), 5);
        assert_eq!(t.nrows(), 2000);
        match &t.columns[0] {
            Column::Categorical(c) => assert_eq!(c.domain_size(), SUBJECTS),
            _ => panic!("subject_id must be categorical"),
        }
        match &t.columns[1] {
            Column::Categorical(c) => assert_eq!(c.domain_size(), ACTIVITIES),
            _ => panic!("activity_code must be categorical"),
        }
        assert!(t.columns[2..].iter().all(|c| c.is_continuous()));
    }

    #[test]
    fn continuous_domains_are_large() {
        let t = wisdm(5000, 2);
        let enc = crate::encode::ColumnEncoding::from_column(&t.columns[2]);
        // essentially all values distinct — the "large domain" regime
        assert!(enc.domain_size() > 4900);
    }

    #[test]
    fn sensor_axes_positively_skewed() {
        let t = wisdm(20_000, 3);
        let skew = crate::stats::table_skewness(&t);
        assert!(skew > 0.5, "expected positive skew, got {skew}");
    }
}
