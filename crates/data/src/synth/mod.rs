//! Synthetic stand-ins for the paper's real-world datasets.
//!
//! The original evaluation uses WISDM (phone/watch sensor streams), TWI
//! (geo-tagged tweets) and HIGGS (particle-collision kinematics). Those raw
//! datasets are not redistributable here, so each generator reproduces the
//! *statistical profile* the paper's analysis leans on — column types and
//! cardinalities, correlation strength (NCIE) and skewness (Fisher) — at a
//! configurable row count. See DESIGN.md §2 for the substitution table.

pub mod higgs;
pub mod twi;
pub mod wisdm;

use rand::{Rng, RngExt};

pub use higgs::higgs;
pub use twi::twi;
pub use wisdm::wisdm;

/// A named synthetic dataset for experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Sensor data: 2 categorical + 3 continuous, strongly correlated.
    Wisdm,
    /// Spatial data: 2 continuous (lat/lon), strongly correlated.
    Twi,
    /// Physics features: 7 continuous, weakly correlated, heavily skewed.
    Higgs,
}

impl Dataset {
    /// Dataset name as printed in result tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Wisdm => "WISDM",
            Dataset::Twi => "TWI",
            Dataset::Higgs => "HIGGS",
        }
    }

    /// Generate the dataset at the requested scale.
    pub fn generate(self, nrows: usize, seed: u64) -> crate::table::Table {
        match self {
            Dataset::Wisdm => wisdm(nrows, seed),
            Dataset::Twi => twi(nrows, seed),
            Dataset::Higgs => higgs(nrows, seed),
        }
    }

    /// All three single-table datasets, in paper order.
    pub fn all() -> [Dataset; 3] {
        [Dataset::Wisdm, Dataset::Twi, Dataset::Higgs]
    }
}

/// Draw a standard normal via the Marsaglia polar method.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.random::<f64>() - 1.0;
        let v = 2.0 * rng.random::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Zipf weights `w_k ∝ (k+1)^{-s}`, normalised to sum to 1.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (0..n).map(|k| ((k + 1) as f64).powf(-s)).collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

/// Cumulative distribution from weights, for inverse-CDF sampling.
pub fn cumsum(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w;
            acc
        })
        .collect()
}

/// Sample an index from a cumulative distribution.
pub fn sample_cdf<R: Rng + ?Sized>(rng: &mut R, cdf: &[f64]) -> usize {
    let u = rng.random::<f64>() * cdf.last().copied().unwrap_or(1.0);
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zipf_is_normalised_and_decreasing() {
        let w = zipf_weights(10, 1.2);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
    }

    #[test]
    fn cdf_sampling_matches_weights() {
        let w = vec![0.7, 0.2, 0.1];
        let cdf = cumsum(&w);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_cdf(&mut rng, &cdf)] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.7).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.1).abs() < 0.01);
    }

    #[test]
    fn generators_are_deterministic() {
        for d in Dataset::all() {
            let a = d.generate(500, 42);
            let b = d.generate(500, 42);
            assert_eq!(a.columns, b.columns, "{} not deterministic", d.name());
        }
    }

    #[test]
    fn dataset_profiles_match_paper_direction() {
        // correlation: WISDM & TWI stronger than HIGGS (paper NCIE 0.33/0.37
        // vs 0.67 on the decreasing scale).
        let wisdm = Dataset::Wisdm.generate(8000, 7);
        let twi = Dataset::Twi.generate(8000, 7);
        let higgs = Dataset::Higgs.generate(8000, 7);
        let b = 30;
        let n_wisdm = crate::stats::ncie_paper(&wisdm, b);
        let n_twi = crate::stats::ncie_paper(&twi, b);
        let n_higgs = crate::stats::ncie_paper(&higgs, b);
        assert!(n_wisdm < n_higgs, "WISDM {n_wisdm} should correlate more than HIGGS {n_higgs}");
        assert!(n_twi < n_higgs, "TWI {n_twi} should correlate more than HIGGS {n_higgs}");
        // skewness: HIGGS far more skewed than the others.
        let s_higgs = crate::stats::table_skewness(&higgs).abs();
        let s_twi = crate::stats::table_skewness(&twi).abs();
        assert!(s_higgs > 5.0, "HIGGS skew {s_higgs}");
        assert!(s_twi < 3.0, "TWI skew {s_twi}");
    }
}
