//! The metrics registry: named instruments behind `Arc` handles.
//!
//! Instruments are registered once (get-or-create) and then mutated through
//! their handles with relaxed atomics — registration takes a lock, the hot
//! path never does. A [`Registry`] can be instantiated per subsystem (the
//! serving layer keeps one per service so tests stay isolated) or shared
//! process-wide via [`Registry::global`], which is where the `iam-core`
//! training/inference probes live.
//!
//! Snapshots come in two formats: Prometheus text exposition
//! ([`Registry::render_prometheus`]) and a single-line JSON object
//! ([`Registry::render_json`]) suitable for JSONL appends.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A fresh, unregistered counter (usually obtained via
    /// [`Registry::counter`] instead).
    pub fn new() -> Self {
        Counter { v: AtomicU64::new(0) }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (saturating — a counter never wraps back to a small value,
    /// which would read as a huge negative rate).
    #[inline]
    pub fn add(&self, n: u64) {
        let prev = self.v.fetch_add(n, Relaxed);
        if prev.checked_add(n).is_none() {
            // rare overflow path: pin to the max instead of wrapping
            self.v.store(u64::MAX, Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Relaxed)
    }
}

/// A signed gauge (e.g. a queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at 0.
    pub fn new() -> Self {
        Gauge { v: AtomicI64::new(0) }
    }

    /// Set to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.v.fetch_sub(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.v.load(Relaxed)
    }
}

/// A lock-free `f64` gauge (bit-cast into an `AtomicU64`) — used for the
/// training losses, which are set once per epoch and read by scrapes.
#[derive(Debug)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl Default for FloatGauge {
    fn default() -> Self {
        Self::new()
    }
}

impl FloatGauge {
    /// A fresh gauge at 0.0.
    pub fn new() -> Self {
        FloatGauge { bits: AtomicU64::new(0f64.to_bits()) }
    }

    /// Set to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// Bucket bounds are *upper* bounds (`v <= bound` lands in the bucket); the
/// final bucket is always the `u64::MAX` catch-all (appended automatically
/// if the caller's bounds don't end with it), rendered as `+Inf`.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Build from upper bucket bounds (must be strictly increasing; a
    /// trailing `u64::MAX` catch-all is appended when missing).
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        let mut bounds = bounds.to_vec();
        if bounds.last() != Some(&u64::MAX) {
            bounds.push(u64::MAX);
        }
        let counts = (0..bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, counts, sum: AtomicU64::new(0), max: AtomicU64::new(0) }
    }

    /// Record one observation. The running `sum` saturates at `u64::MAX`
    /// instead of wrapping.
    pub fn observe(&self, v: u64) {
        let idx = match self.bounds.binary_search(&v) {
            Ok(i) => i,
            Err(i) => i, // first bound greater than v; last bound is MAX so i < len
        };
        self.counts[idx].fetch_add(1, Relaxed);
        let _ = self.sum.fetch_update(Relaxed, Relaxed, |s| Some(s.saturating_add(v)));
        self.max.fetch_max(v, Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// Sum of all observed values (saturated).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest observed value (exact, not a bucket bound).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Consistent-enough point-in-time copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.iter().map(|c| c.load(Relaxed)).collect(),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds; the last is the `u64::MAX` catch-all.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (not cumulative).
    pub counts: Vec<u64>,
    /// Sum of observed values (saturated at `u64::MAX`).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observed value, or 0.0 with no observations.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (0..=1): the upper bound of the first
    /// bucket whose cumulative count reaches the rank, 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0;
        for (b, c) in self.bounds.iter().zip(&self.counts) {
            cum += c;
            if cum >= rank {
                return *b;
            }
        }
        *self.bounds.last().expect("histogram has buckets")
    }
}

/// Render a bucket bound for display: the `u64::MAX` catch-all reads as
/// `+Inf`, every other bound as its integer value.
pub fn fmt_bound(b: u64) -> String {
    if b == u64::MAX {
        "+Inf".into()
    } else {
        b.to_string()
    }
}

/// One registered instrument.
#[derive(Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    FloatGauge(Arc<FloatGauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) | Instrument::FloatGauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// `name` plus sorted label pairs — the registry key. Ordering groups all
/// series of one metric family together, which is what the Prometheus
/// renderer needs for its `# TYPE` headers.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        debug_assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name {name:?}"
        );
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricId { name: name.to_string(), labels }
    }

    /// `name` or `name{k="v",…}`.
    fn render(&self) -> String {
        render_series(&self.name, &self.labels, &[])
    }
}

/// Render `name{labels…,extra…}` (no braces when both are empty).
fn render_series(name: &str, labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return name.to_string();
    }
    let mut s = String::from(name);
    s.push('{');
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied())
    {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(k);
        s.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => s.push_str("\\\\"),
                '"' => s.push_str("\\\""),
                '\n' => s.push_str("\\n"),
                c => s.push(c),
            }
        }
        s.push('"');
    }
    s.push('}');
    s
}

/// A set of named instruments with shard-friendly handles.
///
/// Registration is get-or-create: asking twice for the same `(name,
/// labels)` returns the same underlying instrument, so independent
/// components can share a series without coordination.
///
/// # Panics
/// Registering a name that already exists *with a different instrument
/// type* panics — that is a programming error, not a runtime condition.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<MetricId, Instrument>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry used by the `iam-core` probes.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn get_or_insert(&self, id: MetricId, make: impl FnOnce() -> Instrument) -> Instrument {
        if let Some(m) = self.metrics.read().expect("registry poisoned").get(&id) {
            return m.clone();
        }
        let mut w = self.metrics.write().expect("registry poisoned");
        w.entry(id).or_insert_with(make).clone()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        match self.get_or_insert(id, || Instrument::Counter(Arc::new(Counter::new()))) {
            Instrument::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Get or create a signed gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        match self.get_or_insert(id, || Instrument::Gauge(Arc::new(Gauge::new()))) {
            Instrument::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Get or create an `f64` gauge.
    pub fn float_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<FloatGauge> {
        let id = MetricId::new(name, labels);
        match self.get_or_insert(id, || Instrument::FloatGauge(Arc::new(FloatGauge::new()))) {
            Instrument::FloatGauge(g) => g,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Get or create a histogram with the given upper bucket bounds (only
    /// used on first registration; later callers share the first bounds).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Arc<Histogram> {
        let id = MetricId::new(name, labels);
        match self
            .get_or_insert(id, || Instrument::Histogram(Arc::new(Histogram::with_bounds(bounds))))
        {
            Instrument::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Prometheus text exposition: `# TYPE` header per metric family, one
    /// sample per line, histograms as cumulative `_bucket{le=…}` series
    /// with `_sum`/`_count`, the catch-all bucket labelled `le="+Inf"`.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.read().expect("registry poisoned");
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for (id, m) in metrics.iter() {
            if last_family.as_deref() != Some(id.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&id.name);
                out.push(' ');
                out.push_str(m.type_name());
                out.push('\n');
                last_family = Some(id.name.clone());
            }
            match m {
                Instrument::Counter(c) => {
                    out.push_str(&id.render());
                    out.push(' ');
                    out.push_str(&c.get().to_string());
                    out.push('\n');
                }
                Instrument::Gauge(g) => {
                    out.push_str(&id.render());
                    out.push(' ');
                    out.push_str(&g.get().to_string());
                    out.push('\n');
                }
                Instrument::FloatGauge(g) => {
                    out.push_str(&id.render());
                    out.push(' ');
                    out.push_str(&fmt_f64(g.get()));
                    out.push('\n');
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (b, c) in snap.bounds.iter().zip(&snap.counts) {
                        cum += c;
                        let le = fmt_bound(*b);
                        out.push_str(&render_series(
                            &format!("{}_bucket", id.name),
                            &id.labels,
                            &[("le", le.as_str())],
                        ));
                        out.push(' ');
                        out.push_str(&cum.to_string());
                        out.push('\n');
                    }
                    out.push_str(&render_series(&format!("{}_sum", id.name), &id.labels, &[]));
                    out.push(' ');
                    out.push_str(&snap.sum.to_string());
                    out.push('\n');
                    out.push_str(&render_series(&format!("{}_count", id.name), &id.labels, &[]));
                    out.push(' ');
                    out.push_str(&cum.to_string());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// One-line JSON object snapshot of every instrument, suitable for
    /// appending to a JSONL file:
    /// `{"counters":{…},"gauges":{…},"histograms":{…}}`. Histogram bucket
    /// bounds are strings so the catch-all can read `"+Inf"`.
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.read().expect("registry poisoned");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for (id, m) in metrics.iter() {
            let key = crate::trace::json_escape(&id.render());
            match m {
                Instrument::Counter(c) => {
                    push_kv(&mut counters, &key, &c.get().to_string());
                }
                Instrument::Gauge(g) => {
                    push_kv(&mut gauges, &key, &g.get().to_string());
                }
                Instrument::FloatGauge(g) => {
                    let v = g.get();
                    let r = if v.is_finite() { fmt_f64(v) } else { "null".into() };
                    push_kv(&mut gauges, &key, &r);
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let le: Vec<String> =
                        snap.bounds.iter().map(|&b| format!("\"{}\"", fmt_bound(b))).collect();
                    let counts: Vec<String> = snap.counts.iter().map(u64::to_string).collect();
                    let body = format!(
                        "{{\"le\":[{}],\"counts\":[{}],\"sum\":{},\"max\":{}}}",
                        le.join(","),
                        counts.join(","),
                        snap.sum,
                        snap.max
                    );
                    push_kv(&mut hists, &key, &body);
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}"
        )
    }
}

fn push_kv(out: &mut String, key: &str, value: &str) {
    if !out.is_empty() {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
}

/// Format an `f64` for exposition: finite shortest round-trip, otherwise
/// Prometheus' spellings.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_exact_zero_and_max() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        h.observe(0); // below the first bound → first bucket
        h.observe(10); // exactly on a bound → that bucket (v <= bound)
        h.observe(11); // just above → next bucket
        h.observe(1000); // exactly the last explicit bound
        h.observe(1001); // spills into the catch-all
        h.observe(u64::MAX); // the catch-all takes the largest value
        let s = h.snapshot();
        assert_eq!(s.bounds, vec![10, 100, 1000, u64::MAX]);
        assert_eq!(s.counts, vec![2, 1, 1, 2]);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn observe_saturates_sum_instead_of_wrapping() {
        let h = Histogram::with_bounds(&[10]);
        h.observe(u64::MAX - 5);
        h.observe(100);
        assert_eq!(h.sum(), u64::MAX, "sum must saturate, not wrap");
        assert_eq!(h.count(), 2, "counts keep working after saturation");
    }

    #[test]
    fn counter_saturates() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn catch_all_renders_as_inf() {
        assert_eq!(fmt_bound(u64::MAX), "+Inf");
        assert_eq!(fmt_bound(500), "500");
        let r = Registry::new();
        r.histogram("iam_test_us", &[], &[50, 500]).observe(9999);
        let prom = r.render_prometheus();
        assert!(prom.contains("iam_test_us_bucket{le=\"+Inf\"} 1"), "{prom}");
        assert!(!prom.contains(&u64::MAX.to_string()), "raw u64::MAX leaked: {prom}");
        let json = r.render_json();
        assert!(json.contains("\"+Inf\""), "{json}");
        assert!(!json.contains(&u64::MAX.to_string()), "raw u64::MAX leaked: {json}");
    }

    #[test]
    fn get_or_create_shares_instruments() {
        let r = Registry::new();
        r.counter("iam_x_total", &[]).add(2);
        r.counter("iam_x_total", &[]).add(3);
        assert_eq!(r.counter("iam_x_total", &[]).get(), 5);
        // different labels are different series
        r.counter("iam_x_total", &[("k", "a")]).inc();
        assert_eq!(r.counter("iam_x_total", &[]).get(), 5);
        assert_eq!(r.counter("iam_x_total", &[("k", "a")]).get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        let r = Registry::new();
        r.counter("iam_conflict", &[]);
        r.gauge("iam_conflict", &[]);
    }

    #[test]
    fn prometheus_families_and_cumulative_buckets() {
        let r = Registry::new();
        r.counter("iam_req_total", &[("ds", "wisdm")]).add(7);
        r.counter("iam_req_total", &[("ds", "twi")]).add(3);
        let h = r.histogram("iam_lat_us", &[], &[50, 100]);
        h.observe(10);
        h.observe(60);
        h.observe(60);
        r.gauge("iam_depth", &[]).set(-2);
        r.float_gauge("iam_loss", &[]).set(1.5);
        let prom = r.render_prometheus();
        // one TYPE header per family, even with several label sets
        assert_eq!(prom.matches("# TYPE iam_req_total counter").count(), 1);
        assert!(prom.contains("iam_req_total{ds=\"twi\"} 3"));
        assert!(prom.contains("iam_req_total{ds=\"wisdm\"} 7"));
        // buckets are cumulative
        assert!(prom.contains("iam_lat_us_bucket{le=\"50\"} 1"), "{prom}");
        assert!(prom.contains("iam_lat_us_bucket{le=\"100\"} 3"), "{prom}");
        assert!(prom.contains("iam_lat_us_bucket{le=\"+Inf\"} 3"), "{prom}");
        assert!(prom.contains("iam_lat_us_sum 130"));
        assert!(prom.contains("iam_lat_us_count 3"));
        assert!(prom.contains("iam_depth -2"));
        assert!(prom.contains("iam_loss 1.5"));
        // every non-comment line is `series value`
        assert!(prom.lines().filter(|l| !l.starts_with('#')).all(|l| l.rsplit_once(' ').is_some()));
    }

    #[test]
    fn quantiles_match_bucket_upper_bounds() {
        let h = Histogram::with_bounds(&[50, 100, 5000]);
        for _ in 0..90 {
            h.observe(10);
        }
        for _ in 0..10 {
            h.observe(3000);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.50), 50);
        assert_eq!(s.quantile(0.95), 5000);
        assert_eq!(s.quantile(0.99), 5000);
        assert_eq!(s.max, 3000);
        // empty histogram
        let e = Histogram::with_bounds(&[10]).snapshot();
        assert_eq!(e.quantile(0.5), 0);
        assert_eq!(e.mean(), 0.0);
    }

    #[test]
    fn json_snapshot_is_wellformed_enough() {
        let r = Registry::new();
        r.counter("iam_a_total", &[]).inc();
        r.histogram("iam_h", &[], &[5]).observe(2);
        r.float_gauge("iam_nanny", &[]).set(f64::NAN);
        let j = r.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"iam_a_total\":1"));
        assert!(j.contains("\"counts\":[1,0]"));
        assert!(j.contains("\"iam_nanny\":null"), "NaN must not leak into JSON: {j}");
    }
}
