//! Served-accuracy observability: q-error tracking for reported truths.
//!
//! The estimator's whole contract is its q-error, yet a serving system
//! never sees ground truth at estimate time — true counts only exist after
//! someone executes the query. This module closes the loop:
//!
//! 1. at estimate time the server [`record`](QErrorTracker::record)s a
//!    reservoir-sampled [`QRecord`] — canonical predicate, the estimate,
//!    the model version that produced it, latency — keyed by the query's
//!    canonical id;
//! 2. when a client later learns the true count it calls
//!    [`report`](QErrorTracker::report) (the serve line protocol maps
//!    `REPORT <qid> <true_count>` onto this), which resolves the pair into
//!    a q-error observation.
//!
//! Observations land in ordinary registry instruments so both Prometheus
//! and JSONL expositions pick them up with no extra plumbing: a fixed-
//! bucket histogram `iam_qerror_milli` (q-error × 1000, so p50/p95/p99 come
//! from the existing [`HistogramSnapshot::quantile`] machinery) and
//! per-column `iam_qerror_col_mean` / `iam_qerror_col_max` gauges that
//! attribute error to the columns a predicate constrained.
//!
//! The reservoir is Algorithm R driven by SplitMix64 on a caller seed —
//! deterministic for a given (seed, record stream), no ambient entropy —
//! and capacity 0 disables collection entirely (the default posture:
//! accuracy tracking is opt-in like every other collector in this crate).
//!
//! [`HistogramSnapshot::quantile`]: crate::registry::HistogramSnapshot::quantile

use crate::registry::{Counter, FloatGauge, Histogram, Registry};
use crate::tracetree::splitmix64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Upper bucket bounds for the q-error histogram, in **milli-q** (q-error
/// × 1000; q ≥ 1 by definition, so the first bucket catches exact
/// answers). The last bucket is a catch-all.
pub const QERROR_MILLI_BOUNDS: [u64; 10] =
    [1_000, 1_250, 1_500, 2_000, 3_000, 5_000, 10_000, 50_000, 100_000, u64::MAX];

/// The q-error of an estimated selectivity against a true row count, with
/// both selectivities floored at `1/nrows` (the paper's convention — an
/// empty result or a zero estimate would otherwise divide by zero).
/// Returns ≥ 1, or 1.0 for a degenerate `nrows == 0`.
pub fn q_error(est_sel: f64, true_count: u64, nrows: u64) -> f64 {
    if nrows == 0 {
        return 1.0;
    }
    let floor = 1.0 / nrows as f64;
    let est = est_sel.max(floor);
    let act = (true_count as f64 / nrows as f64).max(floor);
    (est / act).max(act / est)
}

/// One sampled estimate awaiting (or matched with) a truth report.
#[derive(Debug, Clone, PartialEq)]
pub struct QRecord {
    /// Canonical query id (the serve layer uses the canonical predicate
    /// hash, so a client can recompute it from the query alone).
    pub qid: u64,
    /// Canonical predicate text, for human-readable dumps.
    pub predicate: String,
    /// Names of the columns the predicate constrained.
    pub cols: Vec<String>,
    /// Estimated selectivity in `[0, 1]`.
    pub estimate: f64,
    /// Total rows of the estimated table (converts counts ↔ selectivities).
    pub nrows: u64,
    /// Version of the model that produced the estimate.
    pub model_version: u64,
    /// End-to-end estimate latency (µs).
    pub latency_us: u64,
}

/// Per-column error aggregate with its cached gauge handles (handles are
/// created once per column, never looked up per report).
struct ColStat {
    count: u64,
    sum: f64,
    max: f64,
    mean_gauge: Arc<FloatGauge>,
    max_gauge: Arc<FloatGauge>,
}

struct Inner {
    reservoir: Vec<QRecord>,
    seen: u64,
    cols: HashMap<String, ColStat>,
}

/// Reservoir-sampled accuracy tracker; all mutators take `&self`.
pub struct QErrorTracker {
    capacity: usize,
    seed: u64,
    inner: Mutex<Inner>,
    hist: Arc<Histogram>,
    recorded: Arc<Counter>,
    reports: Arc<Counter>,
    unmatched: Arc<Counter>,
}

impl QErrorTracker {
    /// A tracker holding at most `capacity` records (0 = disabled), with
    /// its instruments registered in `registry`. Reservoir evictions are
    /// deterministic in `seed`.
    pub fn new(capacity: usize, seed: u64, registry: &Registry) -> QErrorTracker {
        QErrorTracker {
            capacity,
            seed,
            inner: Mutex::new(Inner { reservoir: Vec::new(), seen: 0, cols: HashMap::new() }),
            hist: registry.histogram("iam_qerror_milli", &[], &QERROR_MILLI_BOUNDS),
            recorded: registry.counter("iam_qerror_recorded_total", &[]),
            reports: registry.counter("iam_qerror_reports_total", &[]),
            unmatched: registry.counter("iam_qerror_unmatched_total", &[]),
        }
    }

    /// Is collection enabled (capacity > 0)?
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Offer one estimate record to the reservoir (Algorithm R: the i-th
    /// offer survives with probability `capacity / i`). A record with a
    /// qid already in the reservoir replaces it in place — the newest
    /// estimate is the one a truth report should be judged against.
    pub fn record(&self, rec: QRecord) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.seen += 1;
        self.recorded.inc();
        if let Some(slot) = inner.reservoir.iter_mut().find(|r| r.qid == rec.qid) {
            *slot = rec;
            return;
        }
        if inner.reservoir.len() < self.capacity {
            inner.reservoir.push(rec);
            return;
        }
        let mut state = self.seed ^ inner.seen;
        let j = (splitmix64(&mut state) % inner.seen) as usize;
        if j < self.capacity {
            inner.reservoir[j] = rec;
        }
    }

    /// Resolve a truth report against the sampled record for `qid`.
    /// Returns the q-error when the record was found (observing it into
    /// the histogram and per-column gauges), `None` otherwise (the record
    /// was never sampled, was evicted, or the qid is bogus — counted as
    /// unmatched, never an error).
    pub fn report(&self, registry: &Registry, qid: u64, true_count: u64) -> Option<f64> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        self.reports.inc();
        let Some(rec) = inner.reservoir.iter().find(|r| r.qid == qid).cloned() else {
            self.unmatched.inc();
            return None;
        };
        let q = q_error(rec.estimate, true_count, rec.nrows);
        let milli = (q * 1000.0).round();
        self.hist.observe(if milli.is_finite() {
            milli.min(u64::MAX as f64) as u64
        } else {
            u64::MAX
        });
        for col in &rec.cols {
            let stat = match inner.cols.get_mut(col) {
                Some(s) => s,
                None => {
                    let labels = [("col", col.as_str())];
                    let stat = ColStat {
                        count: 0,
                        sum: 0.0,
                        max: 0.0,
                        mean_gauge: registry.float_gauge("iam_qerror_col_mean", &labels),
                        max_gauge: registry.float_gauge("iam_qerror_col_max", &labels),
                    };
                    inner.cols.entry(col.clone()).or_insert(stat)
                }
            };
            stat.count += 1;
            stat.sum += q;
            stat.max = stat.max.max(q);
            stat.mean_gauge.set(stat.sum / stat.count as f64);
            stat.max_gauge.set(stat.max);
        }
        Some(q)
    }

    /// Records currently in the reservoir, sorted by qid (deterministic
    /// dump order regardless of arrival interleaving).
    pub fn records(&self) -> Vec<QRecord> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut v = inner.reservoir.clone();
        v.sort_by_key(|r| r.qid);
        v
    }

    /// Records offered since construction (sampled or not).
    pub fn seen(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).seen
    }

    /// Snapshot of the q-error histogram (milli-q buckets).
    pub fn histogram_snapshot(&self) -> crate::registry::HistogramSnapshot {
        self.hist.snapshot()
    }

    /// `(recorded, reports, unmatched)` counter values.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.recorded.get(), self.reports.get(), self.unmatched.get())
    }

    /// Per-column `(column, count, mean, max)` q-error aggregates, sorted
    /// by column name.
    pub fn column_errors(&self) -> Vec<(String, u64, f64, f64)> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut v: Vec<(String, u64, f64, f64)> = inner
            .cols
            .iter()
            .map(|(c, s)| (c.clone(), s.count, s.sum / s.count.max(1) as f64, s.max))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(qid: u64, est: f64, cols: &[&str]) -> QRecord {
        QRecord {
            qid,
            predicate: format!("c{qid}=1"),
            cols: cols.iter().map(|s| s.to_string()).collect(),
            estimate: est,
            nrows: 1000,
            model_version: 1,
            latency_us: 10,
        }
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        // est 0.1 vs act 0.05 → 2×, same either way round
        assert!((q_error(0.1, 50, 1000) - 2.0).abs() < 1e-12);
        assert!((q_error(0.05, 100, 1000) - 2.0).abs() < 1e-12);
        // zero estimate and zero truth floor at 1/nrows instead of dividing by 0
        assert!((q_error(0.0, 0, 1000) - 1.0).abs() < 1e-12);
        assert!((q_error(0.0, 10, 1000) - 10.0).abs() < 1e-12, "{}", q_error(0.0, 10, 1000));
        assert_eq!(q_error(0.5, 1, 0), 1.0, "degenerate table");
        assert!(q_error(1.0, 1, 1_000_000) >= 1.0);
    }

    #[test]
    fn capacity_zero_disables_everything() {
        let reg = Registry::new();
        let t = QErrorTracker::new(0, 7, &reg);
        assert!(!t.enabled());
        t.record(rec(1, 0.5, &["a"]));
        assert_eq!(t.report(&reg, 1, 500), None);
        assert_eq!(t.seen(), 0);
        assert_eq!(reg.counter("iam_qerror_recorded_total", &[]).get(), 0);
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let run = |seed: u64| {
            let reg = Registry::new();
            let t = QErrorTracker::new(4, seed, &reg);
            for i in 0..100 {
                t.record(rec(i, 0.1, &[]));
            }
            assert_eq!(t.records().len(), 4);
            assert_eq!(t.seen(), 100);
            t.records().iter().map(|r| r.qid).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same survivors");
        assert_ne!(run(7), run(8), "different seeds sample differently");
    }

    #[test]
    fn duplicate_qid_replaces_in_place() {
        let reg = Registry::new();
        let t = QErrorTracker::new(4, 7, &reg);
        t.record(rec(1, 0.10, &[]));
        t.record(rec(1, 0.20, &[]));
        let recs = t.records();
        assert_eq!(recs.len(), 1);
        assert!((recs[0].estimate - 0.20).abs() < 1e-12, "newest estimate wins");
    }

    #[test]
    fn report_resolves_to_histogram_and_gauges() {
        let reg = Registry::new();
        let t = QErrorTracker::new(16, 7, &reg);
        // est 0.1, truth 50/1000 = 0.05 → q = 2.0 on cols a,b
        t.record(rec(1, 0.1, &["a", "b"]));
        // est 0.01, truth 100/1000 = 0.1 → q = 10.0 on col a
        t.record(rec(2, 0.01, &["a"]));
        assert!((t.report(&reg, 1, 50).unwrap() - 2.0).abs() < 1e-12);
        assert!((t.report(&reg, 2, 100).unwrap() - 10.0).abs() < 1e-12);
        assert_eq!(t.report(&reg, 999, 5), None, "unknown qid is unmatched, not an error");

        let h = reg.histogram("iam_qerror_milli", &[], &QERROR_MILLI_BOUNDS).snapshot();
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.50), 2_000, "q=2.0 lands in the ≤2000 milli bucket");
        assert_eq!(h.quantile(0.95), 10_000, "q=10.0 lands in the ≤10000 milli bucket");
        assert_eq!(reg.counter("iam_qerror_reports_total", &[]).get(), 3);
        assert_eq!(reg.counter("iam_qerror_unmatched_total", &[]).get(), 1);

        let cols = t.column_errors();
        assert_eq!(cols.len(), 2);
        let (name, count, mean, max) = &cols[0];
        assert_eq!(name, "a");
        assert_eq!(*count, 2);
        assert!((mean - 6.0).abs() < 1e-12, "mean of 2 and 10");
        assert!((max - 10.0).abs() < 1e-12);
        assert!(
            (reg.float_gauge("iam_qerror_col_mean", &[("col", "a")]).get() - 6.0).abs() < 1e-12
        );
        assert!((reg.float_gauge("iam_qerror_col_max", &[("col", "b")]).get() - 2.0).abs() < 1e-12);
        // exposition picks the instruments up with deterministic ordering
        let prom = reg.render_prometheus();
        let a = prom.find("iam_qerror_col_max{col=\"a\"}").unwrap();
        let b = prom.find("iam_qerror_col_max{col=\"b\"}").unwrap();
        assert!(a < b, "sorted col labels:\n{prom}");
        assert!(prom.contains("iam_qerror_milli_bucket{le=\"2000\"}"), "{prom}");
    }

    #[test]
    fn seeded_workload_reproduces_expected_percentiles() {
        // 20 queries: 18 with q ≈ 1.2, 2 with q = 40 → p50 in the ≤1250
        // milli bucket, p95 in the ≤50000 bucket. Exact bits, no tolerance.
        let reg = Registry::new();
        let t = QErrorTracker::new(64, 42, &reg);
        for i in 0..18u64 {
            t.record(rec(i, 0.12, &["a"]));
            assert!(t.report(&reg, i, 100).is_some()); // act 0.1 → q 1.2
        }
        for i in 18..20u64 {
            t.record(rec(i, 0.004, &["a"]));
            assert!(t.report(&reg, i, 160).is_some()); // act 0.16 → q 40
        }
        let h = reg.histogram("iam_qerror_milli", &[], &QERROR_MILLI_BOUNDS).snapshot();
        assert_eq!(h.count(), 20);
        assert_eq!(h.quantile(0.50), 1_250);
        assert_eq!(h.quantile(0.95), 50_000);
        assert_eq!(h.quantile(0.99), 50_000);
    }
}
