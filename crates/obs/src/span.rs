//! Hierarchical wall-time spans with flamegraph-compatible aggregation.
//!
//! A span is entered with the [`span!`](crate::span!) macro and ends when
//! its guard drops. Each thread keeps a stack of open spans; on exit, the
//! span's elapsed time is folded into a process-wide aggregate keyed by the
//! semicolon-joined stack path (`train.epoch;train.ar_step`) — exactly the
//! *folded stacks* format `flamegraph.pl` and speedscope ingest, with
//! self-time as the value. Totals are also mirrored into the global
//! [`crate::Registry`] as `iam_span_us_total{span=…}` /
//! `iam_span_calls_total{span=…}` counters so scrapes see phase
//! attribution without parsing the folded dump.
//!
//! Collection is **off by default**: until [`enable`] is called, entering a
//! span is a single relaxed atomic load and no clock is read, keeping the
//! instrumented hot paths within their overhead budget.

use crate::registry::Registry;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span collection on (idempotent).
pub fn enable() {
    ENABLED.store(true, Relaxed);
}

/// Turn span collection off. Already-open spans still record on drop.
pub fn disable() {
    ENABLED.store(false, Relaxed);
}

/// Is span collection currently on?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Aggregated timings of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Times this exact stack path completed.
    pub count: u64,
    /// Total wall time, children included (µs).
    pub total_us: u64,
    /// Wall time minus instrumented children (µs) — the folded-stacks value.
    pub self_us: u64,
}

/// Per-frame trace-tree identity, present only while distributed tracing
/// is armed (see [`crate::tracetree`]).
struct TreeFrame {
    trace_id: u128,
    span_id: u64,
    parent_span: u64,
    start_unix_us: u64,
}

struct Frame {
    name: &'static str,
    start: Instant,
    child_us: u64,
    tree: Option<TreeFrame>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

fn aggregate() -> &'static Mutex<HashMap<String, SpanAgg>> {
    static AGG: OnceLock<Mutex<HashMap<String, SpanAgg>>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// An open span; records into the aggregate when dropped. Create via the
/// [`span!`](crate::span!) macro, hold with `let _g = …`.
#[must_use = "a span measures nothing unless its guard lives to the end of the scope"]
pub struct SpanGuard {
    name: &'static str,
}

impl SpanGuard {
    /// Push a span onto this thread's stack, or `None` when collection is
    /// disabled.
    pub fn enter(name: &'static str) -> Option<SpanGuard> {
        if !enabled() {
            return None;
        }
        // distributed tracing rides on the same guards: when tree recording
        // is armed on this thread, the frame additionally carries a span id
        // parented under the innermost open tree span (or the installed
        // context's parent for the outermost frame)
        let tree_ctx = if crate::tracetree::enabled() { crate::tracetree::current() } else { None };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let tree = tree_ctx.map(|ctx| {
                let parent = stack
                    .iter()
                    .rev()
                    .find_map(|f| f.tree.as_ref().map(|t| t.span_id))
                    .unwrap_or(ctx.parent_span);
                TreeFrame {
                    trace_id: ctx.trace_id,
                    span_id: crate::tracetree::alloc_span_id(ctx.trace_id),
                    parent_span: parent,
                    start_unix_us: crate::tracetree::unix_us_now(),
                }
            });
            stack.push(Frame { name, start: Instant::now(), child_us: 0, tree });
        });
        Some(SpanGuard { name })
    }
}

/// The innermost open span's tree id on this thread, if distributed
/// tracing recorded one — what [`crate::tracetree::child_ctx`] parents
/// cross-boundary children under.
pub(crate) fn active_tree_span() -> Option<u64> {
    STACK.with(|s| s.borrow().iter().rev().find_map(|f| f.tree.as_ref().map(|t| t.span_id)))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // guards drop in reverse creation order within a thread, so the
            // top frame is ours; be defensive anyway
            let top_is_ours = stack.last().is_some_and(|f| f.name == self.name);
            debug_assert!(top_is_ours, "span {:?} dropped out of order", self.name);
            if !top_is_ours {
                return;
            }
            let frame = stack.pop().expect("checked non-empty");
            let elapsed_us = frame.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            let self_us = elapsed_us.saturating_sub(frame.child_us);
            if let Some(parent) = stack.last_mut() {
                parent.child_us = parent.child_us.saturating_add(elapsed_us);
            }
            let mut path = String::new();
            for f in stack.iter() {
                path.push_str(f.name);
                path.push(';');
            }
            path.push_str(frame.name);
            drop(stack);

            let mut agg = aggregate().lock().expect("span aggregate poisoned");
            let e = agg.entry(path).or_default();
            e.count += 1;
            e.total_us = e.total_us.saturating_add(elapsed_us);
            e.self_us = e.self_us.saturating_add(self_us);
            drop(agg);

            let labels = [("span", frame.name)];
            Registry::global().counter("iam_span_us_total", &labels).add(elapsed_us);
            Registry::global().counter("iam_span_calls_total", &labels).inc();

            if let Some(t) = frame.tree {
                crate::tracetree::record(crate::tracetree::SpanRecord {
                    trace_id: t.trace_id,
                    span_id: t.span_id,
                    parent_span: t.parent_span,
                    name: frame.name.to_string(),
                    proc: crate::tracetree::process_label(),
                    start_unix_us: t.start_unix_us,
                    dur_us: elapsed_us,
                });
            }
        });
    }
}

/// Enter a span: `let _g = iam_obs::span!("infer.progressive_sample");`.
/// Expands to an `Option<SpanGuard>` — cheap no-op while collection is
/// disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

/// Sorted `(path, agg)` pairs of everything collected so far.
pub fn report() -> Vec<(String, SpanAgg)> {
    let agg = aggregate().lock().expect("span aggregate poisoned");
    let mut v: Vec<(String, SpanAgg)> = agg.iter().map(|(k, &a)| (k.clone(), a)).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// The flamegraph-compatible folded-stacks dump: one `path self_µs` line
/// per aggregated stack, sorted by path. Feed to `flamegraph.pl` or
/// speedscope ("folded" format) directly.
pub fn folded_stacks() -> String {
    let mut out = String::new();
    for (path, agg) in report() {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&agg.self_us.to_string());
        out.push('\n');
    }
    out
}

/// Clear the aggregate (tests / between benchmark phases). Open spans on
/// other threads keep recording afterwards.
pub fn reset() {
    aggregate().lock().expect("span aggregate poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // span tests share the process-global aggregate and enable flag, so they
    // must not run concurrently with each other
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _s = serial();
        disable();
        reset();
        {
            let _g = crate::span!("noop");
        }
        assert!(report().is_empty());
    }

    #[test]
    fn nesting_aggregates_self_and_total() {
        let _s = serial();
        enable();
        reset();
        {
            let _outer = crate::span!("outer");
            std::thread::sleep(Duration::from_millis(4));
            for _ in 0..2 {
                let _inner = crate::span!("inner");
                std::thread::sleep(Duration::from_millis(3));
            }
        }
        disable();
        let r: HashMap<String, SpanAgg> = report().into_iter().collect();
        let outer = r["outer"];
        let inner = r["outer;inner"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(inner.total_us >= 6_000, "two 3ms sleeps: {inner:?}");
        assert!(
            outer.total_us >= inner.total_us + 4_000,
            "outer includes children: {outer:?} vs {inner:?}"
        );
        // self time excludes instrumented children
        assert!(
            outer.self_us <= outer.total_us - inner.total_us,
            "outer self must exclude inner: {outer:?} {inner:?}"
        );
        assert_eq!(inner.self_us, inner.total_us, "leaf self == total");

        let folded = folded_stacks();
        assert!(folded.contains("outer;inner "), "{folded}");
        // registry mirror: totals by leaf name
        let us = Registry::global().counter("iam_span_us_total", &[("span", "inner")]).get();
        assert!(us >= 6_000, "registry mirror missing: {us}");
    }

    #[test]
    fn sibling_threads_do_not_nest() {
        let _s = serial();
        enable();
        reset();
        {
            let _outer = crate::span!("parent");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _g = crate::span!("worker");
                    std::thread::sleep(Duration::from_millis(2));
                });
            });
        }
        disable();
        let r: HashMap<String, SpanAgg> = report().into_iter().collect();
        assert!(r.contains_key("parent"));
        assert!(r.contains_key("worker"), "a fresh thread starts a fresh stack: {r:?}");
        assert!(!r.contains_key("parent;worker"));
    }
}
