//! Distributed trace trees: discrete span records with explicit parent
//! links, stitched across process boundaries.
//!
//! The [`span`](mod@crate::span) layer aggregates timings per stack *path*;
//! that is the right shape for flamegraphs but it cannot attribute one slow
//! query to one worker in a cluster. This module adds the missing identity:
//!
//! * a [`TraceCtx`] — a 128-bit trace id plus the parent span id — that a
//!   coordinator mints per client batch ([`TraceIdGen`], SplitMix64-seeded,
//!   **no ambient entropy**: the same seed always yields the same ids, so
//!   tests can pin trace identity) and threads across RPC hops;
//! * per-thread context installation ([`CtxGuard`]): while a context is
//!   current *and* [`enable`] has been called, every
//!   [`span!`](crate::span!) guard additionally records one [`SpanRecord`]
//!   — name, span id, parent span id, wall-clock start, duration, and the
//!   process label ([`set_process_label`]) — into a bounded process buffer;
//! * drains ([`drain`], [`drain_trace`]) so a worker can ship the records
//!   of one trace back to its coordinator, which merges them with its own
//!   ([`to_jsonl`], [`folded_stacks`]) into a single cross-process tree.
//!
//! Collection is **off by default** twice over: nothing records unless
//! `enable()` was called *and* a context is installed, and an idle check is
//! one relaxed atomic load.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Advance a SplitMix64 state and return the next draw — the workspace's
/// standard seeded generator (identical to the audit fuzzer's), chosen so
/// trace ids are reproducible from a seed with no `Date.now`-style ambient
/// entropy.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A trace context crossing thread and process boundaries: which trace a
/// span belongs to, and which span is its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// 128-bit trace id shared by every span of one traced operation.
    pub trace_id: u128,
    /// Span id the next child span should be parented under (0 = root).
    pub parent_span: u64,
}

impl TraceCtx {
    /// A root context for a fresh trace (children parent under 0).
    pub fn root(trace_id: u128) -> TraceCtx {
        TraceCtx { trace_id, parent_span: 0 }
    }

    /// The same trace re-parented under `span_id` — what gets sent to a
    /// remote peer so its spans nest under the local RPC span.
    pub fn child_of(&self, span_id: u64) -> TraceCtx {
        TraceCtx { trace_id: self.trace_id, parent_span: span_id }
    }
}

/// Deterministic trace-id generator: a SplitMix64 stream. Two generators
/// with the same seed mint the same ids in the same order.
#[derive(Debug)]
pub struct TraceIdGen {
    state: u64,
}

impl TraceIdGen {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> TraceIdGen {
        TraceIdGen { state: seed }
    }

    /// Mint the next 128-bit trace id (never 0).
    pub fn next_trace_id(&mut self) -> u128 {
        loop {
            let hi = splitmix64(&mut self.state) as u128;
            let lo = splitmix64(&mut self.state) as u128;
            let id = (hi << 64) | lo;
            if id != 0 {
                return id;
            }
        }
    }
}

/// One completed span of a trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u128,
    /// This span's id (unique within the trace).
    pub span_id: u64,
    /// Parent span id; 0 means the span is a trace root.
    pub parent_span: u64,
    /// Span name (the `span!` literal, e.g. `dist.rpc`).
    pub name: String,
    /// Label of the process that recorded the span (see
    /// [`set_process_label`]).
    pub proc: String,
    /// Wall-clock start (µs since the unix epoch; informational — tree
    /// structure never depends on clock alignment between processes).
    pub start_unix_us: u64,
    /// Wall duration (µs).
    pub dur_us: u64,
}

// --- process-global state --------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotone sequence mixed into span-id allocation (uniqueness, not
/// entropy).
static SPAN_SEQ: AtomicU64 = AtomicU64::new(1);
/// Bound on buffered records; beyond it records are dropped and counted.
const BUF_CAP: usize = 65_536;
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn buffer() -> &'static Mutex<Vec<SpanRecord>> {
    static BUF: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

fn proc_label() -> &'static Mutex<String> {
    static L: OnceLock<Mutex<String>> = OnceLock::new();
    L.get_or_init(|| Mutex::new(String::from("proc")))
}

/// Set this process's label, stamped into every [`SpanRecord`] it records
/// and mixed into span-id allocation so two processes sharing a trace
/// cannot mint colliding ids.
pub fn set_process_label(label: &str) {
    *proc_label().lock().unwrap_or_else(|p| p.into_inner()) = label.to_string();
}

/// The current process label.
pub fn process_label() -> String {
    proc_label().lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Turn trace-tree recording on (idempotent). Spans still only record
/// while a [`TraceCtx`] is installed on their thread.
pub fn enable() {
    ENABLED.store(true, Relaxed);
}

/// Turn trace-tree recording off.
pub fn disable() {
    ENABLED.store(false, Relaxed);
}

/// Is trace-tree recording on?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The context installed on this thread, if any.
#[inline]
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(|c| c.get())
}

/// Is this thread actively recording (enabled + context installed)?
#[inline]
pub fn armed() -> bool {
    enabled() && current().is_some()
}

/// The context a *child* (a queued request, a scatter thread, a remote
/// peer) should inherit from this thread: the current trace re-parented
/// under the innermost open span, falling back to the installed context's
/// parent when no span is open.
pub fn child_ctx() -> Option<TraceCtx> {
    let ctx = current()?;
    Some(match crate::span::active_tree_span() {
        Some(span_id) => ctx.child_of(span_id),
        None => ctx,
    })
}

/// Install `ctx` as this thread's current context; the returned guard
/// restores the previous context on drop.
pub fn install(ctx: TraceCtx) -> CtxGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    CtxGuard { prev }
}

/// Restores the previously installed [`TraceCtx`] on drop.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev.take()));
    }
}

/// FNV-1a of a byte string (label mixing for span-id allocation).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Allocate a span id for `trace_id`: deterministic given (seed-derived
/// trace id, process label, allocation order), unique across the processes
/// of one trace because the label hash is mixed in.
pub(crate) fn alloc_span_id(trace_id: u128) -> u64 {
    let seq = SPAN_SEQ.fetch_add(1, Relaxed);
    let label_hash = fnv1a(process_label().as_bytes());
    let mut state = (trace_id as u64) ^ ((trace_id >> 64) as u64) ^ label_hash ^ seq;
    let id = splitmix64(&mut state);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Wall-clock "now" in µs since the unix epoch (0 if the clock is broken).
pub(crate) fn unix_us_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Push one completed record into the process buffer (bounded; overflow
/// drops the record and counts it — tracing must never grow unbounded).
pub(crate) fn record(rec: SpanRecord) {
    let mut buf = buffer().lock().unwrap_or_else(|p| p.into_inner());
    if buf.len() >= BUF_CAP {
        DROPPED.fetch_add(1, Relaxed);
        return;
    }
    buf.push(rec);
}

/// Merge records produced by *another* process (a worker's piggybacked
/// span buffer) into this process's buffer, so one [`drain`] yields the
/// stitched cluster-wide trace. Subject to the same bound as local
/// records — overflow drops and counts.
pub fn absorb(records: Vec<SpanRecord>) {
    let mut buf = buffer().lock().unwrap_or_else(|p| p.into_inner());
    for rec in records {
        if buf.len() >= BUF_CAP {
            DROPPED.fetch_add(1, Relaxed);
            continue;
        }
        buf.push(rec);
    }
}

/// Records dropped on buffer overflow since process start.
pub fn dropped() -> u64 {
    DROPPED.load(Relaxed)
}

/// Drain every buffered record.
pub fn drain() -> Vec<SpanRecord> {
    std::mem::take(&mut *buffer().lock().unwrap_or_else(|p| p.into_inner()))
}

/// Drain only the records of `trace_id`, leaving other traces buffered —
/// what a worker ships back on the reply that completes that trace.
pub fn drain_trace(trace_id: u128) -> Vec<SpanRecord> {
    let mut buf = buffer().lock().unwrap_or_else(|p| p.into_inner());
    let mut out = Vec::new();
    buf.retain(|r| {
        if r.trace_id == trace_id {
            out.push(r.clone());
            false
        } else {
            true
        }
    });
    out
}

/// Clear the buffer without returning anything (tests).
pub fn reset() {
    buffer().lock().unwrap_or_else(|p| p.into_inner()).clear();
}

// --- JSONL schema ----------------------------------------------------------

fn fmt_trace_id(id: u128) -> String {
    format!("{id:032x}")
}

fn parse_trace_id(s: &str) -> Option<u128> {
    (s.len() == 32).then(|| u128::from_str_radix(s, 16).ok()).flatten()
}

impl SpanRecord {
    /// Render as one `{"event":"span",…}` JSONL line (no trailing newline).
    /// Schema: `trace` (32 hex chars), `span`/`parent` (decimal u64),
    /// `name`, `proc`, `start_us`, `dur_us`.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"event\":\"span\",\"trace\":\"{}\",\"span\":{},\"parent\":{},\
             \"name\":\"{}\",\"proc\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
            fmt_trace_id(self.trace_id),
            self.span_id,
            self.parent_span,
            crate::trace::json_escape(&self.name),
            crate::trace::json_escape(&self.proc),
            self.start_unix_us,
            self.dur_us,
        )
    }

    /// Parse a line produced by [`SpanRecord::to_json_line`]. Returns
    /// `None` for anything that is not a well-formed span event — the
    /// reader side of the schema round-trip the trace tests pin.
    pub fn from_json_line(line: &str) -> Option<SpanRecord> {
        let line = line.trim();
        let body = line.strip_prefix('{')?.strip_suffix('}')?;
        let mut trace = None;
        let mut span = None;
        let mut parent = None;
        let mut name = None;
        let mut proc_ = None;
        let mut start = None;
        let mut dur = None;
        let mut is_span_event = false;
        for (k, v) in split_json_fields(body) {
            match k.as_str() {
                "event" => is_span_event = v == "\"span\"",
                "trace" => trace = parse_trace_id(v.strip_prefix('"')?.strip_suffix('"')?),
                "span" => span = v.parse().ok(),
                "parent" => parent = v.parse().ok(),
                "name" => name = Some(json_unescape(v.strip_prefix('"')?.strip_suffix('"')?)),
                "proc" => proc_ = Some(json_unescape(v.strip_prefix('"')?.strip_suffix('"')?)),
                "start_us" => start = v.parse().ok(),
                "dur_us" => dur = v.parse().ok(),
                _ => {}
            }
        }
        if !is_span_event {
            return None;
        }
        Some(SpanRecord {
            trace_id: trace?,
            span_id: span?,
            parent_span: parent?,
            name: name?,
            proc: proc_?,
            start_unix_us: start?,
            dur_us: dur?,
        })
    }
}

/// Split a flat JSON object body into `(key, raw_value)` pairs. Only the
/// flat string/number shape [`SpanRecord::to_json_line`] emits is
/// supported; nested objects are not (and not needed).
fn split_json_fields(body: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let Some(key_start) = rest.find('"') else { break };
        let Some(key_len) = rest[key_start + 1..].find('"') else { break };
        let key = rest[key_start + 1..key_start + 1 + key_len].to_string();
        let Some(colon) = rest[key_start + 1 + key_len..].find(':') else { break };
        rest = &rest[key_start + key_len + colon + 2..];
        // value: a quoted string (escapes respected) or a bare token
        let value;
        if let Some(r) = rest.strip_prefix('"') {
            let mut end = None;
            let mut escaped = false;
            for (i, c) in r.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let Some(end) = end else { break };
            value = format!("\"{}\"", &r[..end]);
            rest = &r[end + 1..];
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            value = rest[..end].trim().to_string();
            rest = &rest[end..];
        }
        rest = rest.strip_prefix(',').unwrap_or(rest);
        out.push((key, value));
    }
    out
}

fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Render records as a JSONL document, one span event per line, sorted by
/// (trace, start, span id) so the merged dump is deterministic for a given
/// record set regardless of arrival interleaving.
pub fn to_jsonl(records: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.trace_id, r.start_unix_us, r.span_id));
    let mut out = String::new();
    for r in sorted {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

// --- stitching -------------------------------------------------------------

/// One stitched trace: records indexed for tree walks.
pub struct TraceTree<'a> {
    records: Vec<&'a SpanRecord>,
    children: HashMap<u64, Vec<usize>>,
    roots: Vec<usize>,
}

impl<'a> TraceTree<'a> {
    /// Build the tree of `trace_id` out of `records` (records from other
    /// traces are ignored). A span whose parent is 0 — or whose parent id
    /// is not among the records (an unshipped remote segment) — becomes a
    /// root, so a partial trace still folds instead of vanishing.
    pub fn build(records: &'a [SpanRecord], trace_id: u128) -> TraceTree<'a> {
        let mut recs: Vec<&SpanRecord> =
            records.iter().filter(|r| r.trace_id == trace_id).collect();
        recs.sort_by_key(|r| (r.start_unix_us, r.span_id));
        let ids: std::collections::HashSet<u64> = recs.iter().map(|r| r.span_id).collect();
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut roots = Vec::new();
        for (i, r) in recs.iter().enumerate() {
            if r.parent_span != 0 && ids.contains(&r.parent_span) {
                children.entry(r.parent_span).or_default().push(i);
            } else {
                roots.push(i);
            }
        }
        TraceTree { records: recs, children, roots }
    }

    /// The distinct trace ids present in `records`, sorted.
    pub fn trace_ids(records: &[SpanRecord]) -> Vec<u128> {
        let mut ids: Vec<u128> = records.iter().map(|r| r.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of spans in this trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record carrying `span_id`, if present.
    pub fn span(&self, span_id: u64) -> Option<&SpanRecord> {
        self.records.iter().find(|r| r.span_id == span_id).copied()
    }

    /// Direct children of `span_id`, in start order.
    pub fn children_of(&self, span_id: u64) -> Vec<&SpanRecord> {
        self.children
            .get(&span_id)
            .map(|idxs| idxs.iter().map(|&i| self.records[i]).collect())
            .unwrap_or_default()
    }

    /// Root spans (parent 0 or parent missing from the record set).
    pub fn root_spans(&self) -> Vec<&SpanRecord> {
        self.roots.iter().map(|&i| self.records[i]).collect()
    }

    /// Folded-stacks dump of this tree: one `name;…;name self_µs` line per
    /// path with nonzero self time, `proc:name` frames, sorted by path —
    /// the flamegraph view of one distributed request.
    pub fn folded_stacks(&self) -> String {
        let mut lines: Vec<(String, u64)> = Vec::new();
        let mut stack: Vec<String> = Vec::new();
        for &root in &self.roots {
            self.fold_into(root, &mut stack, &mut lines);
        }
        lines.sort();
        let mut out = String::new();
        for (path, us) in lines {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&us.to_string());
            out.push('\n');
        }
        out
    }

    fn fold_into(&self, idx: usize, stack: &mut Vec<String>, lines: &mut Vec<(String, u64)>) {
        let r = self.records[idx];
        stack.push(format!("{}:{}", r.proc, r.name));
        let child_idxs = self.children.get(&r.span_id).cloned().unwrap_or_default();
        let child_us: u64 =
            child_idxs.iter().map(|&i| self.records[i].dur_us).fold(0, u64::saturating_add);
        let self_us = r.dur_us.saturating_sub(child_us);
        lines.push((stack.join(";"), self_us));
        for i in child_idxs {
            self.fold_into(i, stack, lines);
        }
        stack.pop();
    }
}

/// Folded stacks across every trace in `records`, concatenated in trace-id
/// order (each trace folds independently; identical paths from different
/// traces stay on separate lines only if their values differ — they are
/// merged by summing otherwise).
pub fn folded_stacks(records: &[SpanRecord]) -> String {
    use std::collections::BTreeMap;
    let mut merged: BTreeMap<String, u64> = BTreeMap::new();
    for id in TraceTree::trace_ids(records) {
        let tree = TraceTree::build(records, id);
        for line in tree.folded_stacks().lines() {
            if let Some((path, us)) = line.rsplit_once(' ') {
                if let Ok(us) = us.parse::<u64>() {
                    *merged.entry(path.to_string()).or_insert(0) += us;
                }
            }
        }
    }
    let mut out = String::new();
    for (path, us) in merged {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u128, span: u64, parent: u64, name: &str, proc_: &str, dur: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: span,
            parent_span: parent,
            name: name.into(),
            proc: proc_.into(),
            start_unix_us: span, // start order == span id order in tests
            dur_us: dur,
        }
    }

    #[test]
    fn trace_id_gen_is_deterministic_and_nonzero() {
        let mut a = TraceIdGen::new(42);
        let mut b = TraceIdGen::new(42);
        let ids: Vec<u128> = (0..16).map(|_| a.next_trace_id()).collect();
        let ids2: Vec<u128> = (0..16).map(|_| b.next_trace_id()).collect();
        assert_eq!(ids, ids2, "same seed must mint the same ids");
        assert!(ids.iter().all(|&i| i != 0));
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "ids must not repeat");
        assert_ne!(TraceIdGen::new(43).next_trace_id(), ids[0], "seed must matter");
    }

    #[test]
    fn json_line_round_trips_exactly() {
        let r = rec(0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233, 7, 3, "dist.rpc", "worker-1", 250);
        let line = r.to_json_line();
        assert!(line.starts_with("{\"event\":\"span\""), "{line}");
        assert_eq!(SpanRecord::from_json_line(&line), Some(r));
        // hostile / foreign lines parse to None, never panic
        assert_eq!(SpanRecord::from_json_line("{\"event\":\"train.epoch\",\"epoch\":1}"), None);
        assert_eq!(SpanRecord::from_json_line("not json"), None);
        assert_eq!(SpanRecord::from_json_line("{}"), None);
        // escaped names survive the round trip
        let mut odd = rec(1, 2, 0, "a\"b\\c", "p\nq", 1);
        odd.start_unix_us = 9;
        let back = SpanRecord::from_json_line(&odd.to_json_line()).unwrap();
        assert_eq!(back, odd);
    }

    #[test]
    fn jsonl_document_round_trips_per_line() {
        let records =
            vec![rec(5, 1, 0, "root", "coord", 100), rec(5, 2, 1, "child", "worker-0", 40)];
        let doc = to_jsonl(&records);
        let parsed: Vec<SpanRecord> = doc.lines().filter_map(SpanRecord::from_json_line).collect();
        assert_eq!(parsed, records);
    }

    #[test]
    fn tree_builds_and_folds_with_nesting() {
        let records = vec![
            rec(9, 1, 0, "dist.scatter_gather", "coord", 1000),
            rec(9, 2, 1, "dist.partition", "coord", 50),
            rec(9, 3, 1, "dist.rpc", "coord", 800),
            rec(9, 4, 3, "worker.serve", "worker-0", 600),
            rec(9, 5, 4, "serve.batch", "worker-0", 500),
        ];
        let tree = TraceTree::build(&records, 9);
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.root_spans().len(), 1);
        assert_eq!(tree.root_spans()[0].name, "dist.scatter_gather");
        let rpc_children = tree.children_of(3);
        assert_eq!(rpc_children.len(), 1);
        assert_eq!(rpc_children[0].name, "worker.serve");
        assert_eq!(rpc_children[0].proc, "worker-0");

        let folded = tree.folded_stacks();
        // nesting is by parent link, crossing the process boundary
        assert!(
            folded.contains(
                "coord:dist.scatter_gather;coord:dist.rpc;worker-0:worker.serve;\
                 worker-0:serve.batch 500"
            ),
            "{folded}"
        );
        // self time excludes children: rpc 800 − serve 600 = 200
        assert!(folded.contains("coord:dist.scatter_gather;coord:dist.rpc 200"), "{folded}");
        // every line parses as `path µs`
        for line in folded.lines() {
            let (path, us) = line.rsplit_once(' ').expect("path value");
            assert!(!path.is_empty());
            us.parse::<u64>().expect("numeric self time");
        }
        // lines are sorted (deterministic output)
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn orphaned_parents_become_roots() {
        // a remote segment whose parent record never shipped still folds
        let records = vec![rec(3, 10, 999, "worker.serve", "worker-2", 70)];
        let tree = TraceTree::build(&records, 3);
        assert_eq!(tree.root_spans().len(), 1);
        assert!(tree.folded_stacks().contains("worker-2:worker.serve 70"));
    }

    #[test]
    fn span_ids_differ_across_process_labels() {
        // same trace, same sequence position, different label → different id
        set_process_label("proc-a");
        let a = alloc_span_id(77);
        set_process_label("proc-b");
        let b = alloc_span_id(77);
        set_process_label("proc");
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn install_is_scoped_and_nested() {
        let _ = current(); // whatever the thread had
        {
            let _g = install(TraceCtx::root(11));
            assert_eq!(current().unwrap().trace_id, 11);
            {
                let _g2 = install(TraceCtx { trace_id: 12, parent_span: 5 });
                assert_eq!(current().unwrap().trace_id, 12);
            }
            assert_eq!(current().unwrap().trace_id, 11, "inner guard restores outer ctx");
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn drain_trace_leaves_other_traces() {
        reset();
        record(rec(100, 1, 0, "a", "p", 1));
        record(rec(200, 2, 0, "b", "p", 1));
        record(rec(100, 3, 1, "c", "p", 1));
        let got = drain_trace(100);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|r| r.trace_id == 100));
        let rest = drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].trace_id, 200);
    }
}
