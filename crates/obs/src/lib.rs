//! iam-obs — workspace-wide observability for the IAM pipeline (std-only,
//! no external dependencies).
//!
//! Three layers, each usable alone:
//!
//! * [`registry`] — a shard-friendly metrics registry: [`Counter`],
//!   [`Gauge`], [`FloatGauge`] and fixed-bucket [`Histogram`] instruments
//!   behind `Arc` handles (relaxed atomics on the hot path, a lock only at
//!   registration), with Prometheus text exposition and one-line JSON
//!   snapshots for JSONL appends. [`Registry::global`] hosts the
//!   process-wide probes; subsystems that need isolation (the serving
//!   layer, tests) instantiate their own.
//! * [`span`](mod@span) — hierarchical wall-time spans
//!   (`let _g = iam_obs::span!("infer.progressive_sample");`) aggregated
//!   per stack path. Off by default; when enabled, exits fold into a
//!   process-wide table dumped as flamegraph-compatible folded stacks
//!   ([`span::folded_stacks`]) and mirrored into the global registry as
//!   `iam_span_us_total{span=…}` counters.
//! * [`trace`] — JSONL trace events ([`trace::event`]) through an
//!   installable sink: per-epoch training losses, per-query inference
//!   stats, registry snapshots. A no-op (one atomic load) until a sink is
//!   installed.
//!
//! Two cluster-facing layers build on those:
//!
//! * [`tracetree`] — distributed trace trees: a [`TraceCtx`] (128-bit
//!   trace id + parent span id) installed per thread makes every `span!`
//!   guard additionally record a [`SpanRecord`] with explicit parent
//!   links, so span trees from coordinator, workers and serve processes
//!   stitch into one tree ([`tracetree::TraceTree`], JSONL + folded
//!   stacks). Ids are SplitMix64-seeded — deterministic, no ambient
//!   entropy.
//! * [`qerror`] — served-accuracy tracking: reservoir-sampled estimate
//!   records resolved against later truth reports into q-error histograms
//!   and per-column error gauges, all landing in an ordinary [`Registry`].
//!
//! The probes wired through `iam-core` and `iam-serve` all funnel into
//! these three; see the README's "Observability" section for how to scrape
//! and read them.

#![deny(missing_docs)]

pub mod qerror;
pub mod registry;
pub mod span;
pub mod trace;
pub mod tracetree;

pub use qerror::{QErrorTracker, QRecord};
pub use registry::{fmt_bound, Counter, FloatGauge, Gauge, Histogram, HistogramSnapshot, Registry};
pub use span::{SpanAgg, SpanGuard};
pub use trace::{SharedBuf, Value};
pub use tracetree::{SpanRecord, TraceCtx, TraceIdGen};
