//! JSONL trace events: a process-wide sink that instrumented code writes
//! one JSON object per line into.
//!
//! Like spans, the sink is **off until installed** — [`event`] is a single
//! relaxed atomic load when no sink is active, so leaving trace calls in
//! hot paths costs nothing in production. Install a file sink with
//! [`install_file`], or any `Write + Send` (tests use [`SharedBuf`]) with
//! [`install_writer`]; [`uninstall`] flushes and removes it.
//!
//! ```text
//! {"event":"train.epoch","ts_ms":1754500000123,"epoch":3,"ar_loss":1.91,…}
//! {"event":"infer.query","ts_ms":1754500000345,"samples":512,"estimate":0.013,…}
//! ```

use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// A typed field value for [`event`].
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values serialize as `null`).
    F64(f64),
    /// String (JSON-escaped).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

/// Is a trace sink currently installed? Callers assembling expensive event
/// payloads should check this first.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Relaxed)
}

/// Install a buffered file sink at `path` (truncates an existing file).
pub fn install_file<P: AsRef<Path>>(path: P) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    install_writer(Box::new(BufWriter::new(f)));
    Ok(())
}

/// Install an arbitrary sink (replacing — and flushing — any previous one).
pub fn install_writer(w: Box<dyn Write + Send>) {
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(mut old) = sink.take() {
        let _ = old.flush();
    }
    *sink = Some(w);
    ACTIVE.store(true, Relaxed);
}

/// Flush and remove the sink; subsequent [`event`] calls are no-ops.
pub fn uninstall() {
    ACTIVE.store(false, Relaxed);
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(mut old) = sink.take() {
        let _ = old.flush();
    }
}

/// Flush the sink without removing it (e.g. before reading the file).
pub fn flush() {
    if let Some(w) = SINK.lock().expect("trace sink poisoned").as_mut() {
        let _ = w.flush();
    }
}

/// Emit one event line: `{"event":name,"ts_ms":…,fields…}`. A no-op
/// without an installed sink; write errors silently drop the event (tracing
/// must never take down the traced system).
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !active() {
        return;
    }
    let ts_ms = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis()).unwrap_or(0);
    let mut line = String::with_capacity(64 + fields.len() * 24);
    line.push_str("{\"event\":\"");
    line.push_str(&json_escape(name));
    line.push_str("\",\"ts_ms\":");
    line.push_str(&ts_ms.to_string());
    for (k, v) in fields {
        line.push_str(",\"");
        line.push_str(&json_escape(k));
        line.push_str("\":");
        match v {
            Value::U64(n) => line.push_str(&n.to_string()),
            Value::I64(n) => line.push_str(&n.to_string()),
            Value::F64(x) if x.is_finite() => line.push_str(&format!("{x}")),
            Value::F64(_) => line.push_str("null"),
            Value::Str(s) => {
                line.push('"');
                line.push_str(&json_escape(s));
                line.push('"');
            }
            Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push_str("}\n");
    if let Some(w) = SINK.lock().expect("trace sink poisoned").as_mut() {
        let _ = w.write_all(line.as_bytes());
    }
}

/// Append a full registry snapshot as one
/// `{"event":"registry.snapshot",…}` line.
pub fn snapshot_registry(registry: &crate::Registry) {
    if !active() {
        return;
    }
    let ts_ms = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis()).unwrap_or(0);
    let json = registry.render_json();
    // splice the snapshot body into the event envelope: {"event":…,BODY…}
    let body = json.strip_prefix('{').unwrap_or(&json);
    let line = format!("{{\"event\":\"registry.snapshot\",\"ts_ms\":{ts_ms},{body}\n");
    if let Some(w) = SINK.lock().expect("trace sink poisoned").as_mut() {
        let _ = w.write_all(line.as_bytes());
    }
}

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A cloneable in-memory sink for tests and demos: install with
/// `install_writer(Box::new(buf.clone()))`, then read back via
/// [`SharedBuf::contents`].
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// Everything written so far, lossily decoded.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("shared buf poisoned")).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("shared buf poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // trace tests share the process-global sink; serialize them
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn events_are_json_lines() {
        let _s = serial();
        let buf = SharedBuf::new();
        install_writer(Box::new(buf.clone()));
        event(
            "test.event",
            &[
                ("n", Value::U64(7)),
                ("loss", Value::F64(1.25)),
                ("bad", Value::F64(f64::NAN)),
                ("who", Value::Str("a\"b")),
                ("ok", Value::Bool(true)),
            ],
        );
        uninstall();
        let out = buf.contents();
        assert_eq!(out.lines().count(), 1);
        let line = out.lines().next().unwrap();
        assert!(line.starts_with("{\"event\":\"test.event\",\"ts_ms\":"), "{line}");
        assert!(line.contains("\"n\":7"));
        assert!(line.contains("\"loss\":1.25"));
        assert!(line.contains("\"bad\":null"));
        assert!(line.contains("\"who\":\"a\\\"b\""));
        assert!(line.contains("\"ok\":true"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn inactive_sink_drops_events() {
        let _s = serial();
        uninstall();
        assert!(!active());
        event("ignored", &[]); // must not panic, must not write anywhere
    }

    #[test]
    fn registry_snapshot_event_wraps_registry_json() {
        let _s = serial();
        let buf = SharedBuf::new();
        install_writer(Box::new(buf.clone()));
        let r = crate::Registry::new();
        r.counter("iam_snap_total", &[]).add(4);
        snapshot_registry(&r);
        uninstall();
        let out = buf.contents();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("\"event\":\"registry.snapshot\""));
        assert!(out.contains("\"iam_snap_total\":4"), "{out}");
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(json_escape("a\nb\t\"c\\"), "a\\nb\\t\\\"c\\\\");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
