//! Variational Bayesian Gaussian mixture (VBGM, paper §4.2).
//!
//! IAM uses VBGM on a uniform sample to (a) pick the effective number of
//! components and (b) initialise the gradient trainer. This is a univariate
//! VB-EM (Bishop, PRML §10.2 specialised to 1-D) with a Dirichlet prior over
//! weights and a Normal–Gamma prior over (mean, precision). A small
//! Dirichlet concentration `α₀` drives unneeded components' weights to ~0,
//! so the returned mixture can have fewer components than `max_components`.

use crate::model::Gmm1d;

/// Digamma function ψ(x) via upward recurrence + asymptotic series.
pub fn digamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "digamma domain");
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln() - 0.5 * inv - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0))
}

/// Configuration for [`fit_vbgm`].
#[derive(Debug, Clone)]
pub struct VbgmConfig {
    /// Upper bound on the number of components.
    pub max_components: usize,
    /// Dirichlet concentration; small values prune aggressively.
    pub alpha0: f64,
    /// VB-EM iterations.
    pub iterations: usize,
    /// Components with expected weight below this fraction are dropped.
    pub prune_weight: f64,
    /// Post-fit merge threshold for near-duplicate components (see
    /// [`Gmm1d::merged_close`]); `0.0` disables merging.
    pub merge_threshold: f64,
}

impl Default for VbgmConfig {
    fn default() -> Self {
        VbgmConfig {
            max_components: 30,
            alpha0: 1e-3,
            iterations: 60,
            prune_weight: 1e-3,
            merge_threshold: 0.35,
        }
    }
}

/// Fit a VBGM and return the pruned point-estimate mixture.
///
/// Deterministic: initial responsibilities come from an equal-frequency
/// quantile partition of the sorted data.
pub fn fit_vbgm(values: &[f64], cfg: &VbgmConfig) -> Gmm1d {
    assert!(!values.is_empty(), "cannot fit an empty column");
    let k = cfg.max_components.max(1);
    let n = values.len();
    let nf = n as f64;

    let mean_all = values.iter().sum::<f64>() / nf;
    let var_all =
        (values.iter().map(|v| (v - mean_all) * (v - mean_all)).sum::<f64>() / nf).max(1e-12);

    // priors
    let alpha0 = cfg.alpha0;
    let beta0 = 1.0;
    let m0 = mean_all;
    // prior precision expectation ≈ k² / var: components narrower than data
    let a0 = 2.0;
    let b0 = a0 * var_all / (k as f64 * k as f64);

    // initial hard responsibilities by quantile partition
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut resp = vec![0.0f64; n * k];
    for (rank, &row) in order.iter().enumerate() {
        let c = (rank * k / n).min(k - 1);
        resp[row * k + c] = 1.0;
    }

    let mut alpha = vec![alpha0; k];
    let mut beta = vec![beta0; k];
    let mut m = vec![m0; k];
    let mut a = vec![a0; k];
    let mut b = vec![b0; k];

    for it in 0..cfg.iterations {
        // M step (variational parameter update) from current responsibilities
        let mut nk = vec![0.0f64; k];
        let mut xbar = vec![0.0f64; k];
        for (row, &x) in values.iter().enumerate() {
            for c in 0..k {
                let r = resp[row * k + c];
                nk[c] += r;
                xbar[c] += r * x;
            }
        }
        for c in 0..k {
            xbar[c] /= nk[c].max(1e-12);
        }
        let mut sk = vec![0.0f64; k];
        for (row, &x) in values.iter().enumerate() {
            for c in 0..k {
                let d = x - xbar[c];
                sk[c] += resp[row * k + c] * d * d;
            }
        }
        for c in 0..k {
            let nkc = nk[c];
            alpha[c] = alpha0 + nkc;
            beta[c] = beta0 + nkc;
            m[c] = (beta0 * m0 + xbar[c] * nkc) / beta[c];
            a[c] = a0 + 0.5 * nkc;
            let dm = xbar[c] - m0;
            b[c] = b0 + 0.5 * (sk[c] + beta0 * nkc * dm * dm / beta[c]);
        }

        if it + 1 == cfg.iterations {
            break;
        }

        // E step: expected log weights / precisions
        let alpha_sum: f64 = alpha.iter().sum();
        let psi_alpha_sum = digamma(alpha_sum);
        let mut ln_pi = vec![0.0f64; k];
        let mut ln_lambda = vec![0.0f64; k];
        let mut e_lambda = vec![0.0f64; k];
        for c in 0..k {
            ln_pi[c] = digamma(alpha[c]) - psi_alpha_sum;
            ln_lambda[c] = digamma(a[c]) - b[c].ln();
            e_lambda[c] = a[c] / b[c];
        }
        let mut logs = vec![0.0f64; k];
        for (row, &x) in values.iter().enumerate() {
            for c in 0..k {
                let d = x - m[c];
                logs[c] =
                    ln_pi[c] + 0.5 * ln_lambda[c] - 0.5 * (e_lambda[c] * d * d + 1.0 / beta[c]);
            }
            let lse = crate::math::log_sum_exp(&logs);
            for c in 0..k {
                resp[row * k + c] = (logs[c] - lse).exp();
            }
        }
    }

    // point estimates, pruned
    let alpha_sum: f64 = alpha.iter().sum();
    let mut weights = Vec::new();
    let mut means = Vec::new();
    let mut stds = Vec::new();
    for c in 0..k {
        let w = alpha[c] / alpha_sum;
        if w >= cfg.prune_weight {
            weights.push(w);
            means.push(m[c]);
            stds.push((b[c] / a[c]).sqrt());
        }
    }
    if weights.is_empty() {
        // degenerate (e.g. constant column): fall back to a single component
        weights.push(1.0);
        means.push(mean_all);
        stds.push(var_all.sqrt());
    }
    let fit = Gmm1d::new(weights, means, stds);
    if cfg.merge_threshold > 0.0 {
        fit.merged_close(cfg.merge_threshold)
    } else {
        fit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn digamma_reference_values() {
        // ψ(1) = -γ, ψ(2) = 1 - γ, ψ(0.5) = -γ - 2 ln 2
        let gamma = 0.5772156649015329;
        assert!((digamma(1.0) + gamma).abs() < 1e-9);
        assert!((digamma(2.0) - (1.0 - gamma)).abs() < 1e-9);
        assert!((digamma(0.5) + gamma + 2.0 * std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn prunes_to_true_component_count() {
        // three well-separated blobs, max_components = 15
        let truth = Gmm1d::new(vec![0.3, 0.4, 0.3], vec![-10.0, 0.0, 10.0], vec![0.5, 0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<f64> = (0..6000).map(|_| truth.sample(&mut rng)).collect();
        let cfg = VbgmConfig { max_components: 15, prune_weight: 0.02, ..Default::default() };
        let fit = fit_vbgm(&data, &cfg);
        assert!((3..=6).contains(&fit.k()), "expected ~3 surviving components, got {}", fit.k());
        // the three true means are each near some fitted mean
        for want in [-10.0, 0.0, 10.0] {
            let best = fit.means.iter().map(|m| (m - want).abs()).fold(f64::INFINITY, f64::min);
            assert!(best < 0.5, "no component near {want} (closest off by {best})");
        }
    }

    #[test]
    fn deterministic() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let a = fit_vbgm(&data, &VbgmConfig::default());
        let b = fit_vbgm(&data, &VbgmConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn constant_column_yields_single_component() {
        let data = vec![3.0; 200];
        let fit = fit_vbgm(&data, &VbgmConfig::default());
        assert!(fit.k() >= 1);
        assert!(fit.pdf(3.0).is_finite());
    }

    #[test]
    fn fit_quality_comparable_to_em() {
        let truth = Gmm1d::new(vec![0.5, 0.5], vec![-3.0, 3.0], vec![1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<f64> = (0..5000).map(|_| truth.sample(&mut rng)).collect();
        let vb = fit_vbgm(&data, &VbgmConfig { max_components: 8, ..Default::default() });
        let em = crate::em::fit_em(&data, 2, 100, 1e-9);
        let nll_vb = vb.nll(&data);
        let nll_em = em.gmm.nll(&data);
        assert!(nll_vb < nll_em + 0.1, "VB NLL {nll_vb} vs EM NLL {nll_em}");
    }
}
