//! Per-component CDF prefix tables over a value grid.
//!
//! `P_GMM(R_i)` mass vectors dominate plan-building for reduced columns:
//! every range interval costs one `normal_mass` (two `erf` evaluations)
//! per component. A [`CdfPrefixTable`] caches the component CDFs at the
//! column's token grid (its sorted distinct values) once at
//! model-prepare time, so the mass vector for an arbitrary on-grid range
//! is two table lookups and one subtraction per component — O(K) with no
//! `erf` in the hot path.
//!
//! Bitwise contract: cached entries store exactly
//! `std_normal_cdf((grid[g] − mean_k) / std_k)` — the same expression
//! [`normal_mass`](crate::math::normal_mass) evaluates — so
//! [`CdfPrefixTable::mass_into`] is **bit-identical** to
//! [`Gmm1d::range_mass_exact`] for on-grid bounds, and falls back to the
//! identical fresh computation for off-grid or infinite bounds. Golden
//! estimate bits are therefore unchanged with tables enabled (the
//! default).

use crate::math::std_normal_cdf;
use crate::model::Gmm1d;

/// Cached per-component standard-normal CDF values at a sorted value
/// grid, plus the component parameters needed to evaluate off-grid
/// bounds with identical arithmetic.
#[derive(Debug, Clone)]
pub struct CdfPrefixTable {
    /// Sorted distinct grid values (the reduced column's token grid).
    grid: Vec<f64>,
    /// Row-major `K × grid.len()`: `cdf[k][g] = Φ((grid[g] − μ_k)/σ_k)`.
    cdf: Vec<f64>,
    /// Component means (for off-grid fallback evaluation).
    means: Vec<f64>,
    /// Component stds (for off-grid fallback evaluation).
    stds: Vec<f64>,
}

impl CdfPrefixTable {
    /// Precompute the CDF table for `gmm` over `grid`.
    ///
    /// `grid` must be sorted ascending and duplicate-free (binary search
    /// is used at query time); it is typically the column's distinct
    /// values captured at schema-build time.
    ///
    /// # Panics
    /// Panics in debug builds if `grid` is not strictly ascending.
    pub fn build(gmm: &Gmm1d, grid: &[f64]) -> Self {
        debug_assert!(
            grid.windows(2).all(|w| w[0] < w[1]),
            "CDF prefix grid must be strictly ascending"
        );
        let k = gmm.k();
        let mut cdf = Vec::with_capacity(k * grid.len());
        for c in 0..k {
            let (mean, std) = (gmm.means[c], gmm.stds[c]);
            // exactly the per-bound expression normal_mass evaluates
            cdf.extend(grid.iter().map(|&v| std_normal_cdf((v - mean) / std)));
        }
        CdfPrefixTable {
            grid: grid.to_vec(),
            cdf,
            means: gmm.means.clone(),
            stds: gmm.stds.clone(),
        }
    }

    /// Number of mixture components the table was built for.
    pub fn k(&self) -> usize {
        self.means.len()
    }

    /// Number of grid points.
    pub fn grid_len(&self) -> usize {
        self.grid.len()
    }

    /// Component `c`'s cached CDF row over the grid (non-decreasing in
    /// `[0, 1]`; callers may feed this to monotonicity invariants).
    pub fn component_cdf(&self, c: usize) -> &[f64] {
        &self.cdf[c * self.grid.len()..(c + 1) * self.grid.len()]
    }

    /// Resident bytes of the cached table (grid + CDF rows + params).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of_val(self.grid.as_slice())
            + std::mem::size_of_val(self.cdf.as_slice())
            + std::mem::size_of_val(self.means.as_slice())
            + std::mem::size_of_val(self.stds.as_slice())
    }

    /// CDF of component `c` at bound `v`: cached lookup when `v` is on
    /// the grid, otherwise the identical fresh expression. Mirrors the
    /// bound handling of [`normal_mass`](crate::math::normal_mass):
    /// `+∞ → 1`, `−∞ → 0`.
    #[inline]
    fn cdf_at(&self, c: usize, v: f64) -> f64 {
        if v == f64::INFINITY {
            return 1.0;
        }
        if v == f64::NEG_INFINITY {
            return 0.0;
        }
        if let Ok(g) = self.grid.binary_search_by(|p| p.partial_cmp(&v).unwrap()) {
            return self.cdf[c * self.grid.len() + g];
        }
        std_normal_cdf((v - self.means[c]) / self.stds[c])
    }

    /// Per-component mass of `[lo, hi]`, appended into `out` (which is
    /// cleared first) — drop-in for [`Gmm1d::range_mass_exact`], and
    /// bit-identical to it for every bound (on-grid, off-grid, ±∞, and
    /// empty `lo > hi` intervals, which yield all-zero mass).
    ///
    /// The prefix difference `Φ(hi) − Φ(lo)` can go tiny-negative from
    /// round-off in the tails; the `.max(0.0)` clamp below matches
    /// `normal_mass` exactly, so downstream zero-mass handling
    /// (`pick_in_window`) sees identical zeros either way.
    pub fn mass_into(&self, lo: f64, hi: f64, out: &mut Vec<f64>) {
        out.clear();
        if lo > hi {
            out.resize(self.k(), 0.0);
            return;
        }
        out.extend((0..self.k()).map(|c| (self.cdf_at(c, hi) - self.cdf_at(c, lo)).max(0.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::normal_mass;

    fn gmm() -> Gmm1d {
        Gmm1d::new(vec![0.5, 0.3, 0.2], vec![-1.0, 0.5, 12.0], vec![0.4, 2.0, 0.05])
    }

    fn grid() -> Vec<f64> {
        vec![-3.0, -1.0, -0.25, 0.0, 0.5, 1.75, 4.0, 11.9, 12.0, 12.1]
    }

    fn exact(g: &Gmm1d, lo: f64, hi: f64) -> Vec<f64> {
        (0..g.k()).map(|c| normal_mass(lo, hi, g.means[c], g.stds[c])).collect()
    }

    #[test]
    fn on_grid_bounds_are_bitwise_identical_to_normal_mass() {
        let g = gmm();
        let grid = grid();
        let t = CdfPrefixTable::build(&g, &grid);
        let mut out = Vec::new();
        for (i, &lo) in grid.iter().enumerate() {
            for &hi in &grid[i..] {
                t.mass_into(lo, hi, &mut out);
                let want = exact(&g, lo, hi);
                for (c, (got, want)) in out.iter().zip(&want).enumerate() {
                    assert_eq!(got.to_bits(), want.to_bits(), "component {c}, [{lo}, {hi}]");
                }
            }
        }
    }

    #[test]
    fn off_grid_and_infinite_bounds_match_bitwise() {
        let g = gmm();
        let t = CdfPrefixTable::build(&g, &grid());
        let mut out = Vec::new();
        let bounds = [
            (-2.5, 0.3),                        // both off-grid
            (-1.0, 0.31),                       // lo on-grid, hi off
            (f64::NEG_INFINITY, 0.5),           // −∞ to on-grid
            (-0.25, f64::INFINITY),             // on-grid to +∞
            (f64::NEG_INFINITY, f64::INFINITY), // full line: mass 1
        ];
        for (lo, hi) in bounds {
            t.mass_into(lo, hi, &mut out);
            let want = exact(&g, lo, hi);
            for (got, want) in out.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "[{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn empty_interval_yields_all_zero_mass() {
        let g = gmm();
        let t = CdfPrefixTable::build(&g, &grid());
        let mut out = vec![99.0];
        t.mass_into(2.0, 1.0, &mut out);
        assert_eq!(out, vec![0.0; g.k()]);
        // matches normal_mass's lo > hi short-circuit bitwise
        assert_eq!(exact(&g, 2.0, 1.0), vec![0.0; g.k()]);
    }

    #[test]
    fn component_rows_are_monotone_cdfs() {
        let g = gmm();
        let t = CdfPrefixTable::build(&g, &grid());
        for c in 0..t.k() {
            let row = t.component_cdf(c);
            assert_eq!(row.len(), t.grid_len());
            assert!(row.windows(2).all(|w| w[0] <= w[1]), "component {c} not monotone");
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn agreement_within_1e12_everywhere_on_a_dense_sweep() {
        // belt-and-braces numeric bound on top of the bitwise tests
        let g = gmm();
        let t = CdfPrefixTable::build(&g, &grid());
        let mut out = Vec::new();
        for i in -30..=30 {
            let lo = i as f64 * 0.5;
            for j in 0..=20 {
                let hi = lo + j as f64 * 0.7;
                t.mass_into(lo, hi, &mut out);
                for (got, want) in out.iter().zip(exact(&g, lo, hi)) {
                    assert!((got - want).abs() <= 1e-12, "[{lo}, {hi}]: {got} vs {want}");
                }
            }
        }
    }
}
