//! Gradient-based maximum-likelihood GMM training (paper §4.2, Eq. 4).
//!
//! IAM trains GMMs *inside* the joint mini-batch loop, so instead of EM the
//! mixture is parameterised unconstrained — weights as softmax logits,
//! standard deviations as `exp(log σ)` — and optimised by Adam on the
//! per-batch negative log-likelihood. The gradients are the classic
//! responsibility-weighted forms:
//!
//! * `∂L/∂μ_k      = −r_k (x − μ_k) / σ_k²`
//! * `∂L/∂log σ_k  = −r_k ((x − μ_k)²/σ_k² − 1)`
//! * `∂L/∂logit_k  = −(r_k − π_k)`
//!
//! where `r_k` is the posterior responsibility of component `k` for `x`.

use crate::math::{log_sum_exp, normal_log_pdf};
use crate::model::Gmm1d;
use rand::{Rng, RngExt};

/// Draw a standard normal (Marsaglia polar); shared by model sampling.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.random::<f64>() - 1.0;
        let v = 2.0 * rng.random::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Adam hyper-parameters for the GMM trainer.
#[derive(Debug, Clone)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f64,
    /// Adam β₁.
    pub beta1: f64,
    /// Adam β₂.
    pub beta2: f64,
    /// Adam ε.
    pub eps: f64,
    /// Floor applied to σ to prevent collapse onto a point mass.
    pub min_std: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { lr: 5e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, min_std: 1e-6 }
    }
}

/// Mini-batch gradient trainer holding the unconstrained parameters and
/// Adam state for one GMM.
#[derive(Debug, Clone)]
pub struct GmmSgdTrainer {
    logits: Vec<f64>,
    means: Vec<f64>,
    log_stds: Vec<f64>,
    cfg: SgdConfig,
    // Adam state: first/second moments for each parameter group
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    // scratch
    scratch_logp: Vec<f64>,
    grad: Vec<f64>,
}

impl GmmSgdTrainer {
    /// Start from an initial mixture (typically a VBGM fit on a sample).
    pub fn from_init(init: &Gmm1d, cfg: SgdConfig) -> Self {
        let k = init.k();
        let logits = init.weights.iter().map(|w| w.max(1e-12).ln()).collect();
        let log_stds = init.stds.iter().map(|s| s.max(cfg.min_std).ln()).collect();
        GmmSgdTrainer {
            logits,
            means: init.means.clone(),
            log_stds,
            m: vec![0.0; 3 * k],
            v: vec![0.0; 3 * k],
            t: 0,
            scratch_logp: vec![0.0; k],
            grad: vec![0.0; 3 * k],
            cfg,
        }
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.means.len()
    }

    /// Current mixture weights (softmax of the logits).
    fn weights(&self) -> Vec<f64> {
        let lse = log_sum_exp(&self.logits);
        self.logits.iter().map(|l| (l - lse).exp()).collect()
    }

    /// The current point-estimate mixture.
    pub fn snapshot(&self) -> Gmm1d {
        Gmm1d::new(
            self.weights(),
            self.means.clone(),
            self.log_stds.iter().map(|l| l.exp().max(self.cfg.min_std)).collect(),
        )
    }

    /// One Adam step on a mini-batch. Returns the batch's average NLL
    /// (the `loss_GMM` term of the joint objective, Eq. 6).
    pub fn step(&mut self, batch: &[f64]) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        let k = self.k();
        let weights = self.weights();
        let log_w: Vec<f64> = weights.iter().map(|w| w.ln()).collect();
        let stds: Vec<f64> = self.log_stds.iter().map(|l| l.exp().max(self.cfg.min_std)).collect();

        self.grad.iter_mut().for_each(|g| *g = 0.0);
        let mut nll = 0.0;
        for &x in batch {
            for c in 0..k {
                self.scratch_logp[c] = log_w[c] + normal_log_pdf(x, self.means[c], stds[c]);
            }
            let lse = log_sum_exp(&self.scratch_logp);
            nll -= lse;
            for c in 0..k {
                let r = (self.scratch_logp[c] - lse).exp();
                let d = (x - self.means[c]) / stds[c];
                // parameter layout: [logits | means | log_stds]
                self.grad[c] += -(r - weights[c]);
                self.grad[k + c] += -r * d / stds[c];
                self.grad[2 * k + c] += -r * (d * d - 1.0);
            }
        }
        let scale = 1.0 / batch.len() as f64;
        nll *= scale;

        self.t += 1;
        let lr = self.cfg.lr;
        let (b1, b2, eps) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for i in 0..3 * k {
            let g = self.grad[i] * scale;
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            let delta = lr * mhat / (vhat.sqrt() + eps);
            match i / k {
                0 => self.logits[i] -= delta,
                1 => self.means[i - k] -= delta,
                _ => self.log_stds[i - 2 * k] -= delta,
            }
        }
        nll
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn data(truth: &Gmm1d, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| truth.sample(&mut rng)).collect()
    }

    #[test]
    fn sgd_improves_nll_from_rough_init() {
        let truth = Gmm1d::new(vec![0.4, 0.6], vec![-4.0, 2.0], vec![0.7, 1.5]);
        let d = data(&truth, 8000, 1);
        let init = Gmm1d::new(vec![0.5, 0.5], vec![-1.0, 1.0], vec![3.0, 3.0]);
        let nll_init = init.nll(&d);
        let mut trainer =
            GmmSgdTrainer::from_init(&init, SgdConfig { lr: 2e-2, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1500 {
            let batch: Vec<f64> = (0..256).map(|_| d[rng.random_range(0..d.len())]).collect();
            trainer.step(&batch);
        }
        let fitted = trainer.snapshot();
        let nll_final = fitted.nll(&d);
        assert!(
            nll_final < nll_init - 0.3,
            "SGD should improve NLL materially: {nll_init} -> {nll_final}"
        );
        // close to the truth's NLL
        let nll_truth = truth.nll(&d);
        assert!(nll_final < nll_truth + 0.15, "final {nll_final} vs truth {nll_truth}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        // check ∂NLL/∂θ numerically on a tiny batch
        let batch = [0.3, -1.2, 2.5];
        let base = Gmm1d::new(vec![0.6, 0.4], vec![-1.0, 1.0], vec![0.9, 1.1]);
        let mk = |logits: &[f64], means: &[f64], log_stds: &[f64]| {
            let lse = log_sum_exp(logits);
            Gmm1d::new(
                logits.iter().map(|l| (l - lse).exp()).collect(),
                means.to_vec(),
                log_stds.iter().map(|l| l.exp()).collect(),
            )
        };
        let logits = vec![0.6f64.ln(), 0.4f64.ln()];
        let means = vec![-1.0, 1.0];
        let log_stds = vec![0.9f64.ln(), 1.1f64.ln()];

        // analytic gradient via one trainer step with lr → recovered from grad buffer
        let mut tr = GmmSgdTrainer::from_init(&base, SgdConfig::default());
        tr.step(&batch);
        let analytic: Vec<f64> = tr.grad.iter().map(|g| g / batch.len() as f64).collect();

        let h = 1e-6;
        let nll_perturbed = |i: usize, delta: f64| {
            let (mut lg, mut mu, mut ls) = (logits.clone(), means.clone(), log_stds.clone());
            match i / 2 {
                0 => lg[i % 2] += delta,
                1 => mu[i % 2] += delta,
                _ => ls[i % 2] += delta,
            }
            mk(&lg, &mu, &ls).nll(&batch)
        };
        for (i, want) in analytic.iter().enumerate().take(6) {
            let fd = (nll_perturbed(i, h) - nll_perturbed(i, -h)) / (2.0 * h);
            assert!((fd - want).abs() < 1e-4, "param {i}: finite-diff {fd} vs analytic {want}");
        }
    }

    #[test]
    fn snapshot_weights_are_simplex() {
        let init = Gmm1d::new(vec![0.2, 0.3, 0.5], vec![0.0, 1.0, 2.0], vec![1.0; 3]);
        let mut tr = GmmSgdTrainer::from_init(&init, SgdConfig::default());
        tr.step(&[0.5, 1.5]);
        let snap = tr.snapshot();
        assert!((snap.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(snap.stds.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let init = Gmm1d::new(vec![1.0], vec![0.0], vec![1.0]);
        let mut tr = GmmSgdTrainer::from_init(&init, SgdConfig::default());
        let before = tr.snapshot();
        assert_eq!(tr.step(&[]), 0.0);
        assert_eq!(tr.snapshot(), before);
    }
}
