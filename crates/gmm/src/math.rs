//! Numerical primitives: `erf`, normal pdf/cdf, log-sum-exp.

/// `1/sqrt(2π)`.
pub const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
/// `sqrt(2)`.
pub const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Error function via Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5 × 10⁻⁷),
/// extended to the full line by odd symmetry.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    // coefficients of A&S 7.1.26
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal density.
#[inline]
pub fn std_normal_pdf(z: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * z * z).exp()
}

/// Standard normal CDF `Φ(z)`.
#[inline]
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / SQRT_2))
}

/// Density of `N(mean, std²)` at `x`.
#[inline]
pub fn normal_pdf(x: f64, mean: f64, std: f64) -> f64 {
    let z = (x - mean) / std;
    std_normal_pdf(z) / std
}

/// Log-density of `N(mean, std²)` at `x`.
#[inline]
pub fn normal_log_pdf(x: f64, mean: f64, std: f64) -> f64 {
    let z = (x - mean) / std;
    -0.5 * z * z - std.ln() - 0.918_938_533_204_672_7 // ln(sqrt(2π))
}

/// `P(lo ≤ X ≤ hi)` for `X ~ N(mean, std²)`; bounds may be infinite.
pub fn normal_mass(lo: f64, hi: f64, mean: f64, std: f64) -> f64 {
    if lo > hi {
        return 0.0;
    }
    let cdf = |v: f64| -> f64 {
        if v == f64::INFINITY {
            1.0
        } else if v == f64::NEG_INFINITY {
            0.0
        } else {
            std_normal_cdf((v - mean) / std)
        }
    };
    (cdf(hi) - cdf(lo)).max(0.0)
}

/// Numerically stable `log Σ exp(xs)`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // reference values from tables
        let cases =
            [(0.0, 0.0), (0.5, 0.5204999), (1.0, 0.8427008), (2.0, 0.9953223), (-1.0, -0.8427008)];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-6, "erf({x}) = {} want {want}", erf(x));
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        for z in [0.3, 1.0, 2.5] {
            assert!((std_normal_cdf(z) + std_normal_cdf(-z) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn normal_mass_full_line_is_one() {
        assert!((normal_mass(f64::NEG_INFINITY, f64::INFINITY, 3.0, 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(normal_mass(2.0, 1.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn normal_mass_one_sigma() {
        // ~68.27% within one σ
        let m = normal_mass(-1.0, 1.0, 0.0, 1.0);
        assert!((m - 0.682689).abs() < 1e-4, "{m}");
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // trapezoid integral of pdf over [-3, 3] vs cdf difference
        let n = 10_000;
        let (a, b) = (-3.0, 3.0);
        let h = (b - a) / n as f64;
        let mut integral = 0.0;
        for i in 0..n {
            let x0 = a + i as f64 * h;
            integral += 0.5 * (normal_pdf(x0, 0.5, 1.5) + normal_pdf(x0 + h, 0.5, 1.5)) * h;
        }
        let want = normal_mass(a, b, 0.5, 1.5);
        assert!((integral - want).abs() < 1e-5);
    }

    #[test]
    fn log_pdf_consistent_with_pdf() {
        for (x, m, s) in [(0.0, 0.0, 1.0), (2.0, -1.0, 0.5), (1e3, 0.0, 100.0)] {
            assert!((normal_log_pdf(x, m, s).exp() - normal_pdf(x, m, s)).abs() < 1e-12);
        }
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!((log_sum_exp(&[0.0, 0.0]) - std::f64::consts::LN_2).abs() < 1e-12);
        // huge magnitudes shouldn't overflow
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + std::f64::consts::LN_2)).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }
}
