//! One-dimensional Gaussian mixture models for domain reduction (paper §4.2).
//!
//! IAM fits one GMM per continuous attribute and replaces each raw value by
//! the index of its most probable component, shrinking domains from millions
//! of distinct values to `K ≈ 30`. This crate provides:
//!
//! * the [`Gmm1d`] model — pdf, posteriors, argmax assignment (Eq. 5),
//!   per-component range mass `P̂_GMM(R)` both exactly (via `erf`) and by the
//!   paper's Monte-Carlo scheme, and sampling;
//! * classic [`em`] fitting (the reference the paper contrasts with);
//! * [`vbgm`] — variational Bayesian GMM used to initialise and to pick the
//!   number of components (paper §4.2, "When to Use GMMs");
//! * [`sgd`] — the gradient-based maximum-likelihood trainer (Eq. 4) that
//!   lets GMMs share IAM's mini-batch training loop.

#![deny(missing_docs)]

pub mod em;
pub mod math;
pub mod model;
pub mod prefix;
pub mod sgd;
pub mod vbgm;

pub use em::fit_em;
pub use model::Gmm1d;
pub use prefix::CdfPrefixTable;
pub use sgd::{GmmSgdTrainer, SgdConfig};
pub use vbgm::{fit_vbgm, VbgmConfig};
