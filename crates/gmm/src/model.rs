//! The 1-D Gaussian mixture model and its query-time operations.

use crate::math::{log_sum_exp, normal_log_pdf, normal_mass, normal_pdf};
use rand::{Rng, RngExt};

/// A one-dimensional Gaussian mixture with `K` components.
///
/// Invariants: weights are positive and sum to 1; stds are positive.
#[derive(Debug, Clone, PartialEq)]
pub struct Gmm1d {
    /// Mixture weights `φ_k`, summing to 1.
    pub weights: Vec<f64>,
    /// Component means `μ_k`.
    pub means: Vec<f64>,
    /// Component standard deviations `σ_k`.
    pub stds: Vec<f64>,
}

impl Gmm1d {
    /// Construct a mixture, normalising weights and flooring stds.
    ///
    /// # Panics
    /// Panics if the parameter vectors have differing lengths or are empty.
    pub fn new(weights: Vec<f64>, means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "a GMM needs at least one component");
        assert_eq!(weights.len(), means.len());
        assert_eq!(weights.len(), stds.len());
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive mass");
        let weights = weights.iter().map(|w| (w / total).max(1e-300)).collect();
        let stds = stds.iter().map(|s| s.max(1e-9)).collect();
        Gmm1d { weights, means, stds }
    }

    /// Number of components `K`.
    pub fn k(&self) -> usize {
        self.weights.len()
    }

    /// Mixture density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (0..self.k()).map(|k| self.weights[k] * normal_pdf(x, self.means[k], self.stds[k])).sum()
    }

    /// Log mixture density at `x` (log-sum-exp stable).
    pub fn log_pdf(&self, x: f64) -> f64 {
        let logs: Vec<f64> = (0..self.k())
            .map(|k| self.weights[k].ln() + normal_log_pdf(x, self.means[k], self.stds[k]))
            .collect();
        log_sum_exp(&logs)
    }

    /// Posterior responsibilities `P(component = k | x)` into `out`.
    pub fn posteriors_into(&self, x: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            (0..self.k())
                .map(|k| self.weights[k].ln() + normal_log_pdf(x, self.means[k], self.stds[k])),
        );
        let lse = log_sum_exp(out);
        for v in out.iter_mut() {
            *v = (*v - lse).exp();
        }
    }

    /// Posterior responsibilities as a fresh vector.
    pub fn posteriors(&self, x: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.k());
        self.posteriors_into(x, &mut out);
        out
    }

    /// The paper's Eq. 5: index of the component with maximal
    /// `φ_k N(x | μ_k, σ_k²)` — the *reduced* attribute value `a'`.
    pub fn assign(&self, x: f64) -> usize {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for k in 0..self.k() {
            let score = self.weights[k].ln() + normal_log_pdf(x, self.means[k], self.stds[k]);
            if score > best_score {
                best_score = score;
                best = k;
            }
        }
        best
    }

    /// Exact per-component range mass: `P̂_GMM^k(R) = P(R | component k)`
    /// computed from the normal CDF. This is the `K`-vector the unbiased
    /// sampler multiplies into the AR conditional (§5.2).
    pub fn range_mass_exact(&self, lo: f64, hi: f64) -> Vec<f64> {
        (0..self.k()).map(|k| normal_mass(lo, hi, self.means[k], self.stds[k])).collect()
    }

    /// The paper's Monte-Carlo variant of [`Self::range_mass_exact`]: draw
    /// `s_per_component` samples from each component and report the fraction
    /// landing in `[lo, hi]`. The paper performs this once per query with
    /// pre-drawn samples; callers wanting that amortisation should use
    /// [`ComponentSamples`].
    pub fn range_mass_mc<R: Rng + ?Sized>(
        &self,
        lo: f64,
        hi: f64,
        s_per_component: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        (0..self.k())
            .map(|k| {
                let mut hits = 0usize;
                for _ in 0..s_per_component {
                    let v = self.means[k] + self.stds[k] * super::sgd::standard_normal(rng);
                    if v >= lo && v <= hi {
                        hits += 1;
                    }
                }
                hits as f64 / s_per_component.max(1) as f64
            })
            .collect()
    }

    /// Draw one value from the mixture.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        let mut k = self.k() - 1;
        for (i, w) in self.weights.iter().enumerate() {
            acc += w;
            if u <= acc {
                k = i;
                break;
            }
        }
        self.means[k] + self.stds[k] * super::sgd::standard_normal(rng)
    }

    /// Average negative log-likelihood over `values` (Eq. 4's loss).
    pub fn nll(&self, values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        -values.iter().map(|&v| self.log_pdf(v)).sum::<f64>() / values.len() as f64
    }

    /// Serialized parameter footprint in bytes: `3K` f64 parameters.
    pub fn size_bytes(&self) -> usize {
        3 * self.k() * std::mem::size_of::<f64>()
    }

    /// Merge components whose means are closer than
    /// `threshold × (σ_i + σ_j)`, moment-matching the merged Gaussian.
    ///
    /// Variational fits routinely leave several near-duplicate components
    /// feeding on one mode; merging them recovers the effective component
    /// count without changing the mixture density materially.
    pub fn merged_close(&self, threshold: f64) -> Gmm1d {
        let mut w = self.weights.clone();
        let mut mu = self.means.clone();
        let mut var: Vec<f64> = self.stds.iter().map(|s| s * s).collect();
        loop {
            let k = w.len();
            let mut merged_any = false;
            'outer: for i in 0..k {
                for j in (i + 1)..k {
                    let si = var[i].sqrt();
                    let sj = var[j].sqrt();
                    if (mu[i] - mu[j]).abs() <= threshold * (si + sj) {
                        let wt = w[i] + w[j];
                        let m = (w[i] * mu[i] + w[j] * mu[j]) / wt;
                        let second = (w[i] * (var[i] + mu[i] * mu[i])
                            + w[j] * (var[j] + mu[j] * mu[j]))
                            / wt;
                        w[i] = wt;
                        mu[i] = m;
                        var[i] = (second - m * m).max(1e-18);
                        w.remove(j);
                        mu.remove(j);
                        var.remove(j);
                        merged_any = true;
                        break 'outer;
                    }
                }
            }
            if !merged_any {
                break;
            }
        }
        Gmm1d::new(w, mu, var.iter().map(|v| v.sqrt()).collect())
    }
}

/// Pre-drawn per-component samples for the paper's Monte-Carlo range-mass
/// estimator: "the first step is a one-time preprocessing that can be done
/// before any query is processed" (§5.2).
#[derive(Debug, Clone)]
pub struct ComponentSamples {
    /// `samples[k]` holds `S` sorted draws from component `k`.
    samples: Vec<Vec<f64>>,
}

impl ComponentSamples {
    /// Draw and sort `s_per_component` samples from each component.
    pub fn new<R: Rng + ?Sized>(gmm: &Gmm1d, s_per_component: usize, rng: &mut R) -> Self {
        let samples = (0..gmm.k())
            .map(|k| {
                let mut v: Vec<f64> = (0..s_per_component)
                    .map(|_| gmm.means[k] + gmm.stds[k] * super::sgd::standard_normal(rng))
                    .collect();
                v.sort_unstable_by(f64::total_cmp);
                v
            })
            .collect();
        ComponentSamples { samples }
    }

    /// Per-component fraction of pre-drawn samples inside `[lo, hi]`
    /// (`S_k / S` in Algorithm 1, line 11). Binary search makes each query
    /// `O(K log S)`.
    pub fn range_mass(&self, lo: f64, hi: f64) -> Vec<f64> {
        self.samples
            .iter()
            .map(|s| {
                let a = s.partition_point(|&v| v < lo);
                let b = s.partition_point(|&v| v <= hi);
                (b - a) as f64 / s.len().max(1) as f64
            })
            .collect()
    }

    /// Number of samples per component.
    pub fn s_per_component(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_comp() -> Gmm1d {
        Gmm1d::new(vec![0.25, 0.75], vec![-2.0, 3.0], vec![0.5, 1.0])
    }

    #[test]
    fn weights_normalised_on_construction() {
        let g = Gmm1d::new(vec![1.0, 3.0], vec![0.0, 1.0], vec![1.0, 1.0]);
        assert!((g.weights[0] - 0.25).abs() < 1e-12);
        assert!((g.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_matches_log_pdf() {
        let g = two_comp();
        for x in [-3.0, 0.0, 3.0, 10.0] {
            assert!((g.pdf(x).ln() - g.log_pdf(x)).abs() < 1e-9, "at {x}");
        }
    }

    #[test]
    fn posteriors_sum_to_one_and_peak_correctly() {
        let g = two_comp();
        let p = g.posteriors(-2.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > 0.9, "x = -2 clearly belongs to component 0: {p:?}");
        assert_eq!(g.assign(-2.0), 0);
        assert_eq!(g.assign(3.0), 1);
    }

    #[test]
    fn assignment_boundary_is_deterministic() {
        let g = two_comp();
        // repeated calls agree (argmax, not sampling — the paper's choice)
        let a1 = g.assign(0.4);
        for _ in 0..10 {
            assert_eq!(g.assign(0.4), a1);
        }
    }

    #[test]
    fn exact_range_mass_bounds() {
        let g = two_comp();
        let full = g.range_mass_exact(f64::NEG_INFINITY, f64::INFINITY);
        assert!(full.iter().all(|&m| (m - 1.0).abs() < 1e-9));
        let empty = g.range_mass_exact(5.0, 4.0);
        assert!(empty.iter().all(|&m| m == 0.0));
        let half = g.range_mass_exact(-2.0, f64::INFINITY);
        assert!((half[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mc_range_mass_approximates_exact() {
        let g = two_comp();
        let mut rng = StdRng::seed_from_u64(1);
        let exact = g.range_mass_exact(-1.0, 4.0);
        let mc = g.range_mass_mc(-1.0, 4.0, 20_000, &mut rng);
        for (e, m) in exact.iter().zip(&mc) {
            assert!((e - m).abs() < 0.02, "exact {e} mc {m}");
        }
    }

    #[test]
    fn component_samples_match_exact_mass() {
        let g = two_comp();
        let mut rng = StdRng::seed_from_u64(2);
        let cs = ComponentSamples::new(&g, 20_000, &mut rng);
        assert_eq!(cs.s_per_component(), 20_000);
        let exact = g.range_mass_exact(0.0, 3.5);
        let approx = cs.range_mass(0.0, 3.5);
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 0.02, "exact {e} approx {a}");
        }
    }

    #[test]
    fn sampling_reproduces_mixture_mean() {
        let g = two_comp();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        let want = 0.25 * -2.0 + 0.75 * 3.0;
        assert!((mean - want).abs() < 0.05, "sample mean {mean} want {want}");
    }

    #[test]
    fn size_accounting() {
        assert_eq!(two_comp().size_bytes(), 2 * 3 * 8);
    }
}
