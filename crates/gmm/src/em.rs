//! Classic expectation–maximisation fitting for [`Gmm1d`].
//!
//! The paper (§4.2, "Model Training") explains why plain EM does not fit
//! IAM's joint mini-batch loop — the M step needs all tuples at once. We
//! still provide EM as an initialiser and as an independently-tested
//! reference implementation against which the SGD trainer is validated.

use crate::model::Gmm1d;

/// Result of an EM fit.
#[derive(Debug, Clone)]
pub struct EmFit {
    /// The fitted mixture.
    pub gmm: Gmm1d,
    /// Average log-likelihood at the final iteration.
    pub avg_log_likelihood: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Fit a `k`-component mixture to `values` by EM.
///
/// Initialisation spreads the means over the empirical quantiles, which is
/// deterministic and robust for the skewed columns in this workload. Stops
/// when the average log-likelihood improves by less than `tol` or after
/// `max_iter` iterations.
pub fn fit_em(values: &[f64], k: usize, max_iter: usize, tol: f64) -> EmFit {
    assert!(k >= 1, "need at least one component");
    assert!(!values.is_empty(), "cannot fit an empty column");
    let n = values.len();

    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let spread = (sorted[n - 1] - sorted[0]).max(1e-6);
    let mut means: Vec<f64> = (0..k).map(|i| sorted[((i * 2 + 1) * (n - 1)) / (2 * k)]).collect();
    let mut stds = vec![spread / (2.0 * k as f64); k];
    let mut weights = vec![1.0 / k as f64; k];

    let mut prev_ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    let mut resp = vec![0.0f64; k];
    for it in 0..max_iter {
        iterations = it + 1;
        // accumulators: weight mass, weighted sum, weighted square sum
        let mut mass = vec![0.0f64; k];
        let mut sum = vec![0.0f64; k];
        let mut sq = vec![0.0f64; k];
        let mut ll = 0.0;
        let gmm = Gmm1d::new(weights.clone(), means.clone(), stds.clone());
        for &x in values {
            gmm.posteriors_into(x, &mut resp);
            ll += gmm.log_pdf(x);
            for c in 0..k {
                mass[c] += resp[c];
                sum[c] += resp[c] * x;
                sq[c] += resp[c] * x * x;
            }
        }
        ll /= n as f64;
        for c in 0..k {
            let m = mass[c].max(1e-10);
            weights[c] = m / n as f64;
            means[c] = sum[c] / m;
            let var = (sq[c] / m - means[c] * means[c]).max(1e-12);
            stds[c] = var.sqrt().max(spread * 1e-6);
        }
        if (ll - prev_ll).abs() < tol {
            prev_ll = ll;
            break;
        }
        prev_ll = ll;
    }

    EmFit { gmm: Gmm1d::new(weights, means, stds), avg_log_likelihood: prev_ll, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bimodal(n: usize, seed: u64) -> Vec<f64> {
        let truth = Gmm1d::new(vec![0.3, 0.7], vec![-5.0, 4.0], vec![0.8, 1.2]);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| truth.sample(&mut rng)).collect()
    }

    #[test]
    fn recovers_bimodal_parameters() {
        let data = bimodal(20_000, 1);
        let fit = fit_em(&data, 2, 200, 1e-8);
        let mut order: Vec<usize> = vec![0, 1];
        order.sort_by(|&a, &b| fit.gmm.means[a].total_cmp(&fit.gmm.means[b]));
        let (lo, hi) = (order[0], order[1]);
        assert!((fit.gmm.means[lo] + 5.0).abs() < 0.15, "mean lo {}", fit.gmm.means[lo]);
        assert!((fit.gmm.means[hi] - 4.0).abs() < 0.15, "mean hi {}", fit.gmm.means[hi]);
        assert!((fit.gmm.weights[lo] - 0.3).abs() < 0.03);
        assert!((fit.gmm.stds[hi] - 1.2).abs() < 0.1);
    }

    #[test]
    fn likelihood_never_decreases_much() {
        // run two fits with increasing iteration budgets: more iterations
        // can only improve (up to numerical wiggle)
        let data = bimodal(4000, 2);
        let short = fit_em(&data, 3, 2, 0.0);
        let long = fit_em(&data, 3, 60, 0.0);
        assert!(long.avg_log_likelihood >= short.avg_log_likelihood - 1e-9);
    }

    #[test]
    fn single_component_matches_moments() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let fit = fit_em(&data, 1, 50, 1e-10);
        let mean = 4.5;
        let var = 8.25;
        assert!((fit.gmm.means[0] - mean).abs() < 1e-6);
        assert!((fit.gmm.stds[0] * fit.gmm.stds[0] - var).abs() < 1e-4);
        assert!((fit.gmm.weights[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_does_not_collapse() {
        let data = vec![7.0; 500];
        let fit = fit_em(&data, 3, 30, 1e-10);
        // stds floored, pdf finite
        assert!(fit.gmm.pdf(7.0).is_finite());
        assert_eq!(fit.gmm.assign(7.0), fit.gmm.assign(7.0));
    }
}
