//! A Selinger-style join-order optimizer and executor for the end-to-end
//! experiment (paper §6.4, Figure 5).
//!
//! The paper plugs each estimator's sub-query cardinalities into Postgres's
//! optimizer and measures execution time. This crate reproduces the
//! mechanism: [`optimizer::optimize`] runs dynamic programming over join
//! subsets using a pluggable [`cardinality::JoinCardEstimator`] and a
//! cost model of summed intermediate cardinalities; [`executor::execute`]
//! runs the chosen left-deep plan with hash joins over the star schema and
//! reports real work done. Better estimates → better orders → smaller
//! intermediates → faster execution.

#![deny(missing_docs)]

pub mod cardinality;
pub mod executor;
pub mod optimizer;

pub use cardinality::{
    ExactCardEstimator, FlatCardEstimator, IndependenceCardEstimator, JoinCardEstimator,
};
pub use executor::{execute, ExecReport};
pub use optimizer::{optimize, Plan, TableRef};
