//! Selinger-style dynamic programming over left-deep join orders.
//!
//! Cost model: the sum of estimated intermediate-result cardinalities along
//! the pipeline (`C_out`), the standard proxy used when comparing
//! estimators' impact on plan quality.

use crate::cardinality::JoinCardEstimator;
use iam_join::workload::JoinQuery;

/// A table in a plan: the hub or one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableRef {
    /// The hub (`title`).
    Hub,
    /// Dimension table `t`.
    Dim(usize),
}

/// A left-deep join order with its estimated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Join order, first table scanned first.
    pub order: Vec<TableRef>,
    /// Estimated cost (Σ intermediate cardinalities).
    pub est_cost: f64,
}

/// Enumerate all left-deep orders of the query's tables by subset DP and
/// return the cheapest under `est`.
pub fn optimize(q: &JoinQuery, est: &mut dyn JoinCardEstimator) -> Plan {
    // participating tables: hub + joined dims
    let mut tables = vec![TableRef::Hub];
    for (t, &j) in q.join_dims.iter().enumerate() {
        if j {
            tables.push(TableRef::Dim(t));
        }
    }
    let n = tables.len();
    assert!(n <= 16, "subset DP caps at 16 tables");
    let full: u32 = (1 << n) - 1;

    // cardinality of a subset
    let mut card_memo: Vec<f64> = vec![f64::NAN; 1 << n];
    let mut card_of = |mask: u32, est: &mut dyn JoinCardEstimator| -> f64 {
        let cached = card_memo[mask as usize];
        if !cached.is_nan() {
            return cached;
        }
        let mut include_hub = false;
        let mut dims = vec![false; q.join_dims.len()];
        for (i, t) in tables.iter().enumerate() {
            if mask >> i & 1 == 1 {
                match t {
                    TableRef::Hub => include_hub = true,
                    TableRef::Dim(d) => dims[*d] = true,
                }
            }
        }
        let c = est.card(q, include_hub, &dims).max(0.0);
        card_memo[mask as usize] = c;
        c
    };

    // DP over subsets: best cost and the last-joined table
    let mut best = vec![(f64::INFINITY, usize::MAX); (full + 1) as usize];
    for i in 0..n {
        let mask = 1u32 << i;
        best[mask as usize] = (card_of(mask, est), i);
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let join_card = card_of(mask, est);
        for i in 0..n {
            if mask >> i & 1 == 0 {
                continue;
            }
            let prev = mask & !(1 << i);
            let (prev_cost, _) = best[prev as usize];
            let cost = prev_cost + join_card;
            if cost < best[mask as usize].0 {
                best[mask as usize] = (cost, i);
            }
        }
    }

    // reconstruct order
    let mut order_rev = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let (_, last) = best[mask as usize];
        order_rev.push(tables[last]);
        mask &= !(1 << last);
    }
    order_rev.reverse();
    Plan { order: order_rev, est_cost: best[full as usize].0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::Interval;
    use iam_join::star::LocalRanges;

    /// `f(include_hub, dims)` → cardinality.
    type ScriptFn = Box<dyn FnMut(bool, &[bool]) -> f64>;

    /// A scripted estimator for deterministic plan tests.
    struct Scripted {
        f: ScriptFn,
    }

    impl JoinCardEstimator for Scripted {
        fn name(&self) -> &str {
            "scripted"
        }
        fn card(&mut self, _q: &JoinQuery, include_hub: bool, dims: &[bool]) -> f64 {
            (self.f)(include_hub, dims)
        }
    }

    fn query(ndims: usize, joined: &[usize]) -> JoinQuery {
        let mut join_dims = vec![false; ndims];
        for &d in joined {
            join_dims[d] = true;
        }
        JoinQuery {
            join_dims,
            hub: vec![Some(Interval::full())] as LocalRanges,
            dims: vec![vec![None]; ndims],
        }
    }

    #[test]
    fn picks_the_selective_table_first() {
        // dim0 is very selective (card 10), dim1 huge (card 10_000);
        // hub card 1000; full join 50. A good plan joins small things first.
        let q = query(2, &[0, 1]);
        let mut est = Scripted {
            f: Box::new(|hub, dims| {
                let key = (hub, dims[0], dims[1]);
                match key {
                    (true, false, false) => 1000.0,
                    (false, true, false) => 10.0,
                    (false, false, true) => 10_000.0,
                    (true, true, false) => 20.0,
                    (true, false, true) => 9000.0,
                    (false, true, true) => 60.0,
                    (true, true, true) => 50.0,
                    _ => 1.0,
                }
            }),
        };
        let plan = optimize(&q, &mut est);
        assert_eq!(plan.order.len(), 3);
        // the expensive dim1 must come last
        assert_eq!(*plan.order.last().unwrap(), TableRef::Dim(1));
        // cost = card(first) + card(first two) + card(all)
        assert!((plan.est_cost - (10.0 + 20.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn bad_estimates_produce_a_different_plan() {
        let q = query(2, &[0, 1]);
        // an estimator that thinks dim1 is tiny
        let mut bad = Scripted {
            f: Box::new(|hub, dims| match (hub, dims[0], dims[1]) {
                (true, false, false) => 1000.0,
                (false, true, false) => 10_000.0, // wrongly huge
                (false, false, true) => 10.0,     // wrongly tiny
                (true, true, false) => 20.0,
                (true, false, true) => 9000.0,
                (false, true, true) => 60.0,
                (true, true, true) => 50.0,
                _ => 1.0,
            }),
        };
        let plan = optimize(&q, &mut bad);
        assert_eq!(plan.order[0], TableRef::Dim(1));
    }

    #[test]
    fn single_join_still_plans() {
        let q = query(3, &[2]);
        let mut est = Scripted { f: Box::new(|_, _| 5.0) };
        let plan = optimize(&q, &mut est);
        assert_eq!(plan.order.len(), 2);
        assert!(plan.order.contains(&TableRef::Hub));
        assert!(plan.order.contains(&TableRef::Dim(2)));
    }
}
