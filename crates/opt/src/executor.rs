//! Left-deep hash-join pipeline executor over the star schema.
//!
//! Per plan step the executor filters the next table (scan), builds its
//! per-movie row multiset and probes it with the running intermediate
//! result. Intermediate tuples are materialised (one entry per joined
//! tuple), so execution time genuinely scales with the intermediate
//! cardinalities a bad join order inflates — the effect Figure 5 measures.

use crate::optimizer::{Plan, TableRef};
use iam_join::star::StarSchema;
use iam_join::workload::JoinQuery;
use std::time::Instant;

/// Outcome of executing one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Final join cardinality.
    pub card: u64,
    /// Total intermediate tuples materialised (work proxy).
    pub intermediate_tuples: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Execute `plan` for `q` over `star`.
pub fn execute(star: &StarSchema, q: &JoinQuery, plan: &Plan) -> ExecReport {
    let started = Instant::now();
    let nmovies = star.hub.nrows();
    let mut intermediate_tuples = 0u64;

    // the running intermediate: one movie id per joined tuple
    let mut current: Option<Vec<u32>> = None;

    for &step in &plan.order {
        // per-movie multiplicity of the filtered step table
        let mult: Vec<u32> = match step {
            TableRef::Hub => {
                let mut m = vec![0u32; nmovies];
                'rows: for (r, slot) in m.iter_mut().enumerate() {
                    for (ci, iv) in q.hub.iter().enumerate() {
                        if let Some(iv) = iv {
                            if !iv.contains(star.hub.columns[ci].value_as_f64(r)) {
                                continue 'rows;
                            }
                        }
                    }
                    *slot = 1;
                }
                m
            }
            TableRef::Dim(t) => {
                let dim = &star.dims[t];
                let mut m = vec![0u32; nmovies];
                'rows: for r in 0..dim.table.nrows() {
                    for (ci, iv) in q.dims[t].iter().enumerate() {
                        if let Some(iv) = iv {
                            if !iv.contains(dim.table.columns[ci].value_as_f64(r)) {
                                continue 'rows;
                            }
                        }
                    }
                    m[dim.fk[r] as usize] += 1;
                }
                m
            }
        };

        current = Some(match current {
            None => {
                // initial scan materialises the filtered table
                let mut out = Vec::new();
                for (movie, &k) in mult.iter().enumerate() {
                    for _ in 0..k {
                        out.push(movie as u32);
                    }
                }
                out
            }
            Some(inter) => {
                // hash probe: expand each intermediate tuple by the step
                // table's multiplicity for its movie
                let mut out = Vec::new();
                for &movie in &inter {
                    let k = mult[movie as usize];
                    for _ in 0..k {
                        out.push(movie);
                    }
                }
                out
            }
        });
        intermediate_tuples += current.as_ref().map_or(0, |v| v.len()) as u64;
    }

    let card = current.map_or(0, |v| v.len()) as u64;
    ExecReport { card, intermediate_tuples, seconds: started.elapsed().as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::ExactCardEstimator;
    use crate::optimizer::optimize;
    use iam_join::flat::exact_card;
    use iam_join::imdb::{synthetic_imdb, ImdbConfig};
    use iam_join::workload::JoinWorkloadGenerator;

    #[test]
    fn execution_count_matches_exact_card() {
        let star = synthetic_imdb(&ImdbConfig { movies: 500, seed: 1 });
        let mut gen = JoinWorkloadGenerator::new(&star, 2);
        let mut exact = ExactCardEstimator::new(&star);
        for _ in 0..15 {
            let q = gen.gen_query();
            let plan = optimize(&q, &mut exact);
            let rep = execute(&star, &q, &plan);
            assert_eq!(rep.card as f64, exact_card(&star, &q), "plan {:?}", plan.order);
        }
    }

    #[test]
    fn any_order_gives_the_same_cardinality() {
        let star = synthetic_imdb(&ImdbConfig { movies: 300, seed: 3 });
        let mut gen = JoinWorkloadGenerator::new(&star, 4);
        let q = gen.gen_query();
        let mut tables = vec![TableRef::Hub];
        for (t, &j) in q.join_dims.iter().enumerate() {
            if j {
                tables.push(TableRef::Dim(t));
            }
        }
        let fwd = Plan { order: tables.clone(), est_cost: 0.0 };
        let mut rev_tables = tables;
        rev_tables.reverse();
        let rev = Plan { order: rev_tables, est_cost: 0.0 };
        let a = execute(&star, &q, &fwd);
        let b = execute(&star, &q, &rev);
        assert_eq!(a.card, b.card);
    }

    #[test]
    fn good_plans_do_less_work() {
        // aggregate over a workload: exact-cost plans should not do more
        // intermediate work than deliberately reversed (anti-optimal) plans
        let star = synthetic_imdb(&ImdbConfig { movies: 800, seed: 5 });
        let mut gen = JoinWorkloadGenerator::new(&star, 6);
        let mut exact = ExactCardEstimator::new(&star);
        let mut good = 0u64;
        let mut bad = 0u64;
        for _ in 0..25 {
            let q = gen.gen_query();
            let plan = optimize(&q, &mut exact);
            let mut worst = plan.clone();
            worst.order.reverse();
            good += execute(&star, &q, &plan).intermediate_tuples;
            bad += execute(&star, &q, &worst).intermediate_tuples;
        }
        assert!(good <= bad, "good {good} vs reversed {bad}");
    }
}
