//! Pluggable sub-query cardinality estimation for the optimizer.

use iam_data::{Column, SelectivityEstimator};
use iam_join::flat::FlatSchema;
use iam_join::star::StarSchema;
use iam_join::workload::JoinQuery;

/// Estimates the cardinality of a *sub-join* of a query: the hub (optional)
/// plus a subset of its joined dimension tables, with each included table's
/// local predicates applied.
pub trait JoinCardEstimator {
    /// Display name.
    fn name(&self) -> &str;

    /// Estimated cardinality of the sub-join.
    fn card(&mut self, q: &JoinQuery, include_hub: bool, dims: &[bool]) -> f64;
}

/// Ground truth (the "true cardinalities" arm of Figure 5).
pub struct ExactCardEstimator<'s> {
    star: &'s StarSchema,
}

impl<'s> ExactCardEstimator<'s> {
    /// Wrap a schema.
    pub fn new(star: &'s StarSchema) -> Self {
        ExactCardEstimator { star }
    }
}

impl JoinCardEstimator for ExactCardEstimator<'_> {
    fn name(&self) -> &str {
        "exact"
    }

    fn card(&mut self, q: &JoinQuery, include_hub: bool, dims: &[bool]) -> f64 {
        let hub = if include_hub { q.hub.clone() } else { vec![None; q.hub.len()] };
        self.star.exact_card(dims, &hub, &q.dims)
    }
}

/// Any flat-FOJ estimator (IAM, Neurocard-lite, SPN, …) lifted to
/// sub-query cardinalities through the FOJ rewrite.
pub struct FlatCardEstimator<E> {
    inner: E,
    schema: FlatSchema,
    name: String,
}

impl<E: SelectivityEstimator> FlatCardEstimator<E> {
    /// Wrap a flat-table estimator.
    pub fn new(inner: E, schema: FlatSchema) -> Self {
        let name = inner.name().to_string();
        FlatCardEstimator { inner, schema, name }
    }
}

impl<E: SelectivityEstimator> JoinCardEstimator for FlatCardEstimator<E> {
    fn name(&self) -> &str {
        &self.name
    }

    fn card(&mut self, q: &JoinQuery, include_hub: bool, dims: &[bool]) -> f64 {
        let mut sub = q.clone();
        sub.join_dims = dims.to_vec();
        if !include_hub {
            sub.hub = vec![None; q.hub.len()];
        }
        // drop predicates of non-included dims
        for (t, &inc) in dims.iter().enumerate() {
            if !inc {
                sub.dims[t] = vec![None; sub.dims[t].len()];
            }
        }
        let rq = self.schema.rewrite(&sub);
        self.inner.estimate(&rq) * self.schema.foj_size
    }
}

/// Postgres-style independence estimator: per-table filtered cardinalities
/// multiplied under the uniform key-matching assumption
/// `card(S) = Π_t card_t / |hub|^{|S|−1}`.
pub struct IndependenceCardEstimator {
    /// Per-table 1-D statistics: index 0 is the hub, then the dims.
    tables: Vec<iam_estimators::Postgres1d>,
    sizes: Vec<f64>,
    hub_rows: f64,
}

impl IndependenceCardEstimator {
    /// Collect per-table statistics.
    pub fn new(star: &StarSchema) -> Self {
        let mut tables = vec![iam_estimators::Postgres1d::new(&star.hub)];
        let mut sizes = vec![star.hub.nrows() as f64];
        for d in &star.dims {
            tables.push(iam_estimators::Postgres1d::new(&d.table));
            sizes.push(d.table.nrows() as f64);
        }
        IndependenceCardEstimator { tables, sizes, hub_rows: star.hub.nrows() as f64 }
    }

    fn table_card(&mut self, idx: usize, ranges: &[Option<iam_data::Interval>]) -> f64 {
        let rq = iam_data::RangeQuery { cols: ranges.to_vec() };
        self.tables[idx].estimate(&rq) * self.sizes[idx]
    }
}

impl JoinCardEstimator for IndependenceCardEstimator {
    fn name(&self) -> &str {
        "Postgres"
    }

    fn card(&mut self, q: &JoinQuery, include_hub: bool, dims: &[bool]) -> f64 {
        let mut card = 1.0f64;
        let mut ntables = 0usize;
        if include_hub {
            card *= self.table_card(0, &q.hub);
            ntables += 1;
        }
        for (t, &inc) in dims.iter().enumerate() {
            if inc {
                card *= self.table_card(t + 1, &q.dims[t]);
                ntables += 1;
            }
        }
        if ntables > 1 {
            card /= self.hub_rows.powi(ntables as i32 - 1);
        }
        card.max(0.0)
    }
}

/// Ensure columns referenced in tests exist (compile-time helper for the
/// doc examples; not used at runtime).
#[doc(hidden)]
pub fn _column_kind(c: &Column) -> bool {
    c.is_continuous()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::estimator::ExactOracle;
    use iam_join::flat::flatten_foj;
    use iam_join::imdb::{synthetic_imdb, ImdbConfig};
    use iam_join::workload::JoinWorkloadGenerator;

    #[test]
    fn exact_estimator_matches_schema() {
        let star = synthetic_imdb(&ImdbConfig { movies: 400, seed: 1 });
        let mut gen = JoinWorkloadGenerator::new(&star, 2);
        let q = gen.gen_query();
        let mut est = ExactCardEstimator::new(&star);
        let full = est.card(&q, true, &q.join_dims);
        assert_eq!(full, star.exact_card(&q.join_dims, &q.hub, &q.dims));
        // single-table sub-plan ≥ full plan is not guaranteed, but the
        // no-dim hub card equals the number of hub-matching movies
        let hub_only = est.card(&q, true, &vec![false; q.join_dims.len()]);
        assert!(hub_only >= 0.0);
    }

    #[test]
    fn flat_estimator_tracks_exact_on_oracle() {
        let star = synthetic_imdb(&ImdbConfig { movies: 400, seed: 3 });
        let (flat, schema) = flatten_foj(&star, 15_000, 4);
        let mut exact = ExactCardEstimator::new(&star);
        let mut est = FlatCardEstimator::new(ExactOracle::new(flat), schema);
        assert_eq!(est.name(), "exact");
        let mut gen = JoinWorkloadGenerator::new(&star, 5);
        let mut close = 0;
        for _ in 0..20 {
            let q = gen.gen_query();
            let truth = exact.card(&q, true, &q.join_dims);
            let got = est.card(&q, true, &q.join_dims);
            let foj = star.foj_size();
            if truth < foj / 1500.0 {
                close += 1; // below sample resolution
                continue;
            }
            let ratio = (got.max(1.0) / truth.max(1.0)).max(truth.max(1.0) / got.max(1.0));
            if ratio < 3.0 {
                close += 1;
            }
        }
        assert!(close >= 16, "{close}/20");
    }

    #[test]
    fn independence_estimator_is_finite() {
        let star = synthetic_imdb(&ImdbConfig { movies: 400, seed: 6 });
        let mut est = IndependenceCardEstimator::new(&star);
        let mut gen = JoinWorkloadGenerator::new(&star, 7);
        for _ in 0..20 {
            let q = gen.gen_query();
            let c = est.card(&q, true, &q.join_dims);
            assert!(c.is_finite() && c >= 0.0);
        }
    }
}
