//! Debug-build runtime invariants for the numeric hot paths.
//!
//! The estimator's unbiasedness rests on a handful of numeric invariants
//! that no type can express: softmax outputs carry unit mass, reducer
//! range-mass vectors are non-negative probabilities, CDFs are monotone,
//! selectivities live in `[0, 1]`, and the distributed merge writes every
//! answer slot exactly once. This module turns each of those into an
//! executable check that is **active in debug builds** (and in release
//! builds compiled with the `invariants` feature) and **compiles to
//! nothing** otherwise — every release-mode function body below is an
//! empty `#[inline(always)]` stub, so the serving hot path pays zero
//! instructions for them (verified against `BENCH_inference.json`).
//!
//! Callers in other crates that need to *prepare* data for a check (e.g.
//! the coordinator's answer-coverage bitmap) should gate that work on
//! [`ACTIVE`], which is a compile-time constant and dead-code-eliminates
//! the whole branch in release builds.
//!
//! A violated invariant panics with an `iam invariant violated:` prefix —
//! these are programming errors (a biased sampler, a torn merge), never
//! input errors, so failing loudly in tests and fuzz runs is the point.

/// Whether the invariant checks are compiled in. `true` in debug builds
/// and under `--features invariants`; `false` (a compile-time constant,
/// enabling dead-code elimination of caller-side preparation) otherwise.
pub const ACTIVE: bool = cfg!(any(debug_assertions, feature = "invariants"));

/// Absolute tolerance for softmax unit-mass checks. Softmax over f32
/// logits accumulates one rounding error per term; 1e-3 is ~100× looser
/// than the worst drift seen over the paper's domain sizes (≤ 4096-wide
/// rows) yet still catches every real normalization bug (a dropped term,
/// a stale denominator, an un-renormalised distribution).
pub const SOFTMAX_MASS_TOL: f64 = 1e-3;

/// Assert that `probs` (one softmax row) carries total mass ≈ 1 and no
/// negative or non-finite entries.
#[cfg(any(debug_assertions, feature = "invariants"))]
pub fn check_softmax_mass(probs: &[f32], context: &str) {
    let mut mass = 0.0f64;
    for (i, &p) in probs.iter().enumerate() {
        if !p.is_finite() || p < 0.0 {
            panic!("iam invariant violated: softmax[{i}] = {p} in {context}");
        }
        mass += p as f64;
    }
    if (mass - 1.0).abs() > SOFTMAX_MASS_TOL {
        panic!(
            "iam invariant violated: softmax mass {mass} (|mass-1| > {SOFTMAX_MASS_TOL}) \
             over {} entries in {context}",
            probs.len()
        );
    }
}

/// Assert that every entry of `mass` is a finite, non-negative
/// probability mass (reducer `range_mass` vectors, bias-corrected
/// sampling weights).
#[cfg(any(debug_assertions, feature = "invariants"))]
pub fn check_mass_vector(mass: &[f64], context: &str) {
    for (i, &m) in mass.iter().enumerate() {
        if !m.is_finite() || m < 0.0 {
            panic!("iam invariant violated: mass[{i}] = {m} in {context}");
        }
    }
}

/// Assert that `cdf` values are non-decreasing and within `[0, 1]`
/// (spline knots, prefix-summed mixture CDFs).
#[cfg(any(debug_assertions, feature = "invariants"))]
pub fn check_cdf_monotone(cdf: &[f64], context: &str) {
    let mut prev = 0.0f64;
    for (i, &f) in cdf.iter().enumerate() {
        if !f.is_finite() || !(0.0..=1.0).contains(&f) {
            panic!("iam invariant violated: cdf[{i}] = {f} outside [0,1] in {context}");
        }
        if f < prev {
            panic!("iam invariant violated: cdf[{i}] = {f} < cdf[{}] = {prev} in {context}", i - 1);
        }
        prev = f;
    }
}

/// Assert that a finished selectivity estimate is a probability:
/// finite and inside `[0, 1]`.
#[cfg(any(debug_assertions, feature = "invariants"))]
pub fn check_selectivity(sel: f64, context: &str) {
    if !sel.is_finite() || !(0.0..=1.0).contains(&sel) {
        panic!("iam invariant violated: selectivity {sel} outside [0,1] in {context}");
    }
}

/// Assert a caller-stated condition with the invariant prefix; `ACTIVE`
/// gates the *preparation* of `cond` on the caller's side, this gates the
/// check itself. Used where the condition doesn't fit a shape above
/// (e.g. the coordinator's write-once answer-slot merge).
#[cfg(any(debug_assertions, feature = "invariants"))]
pub fn check(cond: bool, context: &str) {
    if !cond {
        panic!("iam invariant violated: {context}");
    }
}

// --- release stubs: empty bodies, guaranteed zero code -------------------

#[cfg(not(any(debug_assertions, feature = "invariants")))]
#[allow(missing_docs)]
mod stubs {
    #[inline(always)]
    pub fn check_softmax_mass(_probs: &[f32], _context: &str) {}
    #[inline(always)]
    pub fn check_mass_vector(_mass: &[f64], _context: &str) {}
    #[inline(always)]
    pub fn check_cdf_monotone(_cdf: &[f64], _context: &str) {}
    #[inline(always)]
    pub fn check_selectivity(_sel: f64, _context: &str) {}
    #[inline(always)]
    pub fn check(_cond: bool, _context: &str) {}
}
#[cfg(not(any(debug_assertions, feature = "invariants")))]
pub use stubs::*;

#[cfg(all(test, any(debug_assertions, feature = "invariants")))]
mod tests {
    use super::*;

    #[test]
    fn well_formed_values_pass() {
        check_softmax_mass(&[0.25, 0.25, 0.5], "test");
        check_softmax_mass(&[0.2500004, 0.25, 0.5], "test"); // f32 round-off
        check_mass_vector(&[0.0, 1e-300, 1.0], "test");
        check_cdf_monotone(&[0.0, 0.1, 0.1, 1.0], "test");
        check_selectivity(0.0, "test");
        check_selectivity(1.0, "test");
        check(true, "test");
    }

    #[test]
    #[should_panic(expected = "iam invariant violated: softmax mass")]
    fn softmax_mass_deficit_is_caught() {
        // a mass-normalization bug: one term dropped from the denominator
        check_softmax_mass(&[0.5, 0.4], "injected");
    }

    #[test]
    #[should_panic(expected = "iam invariant violated: softmax")]
    fn softmax_nan_is_caught() {
        check_softmax_mass(&[f32::NAN, 1.0], "injected");
    }

    #[test]
    #[should_panic(expected = "iam invariant violated: mass")]
    fn negative_mass_is_caught() {
        check_mass_vector(&[0.1, -1e-9], "injected");
    }

    #[test]
    #[should_panic(expected = "iam invariant violated: cdf")]
    fn non_monotone_cdf_is_caught() {
        check_cdf_monotone(&[0.0, 0.5, 0.4999], "injected");
    }

    #[test]
    #[should_panic(expected = "iam invariant violated: selectivity")]
    fn out_of_range_selectivity_is_caught() {
        check_selectivity(1.0000001, "injected");
    }
}
