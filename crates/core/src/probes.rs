//! Lazily-registered handles into the global `iam-obs` registry.
//!
//! Every probe bundle is created once (`OnceLock`) so the hot paths touch
//! only pre-resolved `Arc` handles — no name lookup, no lock. Metric
//! naming: `iam_train_*` for the joint training loop (Eq. 3+4 losses),
//! `iam_plan_*` for query-plan construction (§5.1 widening), `iam_infer_*`
//! for progressive sampling (§5.2), `iam_aqp_*` for aggregates.

use iam_obs::{Counter, FloatGauge, Gauge, Histogram, Registry};
use std::sync::{Arc, OnceLock};

/// Powers-of-two bounds for count-shaped histograms (samples, fanouts…).
const POW2_BOUNDS: [u64; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384];

/// Bounds for per-epoch wall time, in milliseconds.
const EPOCH_MS_BOUNDS: [u64; 10] = [5, 20, 50, 100, 250, 500, 1_000, 5_000, 30_000, 300_000];

/// Bounds for per-query renormalization mass, in parts-per-million of 1.0.
const MASS_PPM_BOUNDS: [u64; 11] =
    [1, 10, 100, 1_000, 10_000, 50_000, 100_000, 250_000, 500_000, 750_000, 1_000_000];

/// Training-loop probes (one bundle per process).
pub(crate) struct TrainProbes {
    /// Completed epochs.
    pub epochs: Arc<Counter>,
    /// Rows visited across all epochs.
    pub rows: Arc<Counter>,
    /// Mini-batches (joint GMM+AR steps).
    pub batches: Arc<Counter>,
    /// Last epoch's mean AR cross-entropy (Eq. 3, nats).
    pub ar_loss: Arc<FloatGauge>,
    /// Last epoch's mean GMM negative log-likelihood (Eq. 4).
    pub gmm_loss: Arc<FloatGauge>,
    /// Last epoch's training throughput (rows/s).
    pub rows_per_sec: Arc<FloatGauge>,
    /// Epoch wall-time distribution (ms).
    pub epoch_ms: Arc<Histogram>,
    /// Effective worker-thread count of the training pipeline.
    pub threads: Arc<Gauge>,
    /// Last epoch's wall time in the GMM-step phase (ms).
    pub gmm_phase_ms: Arc<FloatGauge>,
    /// Last epoch's wall time in the batch-encoding phase (ms).
    pub encode_phase_ms: Arc<FloatGauge>,
    /// Last epoch's wall time in the AR forward/backward phase (ms).
    pub ar_phase_ms: Arc<FloatGauge>,
}

pub(crate) fn train() -> &'static TrainProbes {
    static P: OnceLock<TrainProbes> = OnceLock::new();
    P.get_or_init(|| {
        let r = Registry::global();
        TrainProbes {
            epochs: r.counter("iam_train_epochs_total", &[]),
            rows: r.counter("iam_train_rows_total", &[]),
            batches: r.counter("iam_train_batches_total", &[]),
            ar_loss: r.float_gauge("iam_train_ar_loss", &[]),
            gmm_loss: r.float_gauge("iam_train_gmm_loss", &[]),
            rows_per_sec: r.float_gauge("iam_train_rows_per_sec", &[]),
            epoch_ms: r.histogram("iam_train_epoch_ms", &[], &EPOCH_MS_BOUNDS),
            threads: r.gauge("iam_train_threads", &[]),
            gmm_phase_ms: r.float_gauge("iam_train_gmm_phase_ms", &[]),
            encode_phase_ms: r.float_gauge("iam_train_encode_phase_ms", &[]),
            ar_phase_ms: r.float_gauge("iam_train_ar_phase_ms", &[]),
        }
    })
}

/// Query-plan probes: how §5.1 widening reshapes each constrained slot.
pub(crate) struct PlanProbes {
    /// Reduced-domain width a range constraint was widened to (the fanout
    /// the sampler must renormalize over; K of the column's GMM).
    pub widened_fanout: Arc<Histogram>,
    /// Non-zero entries of the `P̂_GMM(R_i)` component vector — its sparsity
    /// is what keeps widened sampling cheap.
    pub component_nnz: Arc<Histogram>,
    /// Plans that proved a query empty (selectivity exactly 0).
    pub empty_plans: Arc<Counter>,
}

pub(crate) fn plan() -> &'static PlanProbes {
    static P: OnceLock<PlanProbes> = OnceLock::new();
    P.get_or_init(|| {
        let r = Registry::global();
        PlanProbes {
            widened_fanout: r.histogram("iam_plan_widened_fanout", &[], &POW2_BOUNDS),
            component_nnz: r.histogram("iam_plan_component_nnz", &[], &POW2_BOUNDS),
            empty_plans: r.counter("iam_plan_empty_total", &[]),
        }
    })
}

/// Progressive-sampling probes (§5.2, Algorithm 1).
pub(crate) struct InferProbes {
    /// Queries answered by progressive sampling (live plans only).
    pub queries: Arc<Counter>,
    /// Progressive samples drawn (queries × samples-per-query).
    pub samples: Arc<Counter>,
    /// Sample rows pushed through an AR forward pass, summed over slots —
    /// the single best proxy for inference cost.
    pub forward_rows: Arc<Counter>,
    /// Samples whose running probability hit zero before the last slot.
    pub dead_samples: Arc<Counter>,
    /// Samples-per-query setting observed per query.
    pub samples_per_query: Arc<Histogram>,
    /// Per-query mean renormalization mass `mean_s p̂(s)` (ppm of 1.0) —
    /// how much probability mass the constrained supports retain.
    pub renorm_mass_ppm: Arc<Histogram>,
    /// Forward rows avoided by prefix deduplication (rows whose sampled
    /// prefix matched an earlier row in the same slot step).
    pub dedup_hits: Arc<Counter>,
    /// Layer-1 multiply-accumulate FLOPs replaced by fused-table lookups.
    pub layer1_skipped_flops: Arc<Counter>,
    /// Resident size of the fused embedding→layer-1 token tables (bytes);
    /// 0 when the fused path is disabled.
    pub table_bytes: Arc<Gauge>,
}

pub(crate) fn infer() -> &'static InferProbes {
    static P: OnceLock<InferProbes> = OnceLock::new();
    P.get_or_init(|| {
        let r = Registry::global();
        InferProbes {
            queries: r.counter("iam_infer_queries_total", &[]),
            samples: r.counter("iam_infer_samples_total", &[]),
            forward_rows: r.counter("iam_infer_forward_rows_total", &[]),
            dead_samples: r.counter("iam_infer_dead_samples_total", &[]),
            samples_per_query: r.histogram("iam_infer_samples_per_query", &[], &POW2_BOUNDS),
            renorm_mass_ppm: r.histogram("iam_infer_renorm_mass_ppm", &[], &MASS_PPM_BOUNDS),
            dedup_hits: r.counter("iam_infer_dedup_hits_total", &[]),
            layer1_skipped_flops: r.counter("iam_infer_layer1_skipped_flops_total", &[]),
            table_bytes: r.gauge("iam_infer_table_bytes", &[]),
        }
    })
}

/// AQP aggregate-estimation probes.
pub(crate) struct AqpProbes {
    /// Aggregate queries answered.
    pub queries: Arc<Counter>,
}

pub(crate) fn aqp() -> &'static AqpProbes {
    static P: OnceLock<AqpProbes> = OnceLock::new();
    P.get_or_init(|| AqpProbes {
        queries: Registry::global().counter("iam_aqp_queries_total", &[]),
    })
}
