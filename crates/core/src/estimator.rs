//! The public IAM estimator and its Neurocard-style ablation.

use crate::config::IamConfig;
use crate::infer;
use crate::probes;
use crate::schema::IamSchema;
use crate::train::{self, EpochStats};
use iam_data::{RangeQuery, SelectivityEstimator, Table};
use iam_gmm::GmmSgdTrainer;
use iam_nn::{Adam, AdamConfig, FusedTables, MadeConfig, MadeNet, Parameters};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The IAM selectivity estimator (GMMs + ResMADE + unbiased progressive
/// sampling). With [`IamConfig::reduce_continuous`] = false it degrades to
/// the Neurocard-style baseline (column factorisation, no reduction) —
/// see [`neurocard_lite`].
pub struct IamEstimator {
    /// Active configuration.
    pub cfg: IamConfig,
    /// Column handling and slot layout.
    pub schema: IamSchema,
    net: MadeNet,
    opt: Adam,
    gmm_trainers: Vec<Option<GmmSgdTrainer>>,
    nrows: usize,
    rng: StdRng,
    fused: Option<FusedTables>,
    pool: infer::ScratchPool,
    name: String,
    /// Loss curve, one entry per trained epoch.
    pub stats: Vec<EpochStats>,
}

impl IamEstimator {
    /// Fit reducers and build the (untrained) network for `table`.
    pub fn build(table: &Table, cfg: IamConfig) -> Self {
        Self::build_named(table, cfg, None)
    }

    /// Like [`Self::build`] but with an explicit display name.
    pub fn build_named(table: &Table, cfg: IamConfig, name: Option<&str>) -> Self {
        let schema = {
            // reducer fitting (VBGM init + per-column GMM/Hist/Spline/UMM)
            // is the "reduction fit" phase of the timing breakdown
            let _span = iam_obs::span!("build.reduce");
            IamSchema::build(table, &cfg)
        };
        debug_assert!(train::check_slot_layout(&schema));
        let net = MadeNet::new(MadeConfig {
            domain_sizes: schema.slot_domains.clone(),
            hidden: cfg.hidden.clone(),
            embed_dim: cfg.embed_dim,
            residual: true,
            seed: cfg.seed,
        });
        let opt = Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
        let gmm_trainers = train::make_gmm_trainers(&schema, &cfg);
        let name = name
            .map(str::to_owned)
            .unwrap_or_else(|| if cfg.reduce_continuous { "IAM" } else { "Neurocard" }.into());
        IamEstimator {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xD1CE),
            schema,
            net,
            opt,
            gmm_trainers,
            nrows: table.nrows(),
            fused: None,
            pool: infer::ScratchPool::new(),
            name,
            stats: Vec::new(),
            cfg,
        }
    }

    /// Train for `epochs` additional epochs (resumable — Figure 6 evaluates
    /// the model between calls).
    pub fn train_epochs(&mut self, table: &Table, epochs: usize) {
        self.fused = None; // parameters are about to change
        for _ in 0..epochs {
            let s = train::train_epoch(
                table,
                &mut self.schema,
                &mut self.net,
                &mut self.opt,
                &mut self.gmm_trainers,
                &self.cfg,
                &mut self.rng,
            );
            iam_obs::trace::event(
                "train.epoch",
                &[
                    ("model", iam_obs::Value::Str(&self.name)),
                    ("epoch", iam_obs::Value::U64(self.stats.len() as u64 + 1)),
                    ("ar_loss", iam_obs::Value::F64(s.ar_loss)),
                    ("gmm_loss", iam_obs::Value::F64(s.gmm_loss)),
                    ("seconds", iam_obs::Value::F64(s.seconds)),
                    ("rows_per_sec", iam_obs::Value::F64(s.rows_per_sec())),
                ],
            );
            self.stats.push(s);
        }
        self.prepare_inference();
    }

    /// (Re)build inference-only acceleration state: when
    /// [`IamConfig::fused_layer1`] is on, precompute the per-(slot, token)
    /// embedding→layer-1 contribution tables used by the fused forward
    /// path, at [`IamConfig::table_precision`]. Called automatically after
    /// training and after loading a persisted model; harmless to call
    /// again. At the default `F32` precision estimates are bitwise
    /// identical with or without the tables; `F16`/`Int8` trade a
    /// bench-gated q-error delta for table size and speed. Because tables
    /// are always quantized from a fresh f32 build, the golden f32 path
    /// can always be rebuilt here — quantization never loses the source
    /// parameters.
    pub fn prepare_inference(&mut self) {
        let bytes = if self.cfg.fused_layer1 {
            let tables = self.net.build_fused_tables_with(self.cfg.table_precision);
            let bytes = tables.size_bytes();
            self.fused = Some(tables);
            bytes
        } else {
            self.fused = None;
            0
        };
        probes::infer().table_bytes.set(bytes as i64);
    }

    /// Toggle the fused embedding→layer-1 inference path at runtime
    /// (rebuilds or drops the token tables immediately). A pure
    /// speed/memory trade-off: estimates never change (tables are rebuilt
    /// at the configured precision; the default `F32` is bit-exact).
    pub fn set_fused_layer1(&mut self, on: bool) {
        self.cfg.fused_layer1 = on;
        self.prepare_inference();
    }

    /// Switch the fused-table storage precision at runtime and rebuild
    /// the tables immediately. `TablePrecision::F32` always restores the
    /// golden bit-exact path — quantization is applied to a fresh f32
    /// build on every rebuild, so no precision round-trip can degrade it.
    pub fn set_table_precision(&mut self, precision: crate::config::TablePrecision) {
        self.cfg.table_precision = precision;
        self.prepare_inference();
    }

    /// The storage precision of the live fused tables (`None` when the
    /// fused path is off).
    pub fn table_precision(&self) -> Option<crate::config::TablePrecision> {
        self.fused.as_ref().map(|t| t.precision())
    }

    /// Rebuild an estimator from persisted parts (see `persist`): the
    /// network is reconstructed deterministically from the config and
    /// schema; the caller then overwrites its parameters.
    pub(crate) fn from_parts(
        cfg: IamConfig,
        schema: IamSchema,
        nrows: usize,
        name: &str,
    ) -> Result<Self, crate::persist::PersistError> {
        let net = MadeNet::new(MadeConfig {
            domain_sizes: schema.slot_domains.clone(),
            hidden: cfg.hidden.clone(),
            embed_dim: cfg.embed_dim,
            residual: true,
            seed: cfg.seed,
        });
        let opt = Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
        let gmm_trainers = train::make_gmm_trainers(&schema, &cfg);
        Ok(IamEstimator {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xD1CE),
            schema,
            net,
            opt,
            gmm_trainers,
            nrows,
            fused: None,
            pool: infer::ScratchPool::new(),
            name: name.to_string(),
            stats: Vec::new(),
            cfg,
        })
    }

    /// Number of rows of the table the model was trained on.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// The (possibly persisted-and-reloaded) configuration. Lets callers
    /// that receive models from untrusted bytes inspect cost knobs (e.g.
    /// the per-query sample budget) before issuing estimates.
    pub fn config(&self) -> &IamConfig {
        &self.cfg
    }

    /// Build and train in one call using `cfg.epochs`.
    pub fn fit(table: &Table, cfg: IamConfig) -> Self {
        let epochs = cfg.epochs;
        let mut est = Self::build(table, cfg);
        est.train_epochs(table, epochs);
        est
    }

    /// Batched inference: one progressive-sampling run answering many
    /// queries in shared forward passes (§5.3, "Batch Query Inference").
    pub fn estimate_batch(&mut self, queries: &[RangeQuery]) -> Vec<f64> {
        if self.fused.is_none() && self.cfg.fused_layer1 {
            self.prepare_inference();
        }
        let plans: Vec<_> = queries.iter().map(|q| self.schema.query_plan(q)).collect();
        let mut scratch = self.pool.take();
        let out = infer::estimate_batch(
            &self.net,
            &self.schema,
            &plans,
            self.cfg.samples,
            &mut self.rng,
            self.fused.as_ref(),
            &mut scratch,
        );
        self.pool.put(scratch);
        out
    }

    /// Deterministic, shareable batched inference: `&self`, so a single
    /// trained model behind an `Arc` can serve many threads concurrently.
    ///
    /// Each query's sampling seed is derived from the model's
    /// [`Self::sampling_salt`] and the query's
    /// [`RangeQuery::canonical_key`], making every estimate a pure function
    /// of (model, query): independent of batch composition, of `threads`,
    /// and of calls that came before. The serving layer relies on this for
    /// bitwise-reproducible responses and a coherent result cache.
    ///
    /// `threads > 1` fans the batch out with `std::thread::scope`
    /// (see [`infer::estimate_batch_parallel`]).
    pub fn estimate_batch_shared(&self, queries: &[RangeQuery], threads: usize) -> Vec<f64> {
        let plans: Vec<_> = queries.iter().map(|q| self.schema.query_plan(q)).collect();
        let salt = self.sampling_salt();
        let seeds: Vec<u64> = queries.iter().map(|q| salt ^ q.canonical_key()).collect();
        infer::estimate_batch_parallel(
            &self.net,
            &self.schema,
            &plans,
            self.cfg.samples,
            &seeds,
            self.fused.as_ref(),
            threads,
            &self.pool,
        )
    }

    /// Salt mixed into per-query sampling seeds by
    /// [`Self::estimate_batch_shared`]. Derived from the persisted config
    /// seed, so a saved-then-loaded model reproduces identical estimates.
    pub fn sampling_salt(&self) -> u64 {
        self.cfg.seed ^ 0x5A17_BA7C
    }

    /// Reseed the sampler (thread-cloned estimators should diverge).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Set the training worker-thread count for subsequent
    /// [`Self::train_epochs`] calls (e.g. a serving-side model refresh).
    /// Never changes training results — only wall time.
    pub fn set_train_threads(&mut self, threads: usize) {
        self.cfg.train_threads = threads;
    }

    /// Number of trainable scalar parameters.
    pub fn num_params(&mut self) -> usize {
        self.net.num_params()
    }

    /// Mutable access to the underlying AR network (testing/diagnostics:
    /// e.g. exhaustively enumerating the model's implied distribution).
    /// Invalidates the fused inference tables — callers may mutate
    /// parameters, and stale tables would silently change estimates; the
    /// tables are rebuilt lazily on the next estimate call.
    pub fn net_mut(&mut self) -> &mut MadeNet {
        self.fused = None;
        &mut self.net
    }

    /// Mutable access to the sampling RNG (used by the AQP extension).
    pub(crate) fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Shared read access to the AR network — the `&self` counterpart of
    /// [`Self::net_mut`] for deterministic concurrent paths (no fused-table
    /// invalidation, no parameter mutation).
    pub(crate) fn net_ref(&self) -> &MadeNet {
        &self.net
    }

    /// Effective per-query sample budget (used by the AQP extension).
    pub(crate) fn samples(&self) -> usize {
        self.cfg.samples
    }
}

impl SelectivityEstimator for IamEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&mut self, q: &RangeQuery) -> f64 {
        self.estimate_batch(std::slice::from_ref(q))[0]
    }

    fn model_size_bytes(&self) -> usize {
        // network parameters (f32) + reducer parameters; ordinal
        // dictionaries are excluded for every estimator alike (see DESIGN.md)
        let mut net = self.net.clone();
        net.num_params() * 4 + self.schema.reducers_size_bytes()
    }
}

impl Clone for IamEstimator {
    /// Clones share the trained model but get a *fresh* sampling RNG
    /// (`StdRng` is not cloneable); call [`IamEstimator::reseed`] with a
    /// distinct seed per thread before parallel evaluation.
    fn clone(&self) -> Self {
        IamEstimator {
            cfg: self.cfg.clone(),
            schema: self.schema.clone(),
            net: self.net.clone(),
            opt: self.opt.clone(),
            gmm_trainers: self.gmm_trainers.clone(),
            nrows: self.nrows,
            rng: StdRng::seed_from_u64(self.cfg.seed ^ 0xC10E),
            fused: self.fused.clone(),
            pool: infer::ScratchPool::new(),
            name: self.name.clone(),
            stats: self.stats.clone(),
        }
    }
}

/// The Neurocard-style configuration: identical AR model and training, but
/// no domain reduction — large continuous domains are ordinally encoded and
/// column-factorised, exactly the baseline IAM is compared against.
pub fn neurocard_lite(base: IamConfig) -> IamConfig {
    IamConfig { reduce_continuous: false, ..base }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{CatColumn, Column, ContColumn};
    use iam_data::query::{Interval, Op, Predicate, Query};
    use iam_data::{exact_selectivity, Table, WorkloadConfig, WorkloadGenerator};
    use rand::RngExt;

    /// A small correlated table: categorical cluster id + a continuous value
    /// whose location depends on the cluster.
    fn corr_table(n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cats = Vec::with_capacity(n);
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            let c = rng.random_range(0..4u32);
            let center = c as f64 * 10.0;
            let v = center + iam_data::synth::normal(&mut rng);
            cats.push(c);
            vals.push(v);
        }
        Table::new(
            "corr",
            vec![
                Column::Categorical(CatColumn::from_codes_dense("c", cats, 4)),
                Column::Continuous(ContColumn::new("x", vals)),
            ],
        )
        .unwrap()
    }

    fn quick_cfg() -> IamConfig {
        IamConfig {
            components: 8,
            reduce_threshold: 100,
            epochs: 6,
            hidden: vec![48, 48],
            embed_dim: 8,
            batch_size: 256,
            samples: 300,
            seed: 7,
            ..IamConfig::default()
        }
    }

    #[test]
    fn training_loss_decreases() {
        let t = corr_table(4000, 1);
        let est = IamEstimator::fit(&t, quick_cfg());
        let first = est.stats.first().unwrap().ar_loss;
        let last = est.stats.last().unwrap().ar_loss;
        assert!(last < first, "AR loss should fall: {first} -> {last}");
    }

    #[test]
    fn unconstrained_query_estimates_one() {
        let t = corr_table(2000, 2);
        let mut est = IamEstimator::fit(&t, quick_cfg());
        let sel = est.estimate(&RangeQuery::unconstrained(2));
        assert!((sel - 1.0).abs() < 1e-9, "{sel}");
    }

    #[test]
    fn impossible_query_estimates_zero() {
        let t = corr_table(2000, 3);
        let mut est = IamEstimator::fit(&t, quick_cfg());
        let mut rq = RangeQuery::unconstrained(2);
        rq.cols[1] = Some(Interval::closed(1e6, 2e6));
        assert_eq!(est.estimate(&rq), 0.0);
    }

    #[test]
    fn estimates_track_truth_on_correlated_data() {
        let t = corr_table(8000, 4);
        let mut est = IamEstimator::fit(&t, quick_cfg());
        let mut gen = WorkloadGenerator::new(&t, WorkloadConfig::default(), 99);
        let mut errs = Vec::new();
        for q in gen.gen_queries(40) {
            let truth = exact_selectivity(&t, &q);
            let (rq, _) = q.normalize(2).unwrap();
            let sel = est.estimate(&rq);
            errs.push(iam_data::q_error(truth, sel, t.nrows()));
        }
        errs.sort_by(f64::total_cmp);
        let median = errs[errs.len() / 2];
        assert!(median < 2.0, "median q-error too high: {median} ({errs:?})");
    }

    #[test]
    fn conditional_structure_is_learned() {
        // query: cluster = 3 AND x in cluster-3's range should be ≈ P(c=3);
        // cluster = 3 AND x in cluster-0's range should be ≈ 0
        let t = corr_table(8000, 5);
        let mut est = IamEstimator::fit(&t, quick_cfg());
        let q_hit = Query::new(vec![
            Predicate { col: 0, op: Op::Eq, value: 3.0 },
            Predicate { col: 1, op: Op::Ge, value: 27.0 },
        ]);
        let q_miss = Query::new(vec![
            Predicate { col: 0, op: Op::Eq, value: 3.0 },
            Predicate { col: 1, op: Op::Le, value: 3.0 },
        ]);
        let (rq_hit, _) = q_hit.normalize(2).unwrap();
        let (rq_miss, _) = q_miss.normalize(2).unwrap();
        let sel_hit = est.estimate(&rq_hit);
        let sel_miss = est.estimate(&rq_miss);
        let truth_hit = exact_selectivity(&t, &q_hit);
        assert!((sel_hit - truth_hit).abs() < 0.08, "hit: est {sel_hit} truth {truth_hit}");
        assert!(sel_miss < 0.02, "miss: {sel_miss}");
    }

    #[test]
    fn neurocard_mode_also_works() {
        let t = corr_table(4000, 6);
        let cfg = neurocard_lite(IamConfig { factorize_threshold: 512, ..quick_cfg() });
        let mut est = IamEstimator::fit(&t, cfg);
        assert_eq!(est.name(), "Neurocard");
        // continuous column (≈4000 distinct > 512) must be factorised
        assert!(est.schema.nslots() == 3, "nslots = {}", est.schema.nslots());
        let mut gen = WorkloadGenerator::new(&t, WorkloadConfig::default(), 77);
        let mut errs = Vec::new();
        for q in gen.gen_queries(30) {
            let truth = exact_selectivity(&t, &q);
            let (rq, _) = q.normalize(2).unwrap();
            errs.push(iam_data::q_error(truth, est.estimate(&rq), t.nrows()));
        }
        errs.sort_by(f64::total_cmp);
        assert!(errs[errs.len() / 2] < 3.0, "median {}", errs[errs.len() / 2]);
    }

    #[test]
    fn batch_and_single_inference_agree_statistically() {
        let t = corr_table(4000, 8);
        let mut est = IamEstimator::fit(&t, quick_cfg());
        let mut gen = WorkloadGenerator::new(&t, WorkloadConfig::default(), 13);
        let queries = gen.gen_queries(8);
        let rqs: Vec<RangeQuery> = queries.iter().map(|q| q.normalize(2).unwrap().0).collect();
        let batch = est.estimate_batch(&rqs);
        for (rq, &b) in rqs.iter().zip(&batch) {
            let single = est.estimate(rq);
            // same model, fresh randomness: close but not identical
            assert!((single - b).abs() < 0.08 + 0.3 * b, "single {single} vs batch {b}");
        }
    }

    #[test]
    fn shared_inference_is_deterministic_and_thread_invariant() {
        let t = corr_table(3000, 12);
        let est = IamEstimator::fit(&t, quick_cfg());
        let mut gen = WorkloadGenerator::new(&t, WorkloadConfig::default(), 21);
        let rqs: Vec<RangeQuery> =
            gen.gen_queries(12).iter().map(|q| q.normalize(2).unwrap().0).collect();

        let seq = est.estimate_batch_shared(&rqs, 1);
        let par = est.estimate_batch_shared(&rqs, 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits(), "thread count changed an estimate");
        }
        // composition independence: a query answered alone must match the
        // same query answered inside the batch, bit for bit
        for (i, rq) in rqs.iter().enumerate() {
            let solo = est.estimate_batch_shared(std::slice::from_ref(rq), 1)[0];
            assert_eq!(solo.to_bits(), seq[i].to_bits(), "query {i} batch-dependent");
        }
    }

    #[test]
    fn quantized_precisions_stay_close_and_f32_restores_golden_bits() {
        use crate::config::TablePrecision;
        let t = corr_table(3000, 14);
        let mut est = IamEstimator::fit(&t, quick_cfg());
        let mut gen = WorkloadGenerator::new(&t, WorkloadConfig::default(), 31);
        let rqs: Vec<RangeQuery> =
            gen.gen_queries(10).iter().map(|q| q.normalize(2).unwrap().0).collect();
        assert_eq!(est.table_precision(), Some(TablePrecision::F32));
        let golden = est.estimate_batch_shared(&rqs, 1);
        for prec in [TablePrecision::F16, TablePrecision::Int8] {
            est.set_table_precision(prec);
            assert_eq!(est.table_precision(), Some(prec));
            let got = est.estimate_batch_shared(&rqs, 1);
            for (i, (g, q)) in golden.iter().zip(&got).enumerate() {
                let qerr = iam_data::q_error(*g, *q, t.nrows());
                assert!(qerr < 1.5, "{prec:?} query {i}: {g} vs {q} (q-error {qerr})");
            }
        }
        // the f32 golden path is always rebuildable, bit for bit
        est.set_table_precision(TablePrecision::F32);
        let back = est.estimate_batch_shared(&rqs, 1);
        for (a, b) in golden.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "f32 rebuild lost golden bits");
        }
    }

    #[test]
    fn model_size_reflects_reduction() {
        let t = corr_table(4000, 9);
        let iam = IamEstimator::fit(&t, quick_cfg());
        let nc = IamEstimator::fit(
            &t,
            neurocard_lite(IamConfig { factorize_threshold: 512, ..quick_cfg() }),
        );
        assert!(
            iam.model_size_bytes() < nc.model_size_bytes(),
            "IAM {} should be smaller than Neurocard {}",
            iam.model_size_bytes(),
            nc.model_size_bytes()
        );
    }
}
