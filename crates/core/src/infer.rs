//! Unbiased progressive sampling (paper §5.2, Algorithm 1), batched.
//!
//! For each query, `S_p` samples advance slot by slot. At slot `i` the AR
//! conditional `P̂_AR(A'_i | s_<i)` is renormalised over the constrained
//! support; for a GMM-reduced column the support is the whole reduced
//! domain and the conditional is re-weighted by `P̂_GMM(R_i)` — the bias
//! correction that makes the sampler unbiased (Theorem 5.1). The factor
//! `P̂(A_i ∈ R_i | s_<i)` multiplies into the sample's running probability;
//! the query estimate is the mean over its samples.
//!
//! # Determinism and parallelism
//!
//! Every query draws from its **own** RNG stream ([`estimate_batch_seeded`]
//! takes one seed per query), and a query's draws happen in a fixed
//! (slot, sample) order regardless of which other queries share the batch.
//! Consequently a query's estimate depends only on the model and its seed —
//! **not** on batch composition, chunking, or thread count. That invariant
//! is what lets the serving layer coalesce arbitrary requests into
//! micro-batches ([`estimate_batch_parallel`]) while staying bitwise
//! reproducible, and lets cached results be reused safely.
//!
//! The forward passes still run batched across all of a chunk's queries at
//! each slot — the shared-GEMM amortisation of §5.3 ("Batch Query
//! Inference", Table 7) is preserved.

use crate::probes;
use crate::schema::{IamSchema, SlotConstraint};
use iam_nn::{FusedTables, InferScratch, MadeNet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;

/// Multiply-xor hasher for the prefix-group intern map: the keys are
/// packed `(group id, token)` words (trusted data, no DoS surface), where
/// SipHash's per-call overhead dominates the whole dedup pass. Hash
/// quality only affects bucket collisions — group identity comes from
/// full `Eq` on the keys, and first-encounter order comes from the row
/// iteration order, so the hasher choice cannot change results.
#[derive(Default)]
struct PrefixHasher(u64);

impl std::hash::Hasher for PrefixHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.0 = (self.0 ^ i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        // one multiply per key — the hot path for the packed u64 keys
        self.0 = (self.0 ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // finalizing xor-shift: the multiply alone leaves the low bits
        // weak, and HashMap indexes with the high seven + low bits
        let h = self.0;
        h ^ (h >> 29)
    }
}

type PrefixBuildHasher = std::hash::BuildHasherDefault<PrefixHasher>;

/// Hoisted sampling state for one (query, unique-prefix) pair at one slot
/// step of the batched sampling pass in [`estimate_batch_seeded_into`].
#[derive(Debug, Clone, Copy)]
enum Hoisted {
    /// One-token window at the index (`sample_point` fast path).
    Point(usize),
    /// Multi-token window starting at `a`, with its mass and a
    /// precomputed `pick_in_window` accumulator at `cum[start..start+len]`
    /// (`last` is the fallback last-nonzero offset within the window).
    Window { a: usize, mass: f64, start: usize, len: usize, last: Option<usize> },
    /// Empty FactorLo window: kills the sample without drawing.
    Dead,
}

/// Reusable per-worker buffers for progressive-sampling runs: the network
/// scratch plus every gather/dedup/softmax buffer of the slot loop. One
/// scratch serves one [`estimate_batch_seeded_into`] call at a time;
/// [`ScratchPool`] recycles them across micro-batches so the serving hot
/// path allocates nothing beyond first-use growth.
#[derive(Debug, Default)]
pub struct QueryScratch {
    nn: InferScratch,
    inputs: Vec<usize>,
    p_hat: Vec<f64>,
    gather_rows: Vec<usize>,
    gather_inputs: Vec<usize>,
    unique_of: Vec<u32>,
    logits: Vec<f32>,
    probs: Vec<f32>,
    probs_all: Vec<f32>,
    weighted: Vec<f64>,
    cum: Vec<f64>,
    stamp: Vec<u32>,
    hoisted: Vec<Hoisted>,
    group: Vec<u32>,
    intern: HashMap<u64, u32, PrefixBuildHasher>,
    id_seen: Vec<u32>,
    id_uniq: Vec<u32>,
}

impl QueryScratch {
    /// Fresh, empty scratch; buffers grow on first use and are reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A free list of [`QueryScratch`] shared by inference workers: scratch is
/// checked out per call and returned afterwards, so repeated micro-batches
/// (the serving layer's steady state) reuse grown buffers instead of
/// reallocating them. Poisoning is benign — a scratch lost to a panicking
/// worker is simply rebuilt on the next checkout.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<QueryScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn take(&self) -> QueryScratch {
        match self.free.lock() {
            Ok(mut v) => v.pop().unwrap_or_default(),
            Err(poisoned) => {
                self.free.clear_poison();
                poisoned.into_inner().pop().unwrap_or_default()
            }
        }
    }

    pub(crate) fn put(&self, scratch: QueryScratch) {
        if let Ok(mut v) = self.free.lock() {
            v.push(scratch);
        }
    }
}

/// Batched progressive-sampling estimator (sequential, caller-provided RNG).
///
/// `plans[q]` is the slot-constraint plan for query `q` (`None` → provably
/// empty, estimate 0). Returns one selectivity per query. Per-query seeds
/// are drawn up-front from `rng`, so results are a deterministic function
/// of the RNG state at entry.
pub fn estimate_batch(
    net: &MadeNet,
    schema: &IamSchema,
    plans: &[Option<Vec<SlotConstraint>>],
    samples_per_query: usize,
    rng: &mut StdRng,
    fused: Option<&FusedTables>,
    scratch: &mut QueryScratch,
) -> Vec<f64> {
    let seeds: Vec<u64> = plans.iter().map(|_| rng.random::<u64>()).collect();
    estimate_batch_seeded(net, schema, plans, samples_per_query, &seeds, fused, scratch)
}

/// Like [`estimate_batch`], but with one explicit RNG seed per query:
/// `results[q]` depends only on `(net, schema, plans[q], samples_per_query,
/// seeds[q])` — never on the other queries in the batch.
pub fn estimate_batch_seeded(
    net: &MadeNet,
    schema: &IamSchema,
    plans: &[Option<Vec<SlotConstraint>>],
    samples_per_query: usize,
    seeds: &[u64],
    fused: Option<&FusedTables>,
    scratch: &mut QueryScratch,
) -> Vec<f64> {
    let mut results = vec![0.0f64; plans.len()];
    estimate_batch_seeded_into(
        net,
        schema,
        plans,
        samples_per_query,
        seeds,
        fused,
        scratch,
        &mut results,
    );
    results
}

/// [`estimate_batch_seeded`] writing into a caller-provided result slice —
/// the kernel behind [`estimate_batch_parallel`]'s shared result buffer.
///
/// When `fused` is `Some`, forwards run through the precomputed
/// embedding→layer-1 token tables; estimates are bitwise identical either
/// way (see [`iam_nn::FusedTables`]). Within each slot step, sample rows
/// with identical sampled prefixes are deduplicated and forwarded once
/// (logits are scattered back); at the first constrained slot every live
/// row still carries the all-MASK prefix, so the whole chunk shares a
/// single forward row. Deduplication never changes results: the forward
/// kernels are batch-position invariant and a row's logits depend only on
/// its own inputs.
///
/// The softmax + weighted-sampling step is likewise batched across the
/// prefix-deduped row set: per-window mass sums and cumulative-pick
/// accumulators are computed once per (query, unique prefix) with the
/// reference samplers' exact sequential arithmetic, so estimates are
/// bitwise identical to the per-row formulation. The RNG draw order is
/// pinned — rows in `gather_rows` order, one `f64` draw per surviving
/// row from its own query's stream — with one exception: at a query's
/// *last* constrained slot the sampled token and the remainder of its
/// stream are never read again, so the draw and pick are skipped and only
/// the (identical) mass factor is applied.
#[allow(clippy::too_many_arguments)]
pub fn estimate_batch_seeded_into(
    net: &MadeNet,
    schema: &IamSchema,
    plans: &[Option<Vec<SlotConstraint>>],
    samples_per_query: usize,
    seeds: &[u64],
    fused: Option<&FusedTables>,
    scratch: &mut QueryScratch,
    results: &mut [f64],
) {
    assert_eq!(plans.len(), seeds.len(), "one seed per query");
    assert_eq!(plans.len(), results.len(), "one result slot per query");
    let _span = iam_obs::span!("infer.progressive_sample");
    let nslots = schema.nslots();
    let sp = samples_per_query.max(1);
    // map live queries to sample-row blocks
    let live: Vec<usize> = (0..plans.len()).filter(|&q| plans[q].is_some()).collect();
    results.fill(0.0);
    if live.is_empty() {
        return;
    }
    let rows = live.len() * sp;
    let mut rngs: Vec<StdRng> = live.iter().map(|&q| StdRng::seed_from_u64(seeds[q])).collect();

    let QueryScratch {
        nn,
        inputs,
        p_hat,
        gather_rows,
        gather_inputs,
        unique_of,
        logits,
        probs,
        probs_all,
        weighted,
        cum,
        stamp,
        hoisted,
        group,
        intern,
        id_seen,
        id_uniq,
    } = scratch;

    // sample state: all slots start at their MASK token
    inputs.clear();
    inputs.reserve(rows * nslots);
    for _ in 0..rows {
        for s in 0..nslots {
            inputs.push(net.mask_token(s));
        }
    }
    p_hat.clear();
    p_hat.resize(rows, 1.0);

    // Incremental prefix-group ids: `group[row]` identifies the row's
    // sampled prefix — two rows carry the same id iff their `inputs`
    // prefixes are equal. All rows start in group 0 (the all-MASK prefix);
    // when a row picks token `v` at a slot it moves to the id interned for
    // `(old group, v)`, while unpicked rows keep their id (their prefix
    // gained only MASKs, which preserves pairwise equality — ids are never
    // reused, so an id always denotes one prefix). This turns per-slot
    // dedup from an O(prefix-length) slice hash per row into two O(1)
    // array reads.
    group.clear();
    group.resize(rows, 0);
    let mut next_id: u32 = 1;
    id_seen.clear();
    id_uniq.clear();
    let mut slot_gen: u32 = 0;

    // local accounting, flushed to the registry once per batch
    let mut forward_rows = 0u64;
    let mut dedup_hits = 0u64;
    let mut skipped_flops = 0u64;

    for slot in 0..nslots {
        // which rows need a model forward at this slot?
        gather_rows.clear();
        for (li, &q) in live.iter().enumerate() {
            let plan = plans[q].as_ref().expect("live query has a plan");
            if plan[slot] == SlotConstraint::Wildcard {
                continue;
            }
            for s in 0..sp {
                let row = li * sp + s;
                if p_hat[row] > 0.0 {
                    gather_rows.push(row);
                }
            }
        }
        if gather_rows.is_empty() {
            continue;
        }
        forward_rows += gather_rows.len() as u64;

        // prefix deduplication: a row's logits at this slot depend only on
        // its sampled prefix (every slot ≥ `slot` is still MASK for every
        // row), so rows sharing a prefix share one forward. At early slots
        // few distinct prefixes exist — slot 0 always collapses to ONE
        // all-MASK row for the whole chunk. Prefix identity is the
        // incrementally maintained `group` id, so grouping is two array
        // reads per row; `id_seen[g]` stamps the slot generation that
        // first met id `g`, making the per-slot reset O(new ids).
        let nuniq = {
            let _dspan = iam_obs::span!("infer.prefix_dedup");
            unique_of.clear();
            gather_inputs.clear();
            slot_gen += 1;
            id_seen.resize(next_id as usize, 0);
            id_uniq.resize(next_id as usize, 0);
            for &row in gather_rows.iter() {
                let g = group[row] as usize;
                if id_seen[g] != slot_gen {
                    id_seen[g] = slot_gen;
                    id_uniq[g] = (gather_inputs.len() / nslots) as u32;
                    gather_inputs.extend_from_slice(&inputs[row * nslots..(row + 1) * nslots]);
                }
                unique_of.push(id_uniq[g]);
            }
            gather_inputs.len() / nslots
        };
        dedup_hits += (gather_rows.len() - nuniq) as u64;

        // compact forward over just the unique prefixes
        match fused {
            Some(tables) => {
                net.forward_column_fused(tables, nn, gather_inputs, nuniq, slot, logits);
                skipped_flops += tables.skipped_layer1_flops(nuniq);
            }
            None => net.forward_column_into(nn, gather_inputs, nuniq, slot, logits),
        }
        let width = net.domain_size(slot);

        // one softmax per unique prefix, reused by every duplicate row
        probs_all.clear();
        probs_all.reserve(nuniq * width);
        for u in 0..nuniq {
            net.row_softmax(logits, u, width, probs);
            crate::invariant::check_softmax_mass(probs, "infer slot softmax");
            probs_all.extend_from_slice(probs);
        }

        // Batched softmax-sampling pass. `gather_rows` is ordered by
        // (query, sample index), so a query's rows are contiguous, and a
        // row's sampling window — its mass sum and `pick_in_window`
        // accumulator — depends only on (query, unique prefix `u`): the
        // constraint comes from the query's plan, and even the FactorLo
        // window bounds derive from the prefix's hi-slot token, which is
        // part of the deduped unique row. So the O(width) mass/cumulative
        // work is hoisted to once per (query, u) — computed with the
        // exact sequential arithmetic of `sample_range`/`sample_weighted`,
        // hence bitwise identical — and the per-row loop only draws and
        // scans precomputed accumulators.
        //
        // RNG draw order is pinned: rows are visited in `gather_rows`
        // order and each surviving row draws exactly one `f64` from its
        // query's stream (zero-mass and empty-window rows draw nothing),
        // exactly as the unbatched per-row path did.
        // per-(query, unique-prefix) hoisted state, directly indexed by the
        // unique id `u` — no hashing in the per-row loop. `stamp[u]` holds
        // the epoch (query ordinal within this slot) that last wrote
        // `hoisted[u]`; bumping the epoch on a query change invalidates
        // every entry in O(1), because rows arrive grouped by query.
        stamp.clear();
        stamp.resize(nuniq, 0);
        hoisted.clear();
        hoisted.resize(nuniq, Hoisted::Dead);
        cum.clear();
        intern.clear(); // fresh (group, token) interning per slot
        let mut epoch = 0u32;
        let mut cur_li = usize::MAX;
        let mut terminal = false;
        for (gi, &row) in gather_rows.iter().enumerate() {
            let li = row / sp;
            if li != cur_li {
                // next query: its plan differs, so hoisted state resets
                cur_li = li;
                epoch += 1;
                cum.clear();
                // a query's last constrained slot: the sampled token and
                // the rest of its RNG stream are never read again
                let plan = plans[live[li]].as_ref().expect("live query has a plan");
                terminal = plan[slot + 1..].iter().all(|c| *c == SlotConstraint::Wildcard);
            }
            let q = live[li];
            let rng = &mut rngs[li];
            let plan = plans[q].as_ref().expect("live query has a plan");
            let u = unique_of[gi] as usize;
            let probs = &probs_all[u * width..(u + 1) * width];
            if stamp[u] != epoch {
                stamp[u] = epoch;
                hoisted[u] = match &plan[slot] {
                    SlotConstraint::Wildcard => unreachable!("wildcards were filtered"),
                    SlotConstraint::Range(a, b) if a == b => Hoisted::Point(*a),
                    SlotConstraint::Range(a, b) => {
                        // identical expression to sample_range's mass
                        let mass: f64 = probs[*a..=*b].iter().map(|&p| p as f64).sum();
                        let (start, len, last) =
                            push_cum(cum, probs[*a..=*b].iter().map(|&p| p as f64));
                        Hoisted::Window { a: *a, mass, start, len, last }
                    }
                    SlotConstraint::Weights(w) => {
                        debug_assert_eq!(w.len(), width);
                        weighted.clear();
                        weighted.extend(probs.iter().zip(w).map(|(&p, &m)| p as f64 * m));
                        crate::invariant::check_mass_vector(
                            weighted,
                            "bias-corrected slot weights",
                        );
                        let mass: f64 = weighted.iter().sum();
                        let (start, len, last) = push_cum(cum, weighted.iter().copied());
                        Hoisted::Window { a: 0, mass, start, len, last }
                    }
                    SlotConstraint::FactorLo { lo_idx, hi_idx, base } => {
                        // the hi slot precedes this one, so its sampled
                        // token is part of the unique prefix row
                        let hi_sampled = gather_inputs[u * nslots + slot - 1];
                        let first_block = lo_idx / base;
                        let last_block = hi_idx / base;
                        let a = if hi_sampled == first_block { lo_idx % base } else { 0 };
                        let b = if hi_sampled == last_block { hi_idx % base } else { base - 1 };
                        let b = b.min(width - 1);
                        if a > b {
                            Hoisted::Dead
                        } else if a == b {
                            Hoisted::Point(a)
                        } else {
                            let mass: f64 = probs[a..=b].iter().map(|&p| p as f64).sum();
                            let (start, len, last) =
                                push_cum(cum, probs[a..=b].iter().map(|&p| p as f64));
                            Hoisted::Window { a, mass, start, len, last }
                        }
                    }
                };
            }
            if terminal {
                // Mass-only fast path for the query's final constrained
                // slot: p̂ updates are the reference arms' exact
                // expressions, and the skipped draw/pick/intern work is
                // observable only through this query's own later slots
                // and RNG stream — of which there are none.
                match hoisted[u] {
                    Hoisted::Dead => p_hat[row] = 0.0,
                    Hoisted::Point(a) => {
                        let mass = probs[a] as f64;
                        if mass <= 0.0 {
                            p_hat[row] = 0.0;
                        } else {
                            p_hat[row] *= mass.min(1.0);
                        }
                    }
                    Hoisted::Window { mass, .. } => {
                        if mass <= 0.0 {
                            p_hat[row] = 0.0;
                        } else {
                            p_hat[row] *= mass.min(1.0);
                        }
                    }
                }
                continue;
            }
            let picked = match hoisted[u] {
                Hoisted::Dead => {
                    p_hat[row] = 0.0;
                    None
                }
                Hoisted::Point(a) => sample_point(probs, a, &mut p_hat[row], rng),
                Hoisted::Window { a, mass, start, len, last } => {
                    if mass <= 0.0 {
                        p_hat[row] = 0.0;
                        None
                    } else {
                        p_hat[row] *= mass.min(1.0);
                        let draw = rng.random::<f64>() * mass;
                        // precomputed pick_in_window walk: `cum[j]` is the
                        // running sum after entry j (NaN at zero-mass
                        // entries, which therefore never satisfy `<=`)
                        let mut pick = last;
                        for (j, &c) in cum[start..start + len].iter().enumerate() {
                            if draw <= c {
                                pick = Some(j);
                                break;
                            }
                        }
                        pick.map(|j| a + j)
                    }
                }
            };
            if let Some(v) = picked {
                inputs[row * nslots + slot] = v;
                // refine the row's prefix-group id: rows picking the same
                // token out of the same group stay together
                let key = ((group[row] as u64) << 32) | v as u64;
                group[row] = *intern.entry(key).or_insert_with(|| {
                    let id = next_id;
                    next_id += 1;
                    id
                });
            }
        }
    }

    let p = probes::infer();
    let trace_on = iam_obs::trace::active();
    let mut dead_samples = 0u64;
    for (li, &q) in live.iter().enumerate() {
        let block = &p_hat[li * sp..(li + 1) * sp];
        let dead = block.iter().filter(|&&x| x == 0.0).count() as u64;
        dead_samples += dead;
        results[q] = (block.iter().sum::<f64>() / sp as f64).clamp(0.0, 1.0);
        crate::invariant::check_selectivity(results[q], "progressive-sampling estimate");
        p.samples_per_query.observe(sp as u64);
        p.renorm_mass_ppm.observe((results[q] * 1e6) as u64);
        if trace_on {
            iam_obs::trace::event(
                "infer.query",
                &[
                    ("samples", iam_obs::Value::U64(sp as u64)),
                    ("dead_samples", iam_obs::Value::U64(dead)),
                    ("estimate", iam_obs::Value::F64(results[q])),
                    ("seed", iam_obs::Value::U64(seeds[q])),
                ],
            );
        }
    }
    p.queries.add(live.len() as u64);
    p.samples.add(rows as u64);
    p.forward_rows.add(forward_rows);
    p.dead_samples.add(dead_samples);
    p.dedup_hits.add(dedup_hits);
    p.layer1_skipped_flops.add(skipped_flops);
}

/// Parallel batched inference: queries are split into contiguous chunks,
/// one `std::thread::scope` worker per chunk, all sharing the model
/// immutably. Workers write straight into disjoint chunks of one shared
/// result buffer (no per-worker result vectors, no final copy) and check
/// their [`QueryScratch`] out of `pool`, so steady-state micro-batches
/// reuse grown buffers across calls.
///
/// Because of the per-query seeding invariant (see module docs), the
/// result is bitwise identical to [`estimate_batch_seeded`] with the same
/// seeds, for every `threads` value.
#[allow(clippy::too_many_arguments)]
pub fn estimate_batch_parallel(
    net: &MadeNet,
    schema: &IamSchema,
    plans: &[Option<Vec<SlotConstraint>>],
    samples_per_query: usize,
    seeds: &[u64],
    fused: Option<&FusedTables>,
    threads: usize,
    pool: &ScratchPool,
) -> Vec<f64> {
    assert_eq!(plans.len(), seeds.len(), "one seed per query");
    let mut results = vec![0.0f64; plans.len()];
    let threads = threads.clamp(1, plans.len().max(1));
    if threads == 1 {
        let mut scratch = pool.take();
        estimate_batch_seeded_into(
            net,
            schema,
            plans,
            samples_per_query,
            seeds,
            fused,
            &mut scratch,
            &mut results,
        );
        pool.put(scratch);
        return results;
    }
    let chunk = plans.len().div_ceil(threads);
    // the chunk decomposition must cover every query, tail chunk included:
    // `chunks`/`chunks_mut` both emit ⌈len/chunk⌉ pieces whose lengths sum
    // to len, and zipping three decompositions of equal-length slices keeps
    // them aligned offset for offset
    assert_eq!(
        plans.chunks(chunk).map(<[_]>::len).sum::<usize>(),
        results.len(),
        "chunk decomposition must cover the tail chunk"
    );
    // the trace context is thread-local; hand each fan-out thread a child
    // context so infer spans still stitch into the caller's trace tree
    let ctx = iam_obs::tracetree::child_ctx();
    std::thread::scope(|s| {
        for ((pc, sc), rc) in
            plans.chunks(chunk).zip(seeds.chunks(chunk)).zip(results.chunks_mut(chunk))
        {
            s.spawn(move || {
                let _ctx = ctx.map(iam_obs::tracetree::install);
                let mut scratch = pool.take();
                estimate_batch_seeded_into(
                    net,
                    schema,
                    pc,
                    samples_per_query,
                    sc,
                    fused,
                    &mut scratch,
                    rc,
                );
                pool.put(scratch);
            });
        }
    });
    results
}

/// Append one window's `pick_in_window` accumulator to `arena`: entry `j`
/// holds the running sum after including window value `j`, computed with
/// the same skip-zeros sequential adds as [`pick_in_window`] — so a scan
/// for the first `draw <= cum[j]` returns exactly the index the walk
/// would. Zero-mass entries store NaN (every `<=` against NaN is false,
/// so they can never be picked), and the returned fallback mirrors the
/// walk's last-nonzero index. Returns `(start, len, last_nonzero)`.
fn push_cum(
    arena: &mut Vec<f64>,
    window: impl Iterator<Item = f64>,
) -> (usize, usize, Option<usize>) {
    let start = arena.len();
    let mut acc = 0.0f64;
    let mut last = None;
    let mut len = 0usize;
    for (j, p) in window.enumerate() {
        if p > 0.0 {
            acc += p;
            last = Some(j);
            arena.push(acc);
        } else {
            arena.push(f64::NAN);
        }
        len += 1;
    }
    (start, len, last)
}

/// Walk a probability window's running sum and return the first index at
/// which the cumulative mass reaches `u`, never returning a zero-mass
/// index. Zero entries are skipped outright (adding `0.0` to the
/// accumulator is exact, so the walk is unchanged for every reachable
/// index) — boundary draws (`u == 0.0` with leading zeros, or `u` at the
/// full mass with trailing zeros) used to land on them. When float
/// round-off leaves `u` beyond the final cumulative sum, the fallback is
/// the last *nonzero*-probability index: falling back to the window's last
/// index could select a zero-probability value and condition every later
/// slot on an impossible prefix. Returns `None` only when every entry is
/// `<= 0` (callers check the mass first).
fn pick_in_window(window: impl Iterator<Item = f64>, u: f64) -> Option<usize> {
    let mut acc = 0.0f64;
    let mut last_nonzero = None;
    for (j, p) in window.enumerate() {
        if p > 0.0 {
            acc += p;
            last_nonzero = Some(j);
            if u <= acc {
                return Some(j);
            }
        }
    }
    last_nonzero
}

/// Renormalise `probs` over `[a, b]`, fold the mass into `p_hat` and draw an
/// index. Returns `None` (and kills the sample) on zero mass.
///
/// Reference implementation: the batched sampling pass in
/// [`estimate_batch_seeded_into`] hoists this window's mass sum and
/// cumulative walk per (query, unique prefix) via [`push_cum`] and must
/// stay bitwise-equivalent — the equivalence tests below compare against
/// this function.
#[cfg_attr(not(test), allow(dead_code))]
fn sample_range(
    probs: &[f32],
    a: usize,
    b: usize,
    p_hat: &mut f64,
    rng: &mut StdRng,
) -> Option<usize> {
    debug_assert!(a <= b && b < probs.len());
    let mass: f64 = probs[a..=b].iter().map(|&p| p as f64).sum();
    if mass <= 0.0 {
        *p_hat = 0.0;
        return None;
    }
    *p_hat *= mass.min(1.0);
    let u = rng.random::<f64>() * mass;
    pick_in_window(probs[a..=b].iter().map(|&p| p as f64), u).map(|j| a + j)
}

/// Point-constraint short-circuit for `sample_range(probs, a, a, ..)`: a
/// one-element window has mass `probs[a]` and only one pickable index, so
/// the cumulative walk is skipped entirely. The RNG stream must stay
/// identical to the general path, which draws exactly once *after* its
/// zero-mass check — so this draws (and discards) one `f64` in the same
/// place, and draws nothing when the mass is zero.
fn sample_point(probs: &[f32], a: usize, p_hat: &mut f64, rng: &mut StdRng) -> Option<usize> {
    debug_assert!(a < probs.len());
    let mass = probs[a] as f64;
    if mass <= 0.0 {
        *p_hat = 0.0;
        return None;
    }
    *p_hat *= mass.min(1.0);
    let _ = rng.random::<f64>();
    Some(a)
}

/// Same, but over an already bias-corrected weight vector (`p_AR × P̂_GMM`).
/// Reference implementation for the batched pass, like [`sample_range`].
#[cfg_attr(not(test), allow(dead_code))]
fn sample_weighted(weighted: &[f64], p_hat: &mut f64, rng: &mut StdRng) -> Option<usize> {
    let mass: f64 = weighted.iter().sum();
    if mass <= 0.0 {
        *p_hat = 0.0;
        return None;
    }
    *p_hat *= mass.min(1.0);
    let u = rng.random::<f64>() * mass;
    pick_in_window(weighted.iter().copied(), u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_range_masses_accumulate() {
        let probs = vec![0.1f32, 0.2, 0.3, 0.4];
        let mut rng = StdRng::seed_from_u64(1);
        let mut p_hat = 1.0;
        let v = sample_range(&probs, 1, 2, &mut p_hat, &mut rng).unwrap();
        assert!((1..=2).contains(&v));
        assert!((p_hat - 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_mass_kills_sample() {
        let probs = vec![0.5f32, 0.0, 0.0, 0.5];
        let mut rng = StdRng::seed_from_u64(2);
        let mut p_hat = 1.0;
        assert!(sample_range(&probs, 1, 2, &mut p_hat, &mut rng).is_none());
        assert_eq!(p_hat, 0.0);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weighted = vec![0.0, 0.25, 0.75, 0.0];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let mut p = 1.0;
            counts[sample_weighted(&weighted, &mut p, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[0] + counts[3], 0);
        let frac = counts[2] as f64 / 4000.0;
        assert!((frac - 0.75).abs() < 0.03, "{frac}");
    }

    #[test]
    fn roundoff_fallback_lands_on_last_nonzero_index() {
        // regression: with trailing zero-probability entries, a draw that
        // round-off pushes past the final cumulative sum used to fall back
        // to the window's LAST index — a zero-mass value that conditions
        // every later slot on an impossible prefix. The fallback must be
        // the last nonzero-probability index instead.
        let window = [0.3f64, 0.0, 0.4, 0.0, 0.0];
        let mass: f64 = window.iter().sum();
        // u strictly above the accumulated mass forces the fallback path
        let u = mass * (1.0 + 1e-9);
        assert_eq!(pick_in_window(window.iter().copied(), u), Some(2));
        // all-zero window: nothing pickable
        assert_eq!(pick_in_window([0.0f64; 4].iter().copied(), 0.0), None);
    }

    #[test]
    fn boundary_draw_skips_leading_zero_mass_entries() {
        // regression: u == 0.0 satisfied `u <= acc` at the first entry even
        // when that entry had zero probability
        let window = [0.0f64, 0.0, 0.6, 0.4];
        assert_eq!(pick_in_window(window.iter().copied(), 0.0), Some(2));
    }

    #[test]
    fn sample_range_never_picks_a_zero_probability_index() {
        let probs = vec![0.0f32, 0.3, 0.0, 0.7, 0.0];
        for seed in 0..500 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p_hat = 1.0;
            let v = sample_range(&probs, 0, 4, &mut p_hat, &mut rng).unwrap();
            assert!(probs[v] > 0.0, "seed {seed} picked zero-mass index {v}");
        }
    }

    #[test]
    fn sample_point_matches_degenerate_range_bitwise() {
        // the short-circuit must reproduce sample_range(probs, a, a, ..)
        // exactly: same pick, same p_hat bits, same RNG stream afterwards
        let probs = vec![0.05f32, 0.3, 0.0, 0.65];
        for a in 0..probs.len() {
            for seed in 0..50 {
                let (mut r1, mut r2) = (StdRng::seed_from_u64(seed), StdRng::seed_from_u64(seed));
                let (mut p1, mut p2) = (0.7f64, 0.7f64);
                let v1 = sample_range(&probs, a, a, &mut p1, &mut r1);
                let v2 = sample_point(&probs, a, &mut p2, &mut r2);
                assert_eq!(v1, v2, "pick diverged at a={a} seed={seed}");
                assert_eq!(p1.to_bits(), p2.to_bits(), "p_hat diverged at a={a}");
                assert_eq!(
                    r1.random::<u64>(),
                    r2.random::<u64>(),
                    "RNG stream diverged at a={a} seed={seed}"
                );
            }
        }
        // zero mass: sample kills without drawing in both paths
        let (mut r1, mut r2) = (StdRng::seed_from_u64(9), StdRng::seed_from_u64(9));
        let (mut p1, mut p2) = (1.0f64, 1.0f64);
        assert!(sample_range(&probs, 2, 2, &mut p1, &mut r1).is_none());
        assert!(sample_point(&probs, 2, &mut p2, &mut r2).is_none());
        assert_eq!(p1, 0.0);
        assert_eq!(p2, 0.0);
        assert_eq!(r1.random::<u64>(), r2.random::<u64>());
    }

    #[test]
    fn sample_weighted_never_picks_a_zero_weight_index() {
        let weighted = vec![0.0f64, 1e-12, 0.0, 1e-300, 0.0];
        for seed in 0..500 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p_hat = 1.0;
            let v = sample_weighted(&weighted, &mut p_hat, &mut rng).unwrap();
            assert!(weighted[v] > 0.0, "seed {seed} picked zero-weight index {v}");
        }
    }

    /// The batched pass's hoisted pick: mass + `push_cum` once, then the
    /// per-row scan — mirrors the Window arm of the batched sampler.
    fn hoisted_pick(window: &[f64], p_hat: &mut f64, rng: &mut StdRng) -> Option<usize> {
        let mass: f64 = window.iter().sum();
        let mut cum = Vec::new();
        let (start, len, last) = push_cum(&mut cum, window.iter().copied());
        if mass <= 0.0 {
            *p_hat = 0.0;
            return None;
        }
        *p_hat *= mass.min(1.0);
        let draw = rng.random::<f64>() * mass;
        let mut pick = last;
        for (j, &c) in cum[start..start + len].iter().enumerate() {
            if draw <= c {
                pick = Some(j);
                break;
            }
        }
        pick
    }

    #[test]
    fn hoisted_pick_matches_reference_samplers_bitwise() {
        // the batched sampling pass must reproduce sample_range /
        // sample_weighted exactly: same pick, same p_hat bits, same RNG
        // stream — including zero-mass windows, interior/trailing zeros,
        // and the round-off fallback
        let windows: Vec<Vec<f32>> = vec![
            vec![0.1, 0.2, 0.3, 0.4],
            vec![0.0, 0.3, 0.0, 0.7, 0.0],
            vec![0.5, 0.0, 0.0, 0.5],
            vec![0.0, 0.0, 0.0],
            vec![1e-30, 0.0, 1e-38],
        ];
        for probs in &windows {
            for seed in 0..200 {
                let (mut r1, mut r2) = (StdRng::seed_from_u64(seed), StdRng::seed_from_u64(seed));
                let (mut p1, mut p2) = (0.9f64, 0.9f64);
                let b = probs.len() - 1;
                let want = sample_range(probs, 0, b, &mut p1, &mut r1);
                let w64: Vec<f64> = probs.iter().map(|&p| p as f64).collect();
                let got = hoisted_pick(&w64, &mut p2, &mut r2);
                assert_eq!(want, got, "pick diverged on {probs:?} seed {seed}");
                assert_eq!(p1.to_bits(), p2.to_bits(), "p_hat diverged on {probs:?}");
                assert_eq!(r1.random::<u64>(), r2.random::<u64>(), "RNG diverged on {probs:?}");
            }
        }
        // weighted vectors take the same path
        let weighted = vec![0.0f64, 1e-12, 0.0, 1e-300, 0.0];
        for seed in 0..200 {
            let (mut r1, mut r2) = (StdRng::seed_from_u64(seed), StdRng::seed_from_u64(seed));
            let (mut p1, mut p2) = (1.0f64, 1.0f64);
            let want = sample_weighted(&weighted, &mut p1, &mut r1);
            let got = hoisted_pick(&weighted, &mut p2, &mut r2);
            assert_eq!(want, got, "seed {seed}");
            assert_eq!(p1.to_bits(), p2.to_bits());
        }
    }

    #[test]
    fn prefix_difference_clamped_zeros_are_never_selected() {
        // regression (prefix-table fallout): a CDF prefix difference in a
        // far tail can go tiny-negative from round-off before the
        // `.max(0.0)` clamp, leaving *exact* 0.0 entries in the P̂_GMM
        // mass vector. Those zeros must be unpickable under both the
        // reference sampler and the batched hoisted pick, for boundary
        // draws included.
        let gmm =
            iam_gmm::Gmm1d::new(vec![0.4, 0.3, 0.3], vec![-50.0, 0.0, 50.0], vec![0.5, 1.0, 0.5]);
        let grid: Vec<f64> = (-60..=60).map(|v| v as f64).collect();
        let table = iam_gmm::CdfPrefixTable::build(&gmm, &grid);
        let mut mass = Vec::new();
        // an interval deep in component 2's territory: components 0 and 1
        // have (clamped) zero mass there
        table.mass_into(49.0, 51.0, &mut mass);
        assert_eq!(mass[0], 0.0, "far-tail mass must clamp to exactly 0.0");
        assert!(mass[2] > 0.0);
        // a plausible softmax row times that mass vector
        let probs = [0.2f32, 0.5, 0.3];
        let weighted: Vec<f64> = probs.iter().zip(&mass).map(|(&p, &m)| p as f64 * m).collect();
        for seed in 0..500 {
            let (mut r1, mut r2) = (StdRng::seed_from_u64(seed), StdRng::seed_from_u64(seed));
            let (mut p1, mut p2) = (1.0f64, 1.0f64);
            let want = sample_weighted(&weighted, &mut p1, &mut r1).unwrap();
            let got = hoisted_pick(&weighted, &mut p2, &mut r2).unwrap();
            assert_eq!(want, got, "seed {seed}");
            assert!(weighted[want] > 0.0, "seed {seed} picked clamped-zero index {want}");
        }
        // boundary draws: u == 0.0 (first positive entry) and a draw past
        // the full mass (fallback) must also avoid the zeros
        let m: f64 = weighted.iter().sum();
        assert!(weighted[pick_in_window(weighted.iter().copied(), 0.0).unwrap()] > 0.0);
        let fb = pick_in_window(weighted.iter().copied(), m * (1.0 + 1e-9)).unwrap();
        assert!(weighted[fb] > 0.0, "fallback landed on a clamped zero");
    }
}
