//! Unbiased progressive sampling (paper §5.2, Algorithm 1), batched.
//!
//! For each query, `S_p` samples advance slot by slot. At slot `i` the AR
//! conditional `P̂_AR(A'_i | s_<i)` is renormalised over the constrained
//! support; for a GMM-reduced column the support is the whole reduced
//! domain and the conditional is re-weighted by `P̂_GMM(R_i)` — the bias
//! correction that makes the sampler unbiased (Theorem 5.1). The factor
//! `P̂(A_i ∈ R_i | s_<i)` multiplies into the sample's running probability;
//! the query estimate is the mean over its samples.
//!
//! # Determinism and parallelism
//!
//! Every query draws from its **own** RNG stream ([`estimate_batch_seeded`]
//! takes one seed per query), and a query's draws happen in a fixed
//! (slot, sample) order regardless of which other queries share the batch.
//! Consequently a query's estimate depends only on the model and its seed —
//! **not** on batch composition, chunking, or thread count. That invariant
//! is what lets the serving layer coalesce arbitrary requests into
//! micro-batches ([`estimate_batch_parallel`]) while staying bitwise
//! reproducible, and lets cached results be reused safely.
//!
//! The forward passes still run batched across all of a chunk's queries at
//! each slot — the shared-GEMM amortisation of §5.3 ("Batch Query
//! Inference", Table 7) is preserved.

use crate::probes;
use crate::schema::{IamSchema, SlotConstraint};
use iam_nn::{InferScratch, MadeNet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Batched progressive-sampling estimator (sequential, caller-provided RNG).
///
/// `plans[q]` is the slot-constraint plan for query `q` (`None` → provably
/// empty, estimate 0). Returns one selectivity per query. Per-query seeds
/// are drawn up-front from `rng`, so results are a deterministic function
/// of the RNG state at entry.
pub fn estimate_batch(
    net: &MadeNet,
    schema: &IamSchema,
    plans: &[Option<Vec<SlotConstraint>>],
    samples_per_query: usize,
    rng: &mut StdRng,
    scratch: &mut InferScratch,
) -> Vec<f64> {
    let seeds: Vec<u64> = plans.iter().map(|_| rng.random::<u64>()).collect();
    estimate_batch_seeded(net, schema, plans, samples_per_query, &seeds, scratch)
}

/// Like [`estimate_batch`], but with one explicit RNG seed per query:
/// `results[q]` depends only on `(net, schema, plans[q], samples_per_query,
/// seeds[q])` — never on the other queries in the batch.
pub fn estimate_batch_seeded(
    net: &MadeNet,
    schema: &IamSchema,
    plans: &[Option<Vec<SlotConstraint>>],
    samples_per_query: usize,
    seeds: &[u64],
    scratch: &mut InferScratch,
) -> Vec<f64> {
    assert_eq!(plans.len(), seeds.len(), "one seed per query");
    let _span = iam_obs::span!("infer.progressive_sample");
    let nslots = schema.nslots();
    let sp = samples_per_query.max(1);
    // map live queries to sample-row blocks
    let live: Vec<usize> = (0..plans.len()).filter(|&q| plans[q].is_some()).collect();
    let mut results = vec![0.0f64; plans.len()];
    if live.is_empty() {
        return results;
    }
    let rows = live.len() * sp;
    let mut rngs: Vec<StdRng> = live.iter().map(|&q| StdRng::seed_from_u64(seeds[q])).collect();

    // sample state: all slots start at their MASK token
    let mut inputs: Vec<usize> = Vec::with_capacity(rows * nslots);
    for _ in 0..rows {
        for s in 0..nslots {
            inputs.push(net.mask_token(s));
        }
    }
    let mut p_hat = vec![1.0f64; rows];

    // scratch
    let mut gather_rows: Vec<usize> = Vec::new();
    let mut gather_inputs: Vec<usize> = Vec::new();
    let mut logits: Vec<f32> = Vec::new();
    let mut probs: Vec<f32> = Vec::new();
    let mut weighted: Vec<f64> = Vec::new();
    // local accounting, flushed to the registry once per batch
    let mut forward_rows = 0u64;

    for slot in 0..nslots {
        // which rows need a model forward at this slot?
        gather_rows.clear();
        for (li, &q) in live.iter().enumerate() {
            let plan = plans[q].as_ref().expect("live query has a plan");
            if plan[slot] == SlotConstraint::Wildcard {
                continue;
            }
            for s in 0..sp {
                let row = li * sp + s;
                if p_hat[row] > 0.0 {
                    gather_rows.push(row);
                }
            }
        }
        if gather_rows.is_empty() {
            continue;
        }
        forward_rows += gather_rows.len() as u64;
        // compact forward over just those rows
        gather_inputs.clear();
        for &row in &gather_rows {
            gather_inputs.extend_from_slice(&inputs[row * nslots..(row + 1) * nslots]);
        }
        net.forward_column_into(scratch, &gather_inputs, gather_rows.len(), slot, &mut logits);
        let width = net.domain_size(slot);

        for (gi, &row) in gather_rows.iter().enumerate() {
            let li = row / sp;
            let q = live[li];
            let rng = &mut rngs[li];
            let plan = plans[q].as_ref().expect("live query has a plan");
            net.row_softmax(&logits, gi, width, &mut probs);
            let picked = match &plan[slot] {
                SlotConstraint::Wildcard => unreachable!("wildcards were filtered"),
                SlotConstraint::Range(a, b) => sample_range(&probs, *a, *b, &mut p_hat[row], rng),
                SlotConstraint::Weights(w) => {
                    debug_assert_eq!(w.len(), width);
                    weighted.clear();
                    weighted.extend(probs.iter().zip(w).map(|(&p, &m)| p as f64 * m));
                    sample_weighted(&weighted, &mut p_hat[row], rng)
                }
                SlotConstraint::FactorLo { lo_idx, hi_idx, base } => {
                    let hi_sampled = inputs[row * nslots + slot - 1];
                    let first_block = lo_idx / base;
                    let last_block = hi_idx / base;
                    let a = if hi_sampled == first_block { lo_idx % base } else { 0 };
                    let b = if hi_sampled == last_block { hi_idx % base } else { base - 1 };
                    let b = b.min(width - 1);
                    if a > b {
                        p_hat[row] = 0.0;
                        None
                    } else {
                        sample_range(&probs, a, b, &mut p_hat[row], rng)
                    }
                }
            };
            if let Some(v) = picked {
                inputs[row * nslots + slot] = v;
            }
        }
    }

    let p = probes::infer();
    let trace_on = iam_obs::trace::active();
    let mut dead_samples = 0u64;
    for (li, &q) in live.iter().enumerate() {
        let block = &p_hat[li * sp..(li + 1) * sp];
        let dead = block.iter().filter(|&&x| x == 0.0).count() as u64;
        dead_samples += dead;
        results[q] = (block.iter().sum::<f64>() / sp as f64).clamp(0.0, 1.0);
        p.samples_per_query.observe(sp as u64);
        p.renorm_mass_ppm.observe((results[q] * 1e6) as u64);
        if trace_on {
            iam_obs::trace::event(
                "infer.query",
                &[
                    ("samples", iam_obs::Value::U64(sp as u64)),
                    ("dead_samples", iam_obs::Value::U64(dead)),
                    ("estimate", iam_obs::Value::F64(results[q])),
                    ("seed", iam_obs::Value::U64(seeds[q])),
                ],
            );
        }
    }
    p.queries.add(live.len() as u64);
    p.samples.add(rows as u64);
    p.forward_rows.add(forward_rows);
    p.dead_samples.add(dead_samples);
    results
}

/// Parallel batched inference: queries are split into contiguous chunks,
/// one `std::thread::scope` worker per chunk, all sharing the model
/// immutably. Each worker keeps its own [`InferScratch`], so the hot path
/// allocates nothing beyond first-use buffer growth.
///
/// Because of the per-query seeding invariant (see module docs), the
/// result is bitwise identical to [`estimate_batch_seeded`] with the same
/// seeds, for every `threads` value.
pub fn estimate_batch_parallel(
    net: &MadeNet,
    schema: &IamSchema,
    plans: &[Option<Vec<SlotConstraint>>],
    samples_per_query: usize,
    seeds: &[u64],
    threads: usize,
) -> Vec<f64> {
    assert_eq!(plans.len(), seeds.len(), "one seed per query");
    let threads = threads.clamp(1, plans.len().max(1));
    if threads == 1 {
        let mut scratch = InferScratch::new();
        return estimate_batch_seeded(net, schema, plans, samples_per_query, seeds, &mut scratch);
    }
    let chunk = plans.len().div_ceil(threads);
    let mut results = vec![0.0f64; plans.len()];
    std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .chunks(chunk)
            .zip(seeds.chunks(chunk))
            .map(|(pc, sc)| {
                s.spawn(move || {
                    let mut scratch = InferScratch::new();
                    estimate_batch_seeded(net, schema, pc, samples_per_query, sc, &mut scratch)
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let part = h.join().expect("inference worker panicked");
            results[i * chunk..i * chunk + part.len()].copy_from_slice(&part);
        }
    });
    results
}

/// Walk a probability window's running sum and return the first index at
/// which the cumulative mass reaches `u`, never returning a zero-mass
/// index. Zero entries are skipped outright (adding `0.0` to the
/// accumulator is exact, so the walk is unchanged for every reachable
/// index) — boundary draws (`u == 0.0` with leading zeros, or `u` at the
/// full mass with trailing zeros) used to land on them. When float
/// round-off leaves `u` beyond the final cumulative sum, the fallback is
/// the last *nonzero*-probability index: falling back to the window's last
/// index could select a zero-probability value and condition every later
/// slot on an impossible prefix. Returns `None` only when every entry is
/// `<= 0` (callers check the mass first).
fn pick_in_window(window: impl Iterator<Item = f64>, u: f64) -> Option<usize> {
    let mut acc = 0.0f64;
    let mut last_nonzero = None;
    for (j, p) in window.enumerate() {
        if p > 0.0 {
            acc += p;
            last_nonzero = Some(j);
            if u <= acc {
                return Some(j);
            }
        }
    }
    last_nonzero
}

/// Renormalise `probs` over `[a, b]`, fold the mass into `p_hat` and draw an
/// index. Returns `None` (and kills the sample) on zero mass.
fn sample_range(
    probs: &[f32],
    a: usize,
    b: usize,
    p_hat: &mut f64,
    rng: &mut StdRng,
) -> Option<usize> {
    debug_assert!(a <= b && b < probs.len());
    let mass: f64 = probs[a..=b].iter().map(|&p| p as f64).sum();
    if mass <= 0.0 {
        *p_hat = 0.0;
        return None;
    }
    *p_hat *= mass.min(1.0);
    let u = rng.random::<f64>() * mass;
    pick_in_window(probs[a..=b].iter().map(|&p| p as f64), u).map(|j| a + j)
}

/// Same, but over an already bias-corrected weight vector (`p_AR × P̂_GMM`).
fn sample_weighted(weighted: &[f64], p_hat: &mut f64, rng: &mut StdRng) -> Option<usize> {
    let mass: f64 = weighted.iter().sum();
    if mass <= 0.0 {
        *p_hat = 0.0;
        return None;
    }
    *p_hat *= mass.min(1.0);
    let u = rng.random::<f64>() * mass;
    pick_in_window(weighted.iter().copied(), u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_range_masses_accumulate() {
        let probs = vec![0.1f32, 0.2, 0.3, 0.4];
        let mut rng = StdRng::seed_from_u64(1);
        let mut p_hat = 1.0;
        let v = sample_range(&probs, 1, 2, &mut p_hat, &mut rng).unwrap();
        assert!((1..=2).contains(&v));
        assert!((p_hat - 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_mass_kills_sample() {
        let probs = vec![0.5f32, 0.0, 0.0, 0.5];
        let mut rng = StdRng::seed_from_u64(2);
        let mut p_hat = 1.0;
        assert!(sample_range(&probs, 1, 2, &mut p_hat, &mut rng).is_none());
        assert_eq!(p_hat, 0.0);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weighted = vec![0.0, 0.25, 0.75, 0.0];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let mut p = 1.0;
            counts[sample_weighted(&weighted, &mut p, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[0] + counts[3], 0);
        let frac = counts[2] as f64 / 4000.0;
        assert!((frac - 0.75).abs() < 0.03, "{frac}");
    }

    #[test]
    fn roundoff_fallback_lands_on_last_nonzero_index() {
        // regression: with trailing zero-probability entries, a draw that
        // round-off pushes past the final cumulative sum used to fall back
        // to the window's LAST index — a zero-mass value that conditions
        // every later slot on an impossible prefix. The fallback must be
        // the last nonzero-probability index instead.
        let window = [0.3f64, 0.0, 0.4, 0.0, 0.0];
        let mass: f64 = window.iter().sum();
        // u strictly above the accumulated mass forces the fallback path
        let u = mass * (1.0 + 1e-9);
        assert_eq!(pick_in_window(window.iter().copied(), u), Some(2));
        // all-zero window: nothing pickable
        assert_eq!(pick_in_window([0.0f64; 4].iter().copied(), 0.0), None);
    }

    #[test]
    fn boundary_draw_skips_leading_zero_mass_entries() {
        // regression: u == 0.0 satisfied `u <= acc` at the first entry even
        // when that entry had zero probability
        let window = [0.0f64, 0.0, 0.6, 0.4];
        assert_eq!(pick_in_window(window.iter().copied(), 0.0), Some(2));
    }

    #[test]
    fn sample_range_never_picks_a_zero_probability_index() {
        let probs = vec![0.0f32, 0.3, 0.0, 0.7, 0.0];
        for seed in 0..500 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p_hat = 1.0;
            let v = sample_range(&probs, 0, 4, &mut p_hat, &mut rng).unwrap();
            assert!(probs[v] > 0.0, "seed {seed} picked zero-mass index {v}");
        }
    }

    #[test]
    fn sample_weighted_never_picks_a_zero_weight_index() {
        let weighted = vec![0.0f64, 1e-12, 0.0, 1e-300, 0.0];
        for seed in 0..500 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p_hat = 1.0;
            let v = sample_weighted(&weighted, &mut p_hat, &mut rng).unwrap();
            assert!(weighted[v] > 0.0, "seed {seed} picked zero-weight index {v}");
        }
    }
}
