//! Approximate query processing on top of IAM — the paper's stated future
//! work ("extend IAM on other approximate query processing queries, such
//! as AVG and SUM queries", §8).
//!
//! The unbiased progressive sampler already draws tuples from the model
//! restricted to the query region, each carrying an importance weight
//! `p̂(s) = Π_i P̂(A_i ∈ R_i | s_<i)`. Aggregates follow by self-normalised
//! importance sampling: for a target column `c`,
//!
//! * `AVG(c | R) ≈ Σ_s p̂(s) · v_c(s) / Σ_s p̂(s)`
//! * `SUM(c | R) ≈ AVG · sel(R) · |T|`, `COUNT(R) ≈ sel(R) · |T|`
//!
//! where `v_c(s)` is the tuple's reconstructed value for column `c`: the
//! decoded ordinal for direct/factorised columns, and the *truncated
//! component mean* `E[X | component k, X ∈ R_c]` for GMM-reduced columns
//! (closed form via the standard truncated-normal identity).

use crate::estimator::IamEstimator;
use crate::schema::{ColumnHandler, SlotConstraint, SlotRole};
use iam_data::{Interval, RangeQuery};
use iam_gmm::math::{std_normal_cdf, std_normal_pdf};
use iam_nn::InferScratch;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Domain-separation constant mixed into the per-query aggregate sampling
/// seed so AQP draws never correlate with the selectivity sampler's (which
/// seeds from `sampling_salt ^ canonical_key` alone).
const AQP_SEED_SALT: u64 = 0xA9_9AD0_17E5;

/// Result of an aggregate estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateEstimate {
    /// Estimated `AVG(column)` over the query region (`NaN` when the
    /// region has no estimated mass).
    pub avg: f64,
    /// Estimated `SUM(column)` over the query region.
    pub sum: f64,
    /// Estimated `COUNT(*)` of the region.
    pub count: f64,
    /// Estimated selectivity of the region.
    pub selectivity: f64,
}

/// Mean of a normal `N(mean, std²)` truncated to `[lo, hi]`.
pub fn truncated_normal_mean(mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
    let a = if lo == f64::NEG_INFINITY { f64::NEG_INFINITY } else { (lo - mean) / std };
    let b = if hi == f64::INFINITY { f64::INFINITY } else { (hi - mean) / std };
    let phi = |z: f64| if z.is_infinite() { 0.0 } else { std_normal_pdf(z) };
    let cap_phi = |z: f64| {
        if z == f64::NEG_INFINITY {
            0.0
        } else if z == f64::INFINITY {
            1.0
        } else {
            std_normal_cdf(z)
        }
    };
    let denom = cap_phi(b) - cap_phi(a);
    if denom <= 1e-12 {
        // degenerate: fall back to the nearest boundary / mean
        return mean.clamp(lo.min(hi), hi.max(lo));
    }
    mean + std * (phi(a) - phi(b)) / denom
}

impl IamEstimator {
    /// Estimate `AVG`/`SUM`/`COUNT` of column `target_col` over the region
    /// described by `rq`, using `nrows` as the table cardinality.
    ///
    /// Stateful variant: each call advances the estimator's internal RNG,
    /// so repeated calls give independent Monte-Carlo draws. For the
    /// deterministic, shareable path (serving), see
    /// [`Self::estimate_aggregate_shared`].
    pub fn estimate_aggregate(
        &mut self,
        rq: &RangeQuery,
        target_col: usize,
        nrows: usize,
    ) -> AggregateEstimate {
        let seed = self.rng_mut().random::<u64>();
        self.aggregate_seeded(rq, target_col, nrows, seed)
    }

    /// Deterministic, shareable aggregate estimation: `&self`, so a single
    /// trained model behind an `Arc` can answer aggregates from many
    /// threads concurrently (the SQL front-end path).
    ///
    /// The sampling seed is derived from the model's
    /// [`Self::sampling_salt`], the query's
    /// [`RangeQuery::canonical_key`], and a fixed AQP domain-separation
    /// constant — making every aggregate a pure function of
    /// (model, query, target column): independent of call order and of
    /// concurrent load, mirroring the guarantee
    /// [`Self::estimate_batch_shared`] gives for selectivities.
    pub fn estimate_aggregate_shared(
        &self,
        rq: &RangeQuery,
        target_col: usize,
        nrows: usize,
    ) -> AggregateEstimate {
        let seed = self.sampling_salt()
            ^ rq.canonical_key()
            ^ AQP_SEED_SALT
            ^ (target_col as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.aggregate_seeded(rq, target_col, nrows, seed)
    }

    /// Shared implementation: estimate aggregates with a caller-fixed
    /// sampling seed.
    fn aggregate_seeded(
        &self,
        rq: &RangeQuery,
        target_col: usize,
        nrows: usize,
        seed: u64,
    ) -> AggregateEstimate {
        crate::probes::aqp().queries.inc();
        let plan = match self.schema.query_plan(rq) {
            Some(p) => p,
            None => {
                return AggregateEstimate { avg: f64::NAN, sum: 0.0, count: 0.0, selectivity: 0.0 }
            }
        };
        let samples = self.samples();
        let mut rng = StdRng::seed_from_u64(seed);
        let (tuples, weights) = self.sample_region(&plan, samples, &mut rng);
        let sel: f64 = weights.iter().sum::<f64>() / samples.max(1) as f64;
        let target_iv = rq.cols[target_col].unwrap_or(Interval::full());

        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (slots, &w) in tuples.iter().zip(&weights) {
            if w <= 0.0 {
                continue;
            }
            let v = self.reconstruct_value(slots, target_col, &target_iv);
            num += w * v;
            den += w;
        }
        let avg = if den > 0.0 { num / den } else { f64::NAN };
        let count = sel * nrows as f64;
        AggregateEstimate {
            avg,
            sum: if avg.is_nan() { 0.0 } else { avg * count },
            count,
            selectivity: sel.clamp(0.0, 1.0),
        }
    }

    /// Draw `n` tuples from the model restricted to `plan`, returning slot
    /// values and importance weights (wildcard slots are *sampled from the
    /// full conditional* here, since the aggregate's target column may be
    /// unconstrained). Immutable: forwards run through
    /// [`iam_nn::MadeNet::forward_column_into`] with local scratch, so the
    /// fused inference tables survive and concurrent callers never
    /// contend.
    fn sample_region(
        &self,
        plan: &[SlotConstraint],
        n: usize,
        rng: &mut StdRng,
    ) -> (Vec<Vec<usize>>, Vec<f64>) {
        let _span = iam_obs::span!("aqp.sample_region");
        // aggregate sampling must materialise every slot, so replace
        // wildcards with full ranges
        let full_plan: Vec<SlotConstraint> = plan
            .iter()
            .enumerate()
            .map(|(s, c)| match c {
                SlotConstraint::Wildcard => {
                    SlotConstraint::Range(0, self.schema.slot_domains[s] - 1)
                }
                other => other.clone(),
            })
            .collect();
        let nslots = self.schema.nslots();
        let net = self.net_ref();
        let mut scratch = InferScratch::new();
        let mut inputs: Vec<usize> = (0..n)
            .flat_map(|_| (0..nslots).map(|s| net.mask_token(s)).collect::<Vec<_>>())
            .collect();
        let mut weights = vec![1.0f64; n];
        let mut logits = Vec::new();
        let mut probs = Vec::new();
        let mut weighted = Vec::new();

        for slot in 0..nslots {
            let width = net.domain_size(slot);
            // gather inputs (all rows still alive)
            let batch_inputs = inputs.clone();
            net.forward_column_into(&mut scratch, &batch_inputs, n, slot, &mut logits);
            for row in 0..n {
                if weights[row] <= 0.0 {
                    continue;
                }
                net.row_softmax(&logits, row, width, &mut probs);
                let pick = match &full_plan[slot] {
                    SlotConstraint::Range(a, b) => {
                        weighted.clear();
                        weighted.extend(probs[*a..=*b].iter().map(|&p| p as f64));
                        draw(&weighted, &mut weights[row], rng).map(|j| a + j)
                    }
                    SlotConstraint::Weights(w) => {
                        weighted.clear();
                        weighted.extend(probs.iter().zip(w).map(|(&p, &m)| p as f64 * m));
                        draw(&weighted, &mut weights[row], rng)
                    }
                    SlotConstraint::FactorLo { lo_idx, hi_idx, base } => {
                        let hi_s = inputs[row * nslots + slot - 1];
                        let a = if hi_s == lo_idx / base { lo_idx % base } else { 0 };
                        let b = if hi_s == hi_idx / base { hi_idx % base } else { base - 1 };
                        let b = b.min(width - 1);
                        if a > b {
                            weights[row] = 0.0;
                            None
                        } else {
                            weighted.clear();
                            weighted.extend(probs[a..=b].iter().map(|&p| p as f64));
                            draw(&weighted, &mut weights[row], rng).map(|j| a + j)
                        }
                    }
                    SlotConstraint::Wildcard => unreachable!("wildcards replaced above"),
                };
                if let Some(v) = pick {
                    inputs[row * nslots + slot] = v;
                }
            }
        }
        let tuples = (0..n).map(|row| inputs[row * nslots..(row + 1) * nslots].to_vec()).collect();
        (tuples, weights)
    }

    /// Reconstruct a representative raw value of `col` from sampled slots.
    fn reconstruct_value(&self, slots: &[usize], col: usize, iv: &Interval) -> f64 {
        // locate the slot(s) of this column
        let first_slot =
            self.schema.slots.iter().position(|r| r.col() == col).expect("column has a slot");
        match &self.schema.handlers[col] {
            ColumnHandler::Direct(enc) => enc.decode(slots[first_slot]),
            ColumnHandler::Factorized { enc, base } => {
                debug_assert!(matches!(self.schema.slots[first_slot], SlotRole::FactorHi { .. }));
                let idx = slots[first_slot] * base + slots[first_slot + 1];
                enc.decode(idx.min(enc.domain_size() - 1))
            }
            ColumnHandler::Reduced(r) => {
                let k = slots[first_slot];
                match r.as_gmm() {
                    Some(g) => {
                        truncated_normal_mean(g.gmm().means[k], g.gmm().stds[k], iv.lo, iv.hi)
                    }
                    // histogram-family reducers: midpoint of bucket ∩ range
                    None => {
                        let mut mass = Vec::new();
                        r.range_mass(&Interval::full(), &mut mass);
                        // without richer reducer introspection use the
                        // range midpoint clamped into the constraint
                        let lo = if iv.lo.is_finite() { iv.lo } else { 0.0 };
                        let hi = if iv.hi.is_finite() { iv.hi } else { lo };
                        (lo + hi) / 2.0
                    }
                }
            }
        }
    }
}

/// Draw an index from an unnormalised weight slice, folding the mass into
/// the running importance weight. Zero-weight entries are unpickable
/// (matching `infer::pick_in_window`): prefix-table mass vectors carry
/// exact `0.0` entries clamped from tiny-negative CDF differences, and a
/// boundary draw (`u == 0.0`) or a round-off fallback must never land on
/// one — that would condition every later slot on an impossible prefix.
fn draw(weighted: &[f64], weight: &mut f64, rng: &mut StdRng) -> Option<usize> {
    let mass: f64 = weighted.iter().sum();
    if mass <= 0.0 {
        *weight = 0.0;
        return None;
    }
    *weight *= mass.min(1.0);
    let u = rng.random::<f64>() * mass;
    let mut acc = 0.0;
    let mut last_nonzero = None;
    for (j, &p) in weighted.iter().enumerate() {
        if p > 0.0 {
            acc += p;
            last_nonzero = Some(j);
            if u <= acc {
                return Some(j);
            }
        }
    }
    last_nonzero
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IamConfig;
    use iam_data::column::{CatColumn, Column, ContColumn};
    use iam_data::query::{Op, Predicate, Query};
    use iam_data::Table;
    use rand::SeedableRng;

    #[test]
    fn draw_never_picks_a_zero_weight_index() {
        // zero entries (including exact 0.0 from clamped prefix-table
        // differences) must be unpickable for every draw, and the
        // round-off fallback must land on the last NONZERO entry rather
        // than the window's last index
        let weighted = vec![0.0f64, 0.3, 0.0, 0.7, 0.0];
        for seed in 0..300 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut w = 1.0;
            let v = draw(&weighted, &mut w, &mut rng).unwrap();
            assert!(weighted[v] > 0.0, "seed {seed} picked zero-weight index {v}");
        }
        let mut w = 1.0;
        assert!(draw(&[0.0, 0.0], &mut w, &mut StdRng::seed_from_u64(1)).is_none());
        assert_eq!(w, 0.0);
    }

    fn table(n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Vec::new();
        let mut x = Vec::new();
        for _ in 0..n {
            let g = rng.random_range(0..3u32);
            c.push(g);
            x.push(g as f64 * 10.0 + iam_data::synth::normal(&mut rng));
        }
        Table::new(
            "t",
            vec![
                Column::Categorical(CatColumn::from_codes_dense("g", c, 3)),
                Column::Continuous(ContColumn::new("x", x)),
            ],
        )
        .unwrap()
    }

    fn cfg() -> IamConfig {
        IamConfig {
            components: 8,
            hidden: vec![48, 48],
            embed_dim: 8,
            epochs: 6,
            lr: 5e-3,
            samples: 600,
            reduce_threshold: 100,
            seed: 3,
            ..IamConfig::default()
        }
    }

    #[test]
    fn truncated_mean_identities() {
        // untruncated: mean itself
        assert!(
            (truncated_normal_mean(2.0, 1.0, f64::NEG_INFINITY, f64::INFINITY) - 2.0).abs() < 1e-9
        );
        // symmetric truncation: mean preserved
        assert!((truncated_normal_mean(0.0, 1.0, -2.0, 2.0)).abs() < 1e-9);
        // right tail only: mean above the cut
        let m = truncated_normal_mean(0.0, 1.0, 1.0, f64::INFINITY);
        assert!(m > 1.0 && m < 2.0, "{m}");
    }

    #[test]
    fn avg_tracks_truth_on_conditioned_region() {
        let t = table(6000, 1);
        let mut est = IamEstimator::fit(&t, cfg());
        // AVG(x) over group 2 — truth ≈ 20
        let q = Query::new(vec![Predicate { col: 0, op: Op::Eq, value: 2.0 }]);
        let (rq, _) = q.normalize(2).unwrap();
        let agg = est.estimate_aggregate(&rq, 1, t.nrows());
        // ground truth
        let Column::Continuous(xc) = &t.columns[1] else { unreachable!() };
        let Column::Categorical(gc) = &t.columns[0] else { unreachable!() };
        let (mut s, mut k) = (0.0, 0usize);
        for r in 0..t.nrows() {
            if gc.codes[r] == 2 {
                s += xc.values[r];
                k += 1;
            }
        }
        let truth_avg = s / k as f64;
        let truth_count = k as f64;
        assert!((agg.avg - truth_avg).abs() < 1.5, "AVG: est {} truth {truth_avg}", agg.avg);
        assert!(
            (agg.count - truth_count).abs() < 0.2 * truth_count,
            "COUNT: est {} truth {truth_count}",
            agg.count
        );
        assert!((agg.sum - truth_avg * truth_count).abs() < 0.3 * (truth_avg * truth_count).abs());
    }

    #[test]
    fn avg_respects_range_truncation() {
        let t = table(6000, 2);
        let mut est = IamEstimator::fit(&t, cfg());
        // AVG(x) over x >= 15: only groups 2-ish qualify; truth ≈ 20
        let q = Query::new(vec![Predicate { col: 1, op: Op::Ge, value: 15.0 }]);
        let (rq, _) = q.normalize(2).unwrap();
        let agg = est.estimate_aggregate(&rq, 1, t.nrows());
        let Column::Continuous(xc) = &t.columns[1] else { unreachable!() };
        let sel: Vec<f64> = xc.values.iter().copied().filter(|&v| v >= 15.0).collect();
        let truth = sel.iter().sum::<f64>() / sel.len() as f64;
        assert!((agg.avg - truth).abs() < 1.5, "est {} truth {truth}", agg.avg);
        assert!(agg.avg >= 15.0, "AVG over x≥15 cannot be below 15: {}", agg.avg);
    }

    #[test]
    fn shared_aggregates_are_deterministic() {
        let t = table(2000, 4);
        let est = IamEstimator::fit(&t, cfg());
        let q = Query::new(vec![Predicate { col: 0, op: Op::Eq, value: 1.0 }]);
        let (rq, _) = q.normalize(2).unwrap();
        let a = est.estimate_aggregate_shared(&rq, 1, t.nrows());
        let b = est.estimate_aggregate_shared(&rq, 1, t.nrows());
        assert_eq!(a.avg.to_bits(), b.avg.to_bits());
        assert_eq!(a.sum.to_bits(), b.sum.to_bits());
        assert_eq!(a.count.to_bits(), b.count.to_bits());
        assert_eq!(a.selectivity.to_bits(), b.selectivity.to_bits());
        // distinct target columns decorrelate their seeds but still share
        // the region, so selectivity stays a pure function of the query
        let c = est.estimate_aggregate_shared(&rq, 0, t.nrows());
        assert!(c.count.is_finite());
    }

    #[test]
    fn empty_region_reports_zero_mass() {
        let t = table(2000, 3);
        let mut est = IamEstimator::fit(&t, cfg());
        let mut rq = iam_data::RangeQuery::unconstrained(2);
        rq.cols[1] = Some(Interval::closed(1e6, 2e6));
        let agg = est.estimate_aggregate(&rq, 1, t.nrows());
        assert!(agg.count < 2.0, "count {}", agg.count);
        assert!(agg.selectivity < 1e-3);
    }
}
