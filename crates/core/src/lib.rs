//! IAM — the paper's estimator: GMM domain reduction + ResMADE + unbiased
//! progressive sampling.
//!
//! The crate exposes:
//!
//! * [`reduce`] — the [`reduce::DomainReducer`] abstraction and its four
//!   implementations: GMM (the paper's choice, §4.2), equi-depth histogram,
//!   spline histogram and uniform mixture model (the §6.6 alternatives);
//! * [`schema`] — per-column handling (direct / reduced / factorised),
//!   slot layout for the AR model, row encoding and query construction
//!   (§5.1);
//! * [`train`] — the joint end-to-end training loop (Eq. 6) with wildcard
//!   skipping;
//! * [`infer`] — the unbiased progressive-sampling estimator (§5.2,
//!   Algorithm 1) with batched inference;
//! * [`estimator`] — [`estimator::IamEstimator`] (implements
//!   `SelectivityEstimator`) plus [`estimator::neurocard_lite`], the
//!   Neurocard-style AR baseline (column factorisation, no reduction);
//! * [`aqp`] — AVG/SUM/COUNT aggregate estimation over predicate regions
//!   (the paper's stated future-work extension);
//! * [`invariant`] — debug-build runtime checks for the numeric
//!   invariants the sampler's unbiasedness depends on (softmax unit mass,
//!   non-negative range masses, monotone CDFs, selectivities in `[0, 1]`);
//!   compiled to nothing in release builds unless the `invariants`
//!   feature is on.
//!
//! Training, planning and inference are instrumented with `iam-obs` probes
//! (`iam_train_*` / `iam_plan_*` / `iam_infer_*` in the global registry,
//! `train.epoch` / `infer.progressive_sample` spans, JSONL trace events) —
//! see the README's "Observability" section.

#![deny(missing_docs)]

pub mod aqp;
pub mod config;
pub mod estimator;
pub mod infer;
pub mod invariant;
pub mod persist;
mod probes;
pub mod reduce;
pub mod schema;
pub mod train;

pub use config::{IamConfig, RangeMassMode, ReducerKind, TablePrecision};
pub use estimator::{neurocard_lite, IamEstimator};
pub use schema::{ColumnHandler, IamSchema, SlotConstraint};
