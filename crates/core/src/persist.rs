//! Model persistence: save a trained [`IamEstimator`] to a compact binary
//! snapshot and load it back for inference.
//!
//! The format is self-contained and dependency-free (little-endian, magic
//! `IAM1`): the configuration, the per-column handlers (ordinal
//! dictionaries, reducer parameters, factorisation bases) and the AR
//! network's parameters as one flat tensor in `Parameters::visit_params`
//! order — network reconstruction is deterministic given the config, so
//! masks and shapes rebuild identically and only the weights need storing.
//!
//! Loaded estimators are fully functional for estimation and can even
//! resume training (GMM trainers are re-initialised from the loaded
//! mixtures; the Adam moments start fresh).

use crate::config::{IamConfig, RangeMassMode, ReducerKind};
use crate::estimator::IamEstimator;
use crate::reduce::{DomainReducer, GmmReducer, HistReducer, SplineReducer, UmmReducer};
use crate::schema::{ColumnHandler, IamSchema};
use iam_data::{ColumnEncoding, SelectivityEstimator};
use iam_gmm::Gmm1d;
use iam_nn::{MadeNet, Parameters};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"IAM1";
/// Magic prefix of the framed snapshot envelope (see
/// [`IamEstimator::save_framed`]).
pub const FRAME_MAGIC: &[u8; 4] = b"IAMF";
/// Upper bound on a framed snapshot's payload length; longer length
/// prefixes are rejected as corrupt before any allocation happens.
pub const MAX_SNAPSHOT_BYTES: u64 = 1 << 32;
/// Upper bound on the AR network parameter count a snapshot may declare
/// (2²⁷ f32s ≈ 512 MiB). The count is computed analytically from the
/// snapshot's config *before* any network allocation, so a hostile
/// few-hundred-byte header cannot request a terabyte-scale build.
pub const MAX_SNAPSHOT_PARAMS: u64 = 1 << 27;
/// Element cap for upfront `Vec` capacity while deserialising: lengths
/// are attacker-controlled until the reads behind them succeed, so
/// buffers start no larger than this and grow only as bytes actually
/// arrive (allocation tracks delivered input, not declared input).
const MAX_PREALLOC_ELEMS: usize = 1 << 16;
/// Caps on snapshot-declared shapes that feed allocations or loop
/// bounds downstream of the parse. Generous for every real model, tight
/// enough that a corrupt-but-checksummed snapshot fails cleanly.
const MAX_HIDDEN_LAYERS: usize = 64;
const MAX_COMPONENTS: usize = 1 << 16;
const MAX_HANDLERS: usize = 1 << 16;
const MAX_SAMPLES: usize = 1 << 20;
const MAX_MC_SAMPLES: usize = 1 << 20;
const MAX_FACTOR_BASE: usize = 1 << 20;

/// Errors raised by save/load.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not an IAM snapshot or is from an incompatible version.
    BadFormat(&'static str),
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadFormat(m) => write!(f, "bad snapshot: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

// --- tiny codec ---------------------------------------------------------

fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_vec_f64<W: Write>(w: &mut W, v: &[f64]) -> io::Result<()> {
    w_u64(w, v.len() as u64)?;
    for &x in v {
        w_f64(w, x)?;
    }
    Ok(())
}
fn w_vec_f32<W: Write>(w: &mut W, v: &[f32]) -> io::Result<()> {
    w_u64(w, v.len() as u64)?;
    for &x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}
fn w_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    w_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn r_u64<R: Read>(r: &mut R) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_f64<R: Read>(r: &mut R) -> Result<f64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}
fn r_len<R: Read>(r: &mut R) -> Result<usize, PersistError> {
    let n = r_u64(r)?;
    if n > (1 << 34) {
        return Err(PersistError::BadFormat("implausible length"));
    }
    usize::try_from(n).map_err(|_| PersistError::BadFormat("length exceeds platform usize"))
}
fn r_vec_f64<R: Read>(r: &mut R) -> Result<Vec<f64>, PersistError> {
    let n = r_len(r)?;
    // capacity capped: the declared length is untrusted until the reads
    // behind it succeed, so memory grows with delivered bytes only
    let mut out = Vec::with_capacity(n.min(MAX_PREALLOC_ELEMS));
    for _ in 0..n {
        out.push(r_f64(r)?);
    }
    Ok(out)
}
fn r_vec_f32<R: Read>(r: &mut R) -> Result<Vec<f32>, PersistError> {
    let n = r_len(r)?;
    let mut out = Vec::with_capacity(n.min(MAX_PREALLOC_ELEMS));
    for _ in 0..n {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}
/// Read exactly `n` bytes in bounded chunks — allocation tracks the
/// bytes actually delivered, never the (untrusted) declared length.
fn r_bytes_chunked<R: Read>(r: &mut R, n: usize) -> Result<Vec<u8>, PersistError> {
    let mut out = Vec::with_capacity(n.min(1 << 20));
    let mut chunk = [0u8; 16 * 1024];
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        out.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(out)
}
fn r_str<R: Read>(r: &mut R) -> Result<String, PersistError> {
    let n = r_len(r)?;
    let b = r_bytes_chunked(r, n)?;
    String::from_utf8(b).map_err(|_| PersistError::BadFormat("non-utf8 string"))
}

// --- reducer round-trip --------------------------------------------------

fn write_reducer<W: Write>(w: &mut W, r: &dyn DomainReducer) -> io::Result<()> {
    match r.name() {
        "GMM" => {
            let g = r.as_gmm().expect("GMM reducer").gmm();
            w.write_all(&[0u8])?;
            w_vec_f64(w, &g.weights)?;
            w_vec_f64(w, &g.means)?;
            w_vec_f64(w, &g.stds)
        }
        "Hist" => {
            w.write_all(&[1u8])?;
            w_vec_f64(w, r.export_params().first().expect("hist bounds"))
        }
        "Spline" => {
            let p = r.export_params();
            w.write_all(&[2u8])?;
            w_vec_f64(w, &p[0])?;
            w_vec_f64(w, &p[1])
        }
        "UMM" => {
            let p = r.export_params();
            w.write_all(&[3u8])?;
            w_vec_f64(w, &p[0])?;
            w_vec_f64(w, &p[1])?;
            w_vec_f64(w, &p[2])
        }
        other => panic!("unknown reducer {other}"),
    }
}

/// Every reducer constructor below has preconditions that `fit` upholds
/// but wire bytes may not (`SplineReducer::from_knots` asserts, a
/// zero-width GMM std turns masses into NaN, …). A snapshot that passed
/// its checksum can still encode any of those — bit-rot on disk, or a
/// hostile peer on the `iam-dist` snapshot-shipping channel — so the
/// geometry is validated here and rejected as [`PersistError::BadFormat`]
/// *before* any constructor (or a debug-build invariant) can panic.
fn read_reducer<R: Read>(
    r: &mut R,
    mode: RangeMassMode,
    seed: u64,
) -> Result<Box<dyn DomainReducer>, PersistError> {
    let bad = PersistError::BadFormat;
    let all_finite = |v: &[f64]| v.iter().all(|x| x.is_finite());
    let non_decreasing = |v: &[f64]| v.windows(2).all(|w| w[0] <= w[1]);
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => {
            let weights = r_vec_f64(r)?;
            let means = r_vec_f64(r)?;
            let stds = r_vec_f64(r)?;
            if weights.is_empty() || means.len() != weights.len() || stds.len() != weights.len() {
                return Err(bad("GMM component arity mismatch"));
            }
            if !all_finite(&means)
                || weights.iter().any(|&w| !w.is_finite() || w < 0.0)
                || stds.iter().any(|&s| !s.is_finite() || s <= 0.0)
            {
                return Err(bad("degenerate GMM parameters"));
            }
            Box::new(GmmReducer::new(Gmm1d::new(weights, means, stds), mode, seed))
        }
        1 => {
            let bounds = r_vec_f64(r)?;
            if bounds.len() < 2 || !all_finite(&bounds) || !non_decreasing(&bounds) {
                return Err(bad("degenerate histogram bounds"));
            }
            Box::new(HistReducer::from_bounds(bounds))
        }
        2 => {
            let x = r_vec_f64(r)?;
            let f = r_vec_f64(r)?;
            if x.len() < 2 || f.len() != x.len() || !all_finite(&x) || !non_decreasing(&x) {
                return Err(bad("degenerate spline knots"));
            }
            if !non_decreasing(&f) || f.iter().any(|&v| !(0.0..=1.0).contains(&v)) {
                return Err(bad("spline knot CDF not monotone in [0,1]"));
            }
            Box::new(SplineReducer::from_knots(x, f))
        }
        3 => {
            let lo = r_vec_f64(r)?;
            let hi = r_vec_f64(r)?;
            let weights = r_vec_f64(r)?;
            if lo.is_empty() || hi.len() != lo.len() || weights.len() != lo.len() {
                return Err(bad("UMM component arity mismatch"));
            }
            if !all_finite(&lo) || !all_finite(&hi) || !all_finite(&weights) {
                return Err(bad("degenerate UMM parameters"));
            }
            Box::new(UmmReducer::from_parts(lo, hi, weights))
        }
        _ => return Err(PersistError::BadFormat("unknown reducer tag")),
    })
}

// --- estimator round-trip --------------------------------------------------

impl IamEstimator {
    /// Serialise a trained estimator.
    pub fn save<W: Write>(&mut self, w: &mut W) -> Result<(), PersistError> {
        w.write_all(MAGIC)?;
        // config (everything needed to rebuild the net + inference behaviour)
        let c = &self.cfg;
        w_u64(w, c.components as u64)?;
        w_u64(w, u64::from(c.auto_components))?;
        w_u64(w, c.reduce_threshold as u64)?;
        w.write_all(&[match c.reducer {
            ReducerKind::Gmm => 0u8,
            ReducerKind::Hist => 1,
            ReducerKind::Spline => 2,
            ReducerKind::Umm => 3,
        }])?;
        w_u64(w, u64::from(c.reduce_continuous))?;
        w_u64(w, c.factorize_threshold as u64)?;
        w_u64(w, c.hidden.len() as u64)?;
        for &h in &c.hidden {
            w_u64(w, h as u64)?;
        }
        w_u64(w, c.embed_dim as u64)?;
        w_f64(w, c.lr as f64)?;
        w_u64(w, u64::from(c.wildcard_skipping))?;
        w_u64(w, u64::from(c.hard_range_weights))?;
        w_u64(w, c.samples as u64)?;
        match c.range_mass {
            RangeMassMode::Exact => w_u64(w, 0)?,
            RangeMassMode::MonteCarlo { samples_per_component } => {
                w_u64(w, samples_per_component as u64)?
            }
        }
        w_u64(w, c.seed)?;
        w_str(w, self.name())?;
        w_u64(w, self.nrows() as u64)?;

        // schema handlers
        let schema = &self.schema;
        w_u64(w, schema.handlers.len() as u64)?;
        for h in &schema.handlers {
            match h {
                ColumnHandler::Direct(enc) => {
                    w.write_all(&[0u8])?;
                    w_vec_f64(w, &enc.distinct)?;
                }
                ColumnHandler::Reduced(r) => {
                    w.write_all(&[1u8])?;
                    write_reducer(w, r.as_ref())?;
                }
                ColumnHandler::Factorized { enc, base } => {
                    w.write_all(&[2u8])?;
                    w_u64(w, *base as u64)?;
                    w_vec_f64(w, &enc.distinct)?;
                }
            }
        }

        // network parameters, flat
        let precision = self.cfg.table_precision;
        let mut flat: Vec<f32> = Vec::new();
        self.net_mut().visit_params(&mut |p, _| flat.extend_from_slice(p));
        w_vec_f32(w, &flat)?;
        // fused-table precision: an OPTIONAL trailer byte after the flat
        // params — pre-PR readers consumed exactly the fields above, and
        // pre-PR payloads simply end here, which the loader treats as F32
        w.write_all(&[precision.tag()])?;
        // net_mut invalidated the fused tables (it must assume mutation);
        // saving only read them, so rebuild right away
        self.prepare_inference();
        Ok(())
    }

    /// Deserialise an estimator saved by [`Self::save`].
    pub fn load<R: Read>(r: &mut R) -> Result<IamEstimator, PersistError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::BadFormat("missing IAM1 magic"));
        }
        let bad = PersistError::BadFormat;
        let components = r_len(r)?;
        if components == 0 || components > MAX_COMPONENTS {
            return Err(bad("component count out of range"));
        }
        let auto_components = r_u64(r)? != 0;
        let reduce_threshold = r_len(r)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let reducer = match tag[0] {
            0 => ReducerKind::Gmm,
            1 => ReducerKind::Hist,
            2 => ReducerKind::Spline,
            3 => ReducerKind::Umm,
            _ => return Err(PersistError::BadFormat("bad reducer kind")),
        };
        let reduce_continuous = r_u64(r)? != 0;
        let factorize_threshold = r_len(r)?;
        let nh = r_len(r)?;
        if nh == 0 || nh > MAX_HIDDEN_LAYERS {
            return Err(bad("hidden layer count out of range"));
        }
        let hidden: Vec<usize> = (0..nh).map(|_| r_len(r)).collect::<Result<_, _>>()?;
        if hidden.contains(&0) {
            return Err(bad("zero-width hidden layer"));
        }
        let embed_dim = r_len(r)?;
        if embed_dim == 0 {
            return Err(bad("zero embedding dimension"));
        }
        // audit-allow(wire-int-cast): lr is stored widened as f64; narrowing
        // back to the f32 it started as is lossless for every saved value
        let lr = r_f64(r)? as f32;
        let wildcard_skipping = r_u64(r)? != 0;
        let hard_range_weights = r_u64(r)? != 0;
        let samples = r_len(r)?;
        if samples == 0 || samples > MAX_SAMPLES {
            return Err(bad("sample budget out of range"));
        }
        let mc = r_len(r)?;
        if mc > MAX_MC_SAMPLES {
            return Err(bad("monte-carlo sample count out of range"));
        }
        let range_mass = if mc == 0 {
            RangeMassMode::Exact
        } else {
            RangeMassMode::MonteCarlo { samples_per_component: mc }
        };
        let seed = r_u64(r)?;
        let name = r_str(r)?;
        let nrows = r_len(r)?;

        let cfg = IamConfig {
            components,
            auto_components,
            reduce_threshold,
            reducer,
            reduce_continuous,
            factorize_threshold,
            hidden,
            embed_dim,
            lr,
            wildcard_skipping,
            hard_range_weights,
            samples,
            range_mass,
            seed,
            ..IamConfig::default()
        };

        // handlers
        let nc = r_len(r)?;
        if nc == 0 || nc > MAX_HANDLERS {
            return Err(bad("handler count out of range"));
        }
        let mut handlers = Vec::with_capacity(nc.min(MAX_PREALLOC_ELEMS));
        for _ in 0..nc {
            let mut t = [0u8; 1];
            r.read_exact(&mut t)?;
            handlers.push(match t[0] {
                0 => {
                    let distinct = r_vec_f64(r)?;
                    if distinct.is_empty() {
                        return Err(bad("empty direct encoding"));
                    }
                    ColumnHandler::Direct(ColumnEncoding { distinct })
                }
                1 => ColumnHandler::Reduced(read_reducer(r, range_mass, seed ^ 0x9e3779b9)?),
                2 => {
                    let base = r_len(r)?;
                    // base < 2 makes factorisation meaningless and base == 0
                    // divides by zero in the slot-domain computation
                    if !(2..=MAX_FACTOR_BASE).contains(&base) {
                        return Err(bad("factorisation base out of range"));
                    }
                    let distinct = r_vec_f64(r)?;
                    if distinct.is_empty() {
                        return Err(bad("empty factorized encoding"));
                    }
                    ColumnHandler::Factorized { base, enc: ColumnEncoding { distinct } }
                }
                _ => return Err(PersistError::BadFormat("bad handler tag")),
            });
        }
        let mut schema = IamSchema::from_handlers(handlers, wildcard_skipping);
        schema.hard_range_weights = hard_range_weights;

        // budget the network analytically before building it: the parameter
        // count implied by (slot domains × hidden × embed) must be sane, so
        // a corrupt-but-checksummed header can't request a terabyte build
        match MadeNet::param_count_for(&schema.slot_domains, &cfg.hidden, cfg.embed_dim) {
            Some(n) if n <= MAX_SNAPSHOT_PARAMS => {}
            _ => return Err(bad("declared network exceeds parameter budget")),
        }

        let flat = r_vec_f32(r)?;
        if flat.iter().any(|x| !x.is_finite()) {
            return Err(bad("non-finite network parameter"));
        }
        // optional fused-table precision trailer: snapshots written before
        // the precision knob end right after the flat params (EOF → F32);
        // unknown tags are rejected, a short garbage byte is not silently
        // reinterpreted
        let mut cfg = cfg;
        let mut trailer = [0u8; 1];
        match r.read(&mut trailer)? {
            0 => cfg.table_precision = crate::config::TablePrecision::F32,
            _ => {
                cfg.table_precision = crate::config::TablePrecision::from_tag(trailer[0])
                    .ok_or(bad("bad table-precision tag"))?;
            }
        }
        let mut est = IamEstimator::from_parts(cfg, schema, nrows, &name)?;
        let mut cursor = 0usize;
        let mut overflow = false;
        est.net_mut().visit_params(&mut |p, _| {
            if cursor + p.len() <= flat.len() {
                p.copy_from_slice(&flat[cursor..cursor + p.len()]);
            } else {
                overflow = true;
            }
            cursor += p.len();
        });
        if overflow || cursor != flat.len() {
            return Err(PersistError::BadFormat("parameter tensor size mismatch"));
        }
        // rebuild the fused inference tables from the loaded parameters
        // (net_mut above invalidated them; they are never persisted)
        est.prepare_inference();
        Ok(est)
    }

    /// Serialise into a self-delimiting **framed** envelope:
    /// `IAMF` magic, little-endian payload length, the [`Self::save`]
    /// payload, and an FNV-1a-64 checksum of the payload. The frame makes a
    /// snapshot safe to ship over a byte stream — a receiver can tell a
    /// complete, uncorrupted snapshot from a torn or bit-flipped one
    /// *before* attempting to install it (see `iam-dist` snapshot
    /// shipping).
    pub fn save_framed<W: Write>(&mut self, w: &mut W) -> Result<(), PersistError> {
        let mut payload = Vec::new();
        self.save(&mut payload)?;
        w.write_all(FRAME_MAGIC)?;
        w_u64(w, payload.len() as u64)?;
        w.write_all(&payload)?;
        w_u64(w, fnv1a(&payload))?;
        Ok(())
    }

    /// Deserialise a [`Self::save_framed`] envelope, verifying the length
    /// bound and checksum before parsing the payload. Truncated input,
    /// implausible length prefixes, and checksum mismatches all fail
    /// cleanly with the active bytes untouched.
    pub fn load_framed<R: Read>(r: &mut R) -> Result<IamEstimator, PersistError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != FRAME_MAGIC {
            return Err(PersistError::BadFormat("missing IAMF frame magic"));
        }
        let len = r_u64(r)?;
        if len > MAX_SNAPSHOT_BYTES {
            return Err(PersistError::BadFormat("implausible snapshot length"));
        }
        let len = usize::try_from(len)
            .map_err(|_| PersistError::BadFormat("length exceeds platform usize"))?;
        // chunked read: the length prefix is unauthenticated (the checksum
        // covers only the payload), so allocation must track delivered
        // bytes — a 9-byte hostile header cannot reserve gigabytes
        let payload = r_bytes_chunked(r, len)?;
        let want = r_u64(r)?;
        if fnv1a(&payload) != want {
            return Err(PersistError::BadFormat("snapshot checksum mismatch"));
        }
        Self::load(&mut payload.as_slice())
    }
}

/// FNV-1a-64 over a byte slice (the framed-snapshot checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::synth::Dataset;
    use iam_data::{SelectivityEstimator, WorkloadConfig, WorkloadGenerator};

    fn cfg() -> IamConfig {
        IamConfig {
            components: 8,
            hidden: vec![48, 48],
            embed_dim: 8,
            epochs: 3,
            samples: 300,
            seed: 17,
            ..IamConfig::default()
        }
    }

    #[test]
    fn table_precision_round_trips_and_old_payloads_default_to_f32() {
        use crate::config::TablePrecision;
        let table = Dataset::Twi.generate(2500, 3);
        let mut est = IamEstimator::fit(&table, cfg());
        est.set_table_precision(TablePrecision::Int8);
        let mut buf = Vec::new();
        est.save(&mut buf).unwrap();
        let loaded = IamEstimator::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.cfg.table_precision, TablePrecision::Int8);
        assert_eq!(loaded.table_precision(), Some(TablePrecision::Int8));

        // a payload without the trailer byte (the pre-precision format)
        // must load as the F32 golden path
        let legacy = &buf[..buf.len() - 1];
        let loaded = IamEstimator::load(&mut &*legacy).unwrap();
        assert_eq!(loaded.cfg.table_precision, TablePrecision::F32);

        // unknown tags are rejected, not misread
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() = 7;
        assert!(matches!(
            IamEstimator::load(&mut bad.as_slice()),
            Err(PersistError::BadFormat("bad table-precision tag"))
        ));
    }

    #[test]
    fn save_load_round_trip_preserves_estimates() {
        let table = Dataset::Twi.generate(4000, 1);
        let mut est = IamEstimator::fit(&table, cfg());
        let mut buf = Vec::new();
        est.save(&mut buf).unwrap();

        let mut loaded = IamEstimator::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.name(), est.name());
        assert_eq!(loaded.model_size_bytes(), est.model_size_bytes());

        // identical seeds → identical sampling → identical estimates
        let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 5);
        est.reseed(99);
        loaded.reseed(99);
        for q in gen.gen_queries(10) {
            let (rq, _) = q.normalize(2).unwrap();
            let a = est.estimate(&rq);
            let b = loaded.estimate(&rq);
            assert!((a - b).abs() < 1e-12, "estimates diverge: {a} vs {b}");
        }
    }

    #[test]
    fn loaded_model_can_resume_training() {
        let table = Dataset::Twi.generate(3000, 2);
        let mut est = IamEstimator::fit(&table, cfg());
        let mut buf = Vec::new();
        est.save(&mut buf).unwrap();
        let mut loaded = IamEstimator::load(&mut buf.as_slice()).unwrap();
        loaded.train_epochs(&table, 1);
        assert_eq!(loaded.stats.len(), 1);
        assert!(loaded.stats[0].ar_loss.is_finite());
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(IamEstimator::load(&mut &b"NOPE"[..]).is_err());
        assert!(IamEstimator::load(&mut &b"IAM1\x01\x02"[..]).is_err());
    }

    #[test]
    fn framed_round_trip_and_corruption_detection() {
        let table = Dataset::Twi.generate(1200, 4);
        let small = IamConfig { epochs: 1, samples: 80, ..cfg() };
        let mut est = IamEstimator::fit(&table, small);
        let mut framed = Vec::new();
        est.save_framed(&mut framed).unwrap();

        // round trip is bit-identical on the shared inference path
        let loaded = IamEstimator::load_framed(&mut framed.as_slice()).unwrap();
        let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 6);
        let queries: Vec<_> =
            gen.gen_queries(5).iter().map(|q| q.normalize(2).unwrap().0).collect();
        let a = est.estimate_batch_shared(&queries, 1);
        let b = loaded.estimate_batch_shared(&queries, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // every truncation fails cleanly (torn ship)
        for cut in [0, 3, 4, 11, 12, framed.len() / 2, framed.len() - 1] {
            assert!(
                IamEstimator::load_framed(&mut &framed[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // a single flipped payload bit fails the checksum
        let mut flipped = framed.clone();
        let mid = 12 + (framed.len() - 20) / 2;
        flipped[mid] ^= 0x40;
        match IamEstimator::load_framed(&mut flipped.as_slice()) {
            Err(e) => assert!(e.to_string().contains("checksum"), "got {e}"),
            Ok(_) => panic!("flipped payload bit must fail the checksum"),
        }
        // an implausible length prefix is rejected before allocating
        let mut huge = framed.clone();
        huge[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(IamEstimator::load_framed(&mut huge.as_slice()).is_err());
        // wrong magic (a raw IAM1 snapshot is not a frame)
        let mut raw = Vec::new();
        est.save(&mut raw).unwrap();
        assert!(IamEstimator::load_framed(&mut raw.as_slice()).is_err());
    }

    #[test]
    fn alternative_reducers_round_trip() {
        for kind in [ReducerKind::Hist, ReducerKind::Spline, ReducerKind::Umm] {
            let table = Dataset::Twi.generate(2500, 3);
            let c = IamConfig { reducer: kind, ..cfg() };
            let mut est = IamEstimator::fit(&table, c);
            let mut buf = Vec::new();
            est.save(&mut buf).unwrap();
            let mut loaded = IamEstimator::load(&mut buf.as_slice()).unwrap();
            est.reseed(7);
            loaded.reseed(7);
            let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 4);
            for q in gen.gen_queries(5) {
                let (rq, _) = q.normalize(2).unwrap();
                assert!((est.estimate(&rq) - loaded.estimate(&rq)).abs() < 1e-12);
            }
        }
    }
}
