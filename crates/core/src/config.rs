//! Configuration of the IAM estimator.

pub use iam_nn::TablePrecision;

/// Which domain-reduction family to use for large-domain continuous
/// attributes (§6.6 compares all four).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducerKind {
    /// Gaussian mixture model — the paper's choice.
    Gmm,
    /// Equi-depth histogram.
    Hist,
    /// Spline-based histogram (error-minimising CDF knots).
    Spline,
    /// Uniform mixture model (overlapping buckets).
    Umm,
}

impl ReducerKind {
    /// Display name used in Tables 9–11.
    pub fn name(self) -> &'static str {
        match self {
            ReducerKind::Gmm => "GMM",
            ReducerKind::Hist => "Hist",
            ReducerKind::Spline => "Spline",
            ReducerKind::Umm => "UMM",
        }
    }
}

/// How `P̂_GMM(R)` (per-component range mass) is computed at query time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeMassMode {
    /// Closed form via the normal CDF (`erf`).
    Exact,
    /// The paper's scheme: `S` pre-drawn samples per component, counted per
    /// query ("Impact of GMM Sample Number", §6).
    MonteCarlo {
        /// Samples per component (the paper uses 10 K).
        samples_per_component: usize,
    },
}

/// Full configuration of [`crate::IamEstimator`].
#[derive(Debug, Clone)]
pub struct IamConfig {
    /// Number of mixture components `K` per reduced column (paper: 30; a
    /// VBGM pass may return fewer).
    pub components: usize,
    /// Pick `K` automatically with VBGM (capped at `components`).
    pub auto_components: bool,
    /// Reduce a column when its domain size exceeds this (paper: 1000).
    pub reduce_threshold: usize,
    /// Which reducer family to use.
    pub reducer: ReducerKind,
    /// Reduce large-domain continuous columns at all. `false` gives the
    /// Neurocard-style baseline: continuous columns are ordinally encoded
    /// and column-factorised instead.
    pub reduce_continuous: bool,
    /// Factorise *unreduced* columns whose domain exceeds this into two
    /// subcolumns (Neurocard's column factorisation; paper: 2^11).
    pub factorize_threshold: usize,
    /// Hidden layer widths of the ResMADE (paper: 256/128/128/256).
    pub hidden: Vec<usize>,
    /// Per-column embedding width.
    pub embed_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Train GMMs jointly with the AR model (Eq. 6). When false the
    /// reducers are fitted once up-front ("separate training").
    pub joint_training: bool,
    /// Enable wildcard skipping (mask a random subset of input columns per
    /// training tuple, skip unqueried columns at inference).
    pub wildcard_skipping: bool,
    /// Ablation switch: replace the soft `P̂_GMM(R)` correction vector by a
    /// hard 0/1 "component intersects R" indicator. Biased; exists to
    /// demonstrate why the unbiased correction matters (§5.2).
    pub hard_range_weights: bool,
    /// Number of progressive samples `S_p` per query.
    pub samples: usize,
    /// Range-mass computation mode for GMM-reduced columns.
    pub range_mass: RangeMassMode,
    /// Worker threads for the training pipeline (GMM steps, batch
    /// encoding, sharded AR backprop). `0` = one per available core. The
    /// value never changes training results — gradient shards are reduced
    /// in a fixed order — only wall time (see
    /// `MadeNet::train_batch_sharded`).
    pub train_threads: usize,
    /// Use the fused embedding→layer-1 inference path: after training,
    /// precompute `T[slot][token] = W₁-block × embed[slot][token]` so each
    /// forward row's first hidden layer is a sum of cached vectors instead
    /// of an embedding gather plus a matrix multiply. Estimates are bitwise
    /// identical either way — this trades `Σ_s domain(s) × hidden[0]`
    /// floats of memory for inference speed. Runtime-only (not persisted);
    /// toggle with `IamEstimator::set_fused_layer1`.
    pub fused_layer1: bool,
    /// Storage precision of the fused token tables (only meaningful with
    /// [`Self::fused_layer1`]). `F32` (the default) keeps estimates
    /// bitwise identical to the non-fused path; `F16`/`Int8` shrink the
    /// tables 2×/~4× and trade a bounded, bench-gated q-error delta for
    /// speed. Persisted as a trailer byte; the f32 golden path can always
    /// be rebuilt via `IamEstimator::set_table_precision`.
    pub table_precision: TablePrecision,
    /// Cache per-component CDF prefix tables over each reduced column's
    /// token grid at model-prepare time, making `P̂_GMM(R)` mass vectors
    /// two CDF lookups per component instead of two `erf` evaluations.
    /// Cached entries are the exact values `normal_mass` would compute,
    /// so results are bitwise identical with tables on or off (only
    /// applies to [`RangeMassMode::Exact`]; runtime-only, not persisted).
    pub gmm_prefix_tables: bool,
    /// RNG seed (training shuffles, sampling).
    pub seed: u64,
}

impl Default for IamConfig {
    fn default() -> Self {
        IamConfig {
            components: 30,
            auto_components: false,
            reduce_threshold: 1000,
            reducer: ReducerKind::Gmm,
            reduce_continuous: true,
            factorize_threshold: 1 << 11,
            hidden: vec![256, 128, 128, 256],
            embed_dim: 16,
            epochs: 10,
            batch_size: 512,
            lr: 2e-3,
            joint_training: true,
            wildcard_skipping: true,
            hard_range_weights: false,
            samples: 512,
            range_mass: RangeMassMode::Exact,
            train_threads: 1,
            fused_layer1: true,
            table_precision: TablePrecision::F32,
            gmm_prefix_tables: true,
            seed: 42,
        }
    }
}

impl IamConfig {
    /// Resolve [`Self::train_threads`]: `0` means one worker per available
    /// core, anything else is taken literally.
    pub fn effective_train_threads(&self) -> usize {
        match self.train_threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            t => t,
        }
    }

    /// A small fast profile for tests and examples.
    pub fn small() -> Self {
        IamConfig {
            components: 12,
            hidden: vec![64, 64],
            embed_dim: 8,
            epochs: 4,
            batch_size: 256,
            samples: 200,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = IamConfig::default();
        assert_eq!(c.components, 30);
        assert_eq!(c.reduce_threshold, 1000);
        assert_eq!(c.hidden, vec![256, 128, 128, 256]);
        assert_eq!(c.factorize_threshold, 2048);
        assert_eq!(c.reducer.name(), "GMM");
    }

    #[test]
    fn speed_knobs_default_to_the_golden_path() {
        let c = IamConfig::default();
        assert_eq!(c.table_precision, TablePrecision::F32);
        assert!(c.gmm_prefix_tables);
        assert_eq!(IamConfig::small().table_precision, TablePrecision::F32);
    }
}
