//! Joint end-to-end training (paper §4.3, Eq. 6).
//!
//! Every mini-batch first takes one gradient step on each column's GMM
//! (`loss_GMM`, Eq. 4), refreshes that column's reducer from the trainer's
//! snapshot, re-encodes the batch rows with the *current* reducers and then
//! takes one Adam step on the AR cross-entropy (`loss_AR`, Eq. 3). The
//! reported loss is their sum. Wildcard skipping masks a random subset of
//! input columns per tuple (Naru §5.3), leaving targets intact.
//!
//! All three phases run on `cfg.train_threads` workers: GMM steps are
//! parallel across columns (disjoint trainers/handlers), encoding is
//! parallel across row ranges (one pre-drawn wildcard seed per row keeps
//! the masking pattern independent of the sharding), and the AR step uses
//! `MadeNet::train_batch_sharded`, whose fixed-order shard reduction makes
//! the trained model bitwise identical for every thread count.

use crate::config::IamConfig;
use crate::probes;
use crate::schema::{ColumnHandler, IamSchema, SlotRole};
use iam_data::{Column, Table};
use iam_gmm::{GmmSgdTrainer, SgdConfig};
use iam_nn::{Adam, MadeNet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-epoch loss report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean per-tuple AR cross-entropy (nats).
    pub ar_loss: f64,
    /// Mean per-value GMM negative log-likelihood, summed over reduced
    /// columns.
    pub gmm_loss: f64,
    /// Wall-clock seconds for the epoch.
    pub seconds: f64,
    /// Rows visited this epoch.
    pub rows: usize,
}

impl EpochStats {
    /// Total joint loss (Eq. 6).
    pub fn total(&self) -> f64 {
        self.ar_loss + self.gmm_loss
    }

    /// Training throughput (rows/s), 0 when the epoch took no measurable
    /// time.
    pub fn rows_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.rows as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Per-shard scratch for [`encode_rows`], hoisted out of the row loop so a
/// shard allocates once per batch instead of once per row.
#[derive(Default)]
struct EncodeScratch {
    row_f64: Vec<f64>,
    slot_vals: Vec<usize>,
    cols: Vec<usize>,
}

/// Encode a slice of table rows into `targets`/`inputs` (each
/// `rows.len() × nslots`), applying wildcard masking with one dedicated
/// RNG per row (seeded from `seeds`), so the result depends only on the
/// row and its seed — never on which shard or thread encoded it.
#[allow(clippy::too_many_arguments)]
fn encode_rows(
    table: &Table,
    schema: &IamSchema,
    net: &MadeNet,
    cfg: &IamConfig,
    rows: &[usize],
    seeds: &[u64],
    targets: &mut [usize],
    inputs: &mut [usize],
    scratch: &mut EncodeScratch,
) {
    let ncols = table.ncols();
    let nslots = schema.nslots();
    for (k, &r) in rows.iter().enumerate() {
        table.row_as_f64(r, &mut scratch.row_f64);
        schema.encode_row(&scratch.row_f64, &mut scratch.slot_vals);
        targets[k * nslots..(k + 1) * nslots].copy_from_slice(&scratch.slot_vals);
        // wildcard skipping: mask a uniform-size random subset of columns
        if cfg.wildcard_skipping {
            let mut wrng = StdRng::seed_from_u64(seeds[k]);
            let kmask = wrng.random_range(0..=ncols);
            // choose kmask distinct columns via partial shuffle of col ids
            scratch.cols.clear();
            scratch.cols.extend(0..ncols);
            for i in 0..kmask {
                let j = wrng.random_range(i..ncols);
                scratch.cols.swap(i, j);
            }
            for (slot, role) in schema.slots.iter().enumerate() {
                if scratch.cols[..kmask].contains(&role.col()) {
                    scratch.slot_vals[slot] = net.mask_token(slot);
                }
            }
        }
        inputs[k * nslots..(k + 1) * nslots].copy_from_slice(&scratch.slot_vals);
    }
}

/// Encode one mini-batch, fanned out over `threads` row shards.
#[allow(clippy::too_many_arguments)]
fn encode_chunk(
    table: &Table,
    schema: &IamSchema,
    net: &MadeNet,
    cfg: &IamConfig,
    chunk: &[usize],
    seeds: &[u64],
    targets: &mut [usize],
    inputs: &mut [usize],
    threads: usize,
) {
    let nslots = schema.nslots();
    let workers = threads.clamp(1, chunk.len());
    if workers == 1 {
        let mut scratch = EncodeScratch::default();
        encode_rows(table, schema, net, cfg, chunk, seeds, targets, inputs, &mut scratch);
        return;
    }
    let per = chunk.len().div_ceil(workers);
    std::thread::scope(|s| {
        for (((rows, seeds), tchunk), ichunk) in chunk
            .chunks(per)
            .zip(seeds.chunks(per))
            .zip(targets.chunks_mut(per * nslots))
            .zip(inputs.chunks_mut(per * nslots))
        {
            s.spawn(move || {
                let mut scratch = EncodeScratch::default();
                encode_rows(table, schema, net, cfg, rows, seeds, tchunk, ichunk, &mut scratch);
            });
        }
    });
}

/// One GMM gradient step per reduced column, fanned out over `threads`
/// (each column owns a disjoint trainer + handler). Returns the summed
/// per-column losses, accumulated in ascending column order regardless of
/// the thread count.
fn gmm_chunk_step(
    table: &Table,
    schema: &mut IamSchema,
    gmm_trainers: &mut [Option<GmmSgdTrainer>],
    chunk: &[usize],
    threads: usize,
) -> f64 {
    let mut items: Vec<(usize, &mut GmmSgdTrainer, &mut ColumnHandler)> = gmm_trainers
        .iter_mut()
        .zip(schema.handlers.iter_mut())
        .enumerate()
        .filter_map(|(col, (t, h))| t.as_mut().map(|t| (col, t, h)))
        .collect();
    if items.is_empty() {
        return 0.0;
    }
    let mut losses = vec![0.0f64; items.len()];
    let step_one =
        |item: &mut (usize, &mut GmmSgdTrainer, &mut ColumnHandler), raw: &mut Vec<f64>| -> f64 {
            let (col, trainer, handler) = item;
            let Column::Continuous(cc) = &table.columns[*col] else { return 0.0 };
            raw.clear();
            raw.extend(chunk.iter().map(|&r| cc.values[r]));
            let loss = trainer.step(raw);
            if let ColumnHandler::Reduced(red) = &mut **handler {
                if let Some(g) = red.as_gmm_mut() {
                    g.set_gmm(trainer.snapshot());
                }
            }
            loss
        };
    let workers = threads.clamp(1, items.len());
    if workers == 1 {
        let mut raw = Vec::with_capacity(chunk.len());
        for (item, loss) in items.iter_mut().zip(&mut losses) {
            *loss = step_one(item, &mut raw);
        }
    } else {
        let per = items.len().div_ceil(workers);
        std::thread::scope(|s| {
            for (ichunk, lchunk) in items.chunks_mut(per).zip(losses.chunks_mut(per)) {
                let step_one = &step_one;
                s.spawn(move || {
                    let mut raw = Vec::with_capacity(chunk.len());
                    for (item, loss) in ichunk.iter_mut().zip(lchunk.iter_mut()) {
                        *loss = step_one(item, &mut raw);
                    }
                });
            }
        });
    }
    // fixed column order keeps the reported loss deterministic
    losses.iter().sum()
}

/// One pass over the table.
#[allow(clippy::too_many_arguments)]
pub fn train_epoch(
    table: &Table,
    schema: &mut IamSchema,
    net: &mut MadeNet,
    opt: &mut Adam,
    gmm_trainers: &mut [Option<GmmSgdTrainer>],
    cfg: &IamConfig,
    rng: &mut StdRng,
) -> EpochStats {
    let _span = iam_obs::span!("train.epoch");
    let started = std::time::Instant::now();
    let n = table.nrows();
    let nslots = schema.nslots();
    assert!(n > 0, "cannot train on an empty table");
    let threads = cfg.effective_train_threads();

    // epoch shuffle
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }

    let bs = cfg.batch_size.clamp(1, n);
    let mut targets: Vec<usize> = Vec::with_capacity(bs * nslots);
    let mut inputs: Vec<usize> = Vec::with_capacity(bs * nslots);
    let mut row_seeds: Vec<u64> = Vec::with_capacity(bs);

    let mut ar_loss_sum = 0.0f64;
    let mut gmm_loss_sum = 0.0f64;
    let mut batches = 0usize;
    let (mut gmm_secs, mut encode_secs, mut ar_secs) = (0.0f64, 0.0f64, 0.0f64);

    for chunk in order.chunks(bs) {
        // 1) GMM gradient step per reduced column (joint training)
        if cfg.joint_training {
            // audit-allow(loop-instant): feeds the per-epoch phase-time
            // accumulators; batch granularity, not per-row
            let t0 = std::time::Instant::now();
            let _span = iam_obs::span!("train.gmm_step");
            gmm_loss_sum += gmm_chunk_step(table, schema, gmm_trainers, chunk, threads);
            gmm_secs += t0.elapsed().as_secs_f64();
        }

        // 2) encode the batch with the current reducers
        // audit-allow(loop-instant): feeds the per-epoch phase-time
        // accumulators; batch granularity, not per-row
        let t0 = std::time::Instant::now();
        {
            let _span = iam_obs::span!("train.encode");
            targets.resize(chunk.len() * nslots, 0);
            inputs.resize(chunk.len() * nslots, 0);
            // pre-draw one wildcard seed per row on the epoch RNG, in row
            // order, so the masking pattern is a function of the epoch
            // stream alone, not of how rows are sharded across workers
            row_seeds.clear();
            row_seeds.resize(chunk.len(), 0);
            if cfg.wildcard_skipping {
                for s in row_seeds.iter_mut() {
                    *s = rng.random();
                }
            }
            encode_chunk(
                table,
                schema,
                net,
                cfg,
                chunk,
                &row_seeds,
                &mut targets,
                &mut inputs,
                threads,
            );
        }
        encode_secs += t0.elapsed().as_secs_f64();

        // 3) AR step
        // audit-allow(loop-instant): feeds the per-epoch phase-time
        // accumulators; batch granularity, not per-row
        let t0 = std::time::Instant::now();
        let _span = iam_obs::span!("train.ar_step");
        ar_loss_sum += net.train_batch_sharded(&inputs, &targets, chunk.len(), threads) as f64;
        opt.step(net);
        ar_secs += t0.elapsed().as_secs_f64();
        batches += 1;
    }

    // refresh any query-time caches invalidated by GMM updates
    for h in &mut schema.handlers {
        if let ColumnHandler::Reduced(r) = h {
            r.finalize();
        }
    }

    let stats = EpochStats {
        ar_loss: ar_loss_sum / batches.max(1) as f64,
        gmm_loss: gmm_loss_sum / batches.max(1) as f64,
        seconds: started.elapsed().as_secs_f64(),
        rows: n,
    };
    let p = probes::train();
    p.epochs.inc();
    p.rows.add(n as u64);
    p.batches.add(batches as u64);
    p.ar_loss.set(stats.ar_loss);
    p.gmm_loss.set(stats.gmm_loss);
    p.rows_per_sec.set(stats.rows_per_sec());
    p.epoch_ms.observe((stats.seconds * 1000.0) as u64);
    p.threads.set(threads as i64);
    p.gmm_phase_ms.set(gmm_secs * 1000.0);
    p.encode_phase_ms.set(encode_secs * 1000.0);
    p.ar_phase_ms.set(ar_secs * 1000.0);
    stats
}

/// Create the per-column GMM trainers for joint training (only columns whose
/// handler is a GMM reducer get one).
pub fn make_gmm_trainers(schema: &IamSchema, cfg: &IamConfig) -> Vec<Option<GmmSgdTrainer>> {
    schema
        .handlers
        .iter()
        .map(|h| match h {
            ColumnHandler::Reduced(r) => r.as_gmm().map(|g| {
                GmmSgdTrainer::from_init(
                    g.gmm(),
                    SgdConfig { lr: (cfg.lr as f64) * 2.0, ..Default::default() },
                )
            }),
            _ => None,
        })
        .collect()
}

/// Validate a slot/role layout invariant used by the wildcard masker: a
/// factorised column's two slots are adjacent and share the column id.
pub fn check_slot_layout(schema: &IamSchema) -> bool {
    let mut i = 0;
    while i < schema.slots.len() {
        match schema.slots[i] {
            SlotRole::FactorHi { col } => {
                if i + 1 >= schema.slots.len() {
                    return false;
                }
                match schema.slots[i + 1] {
                    SlotRole::FactorLo { col: c2 } if c2 == col => i += 2,
                    _ => return false,
                }
            }
            SlotRole::FactorLo { .. } => return false,
            SlotRole::Whole { .. } => i += 1,
        }
    }
    true
}
