//! Joint end-to-end training (paper §4.3, Eq. 6).
//!
//! Every mini-batch first takes one gradient step on each column's GMM
//! (`loss_GMM`, Eq. 4), refreshes that column's reducer from the trainer's
//! snapshot, re-encodes the batch rows with the *current* reducers and then
//! takes one Adam step on the AR cross-entropy (`loss_AR`, Eq. 3). The
//! reported loss is their sum. Wildcard skipping masks a random subset of
//! input columns per tuple (Naru §5.3), leaving targets intact.

use crate::config::IamConfig;
use crate::probes;
use crate::schema::{ColumnHandler, IamSchema, SlotRole};
use iam_data::{Column, Table};
use iam_gmm::{GmmSgdTrainer, SgdConfig};
use iam_nn::{Adam, MadeNet};
use rand::rngs::StdRng;
use rand::RngExt;

/// Per-epoch loss report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean per-tuple AR cross-entropy (nats).
    pub ar_loss: f64,
    /// Mean per-value GMM negative log-likelihood, summed over reduced
    /// columns.
    pub gmm_loss: f64,
    /// Wall-clock seconds for the epoch.
    pub seconds: f64,
    /// Rows visited this epoch.
    pub rows: usize,
}

impl EpochStats {
    /// Total joint loss (Eq. 6).
    pub fn total(&self) -> f64 {
        self.ar_loss + self.gmm_loss
    }

    /// Training throughput (rows/s), 0 when the epoch took no measurable
    /// time.
    pub fn rows_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.rows as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// One pass over the table.
#[allow(clippy::too_many_arguments)]
pub fn train_epoch(
    table: &Table,
    schema: &mut IamSchema,
    net: &mut MadeNet,
    opt: &mut Adam,
    gmm_trainers: &mut [Option<GmmSgdTrainer>],
    cfg: &IamConfig,
    rng: &mut StdRng,
) -> EpochStats {
    let _span = iam_obs::span!("train.epoch");
    let started = std::time::Instant::now();
    let n = table.nrows();
    let ncols = table.ncols();
    let nslots = schema.nslots();
    assert!(n > 0, "cannot train on an empty table");

    // epoch shuffle
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }

    let bs = cfg.batch_size.clamp(1, n);
    let mut raw_batch: Vec<f64> = Vec::with_capacity(bs);
    let mut row_f64: Vec<f64> = Vec::with_capacity(ncols);
    let mut slot_vals: Vec<usize> = Vec::with_capacity(nslots);
    let mut targets: Vec<usize> = Vec::with_capacity(bs * nslots);
    let mut inputs: Vec<usize> = Vec::with_capacity(bs * nslots);

    let mut ar_loss_sum = 0.0f64;
    let mut gmm_loss_sum = 0.0f64;
    let mut batches = 0usize;

    for chunk in order.chunks(bs) {
        // 1) GMM gradient step per reduced column (joint training)
        if cfg.joint_training {
            let _span = iam_obs::span!("train.gmm_step");
            for (col, trainer) in gmm_trainers.iter_mut().enumerate() {
                let Some(trainer) = trainer else { continue };
                let Column::Continuous(cc) = &table.columns[col] else { continue };
                raw_batch.clear();
                raw_batch.extend(chunk.iter().map(|&r| cc.values[r]));
                gmm_loss_sum += trainer.step(&raw_batch);
                if let ColumnHandler::Reduced(red) = &mut schema.handlers[col] {
                    if let Some(g) = red.as_gmm_mut() {
                        g.set_gmm(trainer.snapshot());
                    }
                }
            }
        }

        // 2) encode the batch with the current reducers
        let encode_span = iam_obs::span!("train.encode");
        targets.clear();
        inputs.clear();
        for &r in chunk {
            table.row_as_f64(r, &mut row_f64);
            schema.encode_row(&row_f64, &mut slot_vals);
            targets.extend_from_slice(&slot_vals);
            // wildcard skipping: mask a uniform-size random subset of columns
            if cfg.wildcard_skipping {
                let k = rng.random_range(0..=ncols);
                // choose k distinct columns via partial shuffle of col ids
                let mut cols: Vec<usize> = (0..ncols).collect();
                for i in 0..k {
                    let j = rng.random_range(i..ncols);
                    cols.swap(i, j);
                }
                for (slot, role) in schema.slots.iter().enumerate() {
                    if cols[..k].contains(&role.col()) {
                        slot_vals[slot] = net.mask_token(slot);
                    }
                }
            }
            inputs.extend_from_slice(&slot_vals);
        }

        drop(encode_span);

        // 3) AR step
        let _span = iam_obs::span!("train.ar_step");
        ar_loss_sum += net.train_batch(&inputs, &targets, chunk.len()) as f64;
        opt.step(net);
        batches += 1;
    }

    // refresh any query-time caches invalidated by GMM updates
    for h in &mut schema.handlers {
        if let ColumnHandler::Reduced(r) = h {
            r.finalize();
        }
    }

    let stats = EpochStats {
        ar_loss: ar_loss_sum / batches.max(1) as f64,
        gmm_loss: gmm_loss_sum / batches.max(1) as f64,
        seconds: started.elapsed().as_secs_f64(),
        rows: n,
    };
    let p = probes::train();
    p.epochs.inc();
    p.rows.add(n as u64);
    p.batches.add(batches as u64);
    p.ar_loss.set(stats.ar_loss);
    p.gmm_loss.set(stats.gmm_loss);
    p.rows_per_sec.set(stats.rows_per_sec());
    p.epoch_ms.observe((stats.seconds * 1000.0) as u64);
    stats
}

/// Create the per-column GMM trainers for joint training (only columns whose
/// handler is a GMM reducer get one).
pub fn make_gmm_trainers(schema: &IamSchema, cfg: &IamConfig) -> Vec<Option<GmmSgdTrainer>> {
    schema
        .handlers
        .iter()
        .map(|h| match h {
            ColumnHandler::Reduced(r) => r.as_gmm().map(|g| {
                GmmSgdTrainer::from_init(
                    g.gmm(),
                    SgdConfig { lr: (cfg.lr as f64) * 2.0, ..Default::default() },
                )
            }),
            _ => None,
        })
        .collect()
}

/// Validate a slot/role layout invariant used by the wildcard masker: a
/// factorised column's two slots are adjacent and share the column id.
pub fn check_slot_layout(schema: &IamSchema) -> bool {
    let mut i = 0;
    while i < schema.slots.len() {
        match schema.slots[i] {
            SlotRole::FactorHi { col } => {
                if i + 1 >= schema.slots.len() {
                    return false;
                }
                match schema.slots[i + 1] {
                    SlotRole::FactorLo { col: c2 } if c2 == col => i += 2,
                    _ => return false,
                }
            }
            SlotRole::FactorLo { .. } => return false,
            SlotRole::Whole { .. } => i += 1,
        }
    }
    true
}
