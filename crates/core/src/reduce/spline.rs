//! Spline-histogram reducer — the second §6.6 alternative.
//!
//! Following Neumann & Michel ("Smooth interpolating histograms with error
//! guarantees"), the empirical CDF is approximated by a piecewise-linear
//! spline with `K` segments whose knots are placed greedily where the
//! current linear interpolation errs most. Values reduce to their segment
//! index; range mass within a segment assumes the (linear-CDF ⇒ uniform)
//! distribution between its knots.

use super::{clamp_interval, DomainReducer};
use iam_data::Interval;

/// Piecewise-linear CDF spline over `K` segments.
#[derive(Debug, Clone)]
pub struct SplineReducer {
    /// `k + 1` knot x-positions, ascending.
    knots_x: Vec<f64>,
    /// CDF value at each knot.
    knots_f: Vec<f64>,
}

impl SplineReducer {
    /// Fit a `k`-segment spline to the empirical CDF of `values`.
    pub fn fit(values: &[f64], k: usize) -> Self {
        assert!(k >= 1 && !values.is_empty());
        let mut sorted = values.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let n = sorted.len();
        let cdf_at = |i: usize| (i + 1) as f64 / n as f64;

        // greedy knot insertion: start with the two endpoints, repeatedly
        // split the segment at the point of maximum vertical CDF error
        let mut knot_idx: Vec<usize> = vec![0, n - 1];
        while knot_idx.len() < k + 1 {
            let mut best: Option<(f64, usize, usize)> = None; // (err, seg, point)
            for s in 0..knot_idx.len() - 1 {
                let (a, b) = (knot_idx[s], knot_idx[s + 1]);
                if b <= a + 1 {
                    continue;
                }
                let (xa, xb) = (sorted[a], sorted[b]);
                let (fa, fb) = (cdf_at(a), cdf_at(b));
                let span = (xb - xa).max(1e-300);
                // sample interior points (cap the scan for long segments)
                let step = ((b - a) / 64).max(1);
                let mut i = a + 1;
                while i < b {
                    let interp = fa + (sorted[i] - xa) / span * (fb - fa);
                    let err = (cdf_at(i) - interp).abs();
                    if best.is_none_or(|(e, _, _)| err > e) {
                        best = Some((err, s, i));
                    }
                    i += step;
                }
            }
            match best {
                Some((_, _, point)) => {
                    let pos = knot_idx.partition_point(|&i| i < point);
                    knot_idx.insert(pos, point);
                }
                None => break, // all segments exhausted
            }
        }

        let knots_x: Vec<f64> = knot_idx.iter().map(|&i| sorted[i]).collect();
        let knots_f: Vec<f64> = knot_idx.iter().map(|&i| cdf_at(i)).collect();
        SplineReducer { knots_x, knots_f }
    }

    fn segments(&self) -> usize {
        self.knots_x.len() - 1
    }

    /// Rebuild from persisted knots.
    pub fn from_knots(knots_x: Vec<f64>, knots_f: Vec<f64>) -> Self {
        assert!(knots_x.len() >= 2 && knots_x.len() == knots_f.len());
        crate::invariant::check_cdf_monotone(&knots_f, "spline knot CDF");
        SplineReducer { knots_x, knots_f }
    }

    /// Evaluate the spline CDF at `x` (linear interpolation between knots).
    pub fn cdf(&self, x: f64) -> f64 {
        let n = self.knots_x.len();
        if x <= self.knots_x[0] {
            return 0.0;
        }
        if x >= self.knots_x[n - 1] {
            return 1.0;
        }
        let j = self.knots_x[1..].partition_point(|&k| k <= x);
        let (x0, x1) = (self.knots_x[j], self.knots_x[j + 1]);
        let (f0, f1) = (self.knots_f[j], self.knots_f[j + 1]);
        if x1 > x0 {
            f0 + (x - x0) / (x1 - x0) * (f1 - f0)
        } else {
            f0
        }
    }
}

impl DomainReducer for SplineReducer {
    fn name(&self) -> &'static str {
        "Spline"
    }

    fn k(&self) -> usize {
        self.segments()
    }

    fn reduce(&self, v: f64) -> usize {
        let k = self.segments();
        let idx = self.knots_x[1..k].partition_point(|&b| b <= v);
        idx.min(k - 1)
    }

    fn range_mass(&self, iv: &Interval, out: &mut Vec<f64>) {
        let last = self.segments();
        let (lo, hi) = clamp_interval(iv, self.knots_x[0], self.knots_x[last]);
        out.clear();
        for j in 0..last {
            let (xlo, xhi) = (self.knots_x[j], self.knots_x[j + 1]);
            let width = xhi - xlo;
            let overlap = (hi.min(xhi) - lo.max(xlo)).max(0.0);
            out.push(if width > 0.0 {
                (overlap / width).min(1.0)
            } else {
                f64::from(u8::from(lo <= xlo && xlo <= hi))
            });
        }
        crate::invariant::check_mass_vector(out, "spline range mass");
    }

    fn size_bytes(&self) -> usize {
        // x and F(x) per knot
        2 * self.knots_x.len() * std::mem::size_of::<f64>()
    }

    fn clone_box(&self) -> Box<dyn DomainReducer> {
        Box::new(self.clone())
    }

    fn export_params(&self) -> Vec<Vec<f64>> {
        vec![self.knots_x.clone(), self.knots_f.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::testutil::empirical_consistency;

    #[test]
    fn knots_concentrate_where_cdf_bends() {
        // data with a sharp knee: half the mass at tiny values
        let mut values: Vec<f64> = (0..5000).map(|i| i as f64 / 5000.0).collect();
        values.extend((0..5000).map(|i| 100.0 + i as f64));
        let s = SplineReducer::fit(&values, 8);
        assert_eq!(s.k(), 8);
        // at least one knot must land inside the low cluster
        assert!(s.knots_x[1] < 50.0, "knots: {:?}", s.knots_x);
    }

    #[test]
    fn consistency_on_piecewise_uniform_data() {
        let mut values: Vec<f64> = (0..4000).map(|i| i as f64 / 4.0).collect(); // [0,1000)
        values.extend((0..1000).map(|i| 5000.0 + i as f64)); // [5000,6000)
        let s = SplineReducer::fit(&values, 16);
        for (lo, hi) in [(0.0, 500.0), (900.0, 5500.0), (5100.0, 5900.0)] {
            let (est, truth) = empirical_consistency(&s, &values, &Interval::closed(lo, hi));
            assert!((est - truth).abs() < 0.03, "[{lo},{hi}]: {est} vs {truth}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let values: Vec<f64> = (0..2000).map(|i| (i as f64).sqrt() * 10.0).collect();
        let s = SplineReducer::fit(&values, 12);
        let mut prev = -1.0;
        for i in 0..=100 {
            let x = i as f64 * 4.5;
            let f = s.cdf(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev, "CDF must be monotone");
            prev = f;
        }
        // matches the empirical CDF at a midpoint reasonably
        let emp = values.iter().filter(|&&v| v <= 220.0).count() as f64 / 2000.0;
        assert!((s.cdf(220.0) - emp).abs() < 0.05);
    }

    #[test]
    fn monotone_knots() {
        let values: Vec<f64> = (0..333).map(|i| ((i * 7919) % 1000) as f64).collect();
        let s = SplineReducer::fit(&values, 10);
        assert!(s.knots_x.windows(2).all(|w| w[0] <= w[1]));
        assert!(s.knots_f.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn duplicate_heavy_data_does_not_panic() {
        let values = vec![1.0; 500];
        let s = SplineReducer::fit(&values, 5);
        assert!(s.k() >= 1);
        let mut m = Vec::new();
        s.range_mass(&Interval::closed(0.5, 1.5), &mut m);
        assert!(m.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
