//! Domain reduction: map a huge continuous domain onto `K` reduced values.
//!
//! A [`DomainReducer`] supplies the two operations the IAM pipeline needs:
//! `reduce(v)` — the reduced attribute value `a'` fed to the AR model — and
//! `range_mass(R)` — the per-reduced-value probability `P(v ∈ R | a' = k)`
//! that corrects progressive sampling for range queries (§5.2).

pub mod gmm;
pub mod hist;
pub mod spline;
pub mod umm;

pub use gmm::GmmReducer;
pub use hist::HistReducer;
pub use spline::SplineReducer;
pub use umm::UmmReducer;

use iam_data::Interval;

/// Maps raw continuous values into `[0, k)` and answers range-mass queries.
pub trait DomainReducer: Send + Sync {
    /// Reducer family name (for tables).
    fn name(&self) -> &'static str;

    /// Number of reduced values `K`.
    fn k(&self) -> usize;

    /// The reduced value of `v` (paper Eq. 5 for GMMs).
    fn reduce(&self, v: f64) -> usize;

    /// `out[j] = P(value ∈ iv | reduced value = j)` — the bias-correction
    /// vector `P̂_GMM(R_i)` of §5.2 (its analogue for the other reducers).
    fn range_mass(&self, iv: &Interval, out: &mut Vec<f64>);

    /// Model footprint in bytes.
    fn size_bytes(&self) -> usize;

    /// Rebuild any query-time caches after training mutated the model
    /// (e.g. the Monte-Carlo component-sample cache). Default: no-op.
    fn finalize(&mut self) {}

    /// Downcast hook for the joint training loop, which refreshes GMM
    /// parameters every mini-batch. Non-GMM reducers return `None`.
    fn as_gmm_mut(&mut self) -> Option<&mut GmmReducer> {
        None
    }

    /// Read-only downcast counterpart of [`Self::as_gmm_mut`].
    fn as_gmm(&self) -> Option<&GmmReducer> {
        None
    }

    /// Export the reducer's parameter vectors for persistence (see
    /// `iam-core::persist`). GMM reducers are saved via [`Self::as_gmm`]
    /// instead and may leave this empty.
    fn export_params(&self) -> Vec<Vec<f64>> {
        Vec::new()
    }

    /// Clone into a box (reducers are held behind `dyn`).
    fn clone_box(&self) -> Box<dyn DomainReducer>;
}

impl Clone for Box<dyn DomainReducer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Clamp an interval to finite bounds for reducers that need them.
pub(crate) fn clamp_interval(iv: &Interval, lo_default: f64, hi_default: f64) -> (f64, f64) {
    let lo = if iv.lo == f64::NEG_INFINITY { lo_default } else { iv.lo };
    let hi = if iv.hi == f64::INFINITY { hi_default } else { iv.hi };
    (lo, hi)
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::DomainReducer;
    use iam_data::Interval;

    /// Reference check used by every reducer's tests: the estimator
    /// `Σ_j count(a'=j) · range_mass(R)[j] / n` should approximate the true
    /// fraction of values in `R`, when the reducer fits the data well.
    pub fn empirical_consistency(
        reducer: &dyn DomainReducer,
        values: &[f64],
        iv: &Interval,
    ) -> (f64, f64) {
        let n = values.len() as f64;
        let mut counts = vec![0usize; reducer.k()];
        for &v in values {
            counts[reducer.reduce(v)] += 1;
        }
        let mut mass = Vec::new();
        reducer.range_mass(iv, &mut mass);
        let est: f64 = counts.iter().zip(&mass).map(|(&c, &m)| c as f64 * m).sum::<f64>() / n;
        let truth = values.iter().filter(|&&v| iv.contains(v)).count() as f64 / n;
        (est, truth)
    }
}
