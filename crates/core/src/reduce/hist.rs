//! Equi-depth histogram reducer — the first §6.6 alternative.

use super::{clamp_interval, DomainReducer};
use iam_data::Interval;

/// Equi-depth buckets: each of the `K` buckets holds the same number of
/// training values; values map to their bucket index and range mass assumes
/// a uniform distribution *within* a bucket (the assumption Tables 9–11
/// blame for the alternatives' tail errors).
#[derive(Debug, Clone)]
pub struct HistReducer {
    /// `k + 1` bucket boundaries, ascending; bucket `j` spans
    /// `[bounds[j], bounds[j+1])` (last bucket closed on the right).
    bounds: Vec<f64>,
}

impl HistReducer {
    /// Build from data with `k` buckets.
    pub fn fit(values: &[f64], k: usize) -> Self {
        assert!(k >= 1 && !values.is_empty());
        let mut sorted = values.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let n = sorted.len();
        let mut bounds = Vec::with_capacity(k + 1);
        bounds.push(sorted[0]);
        for j in 1..k {
            let b = sorted[(j * n) / k];
            bounds.push(b.max(*bounds.last().expect("nonempty")));
        }
        bounds.push(sorted[n - 1]);
        HistReducer { bounds }
    }

    fn bucket_span(&self, j: usize) -> (f64, f64) {
        (self.bounds[j], self.bounds[j + 1])
    }

    /// Rebuild from persisted bucket boundaries.
    pub fn from_bounds(bounds: Vec<f64>) -> Self {
        assert!(bounds.len() >= 2, "need at least one bucket");
        HistReducer { bounds }
    }
}

impl DomainReducer for HistReducer {
    fn name(&self) -> &'static str {
        "Hist"
    }

    fn k(&self) -> usize {
        self.bounds.len() - 1
    }

    fn reduce(&self, v: f64) -> usize {
        // values at a shared boundary go to the later bucket; values outside
        // the fitted range clamp to the edge buckets
        let k = self.k();
        let idx = self.bounds[1..k].partition_point(|&b| b <= v);
        idx.min(k - 1)
    }

    fn range_mass(&self, iv: &Interval, out: &mut Vec<f64>) {
        let (lo, hi) = clamp_interval(iv, self.bounds[0], self.bounds[self.k()]);
        out.clear();
        for j in 0..self.k() {
            let (blo, bhi) = self.bucket_span(j);
            let width = bhi - blo;
            let overlap = (hi.min(bhi) - lo.max(blo)).max(0.0);
            out.push(if width > 0.0 {
                (overlap / width).min(1.0)
            } else {
                // zero-width bucket (heavy duplicates): in or out entirely
                f64::from(u8::from(lo <= blo && blo <= hi))
            });
        }
        crate::invariant::check_mass_vector(out, "histogram range mass");
    }

    fn size_bytes(&self) -> usize {
        self.bounds.len() * std::mem::size_of::<f64>()
    }

    fn clone_box(&self) -> Box<dyn DomainReducer> {
        Box::new(self.clone())
    }

    fn export_params(&self) -> Vec<Vec<f64>> {
        vec![self.bounds.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::testutil::empirical_consistency;

    #[test]
    fn equi_depth_buckets_balance_counts() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).powf(1.7)).collect();
        let h = HistReducer::fit(&values, 10);
        let mut counts = vec![0usize; 10];
        for &v in &values {
            counts[h.reduce(v)] += 1;
        }
        for &c in &counts {
            assert!((80..=130).contains(&c), "unbalanced bucket: {counts:?}");
        }
    }

    #[test]
    fn consistency_on_uniform_data() {
        // within-bucket uniformity holds exactly for uniform data
        let values: Vec<f64> = (0..10_000).map(|i| i as f64 / 10.0).collect();
        let h = HistReducer::fit(&values, 20);
        for (lo, hi) in [(100.0, 300.0), (0.0, 999.9), (512.3, 612.3)] {
            let (est, truth) = empirical_consistency(&h, &values, &Interval::closed(lo, hi));
            assert!((est - truth).abs() < 0.01, "[{lo},{hi}]: {est} vs {truth}");
        }
    }

    #[test]
    fn skewed_data_breaks_uniformity_assumption() {
        // the motivating failure: within-bucket skew → wrong range mass
        let mut values: Vec<f64> = vec![0.0; 900];
        values.extend((1..=100).map(|i| i as f64));
        let h = HistReducer::fit(&values, 4);
        let iv = Interval::closed(50.0, 100.0);
        let (est, truth) = empirical_consistency(&h, &values, &iv);
        // it should at least not be wildly negative/overshooting
        assert!((0.0..=1.0).contains(&est));
        // document the error direction: uniform assumption misprices the
        // tail bucket (truth 51/1000)
        assert!((truth - 0.051).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = HistReducer::fit(&values, 5);
        assert_eq!(h.reduce(-100.0), 0);
        assert_eq!(h.reduce(1e9), 4);
        let mut m = Vec::new();
        h.range_mass(&Interval::closed(-50.0, -10.0), &mut m);
        assert!(m.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn size_grows_with_k() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(
            HistReducer::fit(&values, 50).size_bytes() > HistReducer::fit(&values, 5).size_bytes()
        );
    }
}
