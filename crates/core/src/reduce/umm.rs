//! Uniform-mixture-model reducer — the third §6.6 alternative.
//!
//! A UMM is a weighted mixture of `K` (overlapping) uniform buckets, the
//! model family of QuickSel. Here it is fitted to *data* (not queries):
//! bucket geometry comes from overlapping quantile spans and the weights
//! are learned by EM (responsibilities are trivial for uniform densities).

use super::{clamp_interval, DomainReducer};
use iam_data::Interval;

/// Weighted overlapping uniform buckets.
#[derive(Debug, Clone)]
pub struct UmmReducer {
    lo: Vec<f64>,
    hi: Vec<f64>,
    weights: Vec<f64>,
}

impl UmmReducer {
    /// Fit `k` buckets to `values`: bucket `j` spans an overlapping pair of
    /// quantiles (stride 1, width 2 quantile-steps), then weights are fitted
    /// by `iters` EM sweeps.
    pub fn fit(values: &[f64], k: usize, iters: usize) -> Self {
        assert!(k >= 1 && !values.is_empty());
        let mut sorted = values.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let n = sorted.len();
        let q = |t: f64| sorted[((t * (n - 1) as f64) as usize).min(n - 1)];

        let mut lo = Vec::with_capacity(k);
        let mut hi = Vec::with_capacity(k);
        for j in 0..k {
            // overlapping spans: [q(j/(k+1)), q((j+2)/(k+1))]
            let a = q(j as f64 / (k + 1) as f64);
            let b = q((j + 2) as f64 / (k + 1) as f64);
            lo.push(a);
            hi.push(if b > a { b } else { a + 1e-9 });
        }
        let mut weights = vec![1.0 / k as f64; k];

        // EM on weights only (geometry fixed)
        let mut resp = vec![0.0f64; k];
        for _ in 0..iters {
            let mut acc = vec![0.0f64; k];
            for &x in values {
                let mut total = 0.0;
                for j in 0..k {
                    let d =
                        if x >= lo[j] && x <= hi[j] { weights[j] / (hi[j] - lo[j]) } else { 0.0 };
                    resp[j] = d;
                    total += d;
                }
                if total > 0.0 {
                    for j in 0..k {
                        acc[j] += resp[j] / total;
                    }
                }
            }
            let mass: f64 = acc.iter().sum();
            if mass > 0.0 {
                for j in 0..k {
                    weights[j] = (acc[j] / mass).max(1e-12);
                }
            }
        }
        UmmReducer { lo, hi, weights }
    }

    /// Rebuild from persisted bucket geometry and weights.
    pub fn from_parts(lo: Vec<f64>, hi: Vec<f64>, weights: Vec<f64>) -> Self {
        assert!(!lo.is_empty() && lo.len() == hi.len() && lo.len() == weights.len());
        UmmReducer { lo, hi, weights }
    }
}

impl DomainReducer for UmmReducer {
    fn name(&self) -> &'static str {
        "UMM"
    }

    fn k(&self) -> usize {
        self.weights.len()
    }

    fn reduce(&self, v: f64) -> usize {
        // argmax posterior: weight/width among covering buckets; fall back
        // to the nearest bucket for out-of-support values
        let mut best = 0usize;
        let mut best_d = -1.0;
        for j in 0..self.k() {
            if v >= self.lo[j] && v <= self.hi[j] {
                let d = self.weights[j] / (self.hi[j] - self.lo[j]);
                if d > best_d {
                    best_d = d;
                    best = j;
                }
            }
        }
        if best_d >= 0.0 {
            return best;
        }
        // nearest bucket by distance
        let mut nearest = 0usize;
        let mut dist = f64::INFINITY;
        for j in 0..self.k() {
            let d = if v < self.lo[j] { self.lo[j] - v } else { v - self.hi[j] };
            if d < dist {
                dist = d;
                nearest = j;
            }
        }
        nearest
    }

    fn range_mass(&self, iv: &Interval, out: &mut Vec<f64>) {
        let glo = self.lo.iter().copied().fold(f64::INFINITY, f64::min);
        let ghi = self.hi.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = clamp_interval(iv, glo, ghi);
        out.clear();
        for j in 0..self.k() {
            let width = self.hi[j] - self.lo[j];
            let overlap = (hi.min(self.hi[j]) - lo.max(self.lo[j])).max(0.0);
            out.push(if width > 0.0 {
                (overlap / width).min(1.0)
            } else {
                // zero-width bucket (possible via persisted geometry that
                // `fit` would never produce): in or out entirely, never NaN
                f64::from(u8::from(lo <= self.lo[j] && self.lo[j] <= hi))
            });
        }
        crate::invariant::check_mass_vector(out, "UMM range mass");
    }

    fn size_bytes(&self) -> usize {
        3 * self.k() * std::mem::size_of::<f64>()
    }

    fn clone_box(&self) -> Box<dyn DomainReducer> {
        Box::new(self.clone())
    }

    fn export_params(&self) -> Vec<Vec<f64>> {
        vec![self.lo.clone(), self.hi.clone(), self.weights.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::testutil::empirical_consistency;

    #[test]
    fn weights_form_a_distribution() {
        let values: Vec<f64> = (0..2000).map(|i| ((i * 31) % 500) as f64).collect();
        let u = UmmReducer::fit(&values, 10, 20);
        assert!((u.weights.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert_eq!(u.k(), 10);
    }

    #[test]
    fn consistency_on_uniform_data() {
        let values: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let u = UmmReducer::fit(&values, 15, 25);
        for (lo, hi) in [(1000.0, 2000.0), (0.0, 4999.0)] {
            let (est, truth) = empirical_consistency(&u, &values, &Interval::closed(lo, hi));
            assert!((est - truth).abs() < 0.05, "[{lo},{hi}]: {est} vs {truth}");
        }
    }

    #[test]
    fn every_value_reduces_in_range() {
        let values: Vec<f64> = (0..300).map(|i| (i * i) as f64).collect();
        let u = UmmReducer::fit(&values, 7, 10);
        for &v in &values {
            assert!(u.reduce(v) < u.k());
        }
        // out-of-support values snap to the nearest bucket without panicking
        assert!(u.reduce(-1e12) < u.k());
        assert!(u.reduce(1e12) < u.k());
    }
}
