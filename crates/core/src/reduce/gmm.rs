//! The paper's reducer: one 1-D Gaussian mixture per column.

use super::DomainReducer;
use crate::config::RangeMassMode;
use iam_data::Interval;
use iam_gmm::model::ComponentSamples;
use iam_gmm::Gmm1d;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GMM-backed domain reducer (paper §4.2).
#[derive(Clone)]
pub struct GmmReducer {
    gmm: Gmm1d,
    mode: RangeMassMode,
    /// Pre-drawn per-component samples for the Monte-Carlo mode; `None` in
    /// exact mode. Rebuilt whenever the mixture is updated.
    samples: Option<ComponentSamples>,
    sample_seed: u64,
}

impl GmmReducer {
    /// Wrap a fitted mixture.
    pub fn new(gmm: Gmm1d, mode: RangeMassMode, sample_seed: u64) -> Self {
        let mut r = GmmReducer { gmm, mode, samples: None, sample_seed };
        r.rebuild_samples();
        r
    }

    fn rebuild_samples(&mut self) {
        self.samples = match self.mode {
            RangeMassMode::Exact => None,
            RangeMassMode::MonteCarlo { samples_per_component } => {
                let mut rng = StdRng::seed_from_u64(self.sample_seed);
                Some(ComponentSamples::new(&self.gmm, samples_per_component, &mut rng))
            }
        };
    }

    /// Replace the mixture (joint training updates it every batch). Any
    /// Monte-Carlo sample cache is invalidated and lazily rebuilt by
    /// [`DomainReducer::finalize`]; until then range masses fall back to the
    /// exact CDF form.
    pub fn set_gmm(&mut self, gmm: Gmm1d) {
        self.gmm = gmm;
        self.samples = None;
    }

    /// Borrow the underlying mixture.
    pub fn gmm(&self) -> &Gmm1d {
        &self.gmm
    }
}

impl DomainReducer for GmmReducer {
    fn name(&self) -> &'static str {
        "GMM"
    }

    fn k(&self) -> usize {
        self.gmm.k()
    }

    fn reduce(&self, v: f64) -> usize {
        self.gmm.assign(v)
    }

    fn range_mass(&self, iv: &Interval, out: &mut Vec<f64>) {
        // open/closed bounds coincide for a continuous density
        match &self.samples {
            None => {
                out.clear();
                out.extend(self.gmm.range_mass_exact(iv.lo, iv.hi));
            }
            Some(cs) => {
                out.clear();
                out.extend(cs.range_mass(iv.lo, iv.hi));
            }
        }
        crate::invariant::check_mass_vector(out, "GMM range mass");
    }

    fn size_bytes(&self) -> usize {
        // only the 3K mixture parameters persist in a serialized model; the
        // MC sample cache is a query-time scratch structure
        self.gmm.size_bytes()
    }

    fn finalize(&mut self) {
        self.rebuild_samples();
    }

    fn as_gmm_mut(&mut self) -> Option<&mut GmmReducer> {
        Some(self)
    }

    fn as_gmm(&self) -> Option<&GmmReducer> {
        Some(self)
    }

    fn clone_box(&self) -> Box<dyn DomainReducer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::testutil::empirical_consistency;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fitted() -> (Gmm1d, Vec<f64>) {
        let truth = Gmm1d::new(vec![0.5, 0.5], vec![-3.0, 3.0], vec![0.8, 0.8]);
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = iam_gmm::fit_em(&data, 2, 100, 1e-9).gmm;
        (fit, data)
    }

    #[test]
    fn consistency_against_empirical_fraction() {
        let (gmm, data) = fitted();
        let r = GmmReducer::new(gmm, RangeMassMode::Exact, 0);
        for (lo, hi) in [(-4.0, -2.0), (-1.0, 4.0), (2.5, 3.5)] {
            let (est, truth) = empirical_consistency(&r, &data, &Interval::closed(lo, hi));
            assert!((est - truth).abs() < 0.02, "[{lo},{hi}]: est {est} truth {truth}");
        }
    }

    #[test]
    fn mc_mode_tracks_exact_mode() {
        let (gmm, _) = fitted();
        let exact = GmmReducer::new(gmm.clone(), RangeMassMode::Exact, 0);
        let mc =
            GmmReducer::new(gmm, RangeMassMode::MonteCarlo { samples_per_component: 10_000 }, 7);
        let iv = Interval::closed(-2.0, 3.0);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        exact.range_mass(&iv, &mut a);
        mc.range_mass(&iv, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.03, "exact {x} vs mc {y}");
        }
    }

    #[test]
    fn full_range_has_unit_mass() {
        let (gmm, _) = fitted();
        let r = GmmReducer::new(gmm, RangeMassMode::Exact, 0);
        let mut m = Vec::new();
        r.range_mass(&Interval::full(), &mut m);
        assert!(m.iter().all(|&x| (x - 1.0).abs() < 1e-9));
    }

    #[test]
    fn reduce_is_argmax_assignment() {
        let (gmm, _) = fitted();
        let r = GmmReducer::new(gmm.clone(), RangeMassMode::Exact, 0);
        assert_eq!(r.reduce(-3.0), gmm.assign(-3.0));
        assert_eq!(r.k(), 2);
        assert_eq!(r.size_bytes(), 48);
    }
}
