//! The paper's reducer: one 1-D Gaussian mixture per column.

use super::DomainReducer;
use crate::config::RangeMassMode;
use iam_data::Interval;
use iam_gmm::model::ComponentSamples;
use iam_gmm::{CdfPrefixTable, Gmm1d};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GMM-backed domain reducer (paper §4.2).
#[derive(Clone)]
pub struct GmmReducer {
    gmm: Gmm1d,
    mode: RangeMassMode,
    /// Pre-drawn per-component samples for the Monte-Carlo mode; `None` in
    /// exact mode. Rebuilt whenever the mixture is updated.
    samples: Option<ComponentSamples>,
    sample_seed: u64,
    /// Sorted distinct column values captured at schema-build time — the
    /// token grid the CDF prefix table is computed over. Empty for models
    /// reconstructed from a snapshot (no column data): those fall back to
    /// direct `erf` evaluation, which yields bit-identical masses.
    value_grid: Vec<f64>,
    /// Cached per-component CDFs over `value_grid` (exact mode only).
    /// Invalidated with the MC cache on every mixture update and rebuilt
    /// by [`DomainReducer::finalize`].
    prefix: Option<CdfPrefixTable>,
}

impl GmmReducer {
    /// Wrap a fitted mixture.
    pub fn new(gmm: Gmm1d, mode: RangeMassMode, sample_seed: u64) -> Self {
        let mut r = GmmReducer {
            gmm,
            mode,
            samples: None,
            sample_seed,
            value_grid: Vec::new(),
            prefix: None,
        };
        r.rebuild_samples();
        r
    }

    fn rebuild_samples(&mut self) {
        self.samples = match self.mode {
            RangeMassMode::Exact => None,
            RangeMassMode::MonteCarlo { samples_per_component } => {
                let mut rng = StdRng::seed_from_u64(self.sample_seed);
                Some(ComponentSamples::new(&self.gmm, samples_per_component, &mut rng))
            }
        };
        self.prefix = match self.mode {
            RangeMassMode::Exact if !self.value_grid.is_empty() => {
                let table = CdfPrefixTable::build(&self.gmm, &self.value_grid);
                for c in 0..table.k() {
                    crate::invariant::check_cdf_monotone(
                        table.component_cdf(c),
                        "GMM CDF prefix table",
                    );
                }
                Some(table)
            }
            _ => None,
        };
    }

    /// Attach the column's token grid (sorted, duplicate-free distinct
    /// values) and precompute the CDF prefix table over it. Cached CDF
    /// entries store exactly what `normal_mass` evaluates at those
    /// bounds, so [`DomainReducer::range_mass`] stays bit-identical with
    /// or without the table.
    pub fn set_value_grid(&mut self, grid: Vec<f64>) {
        self.value_grid = grid;
        self.rebuild_samples();
    }

    /// Replace the mixture (joint training updates it every batch). Any
    /// Monte-Carlo sample or CDF prefix cache is invalidated and lazily
    /// rebuilt by [`DomainReducer::finalize`]; until then range masses fall
    /// back to the exact CDF form.
    pub fn set_gmm(&mut self, gmm: Gmm1d) {
        self.gmm = gmm;
        self.samples = None;
        self.prefix = None;
    }

    /// Borrow the underlying mixture.
    pub fn gmm(&self) -> &Gmm1d {
        &self.gmm
    }

    /// Whether the CDF prefix table is live (exact mode with a grid).
    pub fn has_prefix_table(&self) -> bool {
        self.prefix.is_some()
    }
}

impl DomainReducer for GmmReducer {
    fn name(&self) -> &'static str {
        "GMM"
    }

    fn k(&self) -> usize {
        self.gmm.k()
    }

    fn reduce(&self, v: f64) -> usize {
        self.gmm.assign(v)
    }

    fn range_mass(&self, iv: &Interval, out: &mut Vec<f64>) {
        // open/closed bounds coincide for a continuous density
        match (&self.samples, &self.prefix) {
            (Some(cs), _) => {
                out.clear();
                out.extend(cs.range_mass(iv.lo, iv.hi));
            }
            // exact mode, grid available: two cached CDF lookups per
            // component, bit-identical to range_mass_exact
            (None, Some(table)) => table.mass_into(iv.lo, iv.hi, out),
            (None, None) => {
                out.clear();
                out.extend(self.gmm.range_mass_exact(iv.lo, iv.hi));
            }
        }
        crate::invariant::check_mass_vector(out, "GMM range mass");
    }

    fn size_bytes(&self) -> usize {
        // only the 3K mixture parameters persist in a serialized model; the
        // MC sample and CDF prefix caches are query-time scratch structures
        self.gmm.size_bytes()
    }

    fn finalize(&mut self) {
        self.rebuild_samples();
    }

    fn as_gmm_mut(&mut self) -> Option<&mut GmmReducer> {
        Some(self)
    }

    fn as_gmm(&self) -> Option<&GmmReducer> {
        Some(self)
    }

    fn clone_box(&self) -> Box<dyn DomainReducer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::testutil::empirical_consistency;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fitted() -> (Gmm1d, Vec<f64>) {
        let truth = Gmm1d::new(vec![0.5, 0.5], vec![-3.0, 3.0], vec![0.8, 0.8]);
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = iam_gmm::fit_em(&data, 2, 100, 1e-9).gmm;
        (fit, data)
    }

    #[test]
    fn consistency_against_empirical_fraction() {
        let (gmm, data) = fitted();
        let r = GmmReducer::new(gmm, RangeMassMode::Exact, 0);
        for (lo, hi) in [(-4.0, -2.0), (-1.0, 4.0), (2.5, 3.5)] {
            let (est, truth) = empirical_consistency(&r, &data, &Interval::closed(lo, hi));
            assert!((est - truth).abs() < 0.02, "[{lo},{hi}]: est {est} truth {truth}");
        }
    }

    #[test]
    fn mc_mode_tracks_exact_mode() {
        let (gmm, _) = fitted();
        let exact = GmmReducer::new(gmm.clone(), RangeMassMode::Exact, 0);
        let mc =
            GmmReducer::new(gmm, RangeMassMode::MonteCarlo { samples_per_component: 10_000 }, 7);
        let iv = Interval::closed(-2.0, 3.0);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        exact.range_mass(&iv, &mut a);
        mc.range_mass(&iv, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.03, "exact {x} vs mc {y}");
        }
    }

    #[test]
    fn full_range_has_unit_mass() {
        let (gmm, _) = fitted();
        let r = GmmReducer::new(gmm, RangeMassMode::Exact, 0);
        let mut m = Vec::new();
        r.range_mass(&Interval::full(), &mut m);
        assert!(m.iter().all(|&x| (x - 1.0).abs() < 1e-9));
    }

    #[test]
    fn prefix_table_masses_are_bitwise_identical_to_exact() {
        let (gmm, mut data) = fitted();
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        data.dedup();
        let bare = GmmReducer::new(gmm.clone(), RangeMassMode::Exact, 0);
        let mut cached = GmmReducer::new(gmm, RangeMassMode::Exact, 0);
        cached.set_value_grid(data.clone());
        assert!(cached.has_prefix_table());
        assert!(!bare.has_prefix_table());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        // on-grid, off-grid, half-open, full, and empty intervals
        let ivs = [
            Interval::closed(data[10], data[data.len() / 2]),
            Interval::closed(-2.123, 3.456),
            Interval::closed(f64::NEG_INFINITY, data[42]),
            Interval::full(),
            Interval::closed(1.0, -1.0),
        ];
        for iv in &ivs {
            bare.range_mass(iv, &mut a);
            cached.range_mass(iv, &mut b);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "[{}, {}]", iv.lo, iv.hi);
        }
    }

    #[test]
    fn set_gmm_invalidates_the_prefix_table_until_finalize() {
        let (gmm, mut data) = fitted();
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        data.dedup();
        let mut r = GmmReducer::new(gmm.clone(), RangeMassMode::Exact, 0);
        r.set_value_grid(data);
        assert!(r.has_prefix_table());
        r.set_gmm(gmm);
        assert!(!r.has_prefix_table(), "stale table must not survive a mixture swap");
        r.finalize();
        assert!(r.has_prefix_table(), "finalize must rebuild the table from the kept grid");
    }

    #[test]
    fn reduce_is_argmax_assignment() {
        let (gmm, _) = fitted();
        let r = GmmReducer::new(gmm.clone(), RangeMassMode::Exact, 0);
        assert_eq!(r.reduce(-3.0), gmm.assign(-3.0));
        assert_eq!(r.k(), 2);
        assert_eq!(r.size_bytes(), 48);
    }
}
