//! Per-column handling, the AR slot layout, row encoding and query
//! construction (paper §5.1).
//!
//! Each table column maps to one of three handlers:
//!
//! * **Direct** — the ordinal encoding of the column's distinct values is
//!   fed to the AR model as-is (small domains);
//! * **Reduced** — a [`DomainReducer`] (GMM in IAM proper) replaces each
//!   value by its reduced value `a'` (large continuous domains);
//! * **Factorized** — Neurocard's column factorisation splits the ordinal
//!   code `v` into `(v / base, v % base)`, two AR *slots* (large domains
//!   that are not reduced — categorical keys, or any large column when the
//!   Neurocard baseline disables reduction).
//!
//! The AR model sees a sequence of *slots*; a factorised column contributes
//! two consecutive slots, everything else one.

use crate::config::{IamConfig, ReducerKind};
use crate::reduce::{DomainReducer, GmmReducer, HistReducer, SplineReducer, UmmReducer};
use iam_data::{Column, ColumnEncoding, RangeQuery, Table};
use iam_gmm::VbgmConfig;

/// How one table column is presented to the AR model.
pub enum ColumnHandler {
    /// Ordinal encoding used directly.
    Direct(ColumnEncoding),
    /// Domain reduced by a mixture/histogram model.
    Reduced(Box<dyn DomainReducer>),
    /// Ordinal encoding split into two subcolumns of size `≤ base`.
    Factorized {
        /// The ordinal encoding of the raw domain.
        enc: ColumnEncoding,
        /// Subcolumn base: code `v` becomes `(v / base, v % base)`.
        base: usize,
    },
}

impl Clone for ColumnHandler {
    fn clone(&self) -> Self {
        match self {
            ColumnHandler::Direct(e) => ColumnHandler::Direct(e.clone()),
            ColumnHandler::Reduced(r) => ColumnHandler::Reduced(r.clone_box()),
            ColumnHandler::Factorized { enc, base } => {
                ColumnHandler::Factorized { enc: enc.clone(), base: *base }
            }
        }
    }
}

/// The role of one AR slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRole {
    /// The only slot of column `col`.
    Whole {
        /// Table column index.
        col: usize,
    },
    /// High-order subcolumn of a factorised column.
    FactorHi {
        /// Table column index.
        col: usize,
    },
    /// Low-order subcolumn of a factorised column (immediately follows its
    /// `FactorHi`).
    FactorLo {
        /// Table column index.
        col: usize,
    },
}

impl SlotRole {
    /// The table column this slot belongs to.
    pub fn col(&self) -> usize {
        match *self {
            SlotRole::Whole { col } | SlotRole::FactorHi { col } | SlotRole::FactorLo { col } => {
                col
            }
        }
    }
}

/// Per-slot constraint derived from a query (§5.1's constructed query `q'`).
#[derive(Debug, Clone, PartialEq)]
pub enum SlotConstraint {
    /// Unconstrained column: skipped (wildcard skipping) or sampled over the
    /// full domain.
    Wildcard,
    /// Inclusive ordinal range `[lo, hi]` on the slot's domain.
    Range(usize, usize),
    /// The reduced-column case: `R'` is the whole reduced domain and this
    /// weight vector `P̂_GMM(R)` re-weights the AR conditional (§5.2).
    Weights(Vec<f64>),
    /// Low subcolumn of a factorised range: the admissible `[lo, hi]`
    /// depends on the sampled high subcolumn (previous slot).
    FactorLo {
        /// Ordinal range start on the *raw* (unfactorised) domain.
        lo_idx: usize,
        /// Ordinal range end (inclusive).
        hi_idx: usize,
        /// Factorisation base.
        base: usize,
    },
}

/// The full slot layout for one table.
#[derive(Clone)]
pub struct IamSchema {
    /// Per-column handlers.
    pub handlers: Vec<ColumnHandler>,
    /// Slot roles, in AR order.
    pub slots: Vec<SlotRole>,
    /// Slot domain sizes (the AR model's `domain_sizes`).
    pub slot_domains: Vec<usize>,
    /// Treat unconstrained columns as wildcards (skip) at inference.
    pub wildcard_skipping: bool,
    /// Ablation: binarise the reduced-column correction weights.
    pub hard_range_weights: bool,
}

impl IamSchema {
    /// Decide handlers for every column of `table` per `cfg`, fitting
    /// reducers on the data, and lay out the AR slots.
    pub fn build(table: &Table, cfg: &IamConfig) -> Self {
        let handlers: Vec<ColumnHandler> =
            table.columns.iter().map(|c| Self::handler_for(c, cfg)).collect();
        let mut schema = Self::from_handlers(handlers, cfg.wildcard_skipping);
        schema.hard_range_weights = cfg.hard_range_weights;
        schema
    }

    /// Build from pre-made handlers (used by joins and tests).
    pub fn from_handlers(handlers: Vec<ColumnHandler>, wildcard_skipping: bool) -> Self {
        let mut slots = Vec::new();
        let mut slot_domains = Vec::new();
        for (col, h) in handlers.iter().enumerate() {
            match h {
                ColumnHandler::Direct(enc) => {
                    slots.push(SlotRole::Whole { col });
                    slot_domains.push(enc.domain_size().max(1));
                }
                ColumnHandler::Reduced(r) => {
                    slots.push(SlotRole::Whole { col });
                    slot_domains.push(r.k());
                }
                ColumnHandler::Factorized { enc, base } => {
                    let d = enc.domain_size().max(1);
                    slots.push(SlotRole::FactorHi { col });
                    slot_domains.push(d.div_ceil(*base));
                    slots.push(SlotRole::FactorLo { col });
                    slot_domains.push((*base).min(d));
                }
            }
        }
        IamSchema { handlers, slots, slot_domains, wildcard_skipping, hard_range_weights: false }
    }

    fn handler_for(column: &Column, cfg: &IamConfig) -> ColumnHandler {
        let enc = ColumnEncoding::from_column(column);
        let domain = enc.domain_size();
        let reduce =
            column.is_continuous() && cfg.reduce_continuous && domain > cfg.reduce_threshold;
        if reduce {
            let values = match column {
                Column::Continuous(c) => &c.values,
                Column::Categorical(_) => unreachable!("reduce only targets continuous"),
            };
            // fit on a bounded sample for speed; the joint loop refines GMMs
            let sample: Vec<f64> = if values.len() > 20_000 {
                let stride = values.len() / 20_000 + 1;
                values.iter().copied().step_by(stride).collect()
            } else {
                values.clone()
            };
            let reducer: Box<dyn DomainReducer> = match cfg.reducer {
                ReducerKind::Gmm => {
                    let init = if cfg.auto_components {
                        iam_gmm::fit_vbgm(
                            &sample,
                            &VbgmConfig { max_components: cfg.components, ..Default::default() },
                        )
                    } else {
                        iam_gmm::fit_em(&sample, cfg.components, 40, 1e-7).gmm
                    };
                    let mut r = GmmReducer::new(init, cfg.range_mass, cfg.seed ^ 0x9e3779b9);
                    if cfg.gmm_prefix_tables {
                        // token grid for the CDF prefix table: the column's
                        // sorted distinct values (query bounds land here)
                        let mut grid = values.clone();
                        grid.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        grid.dedup();
                        r.set_value_grid(grid);
                    }
                    Box::new(r)
                }
                ReducerKind::Hist => Box::new(HistReducer::fit(&sample, cfg.components)),
                ReducerKind::Spline => Box::new(SplineReducer::fit(&sample, cfg.components)),
                ReducerKind::Umm => Box::new(UmmReducer::fit(&sample, cfg.components, 25)),
            };
            ColumnHandler::Reduced(reducer)
        } else if domain > cfg.factorize_threshold {
            ColumnHandler::Factorized { enc, base: cfg.factorize_threshold }
        } else {
            ColumnHandler::Direct(enc)
        }
    }

    /// Number of AR slots.
    pub fn nslots(&self) -> usize {
        self.slots.len()
    }

    /// Encode one raw row (projected to `f64` per column) into slot values.
    ///
    /// # Panics
    /// Panics if a direct/factorised value is absent from its dictionary —
    /// training rows must come from the table the encodings were built on.
    pub fn encode_row(&self, row: &[f64], out: &mut Vec<usize>) {
        out.clear();
        for (col, h) in self.handlers.iter().enumerate() {
            let v = row[col];
            match h {
                ColumnHandler::Direct(enc) => {
                    out.push(enc.encode(v).expect("value missing from dictionary"));
                }
                ColumnHandler::Reduced(r) => out.push(r.reduce(v)),
                ColumnHandler::Factorized { enc, base } => {
                    let idx = enc.encode(v).expect("value missing from dictionary");
                    out.push(idx / base);
                    out.push(idx % base);
                }
            }
        }
    }

    /// Construct the per-slot constraints for a range query (§5.1).
    ///
    /// Returns `None` when some constrained column provably selects nothing
    /// (e.g. an empty ordinal range), in which case the selectivity is 0.
    pub fn query_plan(&self, rq: &RangeQuery) -> Option<Vec<SlotConstraint>> {
        let plan = self.query_plan_inner(rq);
        if plan.is_none() {
            crate::probes::plan().empty_plans.inc();
        }
        plan
    }

    fn query_plan_inner(&self, rq: &RangeQuery) -> Option<Vec<SlotConstraint>> {
        assert_eq!(rq.cols.len(), self.handlers.len(), "query arity mismatch");
        let mut plan = Vec::with_capacity(self.nslots());
        for (col, h) in self.handlers.iter().enumerate() {
            let constraint = rq.cols[col].as_ref();
            match h {
                ColumnHandler::Direct(enc) => match constraint {
                    None => plan.push(self.wildcard(enc.domain_size())),
                    Some(iv) if iv.is_full() => plan.push(self.wildcard(enc.domain_size())),
                    Some(iv) => {
                        let (a, b) = enc.index_range(iv)?;
                        plan.push(SlotConstraint::Range(a, b));
                    }
                },
                ColumnHandler::Reduced(r) => match constraint {
                    None => plan.push(self.wildcard(r.k())),
                    Some(iv) if iv.is_full() => plan.push(self.wildcard(r.k())),
                    Some(iv) => {
                        let mut w = Vec::new();
                        r.range_mass(iv, &mut w);
                        if self.hard_range_weights {
                            // biased ablation: component either "in" or "out"
                            for x in &mut w {
                                *x = f64::from(u8::from(*x > 0.01));
                            }
                        }
                        // §5.1 widening: the slot's support becomes the full
                        // reduced domain, re-weighted by P̂_GMM(R_i)
                        let p = crate::probes::plan();
                        p.widened_fanout.observe(w.len() as u64);
                        p.component_nnz.observe(w.iter().filter(|&&x| x > 1e-12).count() as u64);
                        plan.push(SlotConstraint::Weights(w));
                    }
                },
                ColumnHandler::Factorized { enc, base } => {
                    let d = enc.domain_size().max(1);
                    match constraint {
                        None => {
                            plan.push(self.wildcard(d.div_ceil(*base)));
                            plan.push(self.wildcard((*base).min(d)));
                        }
                        Some(iv) if iv.is_full() => {
                            plan.push(self.wildcard(d.div_ceil(*base)));
                            plan.push(self.wildcard((*base).min(d)));
                        }
                        Some(iv) => {
                            let (a, b) = enc.index_range(iv)?;
                            plan.push(SlotConstraint::Range(a / base, b / base));
                            plan.push(SlotConstraint::FactorLo {
                                lo_idx: a,
                                hi_idx: b,
                                base: *base,
                            });
                        }
                    }
                }
            }
        }
        Some(plan)
    }

    fn wildcard(&self, domain: usize) -> SlotConstraint {
        if self.wildcard_skipping {
            SlotConstraint::Wildcard
        } else {
            SlotConstraint::Range(0, domain.saturating_sub(1))
        }
    }

    /// Sum of reducer model sizes (the AR network is accounted separately).
    pub fn reducers_size_bytes(&self) -> usize {
        self.handlers
            .iter()
            .map(|h| match h {
                ColumnHandler::Reduced(r) => r.size_bytes(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{CatColumn, ContColumn};
    use iam_data::query::{Interval, Op, Predicate, Query};

    fn table() -> Table {
        // categorical(5), continuous large (2000 distinct), categorical large (5000)
        let n = 10_000u32;
        Table::new(
            "t",
            vec![
                Column::Categorical(CatColumn::from_codes_dense(
                    "small_cat",
                    (0..n).map(|i| i % 5).collect(),
                    5,
                )),
                Column::Continuous(ContColumn::new(
                    "big_cont",
                    (0..n).map(|i| (i % 2000) as f64 + 0.5).collect(),
                )),
                Column::Categorical(CatColumn::from_codes_dense(
                    "big_cat",
                    (0..n).map(|i| i % 5000).collect(),
                    5000,
                )),
            ],
        )
        .unwrap()
    }

    fn cfg() -> IamConfig {
        IamConfig {
            components: 8,
            reduce_threshold: 1000,
            factorize_threshold: 1 << 11,
            ..IamConfig::small()
        }
    }

    #[test]
    fn handler_assignment_follows_paper_rules() {
        let t = table();
        let s = IamSchema::build(&t, &cfg());
        assert!(matches!(s.handlers[0], ColumnHandler::Direct(_)));
        assert!(matches!(s.handlers[1], ColumnHandler::Reduced(_)));
        assert!(matches!(s.handlers[2], ColumnHandler::Factorized { .. }));
        // slots: 1 + 1 + 2
        assert_eq!(s.nslots(), 4);
        assert_eq!(s.slot_domains[0], 5);
        assert_eq!(s.slot_domains[1], 8); // K components
        assert_eq!(s.slot_domains[2], 5000usize.div_ceil(2048)); // hi
        assert_eq!(s.slot_domains[3], 2048); // lo
    }

    #[test]
    fn neurocard_mode_factorises_continuous() {
        let t = table();
        let c = IamConfig { reduce_continuous: false, ..cfg() };
        let s = IamSchema::build(&t, &c);
        assert!(matches!(s.handlers[1], ColumnHandler::Direct(_)), "2000 ≤ 2048 stays direct");
        let c2 = IamConfig { reduce_continuous: false, factorize_threshold: 512, ..cfg() };
        let s2 = IamSchema::build(&t, &c2);
        assert!(matches!(s2.handlers[1], ColumnHandler::Factorized { .. }));
    }

    #[test]
    fn encode_row_round_trip() {
        let t = table();
        let s = IamSchema::build(&t, &cfg());
        let mut row = Vec::new();
        t.row_as_f64(4321, &mut row);
        let mut slots = Vec::new();
        s.encode_row(&row, &mut slots);
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[0], (4321 % 5) as usize);
        // factorised round trip: hi*base + lo == ordinal code
        let code = slots[2] * 2048 + slots[3];
        assert_eq!(code, 4321);
        assert!(slots[1] < 8);
    }

    #[test]
    fn query_plan_shapes() {
        let t = table();
        let s = IamSchema::build(&t, &cfg());
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Eq, value: 3.0 },
            Predicate { col: 1, op: Op::Le, value: 1000.0 },
            Predicate { col: 2, op: Op::Ge, value: 4000.0 },
        ]);
        let (rq, _) = q.normalize(3).unwrap();
        let plan = s.query_plan(&rq).unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0], SlotConstraint::Range(3, 3));
        assert!(matches!(&plan[1], SlotConstraint::Weights(w) if w.len() == 8));
        assert!(matches!(plan[2], SlotConstraint::Range(_, _)));
        assert!(matches!(
            plan[3],
            SlotConstraint::FactorLo { lo_idx: 4000, hi_idx: 4999, base: 2048 }
        ));
    }

    #[test]
    fn wildcards_skip_or_expand_per_config() {
        let t = table();
        let s = IamSchema::build(&t, &cfg());
        let rq = RangeQuery::unconstrained(3);
        let plan = s.query_plan(&rq).unwrap();
        assert!(plan.iter().all(|c| *c == SlotConstraint::Wildcard));

        let mut s2 = s.clone();
        s2.wildcard_skipping = false;
        let plan2 = s2.query_plan(&rq).unwrap();
        assert_eq!(plan2[0], SlotConstraint::Range(0, 4));
    }

    #[test]
    fn empty_range_yields_none() {
        let t = table();
        let s = IamSchema::build(&t, &cfg());
        // factorised column: codes live in 0..5000, so this is provably empty
        let mut rq = RangeQuery::unconstrained(3);
        rq.cols[2] = Some(Interval::closed(6000.0, 7000.0));
        assert!(s.query_plan(&rq).is_none());
        // reduced (GMM) column: emptiness is *soft* — the plan exists but
        // carries (near-)zero weights (values live in [0.5, 1999.5])
        let mut rq2 = RangeQuery::unconstrained(3);
        rq2.cols[1] = Some(Interval::closed(50_000.0, 60_000.0));
        let plan = s.query_plan(&rq2).unwrap();
        match &plan[1] {
            SlotConstraint::Weights(w) => {
                assert!(w.iter().all(|&m| m < 1e-6), "weights should vanish: {w:?}")
            }
            other => panic!("expected weights, got {other:?}"),
        }
    }

    #[test]
    fn reducer_size_accounting() {
        let t = table();
        let s = IamSchema::build(&t, &cfg());
        assert_eq!(s.reducers_size_bytes(), 3 * 8 * 8); // 3 params × K=8 × 8 bytes
    }
}
