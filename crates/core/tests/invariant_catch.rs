//! The debug invariant layer must catch a deliberately injected bug.
//!
//! A single NaN poisoned into the AR network's parameters is the classic
//! silent-corruption scenario: without invariants the estimator would
//! happily return NaN (or a clamped garbage value) as a "selectivity".
//! With invariants active, the softmax-mass check fires on the first
//! estimate that touches the poisoned slot distribution.

use iam_core::{IamConfig, IamEstimator};
use iam_data::{RangeQuery, SelectivityEstimator, WorkloadConfig, WorkloadGenerator};
use iam_nn::Parameters;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn small_estimator() -> (IamEstimator, Vec<RangeQuery>) {
    let table = iam_data::synth::Dataset::Twi.generate(800, 11);
    let cfg = IamConfig {
        components: 4,
        hidden: vec![24, 24],
        embed_dim: 6,
        epochs: 1,
        samples: 64,
        seed: 3,
        ..IamConfig::default()
    };
    let est = IamEstimator::fit(&table, cfg);
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 5);
    let queries = gen.gen_queries(4).iter().map(|q| q.normalize(2).unwrap().0).collect();
    (est, queries)
}

#[test]
fn injected_nan_weight_trips_mass_invariant() {
    if !iam_core::invariant::ACTIVE {
        // release build without the `invariants` feature: the layer
        // compiles to nothing by design, so there is nothing to catch
        return;
    }
    let (mut est, queries) = small_estimator();

    // sanity: the healthy model estimates without tripping anything
    for q in &queries {
        let s = est.estimate(q);
        assert!((0.0..=1.0).contains(&s));
    }

    // inject the bug: poison one weight in the middle of the net
    est.net_mut().visit_params(&mut |p, _| {
        if !p.is_empty() {
            p[p.len() / 2] = f32::NAN;
        }
    });
    est.prepare_inference();

    let err = catch_unwind(AssertUnwindSafe(|| {
        for q in &queries {
            let _ = est.estimate(q);
        }
    }))
    .expect_err("poisoned network must trip an invariant");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("iam invariant violated"), "unexpected panic: {msg}");
}
