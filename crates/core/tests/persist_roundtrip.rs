//! Property test: persistence is lossless for estimation.
//!
//! For arbitrary small trained models — random data, reducer kind, mixture
//! size, net shape, seeds — `save` → `load` must reproduce the original
//! estimator's answers **bitwise** (deterministic shared inference derives
//! its sampling seeds from persisted state, so any drift in config,
//! handlers, or weights would surface as a differing estimate).

use iam_core::{IamConfig, IamEstimator, ReducerKind};
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, SelectivityEstimator, WorkloadConfig, WorkloadGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn save_load_preserves_estimates_bitwise(
        nrows in 250usize..600,
        data_seed in 0u64..1_000,
        cfg_seed in 0u64..1_000,
        reducer_idx in 0usize..4,
        components in 2usize..6,
        width in 12usize..32,
        samples in 50usize..150,
    ) {
        let table = Dataset::Twi.generate(nrows, data_seed);
        let cfg = IamConfig {
            components,
            reducer: [
                ReducerKind::Gmm,
                ReducerKind::Hist,
                ReducerKind::Spline,
                ReducerKind::Umm,
            ][reducer_idx],
            hidden: vec![width, width],
            embed_dim: 6,
            epochs: 1,
            samples,
            seed: cfg_seed,
            ..IamConfig::default()
        };
        let mut est = IamEstimator::fit(&table, cfg);

        let mut buf = Vec::new();
        est.save(&mut buf).unwrap();
        let loaded = IamEstimator::load(&mut buf.as_slice()).unwrap();

        prop_assert_eq!(loaded.name(), est.name());
        prop_assert_eq!(loaded.model_size_bytes(), est.model_size_bytes());
        prop_assert_eq!(loaded.sampling_salt(), est.sampling_salt());

        let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), data_seed ^ 0x51);
        let queries: Vec<RangeQuery> =
            gen.gen_queries(5).iter().map(|q| q.normalize(2).unwrap().0).collect();
        let before = est.estimate_batch_shared(&queries, 1);
        let after = loaded.estimate_batch_shared(&queries, 2);
        for (i, (a, b)) in before.iter().zip(&after).enumerate() {
            prop_assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "query {} diverged after round-trip: {} vs {}",
                i, a, b
            );
        }
    }
}
