//! Tables 9-11: alternative domain-reducing methods (GMM vs equi-depth
//! histogram vs spline vs UMM) on WISDM, TWI and HIGGS — error quantiles
//! and estimation time.
//!
//! Component counts: the paper sweeps 30/100/1000 on million-row data; at
//! bench scale (~2×10^4 rows) the bucket count required for a given
//! within-bucket error shrinks proportionally, so we sweep 30/100/300 —
//! the same "needs an order of magnitude more buckets than GMM" story.

use iam_bench::{BenchScale, SingleTableExperiment};
use iam_core::{IamConfig, IamEstimator, ReducerKind};
use iam_data::synth::Dataset;

fn run(exp: &SingleTableExperiment, cfg: IamConfig, label: &str) {
    let mut est = IamEstimator::fit(&exp.table, cfg);
    let (errors, ms) = exp.evaluate(&mut est);
    println!(
        "{label:<14} {:>9} {:>9} {:>9} {:>11.2}",
        iam_data::metrics::fmt3(errors.median),
        iam_data::metrics::fmt3(errors.p95),
        iam_data::metrics::fmt3(errors.max),
        ms
    );
}

fn main() {
    let mut scale = BenchScale::from_env();
    // sweeps train many models; cap epochs to keep the sweep tractable
    scale.epochs = scale.epochs.min(6);
    scale.rows = scale.rows.min(12_000);
    let sweeps: [(ReducerKind, &[usize]); 4] = [
        (ReducerKind::Gmm, &[30]),
        (ReducerKind::Hist, &[30, 100, 300]),
        (ReducerKind::Spline, &[30, 100, 300]),
        (ReducerKind::Umm, &[30, 100, 300]),
    ];
    for (tno, ds) in Dataset::all().iter().enumerate() {
        eprintln!("[table9-11] {}", ds.name());
        let exp = SingleTableExperiment::prepare(*ds, &scale);
        println!("\n=== Table {}: domain reducers on {} ===", 9 + tno, ds.name());
        println!("{:<14} {:>9} {:>9} {:>9} {:>11}", "Method", "Median", "95th", "Max", "est (ms)");
        for (kind, counts) in &sweeps {
            for &k in *counts {
                let cfg = IamConfig { reducer: *kind, components: k, ..scale.iam_config() };
                run(&exp, cfg, &format!("{} ({k})", kind.name()));
            }
        }
    }
}
