//! Ablations discussed in the paper but reported in its technical report:
//!
//! * **unbiased vs. hard correction (§5.2)** — replacing the soft
//!   `P̂_GMM(R)` vector by a 0/1 "component intersects R" indicator;
//! * **column order (§4.3)** — the AR factorisation order;
//! * **joint vs. separate training (§4.3)**.

use iam_bench::{BenchScale, SingleTableExperiment};
use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::Table;

fn eval(exp: &SingleTableExperiment, cfg: IamConfig, label: &str) {
    let mut est = IamEstimator::fit(&exp.table, cfg);
    let (errors, _) = exp.evaluate(&mut est);
    println!("{}", errors.table_row(label));
}

fn main() {
    let mut scale = BenchScale::from_env();
    scale.epochs = scale.epochs.min(8);
    let exp = SingleTableExperiment::prepare(Dataset::Twi, &scale);
    println!("\n=== Ablations on TWI ===");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Variant", "Mean", "Median", "95th", "99th", "Max"
    );
    let base = scale.iam_config();
    eval(&exp, base.clone(), "IAM");
    eval(&exp, IamConfig { hard_range_weights: true, ..base.clone() }, "hard-corr");
    eval(&exp, IamConfig { joint_training: false, ..base.clone() }, "separate");
    eval(&exp, IamConfig { wildcard_skipping: false, ..base.clone() }, "no-wildcard");

    // column order: reversed column order on WISDM (left-to-right vs
    // right-to-left, paper §4.3)
    let exp_w = SingleTableExperiment::prepare(Dataset::Wisdm, &scale);
    println!("\n=== Column order on WISDM ===");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Order", "Mean", "Median", "95th", "99th", "Max"
    );
    eval(&exp_w, base.clone(), "natural");
    // reversed: permute the table's columns and the queries' column ids
    let rev_cols: Vec<_> = exp_w.table.columns.iter().rev().cloned().collect();
    let rev_table = Table::new("wisdm_rev", rev_cols).unwrap();
    let ncols = rev_table.ncols();
    let mut est = IamEstimator::fit(&rev_table, base);
    let mut errors = Vec::new();
    for (q, _, truth) in &exp_w.eval {
        let mut rq = iam_data::RangeQuery::unconstrained(ncols);
        let (orig, _) = q.normalize(ncols).unwrap();
        for (c, iv) in orig.cols.iter().enumerate() {
            rq.cols[ncols - 1 - c] = *iv;
        }
        use iam_data::SelectivityEstimator;
        errors.push(iam_data::q_error(*truth, est.estimate(&rq), rev_table.nrows()));
    }
    println!("{}", iam_data::ErrorSummary::from_errors(&errors).unwrap().table_row("reversed"));
}
