//! Table 3: estimation errors on TWI (Q-error quantiles, 12 estimators).

use iam_bench::{print_error_table, run_lineup, BenchScale, SingleTableExperiment};
use iam_data::synth::Dataset;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("[table3] preparing TWI at {} rows, {} queries", scale.rows, scale.queries);
    let exp = SingleTableExperiment::prepare(Dataset::Twi, &scale);
    let rows = run_lineup(&exp, true);
    print_error_table("Table 3: estimation errors on TWI", &rows);
}
