//! Figure 7: accuracy (95th-percentile q-error) versus the number of GMM
//! components, per dataset.

use iam_bench::{BenchScale, SingleTableExperiment};
use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;

fn main() {
    let mut scale = BenchScale::from_env();
    // sweeps train many models; cap epochs to keep the sweep tractable
    scale.epochs = scale.epochs.min(8);
    let ks = [1usize, 5, 10, 30, 50];
    println!("\n=== Figure 7: 95th-percentile q-error vs #components ===");
    print!("{:<6}", "K");
    for d in Dataset::all() {
        print!(" {:>9}", d.name());
    }
    println!();
    let mut rows = vec![vec![0.0f64; Dataset::all().len()]; ks.len()];
    for (di, ds) in Dataset::all().iter().enumerate() {
        eprintln!("[fig7] sweeping K on {}", ds.name());
        let exp = SingleTableExperiment::prepare(*ds, &scale);
        for (ki, &k) in ks.iter().enumerate() {
            let cfg = IamConfig { components: k, ..scale.iam_config() };
            let mut est = IamEstimator::fit(&exp.table, cfg);
            let (errors, _) = exp.evaluate(&mut est);
            rows[ki][di] = errors.p95;
        }
    }
    for (ki, &k) in ks.iter().enumerate() {
        print!("{k:<6}");
        for v in &rows[ki] {
            print!(" {:>9.2}", v);
        }
        println!();
    }
}
