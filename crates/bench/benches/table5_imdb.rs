//! Table 5: estimation errors on the IMDB join workload (q-error over
//! cardinalities; join-capable estimators only).

use iam_bench::join_exp::{run_join_lineup, JoinExperiment};
use iam_bench::{print_error_table, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    eprintln!(
        "[table5] preparing synthetic IMDB ({} movies, {} FOJ sample rows, {} queries)",
        scale.rows / 3,
        scale.rows,
        scale.queries
    );
    let exp = JoinExperiment::prepare(&scale);
    let rows = run_join_lineup(&exp);
    print_error_table("Table 5: estimation errors on IMDB (join queries)", &rows);
}
