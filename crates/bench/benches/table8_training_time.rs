//! Table 8: training time (s) on IMDB for MSCN / DeepDB / Neurocard / IAM.

use iam_bench::join_exp::JoinExperiment;
use iam_bench::BenchScale;
use iam_core::{neurocard_lite, IamEstimator};
use iam_estimators::spn::SpnConfig;
use iam_estimators::{mscn::MscnConfig, MscnLite, SpnEstimator};
use std::time::Instant;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("[table8] preparing IMDB");
    let exp = JoinExperiment::prepare(&scale);
    let cfg = scale.iam_config();

    let t0 = Instant::now();
    let _mscn =
        MscnLite::fit(&exp.flat, &exp.train, MscnConfig { seed: scale.seed, ..Default::default() });
    let mscn_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let _spn = SpnEstimator::new(&exp.flat, SpnConfig::default());
    let spn_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let _nc = IamEstimator::fit(&exp.flat, neurocard_lite(cfg.clone()));
    let nc_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let _iam = IamEstimator::fit(&exp.flat, cfg);
    let iam_s = t0.elapsed().as_secs_f64();

    println!("\n=== Table 8: training time on IMDB (s) ===");
    println!("{:<12} {:>9}", "Estimator", "seconds");
    println!("{:<12} {:>9.1}", "MSCN", mscn_s);
    println!("{:<12} {:>9.1}", "DeepDB", spn_s);
    println!("{:<12} {:>9.1}", "Neurocard", nc_s);
    println!("{:<12} {:>9.1}", "IAM", iam_s);
}
