//! Table 8: training time (s) on IMDB for MSCN / DeepDB / Neurocard / IAM,
//! plus a training-throughput sweep over worker-thread counts.
//!
//! The sweep retrains IAM with `train_threads` ∈ {1, 2, 4} (override the
//! list with `IAM_BENCH_THREAD_SWEEP`, e.g. `1,2,4,8`) and writes the
//! per-configuration epoch time and rows/s to `BENCH_training.json` at the
//! repository root. The thread count never changes the trained weights
//! (see `iam_core::train`), so the sweep measures pure wall-time scaling.
//!
//! With `IAM_BENCH_SIMULATE_CORES=N` the default sweep extends through the
//! powers of two up to N (oversubscribed when the host has fewer physical
//! cores). That exercises the N-core sharding behaviour, but the wall-clock
//! figures are not comparable to a real N-core host, so the simulated count
//! is stamped into the JSON next to `host_parallelism`.

use iam_bench::join_exp::JoinExperiment;
use iam_bench::BenchScale;
use iam_core::{neurocard_lite, IamConfig, IamEstimator};
use iam_estimators::spn::SpnConfig;
use iam_estimators::{mscn::MscnConfig, MscnLite, SpnEstimator};
use std::time::Instant;

/// One sweep configuration's measurements.
struct SweepRow {
    threads: usize,
    epochs: usize,
    mean_epoch_s: f64,
    rows_per_s: f64,
    final_ar_loss: f64,
}

fn simulated_cores() -> Option<usize> {
    std::env::var("IAM_BENCH_SIMULATE_CORES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

fn sweep_threads() -> Vec<usize> {
    std::env::var("IAM_BENCH_THREAD_SWEEP")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| match simulated_cores() {
            Some(n) => {
                let mut v: Vec<usize> =
                    std::iter::successors(Some(1usize), |&t| (t < n).then(|| (t * 2).min(n)))
                        .collect();
                v.dedup();
                v
            }
            None => vec![1, 2, 4],
        })
}

fn run_sweep(table: &iam_data::Table, cfg: &IamConfig, epochs: usize) -> Vec<SweepRow> {
    // one unmeasured fit first: the very first training run pays page
    // faults / frequency ramp-up and would bias whichever thread count
    // happens to go first
    let _ = IamEstimator::fit(table, IamConfig { epochs: 1, ..cfg.clone() });
    sweep_threads()
        .into_iter()
        .map(|threads| {
            let cfg = IamConfig { epochs, train_threads: threads, ..cfg.clone() };
            let est = IamEstimator::fit(table, cfg);
            let secs: f64 = est.stats.iter().map(|s| s.seconds).sum();
            let rows: usize = est.stats.iter().map(|s| s.rows).sum();
            SweepRow {
                threads,
                epochs,
                mean_epoch_s: secs / epochs.max(1) as f64,
                rows_per_s: rows as f64 / secs.max(1e-9),
                final_ar_loss: est.stats.last().map_or(f64::NAN, |s| s.ar_loss),
            }
        })
        .collect()
}

fn write_json(rows: &[SweepRow], nrows: usize) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_training.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"dataset_rows\": {nrows},\n"));
    s.push_str(&format!("  \"host_cores\": {cores},\n"));
    // same honesty marker BENCH_inference/BENCH_cluster carry: numbers are
    // only comparable across runs on hosts with the same parallelism, and
    // a simulated (oversubscribed) sweep is flagged as such
    s.push_str(&format!("  \"host_parallelism\": {cores},\n"));
    match simulated_cores() {
        Some(n) => s.push_str(&format!("  \"simulated_cores\": {n},\n")),
        None => s.push_str("  \"simulated_cores\": null,\n"),
    }
    s.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"train_threads\": {}, \"epochs\": {}, \"mean_epoch_ms\": {:.1}, \
             \"rows_per_s\": {:.0}, \"final_ar_loss\": {:.6}}}{}\n",
            r.threads,
            r.epochs,
            r.mean_epoch_s * 1000.0,
            r.rows_per_s,
            r.final_ar_loss,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    match std::fs::write(path, &s) {
        Ok(()) => eprintln!("[table8] wrote {path}"),
        Err(e) => eprintln!("[table8] could not write {path}: {e}"),
    }
}

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("[table8] preparing IMDB");
    let exp = JoinExperiment::prepare(&scale);
    let cfg = scale.iam_config();

    let t0 = Instant::now();
    let _mscn =
        MscnLite::fit(&exp.flat, &exp.train, MscnConfig { seed: scale.seed, ..Default::default() });
    let mscn_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let _spn = SpnEstimator::new(&exp.flat, SpnConfig::default());
    let spn_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let _nc = IamEstimator::fit(&exp.flat, neurocard_lite(cfg.clone()));
    let nc_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let _iam = IamEstimator::fit(&exp.flat, cfg.clone());
    let iam_s = t0.elapsed().as_secs_f64();

    println!("\n=== Table 8: training time on IMDB (s) ===");
    println!("{:<12} {:>9}", "Estimator", "seconds");
    println!("{:<12} {:>9.1}", "MSCN", mscn_s);
    println!("{:<12} {:>9.1}", "DeepDB", spn_s);
    println!("{:<12} {:>9.1}", "Neurocard", nc_s);
    println!("{:<12} {:>9.1}", "IAM", iam_s);

    // throughput sweep: a short retrain per thread count is enough for a
    // stable rows/s figure, and the final loss column makes the
    // thread-invariance visible in the printed table
    let sweep_epochs = scale.epochs.clamp(1, 3);
    eprintln!("[table8] thread sweep ({sweep_epochs} epochs per config)");
    let rows = run_sweep(&exp.flat, &cfg, sweep_epochs);

    println!("\n=== IAM training throughput vs train_threads ===");
    println!("{:<8} {:>12} {:>10} {:>14}", "threads", "epoch (ms)", "rows/s", "final ar loss");
    for r in &rows {
        println!(
            "{:<8} {:>12.1} {:>10.0} {:>14.6}",
            r.threads,
            r.mean_epoch_s * 1000.0,
            r.rows_per_s,
            r.final_ar_loss
        );
    }
    write_json(&rows, exp.flat.nrows());
}
