//! Cluster throughput: the distributed scatter/gather path vs
//! single-process batched inference, with per-stage span timings.
//!
//! Spins up three in-process `iam-dist` workers (real TCP on loopback —
//! the same code path as the multi-process binary), ships one model per
//! table with 2-way replication, and drives mixed batches through
//! [`Coordinator::estimate_batch`]. The single-process baseline answers
//! the identical batches with `estimate_batch_shared` directly, so the gap
//! is exactly the distribution tax: framing, TCP, the service queue, and
//! the scatter/gather threads. On a single-core host the cluster cannot
//! win — the number to watch is the per-stage breakdown (`dist.partition`
//! / `dist.rpc` / `dist.merge`, collected via `iam-obs` spans), which
//! shows where the tax is paid and how much parallel-host headroom the
//! rpc stage has.
//!
//! Every cluster answer is asserted bit-identical to the baseline before
//! timing starts.
//!
//! Results go to `BENCH_cluster.json` at the repository root, stamped with
//! the detected host parallelism (honesty metadata: qps and span numbers
//! from a 1-core container are not comparable to a parallel host).
//!
//! Environment knobs: `IAM_BENCH_CLUSTER_REQUESTS` (queries per
//! configuration, default 1024), `IAM_BENCH_CLUSTER_BATCH` (queries per
//! coordinator batch, default 64).

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, WorkloadConfig, WorkloadGenerator};
use iam_dist::{ClusterQuery, Coordinator, DistConfig, WorkerConfig, WorkerHandle};
use iam_obs::span;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn train(dataset: Dataset, seed: u64) -> (IamEstimator, Vec<RangeQuery>) {
    let table = dataset.generate(8_000, seed);
    let cfg = IamConfig {
        components: 6,
        hidden: vec![32, 32],
        embed_dim: 6,
        epochs: 1,
        samples: 100,
        seed,
        ..IamConfig::small()
    };
    let est = IamEstimator::fit(&table, cfg);
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), seed ^ 0x5A);
    let queries =
        gen.gen_queries(128).iter().map(|q| q.normalize(table.ncols()).unwrap().0).collect();
    (est, queries)
}

/// Aggregate of one coordinator stage across the timed run.
struct Stage {
    name: &'static str,
    calls: u64,
    total_us: u64,
}

fn collect_stages() -> Vec<Stage> {
    let mut stages: Vec<Stage> =
        ["dist.scatter_gather", "dist.partition", "dist.rpc", "dist.merge"]
            .iter()
            .map(|&name| Stage { name, calls: 0, total_us: 0 })
            .collect();
    for (path, agg) in span::report() {
        let leaf = path.rsplit(';').next().unwrap_or(&path);
        if let Some(st) = stages.iter_mut().find(|s| s.name == leaf) {
            st.calls += agg.count;
            st.total_us += agg.total_us;
        }
    }
    stages
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    requests: usize,
    batch: usize,
    workers: usize,
    replicas: usize,
    single_qps: f64,
    cluster_qps: f64,
    stages: &[Stage],
    host_parallelism: usize,
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    s.push_str(&format!("  \"workers\": {workers},\n"));
    s.push_str(&format!("  \"replicas\": {replicas},\n"));
    s.push_str(&format!("  \"requests\": {requests},\n"));
    s.push_str(&format!("  \"batch\": {batch},\n"));
    s.push_str(&format!("  \"single_process_qps\": {single_qps:.1},\n"));
    s.push_str(&format!("  \"cluster_qps\": {cluster_qps:.1},\n"));
    s.push_str("  \"stages\": [\n");
    for (i, st) in stages.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"span\": \"{}\", \"calls\": {}, \"total_us\": {}}}{}\n",
            st.name,
            st.calls,
            st.total_us,
            if i + 1 < stages.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    match std::fs::write(path, &s) {
        Ok(()) => eprintln!("[cluster_throughput] wrote {path}"),
        Err(e) => eprintln!("[cluster_throughput] could not write {path}: {e}"),
    }
}

fn main() {
    let requests = env_usize("IAM_BENCH_CLUSTER_REQUESTS", 1024);
    let batch_size = env_usize("IAM_BENCH_CLUSTER_BATCH", 64);
    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!("training per-table models …");
    let (mut wisdm, wisdm_queries) = train(Dataset::Wisdm, 7);
    let (mut twi, twi_queries) = train(Dataset::Twi, 11);

    // the batch stream: alternating tables, so every coordinator batch
    // scatters to both table groups
    let pool: Vec<ClusterQuery> = wisdm_queries
        .iter()
        .map(|q| ClusterQuery { table: "wisdm".into(), query: q.clone() })
        .chain(twi_queries.iter().map(|q| ClusterQuery { table: "twi".into(), query: q.clone() }))
        .collect();
    let expect: Vec<u64> = wisdm
        .estimate_batch_shared(&wisdm_queries, 1)
        .iter()
        .chain(twi.estimate_batch_shared(&twi_queries, 1).iter())
        .map(|v| v.to_bits())
        .collect();

    // --- cluster up: 3 workers, 2-way replicas --------------------------
    const WORKERS: usize = 3;
    const REPLICAS: usize = 2;
    let workers: Vec<WorkerHandle> = (0..WORKERS)
        .map(|_| WorkerHandle::spawn("127.0.0.1:0", WorkerConfig::default()).expect("bind worker"))
        .collect();
    let addrs = workers.iter().map(|w| w.addr).collect();
    let coord = Coordinator::new(
        addrs,
        &["wisdm", "twi"],
        DistConfig { replicas: REPLICAS, ..DistConfig::default() },
    );
    for (table, model) in [("wisdm", &mut wisdm), ("twi", &mut twi)] {
        for outcome in coord.deploy_model(table, model, "v1").expect("serialise snapshot") {
            outcome.result.expect("ship snapshot");
        }
    }

    // correctness gate + warm-up (connections, caches) before any timing
    for (i, r) in coord.estimate_batch(&pool).iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("warm-up query failed").to_bits(),
            expect[i],
            "cluster answer {i} differs from single-process inference"
        );
    }

    let chunk_at = |i: usize| -> Vec<ClusterQuery> {
        (0..batch_size).map(|j| pool[(i + j) % pool.len()].clone()).collect()
    };

    // --- single-process baseline ----------------------------------------
    // identical batches, answered by direct batched inference per table
    let t0 = Instant::now();
    let mut done = 0;
    while done < requests {
        let chunk = chunk_at(done);
        let (mut w, mut t) = (Vec::new(), Vec::new());
        for cq in &chunk {
            if cq.table == "wisdm" { &mut w } else { &mut t }.push(cq.query.clone());
        }
        std::hint::black_box(wisdm.estimate_batch_shared(&w, 1));
        std::hint::black_box(twi.estimate_batch_shared(&t, 1));
        done += chunk.len();
    }
    let single_qps = done as f64 / t0.elapsed().as_secs_f64();

    // --- cluster, with per-stage spans ----------------------------------
    span::enable();
    span::reset();
    let t0 = Instant::now();
    let mut done = 0;
    let mut skipped = 0usize;
    while done < requests {
        let chunk = chunk_at(done);
        done += chunk.len();
        skipped += coord.estimate_batch(&chunk).iter().filter(|r| r.is_err()).count();
    }
    let cluster_qps = done as f64 / t0.elapsed().as_secs_f64();
    span::disable();
    assert_eq!(skipped, 0, "healthy cluster skipped queries");

    let stages = collect_stages();
    println!(
        "\ncluster throughput — {WORKERS} workers × {REPLICAS} replicas, \
         batch {batch_size}, {done} queries, host parallelism {host_parallelism}"
    );
    println!("{:<22}  {:>10}", "config", "q/s");
    println!("{:<22}  {:>10.1}", "single process", single_qps);
    println!("{:<22}  {:>10.1}", "cluster (loopback)", cluster_qps);
    println!("\n{:<22}  {:>8}  {:>12}  {:>10}", "stage", "calls", "total (µs)", "µs/call");
    for st in &stages {
        println!(
            "{:<22}  {:>8}  {:>12}  {:>10.1}",
            st.name,
            st.calls,
            st.total_us,
            st.total_us as f64 / st.calls.max(1) as f64
        );
    }

    write_json(
        done,
        batch_size,
        WORKERS,
        REPLICAS,
        single_qps,
        cluster_qps,
        &stages,
        host_parallelism,
    );

    coord.shutdown_cluster();
    for w in workers {
        w.stop();
    }
}
