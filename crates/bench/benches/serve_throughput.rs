//! Service throughput: micro-batched serving vs one-query-at-a-time.
//!
//! Trains one IAM model on WISDM-like sensor data, then measures sustained
//! queries/second for:
//!
//! * `direct` — the pre-service status quo: a closed loop answering one
//!   query per inference call (no queue, no batching);
//! * the full service stack (queue → batcher → inference → reply) driven
//!   by N concurrent client threads, for `max_batch` ∈ {1, 16, 64}.
//!
//! `max_batch = 1` isolates the per-request service overhead; larger
//! values let the scheduler coalesce concurrent requests into shared
//! forward passes (§5.3, "Batch Query Inference"). The result cache is
//! disabled so the numbers measure inference throughput, not cache
//! bandwidth; a zero flush window means workers only coalesce what is
//! already queued (never trading latency for batch size).
//!
//! Environment knobs: `IAM_BENCH_SERVE_REQUESTS` (total requests per
//! configuration, default 1536), `IAM_BENCH_SERVE_THREADS` (client
//! threads, default 32).

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, WorkloadConfig, WorkloadGenerator};
use iam_serve::{ServeConfig, Service};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::time::{Duration, Instant};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let requests = env_usize("IAM_BENCH_SERVE_REQUESTS", 1536);
    let threads = env_usize("IAM_BENCH_SERVE_THREADS", 32);

    let table = Dataset::Wisdm.generate(20_000, 42);
    let ncols = table.ncols();
    println!("training IAM on {} ({} rows) …", Dataset::Wisdm.name(), table.nrows());
    let cfg = IamConfig {
        components: 8,
        hidden: vec![48, 48],
        embed_dim: 8,
        epochs: 2,
        samples: 200,
        seed: 7,
        ..IamConfig::small()
    };
    let model = IamEstimator::fit(&table, cfg);

    // keep the workload's repetition factor (~6× per distinct query) stable
    // under IAM_BENCH_SERVE_REQUESTS so the cache row measures the same
    // workload shape at any scale
    let pool_size = (requests / 6).clamp(16, 256);
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 99);
    let pool: Vec<RangeQuery> =
        gen.gen_queries(pool_size).iter().map(|q| q.normalize(ncols).unwrap().0).collect();

    println!(
        "\nserve throughput — {threads} client threads, {requests} requests per config, cache off"
    );
    println!(
        "{:<16}  {:>10}  {:>12}  {:>10}  {:>8}",
        "config", "q/s", "mean batch", "p95 (µs)", "speedup"
    );

    // baseline: one query per inference call, sequentially
    let t0 = Instant::now();
    for i in 0..requests {
        let q = &pool[i % pool.len()];
        std::hint::black_box(model.estimate_batch_shared(std::slice::from_ref(q), 1));
    }
    let baseline_qps = requests as f64 / t0.elapsed().as_secs_f64();
    println!(
        "{:<16}  {:>10.1}  {:>12.2}  {:>10}  {:>7.2}x",
        "direct 1-by-1", baseline_qps, 1.0, "-", 1.0
    );

    for &max_batch in &[1usize, 16, 64] {
        let service = Service::start(
            model.clone(),
            "bench",
            ServeConfig {
                workers: 2,
                max_batch,
                queue_depth: 1024,
                flush_interval: Duration::ZERO,
                inner_threads: 1,
                cache_capacity: 0,
                request_timeout: Duration::from_secs(120),
                ..ServeConfig::default()
            },
        );

        let next = AtomicUsize::new(0);
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let client = service.client();
                let next = &next;
                let pool = &pool;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Relaxed);
                    if i >= requests {
                        break;
                    }
                    client.estimate(&pool[i % pool.len()]).expect("estimate failed");
                });
            }
        });
        let elapsed = start.elapsed();
        let snap = service.shutdown();
        assert_eq!(snap.timeouts, 0, "bench requests timed out");

        let qps = requests as f64 / elapsed.as_secs_f64();
        println!(
            "{:<16}  {:>10.1}  {:>12.2}  {:>10}  {:>7.2}x",
            format!("serve batch≤{max_batch}"),
            qps,
            snap.mean_batch,
            snap.latency_p95_us,
            qps / baseline_qps
        );
    }

    // the deployed configuration: result cache on. The workload repeats
    // each distinct query ~6×, which is what serving looks like in a
    // plan-enumerating optimizer — repeats are answered from the cache,
    // concurrent duplicates dedupe inside a batch.
    let service = Service::start(
        model.clone(),
        "bench",
        ServeConfig {
            workers: 2,
            max_batch: 16,
            queue_depth: 1024,
            flush_interval: Duration::ZERO,
            inner_threads: 1,
            cache_capacity: 4096,
            request_timeout: Duration::from_secs(120),
            ..ServeConfig::default()
        },
    );
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let client = service.client();
            let next = &next;
            let pool = &pool;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Relaxed);
                if i >= requests {
                    break;
                }
                client.estimate(&pool[i % pool.len()]).expect("estimate failed");
            });
        }
    });
    let elapsed = start.elapsed();
    let snap = service.shutdown();
    let qps = requests as f64 / elapsed.as_secs_f64();
    println!(
        "{:<16}  {:>10.1}  {:>12.2}  {:>10}  {:>7.2}x   (hit rate {:.0}%)",
        "serve + cache",
        qps,
        snap.mean_batch,
        snap.latency_p95_us,
        qps / baseline_qps,
        100.0 * snap.cache_hit_rate()
    );
    assert!(
        qps >= 2.0 * baseline_qps,
        "batched service with cache should be ≥2× direct 1-by-1 serving \
         ({qps:.0} vs {baseline_qps:.0} q/s)"
    );
}
