//! Figure 5: end-to-end execution time on IMDB under different estimators'
//! cardinalities (Selinger DP optimizer + hash-join executor).

use iam_bench::join_exp::JoinExperiment;
use iam_bench::BenchScale;
use iam_core::{neurocard_lite, IamEstimator};
use iam_estimators::spn::SpnConfig;
use iam_estimators::SpnEstimator;
use iam_join::workload::JoinWorkloadGenerator;
use iam_opt::{
    execute, optimize, ExactCardEstimator, FlatCardEstimator, IndependenceCardEstimator,
    JoinCardEstimator,
};

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("[fig5] preparing IMDB + training estimators");
    let exp = JoinExperiment::prepare(&scale);
    let cfg = scale.iam_config();
    let iam = IamEstimator::fit(&exp.flat, cfg.clone());
    let nc = IamEstimator::fit(&exp.flat, neurocard_lite(cfg));
    let spn = SpnEstimator::new(&exp.flat, SpnConfig::default());

    let mut arms: Vec<(&str, Box<dyn JoinCardEstimator>)> = vec![
        ("exact", Box::new(ExactCardEstimator::new(&exp.star))),
        ("Postgres", Box::new(IndependenceCardEstimator::new(&exp.star))),
        ("DeepDB", Box::new(FlatCardEstimator::new(spn, exp.schema.clone()))),
        ("Neurocard", Box::new(FlatCardEstimator::new(nc, exp.schema.clone()))),
        ("IAM", Box::new(FlatCardEstimator::new(iam, exp.schema.clone()))),
    ];

    let mut gen = JoinWorkloadGenerator::new(&exp.star, scale.seed ^ 0x55);
    let queries = gen.gen_queries(scale.queries.min(60));

    println!("\n=== Figure 5: end-to-end execution on IMDB ===");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "Estimator", "exec time (s)", "work (tuples)", "plan time (s)"
    );
    for (name, est) in arms.iter_mut() {
        let mut work = 0u64;
        let mut exec_s = 0.0f64;
        let mut plan_s = 0.0f64;
        for q in &queries {
            let t0 = std::time::Instant::now();
            let plan = optimize(q, est.as_mut());
            plan_s += t0.elapsed().as_secs_f64();
            let rep = execute(&exp.star, q, &plan);
            work += rep.intermediate_tuples;
            exec_s += rep.seconds;
        }
        println!("{name:<12} {exec_s:>14.3} {work:>14} {plan_s:>14.3}");
    }
}
