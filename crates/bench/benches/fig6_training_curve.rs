//! Figure 6: maximum q-error versus training epoch, per dataset.

use iam_bench::{BenchScale, SingleTableExperiment};
use iam_core::IamEstimator;
use iam_data::synth::Dataset;
use iam_data::{q_error, SelectivityEstimator};

fn main() {
    let mut scale = BenchScale::from_env();
    scale.queries = scale.queries.min(100);
    let max_epochs = scale.epochs.clamp(10, 15);
    println!("\n=== Figure 6: max q-error vs training epoch ===");
    print!("{:<8}", "epoch");
    for d in Dataset::all() {
        print!(" {:>9}", d.name());
    }
    println!();
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for ds in Dataset::all() {
        eprintln!("[fig6] training on {}", ds.name());
        let exp = SingleTableExperiment::prepare(ds, &scale);
        let mut est = IamEstimator::build(&exp.table, scale.iam_config());
        let mut curve = Vec::new();
        for _ in 0..max_epochs {
            est.train_epochs(&exp.table, 1);
            let max_err = exp
                .eval
                .iter()
                .map(|(_, rq, truth)| q_error(*truth, est.estimate(rq), exp.table.nrows()))
                .fold(0.0f64, f64::max);
            curve.push(max_err);
        }
        curves.push(curve);
    }
    for e in 0..max_epochs {
        print!("{:<8}", e + 1);
        for c in &curves {
            print!(" {:>9.1}", c[e]);
        }
        println!();
    }
}
