//! Figure 4: single-query inference time per dataset, per estimator.
//!
//! Reuses the Tables-2-4 line-up runs and reports the latency column.

use iam_bench::{print_latency_table, run_lineup, BenchScale, SingleTableExperiment};
use iam_data::synth::Dataset;

fn main() {
    let mut scale = BenchScale::from_env();
    // latency shape needs fewer queries and epochs than the accuracy tables
    scale.queries = scale.queries.min(60);
    scale.epochs = scale.epochs.min(3);
    for ds in Dataset::all() {
        eprintln!("[fig4] {} at {} rows", ds.name(), scale.rows);
        let exp = SingleTableExperiment::prepare(ds, &scale);
        let rows = run_lineup(&exp, true);
        print_latency_table(&format!("Figure 4: inference time on {}", ds.name()), &rows);
    }
}
