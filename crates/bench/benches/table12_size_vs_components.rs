//! Table 12: IAM model size (KB) versus the number of mixture components.

use iam_bench::join_exp::JoinExperiment;
use iam_bench::BenchScale;
use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::SelectivityEstimator;

fn main() {
    let mut scale = BenchScale::from_env();
    scale.epochs = 0; // sizes are architecture-only
    let ks = [1usize, 10, 30, 50, 70];
    println!("\n=== Table 12: IAM model size (KB) vs #components ===");
    println!("{:<6} {:>9} {:>9} {:>9} {:>9}", "K", "WISDM", "TWI", "HIGGS", "IMDB");
    let tables: Vec<(String, iam_data::Table)> = Dataset::all()
        .iter()
        .map(|d| (d.name().to_string(), d.generate(scale.rows, scale.seed)))
        .chain(std::iter::once(("IMDB".to_string(), JoinExperiment::prepare(&scale).flat)))
        .collect();
    for k in ks {
        print!("{k:<6}");
        for (_, t) in &tables {
            let cfg = IamConfig { components: k, ..scale.iam_config() };
            let est = IamEstimator::build(t, cfg);
            print!(" {:>9.1}", est.model_size_bytes() as f64 / 1024.0);
        }
        println!();
    }
}
