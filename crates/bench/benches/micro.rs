//! Criterion micro-benchmarks for the hot paths: GMM operations, MADE
//! forward passes and progressive-sampling inference.

use criterion::{criterion_group, criterion_main, Criterion};
use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, SelectivityEstimator, WorkloadConfig, WorkloadGenerator};
use iam_gmm::Gmm1d;
use iam_nn::{MadeConfig, MadeNet};
use std::hint::black_box;

fn gmm_ops(c: &mut Criterion) {
    let gmm = Gmm1d::new(
        (0..30).map(|i| 1.0 + i as f64).collect(),
        (0..30).map(|i| i as f64 * 3.0).collect(),
        vec![1.5; 30],
    );
    c.bench_function("gmm_assign", |b| b.iter(|| black_box(gmm.assign(black_box(42.7)))));
    c.bench_function("gmm_range_mass_exact", |b| {
        b.iter(|| black_box(gmm.range_mass_exact(black_box(10.0), black_box(55.0))))
    });
}

fn made_forward(c: &mut Criterion) {
    let mut net = MadeNet::new(MadeConfig {
        domain_sizes: vec![51, 18, 30, 30, 30],
        hidden: vec![128, 64, 64, 128],
        embed_dim: 16,
        residual: true,
        seed: 1,
    });
    let batch = 256usize;
    let inputs: Vec<usize> = (0..batch * 5).map(|i| i % 18).collect();
    let mut out = Vec::new();
    c.bench_function("made_forward_column_b256", |b| {
        b.iter(|| {
            net.forward_column(black_box(&inputs), batch, 4, &mut out);
            black_box(out.len())
        })
    });
}

fn made_train(c: &mut Criterion) {
    let mut net = MadeNet::new(MadeConfig {
        domain_sizes: vec![51, 18, 30, 30, 30],
        hidden: vec![128, 64, 64, 128],
        embed_dim: 16,
        residual: true,
        seed: 2,
    });
    let batch = 256usize;
    let inputs: Vec<usize> = (0..batch * 5).map(|i| (i * 7) % 18).collect();
    let targets: Vec<usize> = (0..batch * 5).map(|i| (i * 13) % 18).collect();
    c.bench_function("made_train_batch_b256_t1", |b| {
        b.iter(|| black_box(net.train_batch_sharded(black_box(&inputs), &targets, batch, 1)))
    });
}

fn iam_inference(c: &mut Criterion) {
    let table = Dataset::Wisdm.generate(5000, 3);
    let cfg = IamConfig { epochs: 2, samples: 256, ..IamConfig::small() };
    let mut iam = IamEstimator::fit(&table, cfg);
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 5);
    let rqs: Vec<RangeQuery> =
        gen.gen_queries(16).into_iter().map(|q| q.normalize(table.ncols()).unwrap().0).collect();
    let mut i = 0usize;
    c.bench_function("iam_estimate_single", |b| {
        b.iter(|| {
            let rq = &rqs[i % rqs.len()];
            i += 1;
            black_box(iam.estimate(black_box(rq)))
        })
    });
}

criterion_group!(benches, gmm_ops, made_forward, made_train, iam_inference);
criterion_main!(benches);
