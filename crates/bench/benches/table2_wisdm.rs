//! Table 2: estimation errors on WISDM (Q-error quantiles, 12 estimators).

use iam_bench::{print_error_table, run_lineup, BenchScale, SingleTableExperiment};
use iam_data::synth::Dataset;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("[table2] preparing WISDM at {} rows, {} queries", scale.rows, scale.queries);
    let exp = SingleTableExperiment::prepare(Dataset::Wisdm, &scale);
    let rows = run_lineup(&exp, true);
    print_error_table("Table 2: estimation errors on WISDM", &rows);
}
