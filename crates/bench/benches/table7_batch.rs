//! Table 7: inference time with batch query processing on IMDB
//! (ms per query for batch sizes 1 / 64 / 128).

use iam_bench::join_exp::JoinExperiment;
use iam_bench::BenchScale;
use iam_core::{neurocard_lite, IamEstimator};
use iam_data::RangeQuery;
use iam_data::SelectivityEstimator;
use iam_estimators::{mscn::MscnConfig, MscnLite};
use std::time::Instant;

fn main() {
    let mut scale = BenchScale::from_env();
    scale.queries = scale.queries.max(128);
    eprintln!("[table7] preparing IMDB + training estimators");
    let exp = JoinExperiment::prepare(&scale);
    let cfg = scale.iam_config();

    let mut iam = IamEstimator::fit(&exp.flat, cfg.clone());
    let mut nc = IamEstimator::fit(&exp.flat, neurocard_lite(cfg));
    let mut mscn = MscnLite::fit(
        &exp.flat,
        &exp.train,
        MscnConfig { seed: exp.scale.seed, ..Default::default() },
    );

    let rqs: Vec<RangeQuery> = exp.eval.iter().map(|(q, _)| exp.schema.rewrite(q)).collect();

    println!("\n=== Table 7: batch inference on IMDB (ms/query) ===");
    println!("{:<12} {:>9} {:>9} {:>9}", "Estimator", "1", "64", "128");

    let batch_time = |est: &mut IamEstimator, b: usize| -> f64 {
        let t0 = Instant::now();
        let mut answered = 0usize;
        for chunk in rqs.chunks(b).take((128 / b).max(1)) {
            est.estimate_batch(chunk);
            answered += chunk.len();
        }
        t0.elapsed().as_secs_f64() * 1000.0 / answered.max(1) as f64
    };
    let mscn_time = |est: &mut MscnLite, b: usize| -> f64 {
        // MSCN featurisation is per-query; batching only amortises dispatch
        let t0 = Instant::now();
        let mut answered = 0usize;
        for chunk in rqs.chunks(b).take((128 / b).max(1)) {
            for q in chunk {
                est.estimate(q);
            }
            answered += chunk.len();
        }
        t0.elapsed().as_secs_f64() * 1000.0 / answered.max(1) as f64
    };

    let m: Vec<f64> = [1, 64, 128].iter().map(|&b| mscn_time(&mut mscn, b)).collect();
    println!("{:<12} {:>9.3} {:>9.3} {:>9.3}", "MSCN", m[0], m[1], m[2]);
    let n: Vec<f64> = [1, 64, 128].iter().map(|&b| batch_time(&mut nc, b)).collect();
    println!("{:<12} {:>9.2} {:>9.2} {:>9.2}", "Neurocard", n[0], n[1], n[2]);
    let i: Vec<f64> = [1, 64, 128].iter().map(|&b| batch_time(&mut iam, b)).collect();
    println!("{:<12} {:>9.2} {:>9.2} {:>9.2}", "IAM", i[0], i[1], i[2]);
}
