//! Table 6: model sizes (MSCN / DeepDB / Neurocard / IAM) per dataset.

use iam_bench::join_exp::JoinExperiment;
use iam_bench::{BenchScale, SingleTableExperiment};
use iam_core::{neurocard_lite, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::SelectivityEstimator;
use iam_estimators::spn::SpnConfig;
use iam_estimators::{mscn::MscnConfig, MscnLite, SpnEstimator};

fn main() {
    let mut scale = BenchScale::from_env();
    scale.epochs = 1; // sizes do not depend on training length
    println!("\n=== Table 6: model sizes (KB) ===");
    println!("{:<12} {:>9} {:>9} {:>9} {:>9}", "Estimator", "WISDM", "TWI", "HIGGS", "IMDB");
    let mut sizes: Vec<[f64; 4]> = vec![[0.0; 4]; 4];
    let cfg = scale.iam_config();
    for (di, table) in Dataset::all()
        .iter()
        .map(|d| SingleTableExperiment::prepare(*d, &scale).table)
        .chain(std::iter::once(JoinExperiment::prepare(&scale).flat))
        .enumerate()
    {
        let train: Vec<(iam_data::RangeQuery, f64)> = Vec::new();
        let mscn = MscnLite::fit(&table, &train, MscnConfig { epochs: 0, ..Default::default() });
        let spn = SpnEstimator::new(&table, SpnConfig::default());
        let mut nc = IamEstimator::build(&table, neurocard_lite(cfg.clone()));
        let mut iam = IamEstimator::build(&table, cfg.clone());
        nc.train_epochs(&table, 0);
        iam.train_epochs(&table, 0);
        sizes[0][di] = mscn.model_size_bytes() as f64 / 1024.0;
        sizes[1][di] = spn.model_size_bytes() as f64 / 1024.0;
        sizes[2][di] = nc.model_size_bytes() as f64 / 1024.0;
        sizes[3][di] = iam.model_size_bytes() as f64 / 1024.0;
    }
    for (name, row) in ["MSCN", "DeepDB", "Neurocard", "IAM"].iter().zip(&sizes) {
        println!("{:<12} {:>9.1} {:>9.1} {:>9.1} {:>9.1}", name, row[0], row[1], row[2], row[3]);
    }
}
