//! Table 4: estimation errors on HIGGS (Q-error quantiles, 12 estimators).

use iam_bench::{print_error_table, run_lineup, BenchScale, SingleTableExperiment};
use iam_data::synth::Dataset;

fn main() {
    let scale = BenchScale::from_env();
    eprintln!("[table4] preparing HIGGS at {} rows, {} queries", scale.rows, scale.queries);
    let exp = SingleTableExperiment::prepare(Dataset::Higgs, &scale);
    let rows = run_lineup(&exp, true);
    print_error_table("Table 4: estimation errors on HIGGS", &rows);
}
