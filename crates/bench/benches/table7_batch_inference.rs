//! Batch-inference throughput: queries/second and ms/query as the batch
//! size grows, across fused-table precisions.
//!
//! Trains one IAM model on WISDM-like sensor data, then answers the same
//! query pool through `estimate_batch_shared` in chunks of 1/16/64/256
//! queries per call. Larger chunks amortise per-call overhead and give the
//! prefix deduplication more identical all-MASK prefixes to collapse; the
//! fused tables replace the per-row embedding gather + layer-1 GEMM by
//! cached per-token hidden vectors. On top of the fused/off axis the sweep
//! covers the three table precisions (`f32` / `f16` / `int8`): f32 is
//! asserted bitwise identical to the unfused path, while the quantized
//! variants are gated against a declared accuracy budget — the maximum
//! q-error between any quantized estimate and its f32 counterpart over the
//! whole pool must stay below `IAM_BENCH_QUANT_BUDGET`.
//!
//! Results go to `BENCH_inference.json` at the repository root.
//!
//! Environment knobs:
//! - `IAM_BENCH_INFER_REQUESTS` — queries per configuration, default 1024.
//! - `IAM_BENCH_QUANT_BUDGET` — max allowed q-error of f16/int8 estimates
//!   vs f32 (default [`DEFAULT_QUANT_BUDGET`]). The bench aborts if a
//!   quantized precision exceeds it.
//! - `IAM_BENCH_SIMULATE_CORES` — run the shared batch path with this many
//!   worker threads regardless of the physical core count (oversubscribed
//!   on small hosts). Exercises the N-core sharding/determinism behaviour;
//!   wall-clock numbers from a simulated run are NOT comparable to a real
//!   N-core host, so the mode is stamped into the JSON next to
//!   `host_parallelism`.

use iam_core::{IamConfig, IamEstimator, TablePrecision};
use iam_data::synth::Dataset;
use iam_data::{q_error, RangeQuery, WorkloadConfig, WorkloadGenerator};
use std::time::Instant;

/// Declared accuracy budget for the quantized table precisions: the largest
/// q-error any f16/int8 estimate may show against its f32 counterpart on
/// the bench pool. Chosen with headroom above the measured deltas (f16
/// truncation keeps ~8 mantissa bits; int8 rows are affine over a 256-level
/// grid) so a regression in the dequantize path trips the gate rather than
/// drifting silently.
const DEFAULT_QUANT_BUDGET: f64 = 1.05;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One configuration's measurements.
struct Row {
    batch: usize,
    fused: bool,
    precision: &'static str,
    qps: f64,
    ms_per_query: f64,
    max_qerr_delta: f64,
}

fn run_config(
    est: &IamEstimator,
    pool: &[RangeQuery],
    requests: usize,
    batch: usize,
    threads: usize,
) -> f64 {
    let t0 = Instant::now();
    let mut done = 0;
    while done < requests {
        let take = batch.min(requests - done);
        let chunk: Vec<RangeQuery> =
            (0..take).map(|i| pool[(done + i) % pool.len()].clone()).collect();
        std::hint::black_box(est.estimate_batch_shared(&chunk, threads));
        done += take;
    }
    t0.elapsed().as_secs_f64()
}

fn write_json(rows: &[Row], requests: usize, budget: f64, simulated: Option<usize>) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
    // honesty metadata: numbers from a 1-core container are not comparable
    // to a parallel host, so stamp what the run actually had — and whether
    // the thread count was simulated rather than physical
    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    match simulated {
        Some(n) => s.push_str(&format!("  \"simulated_cores\": {n},\n")),
        None => s.push_str("  \"simulated_cores\": null,\n"),
    }
    s.push_str(&format!("  \"requests_per_config\": {requests},\n"));
    s.push_str(&format!("  \"quant_budget\": {budget},\n"));
    s.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"batch\": {}, \"fused_layer1\": {}, \"table_precision\": \"{}\", \
             \"qps\": {:.1}, \"ms_per_query\": {:.4}, \"max_qerr_delta\": {:.6}}}{}\n",
            r.batch,
            r.fused,
            r.precision,
            r.qps,
            r.ms_per_query,
            r.max_qerr_delta,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    match std::fs::write(path, &s) {
        Ok(()) => eprintln!("[table7_batch_inference] wrote {path}"),
        Err(e) => eprintln!("[table7_batch_inference] could not write {path}: {e}"),
    }
}

fn main() {
    let requests = env_usize("IAM_BENCH_INFER_REQUESTS", 1024);
    let budget = env_f64("IAM_BENCH_QUANT_BUDGET", DEFAULT_QUANT_BUDGET);
    let simulated = std::env::var("IAM_BENCH_SIMULATE_CORES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let threads = simulated.unwrap_or(1);

    let table = Dataset::Wisdm.generate(20_000, 42);
    let ncols = table.ncols();
    let nrows = table.nrows();
    println!("training IAM on {} ({} rows) …", Dataset::Wisdm.name(), nrows);
    let cfg = IamConfig {
        components: 8,
        hidden: vec![48, 48],
        embed_dim: 8,
        epochs: 2,
        samples: 200,
        seed: 7,
        ..IamConfig::small()
    };
    let mut est = IamEstimator::fit(&table, cfg);

    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 99);
    let pool: Vec<RangeQuery> =
        gen.gen_queries(256).iter().map(|q| q.normalize(ncols).unwrap().0).collect();

    // the fused f32 path must never change a single bit of any estimate
    est.set_fused_layer1(true);
    est.set_table_precision(TablePrecision::F32);
    let f32_ests = est.estimate_batch_shared(&pool, threads);
    est.set_fused_layer1(false);
    let without = est.estimate_batch_shared(&pool, threads);
    for (i, (a, b)) in f32_ests.iter().zip(&without).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "fused f32 tables changed estimate {i}");
    }

    // the quantized precisions trade bits for speed; measure the worst
    // q-error against the f32 estimates and gate it on the declared budget
    est.set_fused_layer1(true);
    let mut deltas = [("f32", 1.0f64), ("f16", 1.0), ("int8", 1.0)];
    for (precision, slot) in [(TablePrecision::F16, 1usize), (TablePrecision::Int8, 2)] {
        est.set_table_precision(precision);
        let ests = est.estimate_batch_shared(&pool, threads);
        let delta =
            f32_ests.iter().zip(&ests).map(|(&f, &q)| q_error(f, q, nrows)).fold(1.0f64, f64::max);
        println!("max q-error delta vs f32 [{}]: {delta:.6}", precision.name());
        assert!(
            delta <= budget,
            "{} estimates exceed the quantization budget: {delta:.6} > {budget:.6}",
            precision.name()
        );
        deltas[slot].1 = delta;
    }

    // warm-up pass so page faults / buffer growth don't bias the first row
    est.set_table_precision(TablePrecision::F32);
    let _ = run_config(&est, &pool, requests.min(256), 64, threads);

    match simulated {
        Some(n) => println!(
            "\nbatch inference — {requests} queries per config, SIMULATED {n}-core sharding"
        ),
        None => println!("\nbatch inference — {requests} queries per config, single thread"),
    }
    println!(
        "{:<8}  {:<12}  {:>10}  {:>12}  {:>14}",
        "batch", "tables", "q/s", "ms/query", "max qerr vs f32"
    );
    let mut rows = Vec::new();
    let configs: [(bool, &'static str, TablePrecision, f64); 4] = [
        (false, "off", TablePrecision::F32, 1.0),
        (true, "f32", TablePrecision::F32, 1.0),
        (true, "f16", TablePrecision::F16, deltas[1].1),
        (true, "int8", TablePrecision::Int8, deltas[2].1),
    ];
    for &(fused, label, precision, max_qerr_delta) in &configs {
        est.set_fused_layer1(fused);
        if fused {
            est.set_table_precision(precision);
        }
        for &batch in &[1usize, 16, 64, 256] {
            let secs = run_config(&est, &pool, requests, batch, threads);
            let qps = requests as f64 / secs;
            let ms = secs * 1000.0 / requests as f64;
            println!(
                "{:<8}  {:<12}  {:>10.1}  {:>12.4}  {:>14.6}",
                batch, label, qps, ms, max_qerr_delta
            );
            rows.push(Row {
                batch,
                fused,
                precision: label,
                qps,
                ms_per_query: ms,
                max_qerr_delta,
            });
        }
    }
    write_json(&rows, requests, budget, simulated);
}
