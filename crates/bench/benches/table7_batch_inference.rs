//! Batch-inference throughput: queries/second and ms/query as the batch
//! size grows, with and without the fused embedding→layer-1 token tables.
//!
//! Trains one IAM model on WISDM-like sensor data, then answers the same
//! query pool through `estimate_batch_shared` in chunks of 1/16/64/256
//! queries per call. Larger chunks amortise per-call overhead and give the
//! prefix deduplication more identical all-MASK prefixes to collapse; the
//! fused tables replace the per-row embedding gather + layer-1 GEMM by
//! cached per-token hidden vectors. Estimates are bitwise identical across
//! every configuration (asserted below), so the sweep measures pure speed.
//!
//! Results go to `BENCH_inference.json` at the repository root.
//!
//! Environment knobs: `IAM_BENCH_INFER_REQUESTS` (queries per
//! configuration, default 1024).

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, WorkloadConfig, WorkloadGenerator};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One configuration's measurements.
struct Row {
    batch: usize,
    fused: bool,
    qps: f64,
    ms_per_query: f64,
}

fn run_config(est: &IamEstimator, pool: &[RangeQuery], requests: usize, batch: usize) -> f64 {
    let t0 = Instant::now();
    let mut done = 0;
    while done < requests {
        let take = batch.min(requests - done);
        let chunk: Vec<RangeQuery> =
            (0..take).map(|i| pool[(done + i) % pool.len()].clone()).collect();
        std::hint::black_box(est.estimate_batch_shared(&chunk, 1));
        done += take;
    }
    t0.elapsed().as_secs_f64()
}

fn write_json(rows: &[Row], requests: usize) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
    // honesty metadata: numbers from a 1-core container are not comparable
    // to a parallel host, so stamp what the run actually had
    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    s.push_str(&format!("  \"requests_per_config\": {requests},\n"));
    s.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"batch\": {}, \"fused_layer1\": {}, \"qps\": {:.1}, \
             \"ms_per_query\": {:.4}}}{}\n",
            r.batch,
            r.fused,
            r.qps,
            r.ms_per_query,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    match std::fs::write(path, &s) {
        Ok(()) => eprintln!("[table7_batch_inference] wrote {path}"),
        Err(e) => eprintln!("[table7_batch_inference] could not write {path}: {e}"),
    }
}

fn main() {
    let requests = env_usize("IAM_BENCH_INFER_REQUESTS", 1024);

    let table = Dataset::Wisdm.generate(20_000, 42);
    let ncols = table.ncols();
    println!("training IAM on {} ({} rows) …", Dataset::Wisdm.name(), table.nrows());
    let cfg = IamConfig {
        components: 8,
        hidden: vec![48, 48],
        embed_dim: 8,
        epochs: 2,
        samples: 200,
        seed: 7,
        ..IamConfig::small()
    };
    let mut est = IamEstimator::fit(&table, cfg);

    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 99);
    let pool: Vec<RangeQuery> =
        gen.gen_queries(256).iter().map(|q| q.normalize(ncols).unwrap().0).collect();

    // the fused path must never change a single bit of any estimate
    est.set_fused_layer1(true);
    let with_tables = est.estimate_batch_shared(&pool, 1);
    est.set_fused_layer1(false);
    let without = est.estimate_batch_shared(&pool, 1);
    for (i, (a, b)) in with_tables.iter().zip(&without).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "fused tables changed estimate {i}");
    }

    // warm-up pass so page faults / buffer growth don't bias the first row
    let _ = run_config(&est, &pool, requests.min(256), 64);

    println!("\nbatch inference — {requests} queries per config, single thread");
    println!("{:<8}  {:<12}  {:>10}  {:>12}", "batch", "token tables", "q/s", "ms/query");
    let mut rows = Vec::new();
    for &fused in &[false, true] {
        est.set_fused_layer1(fused);
        for &batch in &[1usize, 16, 64, 256] {
            let secs = run_config(&est, &pool, requests, batch);
            let qps = requests as f64 / secs;
            let ms = secs * 1000.0 / requests as f64;
            println!(
                "{:<8}  {:<12}  {:>10.1}  {:>12.4}",
                batch,
                if fused { "fused" } else { "off" },
                qps,
                ms
            );
            rows.push(Row { batch, fused, qps, ms_per_query: ms });
        }
    }
    write_json(&rows, requests);
}
