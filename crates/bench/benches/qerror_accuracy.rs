//! Served-accuracy observability: drives a seeded workload through the
//! full serving stack with q-error tracking on, REPORTs exact true counts
//! (computed by brute-force scan), and writes the resulting q-error
//! distribution to `BENCH_qerror.json` — accuracy trends land next to the
//! perf trajectory in the other BENCH_* files.
//!
//! The same run measures the serve-path cost of the observability layer:
//! closed-loop estimate throughput with everything off versus with spans,
//! trace-tree recording, a live trace context, and q-error sampling all
//! enabled. The repo's budget for that delta is <3%; set
//! `IAM_BENCH_OBS_BUDGET_PCT` (as in CI) to fail the run when the
//! measured overhead exceeds it.
//!
//! Environment knobs: `IAM_BENCH_QERROR_QUERIES` (workload size, default
//! 256), `IAM_BENCH_OBS_BUDGET_PCT` (overhead gate, default off).

use iam_core::{IamConfig, IamEstimator};
use iam_data::exec::exact_selectivity_ranges;
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, Table, WorkloadConfig, WorkloadGenerator};
use iam_obs::qerror::q_error;
use iam_serve::{ServeConfig, Service};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Closed-loop estimates over the pool; returns queries/second. The
/// services used here run with the result cache off, so every call is a
/// full inference — the realistic denominator for the obs budget.
fn throughput(service: &Service, pool: &[RangeQuery]) -> f64 {
    let client = service.client();
    let t0 = Instant::now();
    for q in pool {
        client.estimate(q).expect("estimate");
    }
    pool.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

fn write_json(
    n: usize,
    table: &Table,
    qs: &[f64],
    per_col: &[(String, f64, f64)],
    qps_off: f64,
    qps_on: f64,
    overhead_pct: f64,
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_qerror.json");
    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut sorted = qs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    s.push_str(&format!("  \"queries\": {n},\n"));
    s.push_str(&format!("  \"dataset_rows\": {},\n", table.nrows()));
    s.push_str(&format!("  \"qerror_p50\": {:.4},\n", percentile(&sorted, 0.50)));
    s.push_str(&format!("  \"qerror_p95\": {:.4},\n", percentile(&sorted, 0.95)));
    s.push_str(&format!("  \"qerror_p99\": {:.4},\n", percentile(&sorted, 0.99)));
    s.push_str(&format!("  \"qerror_max\": {:.4},\n", sorted.last().copied().unwrap_or(f64::NAN)));
    s.push_str("  \"per_column\": [\n");
    for (i, (col, mean, max)) in per_col.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"col\": \"{col}\", \"mean\": {mean:.4}, \"max\": {max:.4}}}{}\n",
            if i + 1 < per_col.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"qps_obs_off\": {qps_off:.1},\n"));
    s.push_str(&format!("  \"qps_obs_on\": {qps_on:.1},\n"));
    s.push_str(&format!("  \"obs_overhead_pct\": {overhead_pct:.2}\n"));
    s.push_str("}\n");
    match std::fs::write(path, &s) {
        Ok(()) => eprintln!("[qerror] wrote {path}"),
        Err(e) => eprintln!("[qerror] could not write {path}: {e}"),
    }
}

fn main() {
    let n = env_usize("IAM_BENCH_QERROR_QUERIES", 256);

    let table = Dataset::Wisdm.generate(20_000, 42);
    let ncols = table.ncols();
    println!("training IAM on {} ({} rows) …", Dataset::Wisdm.name(), table.nrows());
    let cfg = IamConfig {
        components: 8,
        hidden: vec![48, 48],
        embed_dim: 8,
        epochs: 2,
        samples: 200,
        seed: 7,
        ..IamConfig::small()
    };
    let model = IamEstimator::fit(&table, cfg.clone());
    let nrows = table.nrows() as u64;

    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 99);
    let pool: Vec<RangeQuery> =
        gen.gen_queries(n).iter().map(|q| q.normalize(ncols).unwrap().0).collect();

    let service = Service::start(
        model,
        "bench",
        ServeConfig { qerror_capacity: n, qerror_seed: 7, ..ServeConfig::default() },
    );
    let client = service.client();

    // --- accuracy: estimate, scan for truth, REPORT ----------------------
    println!("q-error over {n} seeded queries (exact true counts by scan) …");
    let mut qs = Vec::with_capacity(pool.len());
    for rq in &pool {
        let est = client.estimate(rq).expect("estimate");
        let true_count = (exact_selectivity_ranges(&table, rq) * nrows as f64).round() as u64;
        let q = service
            .report_true_count(rq.canonical_key(), true_count)
            .expect("reservoir holds the whole workload");
        debug_assert!((q - q_error(est, true_count, nrows)).abs() < 1e-9);
        qs.push(q);
    }
    let mut sorted = qs.clone();
    sorted.sort_by(f64::total_cmp);
    println!(
        "  p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}",
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.95),
        percentile(&sorted, 0.99),
        sorted.last().copied().unwrap_or(f64::NAN),
    );

    // per-column attribution: a query's q-error is charged to every
    // column it constrains, mirroring the per-column gauges in STATS
    let mut per_col: Vec<(String, f64, f64)> = Vec::new();
    let mut by_col: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for (rq, &q) in pool.iter().zip(&qs) {
        for (c, slot) in rq.cols.iter().enumerate() {
            if slot.is_some() {
                by_col.entry(c.to_string()).or_default().push(q);
            }
        }
    }
    for (col, v) in by_col {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let max = v.iter().copied().fold(f64::MIN, f64::max);
        println!("  col {col}: mean {mean:.3}, max {max:.3} over {} queries", v.len());
        per_col.push((col, mean, max));
    }

    // --- obs overhead: everything off vs tracing + q-error on ------------
    // Two services over identical twin models (training is deterministic,
    // see tests/train_determinism.rs), result cache off so every call runs
    // real inference. The modes interleave rep by rep and each takes its
    // best pass, which cancels thermal / scheduler drift that a strict
    // off-then-on ordering would fold into the delta.
    let ovh_cfg = IamConfig { epochs: 1, ..cfg.clone() };
    let serve_cfg = ServeConfig { cache_capacity: 0, ..ServeConfig::default() };
    let serve_off = Service::start(
        IamEstimator::fit(&table, ovh_cfg.clone()),
        "bench-obs-off",
        serve_cfg.clone(),
    );
    let serve_on = Service::start(
        IamEstimator::fit(&table, ovh_cfg),
        "bench-obs-on",
        ServeConfig { qerror_capacity: pool.len(), qerror_seed: 7, ..serve_cfg },
    );

    let reps = 3;
    println!("\nobs overhead — {reps} interleaved reps of {} full inferences per mode", pool.len());
    iam_obs::tracetree::set_process_label("bench");
    let mut trace_gen = iam_obs::TraceIdGen::new(7);
    throughput(&serve_off, &pool); // one unmeasured warm pass per service
    throughput(&serve_on, &pool);
    let (mut qps_off, mut qps_on) = (f64::MIN, f64::MIN);
    let mut traced = 0usize;
    for _ in 0..reps {
        qps_off = qps_off.max(throughput(&serve_off, &pool));

        iam_obs::span::enable();
        iam_obs::tracetree::enable();
        let ctx = iam_obs::tracetree::install(iam_obs::TraceCtx::root(trace_gen.next_trace_id()));
        qps_on = qps_on.max(throughput(&serve_on, &pool));
        drop(ctx);
        iam_obs::span::disable();
        iam_obs::tracetree::disable();
        traced += iam_obs::tracetree::drain().len();
    }
    serve_off.shutdown();
    serve_on.shutdown();

    let overhead_pct = (1.0 - qps_on / qps_off) * 100.0;
    println!(
        "  obs off: {qps_off:.0} q/s\n  obs on:  {qps_on:.0} q/s ({traced} spans recorded)\n  \
         overhead: {overhead_pct:.2}%"
    );

    write_json(n, &table, &qs, &per_col, qps_off, qps_on, overhead_pct);

    if let Ok(budget) = std::env::var("IAM_BENCH_OBS_BUDGET_PCT") {
        let budget: f64 = budget.parse().expect("IAM_BENCH_OBS_BUDGET_PCT is a number");
        if overhead_pct > budget {
            eprintln!("[qerror] obs overhead {overhead_pct:.2}% exceeds budget {budget}%");
            std::process::exit(1);
        }
        println!("obs overhead within the {budget}% budget");
    }

    service.shutdown();
}
