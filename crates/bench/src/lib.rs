//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every table and figure of the paper has a `[[bench]]` target (harness =
//! false) that prints paper-style rows. This library holds the common
//! machinery: scale knobs (env-overridable), estimator construction,
//! workload + ground-truth preparation, error/timing evaluation and table
//! printing.
//!
//! Scale knobs (defaults chosen for a single-core CI box; raise for
//! higher-fidelity runs):
//!
//! | env var              | default | meaning                           |
//! |----------------------|---------|-----------------------------------|
//! | `IAM_BENCH_ROWS`     | 20000   | rows per synthetic dataset        |
//! | `IAM_BENCH_QUERIES`  | 200     | evaluation queries per dataset    |
//! | `IAM_BENCH_TRAINQ`   | 600     | training queries (query-driven)   |
//! | `IAM_BENCH_EPOCHS`   | 5       | AR training epochs                |
//! | `IAM_BENCH_SAMPLES`  | 256     | progressive samples per query     |
//! | `IAM_BENCH_TRAIN_THREADS` | 1  | training workers (0 = per core)   |

#![deny(missing_docs)]

pub mod join_exp;

use iam_core::{neurocard_lite, IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{
    exact_selectivity, q_error, ErrorSummary, Query, RangeQuery, SelectivityEstimator, Table,
    WorkloadConfig, WorkloadGenerator,
};
use iam_estimators::spn::SpnConfig;
use iam_estimators::{
    mscn::MscnConfig, ChowLiuNet, KdeEstimator, Mhist, MscnLite, Postgres1d, QuickSelLite,
    SamplingEstimator, SpnEstimator,
};
use std::time::Instant;

/// Scale knobs for a bench run.
#[derive(Debug, Clone)]
pub struct BenchScale {
    /// Rows per synthetic dataset.
    pub rows: usize,
    /// Evaluation queries.
    pub queries: usize,
    /// Training queries for query-driven estimators.
    pub train_queries: usize,
    /// AR training epochs.
    pub epochs: usize,
    /// Progressive samples per query.
    pub samples: usize,
    /// Training worker threads (0 = one per core). Never changes the
    /// trained weights, only wall time.
    pub train_threads: usize,
    /// Base seed.
    pub seed: u64,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl BenchScale {
    /// Read from the environment.
    pub fn from_env() -> Self {
        BenchScale {
            rows: env_usize("IAM_BENCH_ROWS", 20_000),
            queries: env_usize("IAM_BENCH_QUERIES", 150),
            train_queries: env_usize("IAM_BENCH_TRAINQ", 500),
            epochs: env_usize("IAM_BENCH_EPOCHS", 15),
            samples: env_usize("IAM_BENCH_SAMPLES", 256),
            train_threads: env_usize("IAM_BENCH_TRAIN_THREADS", 1),
            seed: env_usize("IAM_BENCH_SEED", 42) as u64,
        }
    }

    /// The IAM configuration at this scale.
    ///
    /// Architecture note: the paper's models (4 hidden layers 256/128/128/
    /// 256, column-factorisation base 2^11 ≈ √10^6) target datasets of
    /// 10^6–10^7 distinct values. At bench scale (~10^4–10^5 distinct) we
    /// keep the shape but halve the widths and use base 256 ≈ √(rows), so
    /// the IAM-vs-Neurocard size/speed ratios are preserved.
    pub fn iam_config(&self) -> IamConfig {
        IamConfig {
            components: 30,
            hidden: vec![128, 64, 64, 128],
            embed_dim: 16,
            epochs: self.epochs,
            samples: self.samples,
            factorize_threshold: 256,
            batch_size: 512,
            lr: 5e-3,
            train_threads: self.train_threads,
            seed: self.seed,
            ..IamConfig::default()
        }
    }
}

/// A prepared single-table experiment: data, workloads and ground truth.
pub struct SingleTableExperiment {
    /// The dataset.
    pub table: Table,
    /// Dataset display name.
    pub name: &'static str,
    /// Evaluation queries with exact selectivities.
    pub eval: Vec<(Query, RangeQuery, f64)>,
    /// Training workload (query-driven estimators).
    pub train: Vec<(RangeQuery, f64)>,
    /// Scale used.
    pub scale: BenchScale,
}

impl SingleTableExperiment {
    /// Generate dataset + workloads, computing exact ground truth.
    pub fn prepare(dataset: Dataset, scale: &BenchScale) -> Self {
        let table = dataset.generate(scale.rows, scale.seed);
        let ncols = table.ncols();
        let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), scale.seed ^ 0xE);
        let eval = gen
            .gen_queries(scale.queries)
            .into_iter()
            .map(|q| {
                let truth = exact_selectivity(&table, &q);
                let (rq, _) = q.normalize(ncols).expect("generated query is valid");
                (q, rq, truth)
            })
            .collect();
        let mut tgen = WorkloadGenerator::new(&table, WorkloadConfig::default(), scale.seed ^ 0x7A);
        let train = tgen
            .gen_queries(scale.train_queries)
            .into_iter()
            .map(|q| {
                let truth = exact_selectivity(&table, &q);
                (q.normalize(ncols).expect("valid").0, truth)
            })
            .collect();
        SingleTableExperiment { table, name: dataset.name(), eval, train, scale: scale.clone() }
    }

    /// Evaluate one estimator: q-error summary + mean per-query latency.
    pub fn evaluate(&self, est: &mut dyn SelectivityEstimator) -> (ErrorSummary, f64) {
        let started = Instant::now();
        let errors: Vec<f64> = self
            .eval
            .iter()
            .map(|(_, rq, truth)| q_error(*truth, est.estimate(rq), self.table.nrows()))
            .collect();
        let per_query_ms = started.elapsed().as_secs_f64() * 1000.0 / self.eval.len().max(1) as f64;
        (ErrorSummary::from_errors(&errors).expect("nonempty eval set"), per_query_ms)
    }
}

/// One evaluated estimator row.
pub struct EstimatorRow {
    /// Display name.
    pub name: String,
    /// Error summary.
    pub errors: ErrorSummary,
    /// Mean per-query latency (ms).
    pub ms_per_query: f64,
    /// Model size in bytes.
    pub size_bytes: usize,
    /// Training/build seconds.
    pub train_seconds: f64,
}

/// Build and evaluate the full estimator line-up of Tables 2–4 on one
/// prepared experiment. `deep` controls whether the expensive AR models
/// (Neurocard, UAE, UAE-Q, IAM) are included.
pub fn run_lineup(exp: &SingleTableExperiment, deep: bool) -> Vec<EstimatorRow> {
    let mut rows = Vec::new();
    let scale = &exp.scale;
    let cfg = scale.iam_config();

    if deep {
        let t0 = Instant::now();
        let mut iam = IamEstimator::fit(&exp.table, cfg.clone());
        let train_s = t0.elapsed().as_secs_f64();
        let (errors, ms) = exp.evaluate(&mut iam);
        rows.push(EstimatorRow {
            name: "IAM".into(),
            errors,
            ms_per_query: ms,
            size_bytes: iam.model_size_bytes(),
            train_seconds: train_s,
        });
    }

    let mut push = |name: &str, t0: Instant, est: &mut dyn SelectivityEstimator| {
        let train_s = t0.elapsed().as_secs_f64();
        let (errors, ms) = exp.evaluate(est);
        rows.push(EstimatorRow {
            name: name.into(),
            errors,
            ms_per_query: ms,
            size_bytes: est.model_size_bytes(),
            train_seconds: train_s,
        });
    };

    // the paper sizes the sample to IAM's space consumption at full data
    // scale: 0.63% / 0.02% / 0.23% of WISDM / TWI / HIGGS (§6.1.2). We use
    // those fractions directly, since at bench scale the (constant-size)
    // model would otherwise buy an unrealistically large sample.
    let fraction = match exp.name {
        "WISDM" => 0.0063,
        "TWI" => 0.0002,
        "HIGGS" => 0.0023,
        _ => 0.002,
    };
    let t0 = Instant::now();
    let mut sampling = SamplingEstimator::new(&exp.table, fraction, scale.seed);
    push("Sampling", t0, &mut sampling);

    let t0 = Instant::now();
    let mut pg = Postgres1d::new(&exp.table);
    push("Postgres", t0, &mut pg);

    let t0 = Instant::now();
    let mut mhist = Mhist::new(&exp.table, 1000);
    push("MHIST", t0, &mut mhist);

    let t0 = Instant::now();
    let mut bn = ChowLiuNet::new(&exp.table);
    push("BayesNet", t0, &mut bn);

    let t0 = Instant::now();
    let mut kde = KdeEstimator::new(&exp.table, 2000, scale.seed);
    push("KDE", t0, &mut kde);

    let t0 = Instant::now();
    let mut spn = SpnEstimator::new(&exp.table, SpnConfig::default());
    push("DeepDB", t0, &mut spn);

    let t0 = Instant::now();
    let mut mscn = MscnLite::fit(
        &exp.table,
        &exp.train,
        MscnConfig { seed: scale.seed, ..Default::default() },
    );
    push("MSCN", t0, &mut mscn);

    let t0 = Instant::now();
    let mut qs = QuickSelLite::fit(&exp.table, &exp.train, 300, 800);
    push("QuickSel", t0, &mut qs);

    if deep {
        let t0 = Instant::now();
        let mut nc = IamEstimator::fit(&exp.table, neurocard_lite(cfg.clone()));
        push("Neurocard", t0, &mut nc);

        // the UAE arms are "lite" reproductions; cap their training budget
        let uae_cfg = IamConfig { epochs: cfg.epochs.min(8), ..cfg.clone() };
        let t0 = Instant::now();
        let mut uae = iam_estimators::uae_lite(&exp.table, &exp.train, uae_cfg.clone());
        push("UAE", t0, &mut uae);

        let t0 = Instant::now();
        let mut uae_q = iam_estimators::uae_q_lite(&exp.table, &exp.train, uae_cfg);
        push("UAE-Q", t0, &mut uae_q);
    }

    rows
}

/// Print a Tables-2–5-style error table.
pub fn print_error_table(title: &str, rows: &[EstimatorRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Estimator", "Mean", "Median", "95th", "99th", "Max"
    );
    for r in rows {
        println!("{}", r.errors.table_row(&r.name));
    }
}

/// Print a Figure-4-style latency table.
pub fn print_latency_table(title: &str, rows: &[EstimatorRow]) {
    println!("\n=== {title} ===");
    println!("{:<12} {:>12}", "Estimator", "ms/query");
    for r in rows {
        println!("{:<12} {:>12.2}", r.name, r.ms_per_query);
    }
}

/// Print a Table-6-style size table row set.
pub fn print_size_table(title: &str, rows: &[EstimatorRow]) {
    println!("\n=== {title} ===");
    println!("{:<12} {:>12}", "Estimator", "size (KB)");
    for r in rows {
        println!("{:<12} {:>12.1}", r.name, r.size_bytes as f64 / 1024.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_defaults() {
        let s = BenchScale::from_env();
        assert!(s.rows >= 1000);
        assert!(s.queries >= 10);
    }

    #[test]
    fn prepare_small_experiment() {
        let scale = BenchScale {
            rows: 2000,
            queries: 20,
            train_queries: 30,
            epochs: 1,
            samples: 64,
            train_threads: 1,
            seed: 1,
        };
        let exp = SingleTableExperiment::prepare(Dataset::Twi, &scale);
        assert_eq!(exp.eval.len(), 20);
        assert_eq!(exp.train.len(), 30);
        assert!(exp.eval.iter().all(|&(_, _, t)| (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn shallow_lineup_runs() {
        let scale = BenchScale {
            rows: 3000,
            queries: 25,
            train_queries: 50,
            epochs: 1,
            samples: 64,
            train_threads: 1,
            seed: 2,
        };
        let exp = SingleTableExperiment::prepare(Dataset::Higgs, &scale);
        let rows = run_lineup(&exp, false);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.errors.median >= 1.0, "{}", r.name);
            assert!(r.errors.max.is_finite());
        }
    }
}
