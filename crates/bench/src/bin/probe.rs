//! Diagnostic probe (dev tool): per-query error breakdown for IAM, plus a
//! per-phase wall-time breakdown (reduction fit vs. training vs. inference)
//! collected through `iam_obs` spans.
use iam_bench::{BenchScale, SingleTableExperiment};
use iam_core::IamEstimator;
use iam_data::synth::Dataset;
use iam_data::{q_error, SelectivityEstimator};

fn main() {
    iam_obs::span::enable();
    let scale = BenchScale {
        rows: 16000,
        queries: 80,
        train_queries: 10,
        epochs: 10,
        samples: 512,
        train_threads: 1,
        seed: 42,
    };
    let exp = SingleTableExperiment::prepare(Dataset::Wisdm, &scale);
    let mut cfg = scale.iam_config();
    let args: Vec<String> = std::env::args().collect();
    for a in &args[1..] {
        match a.as_str() {
            "nojoint" => cfg.joint_training = false,
            "nowild" => cfg.wildcard_skipping = false,
            "moresamples" => cfg.samples = 4000,
            "bignet" => cfg.hidden = vec![256, 128, 128, 256],
            "epochs20" => cfg.epochs = 20,
            "lr5" => cfg.lr = 5e-3,
            _ => {}
        }
    }
    eprintln!(
        "cfg: joint={} wild={} samples={} hidden={:?} epochs={} lr={}",
        cfg.joint_training, cfg.wildcard_skipping, cfg.samples, cfg.hidden, cfg.epochs, cfg.lr
    );
    let t0 = std::time::Instant::now();
    let mut iam = IamEstimator::fit(&exp.table, cfg);
    eprintln!(
        "train {:.1}s losses {:?}",
        t0.elapsed().as_secs_f64(),
        iam.stats.iter().map(|s| (s.ar_loss * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    let mut rows: Vec<(f64, String, f64, f64)> = Vec::new();
    for (q, rq, truth) in &exp.eval {
        let est = iam.estimate(rq);
        let e = q_error(*truth, est, exp.table.nrows());
        let desc: Vec<String> =
            q.predicates.iter().map(|p| format!("c{}{:?}{:.1}", p.col, p.op, p.value)).collect();
        rows.push((e, desc.join("&"), *truth, est));
    }
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mean = rows.iter().map(|r| r.0).sum::<f64>() / rows.len() as f64;
    println!("mean {:.2}  median {:.2}  max {:.1}", mean, rows[rows.len() / 2].0, rows[0].0);
    for r in rows.iter().take(10) {
        println!("qerr {:8.1}  truth {:.6} est {:.6}  {}", r.0, r.2, r.3, r.1);
    }

    println!("--- phase breakdown (self-time µs, folded-stack paths) ---");
    for (path, agg) in iam_obs::span::report() {
        println!(
            "{:>10}µs self {:>10}µs total {:>6} calls  {}",
            agg.self_us, agg.total_us, agg.count, path
        );
    }
    if args.iter().any(|a| a == "folded") {
        // pipe into flamegraph.pl / speedscope
        print!("{}", iam_obs::span::folded_stacks());
    }
}
