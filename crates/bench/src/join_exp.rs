//! Shared machinery for the IMDB join experiments (Tables 5, 7, 8 and
//! Figure 5).

use crate::{BenchScale, EstimatorRow};
use iam_core::{neurocard_lite, IamEstimator};
use iam_data::{ErrorSummary, RangeQuery, SelectivityEstimator, Table};
use iam_estimators::spn::SpnConfig;
use iam_estimators::{mscn::MscnConfig, MscnLite, SpnEstimator};
use iam_join::flat::{exact_card, flatten_foj, FlatSchema};
use iam_join::imdb::{synthetic_imdb, ImdbConfig};
use iam_join::star::StarSchema;
use iam_join::workload::{JoinQuery, JoinWorkloadGenerator};
use iam_opt::IndependenceCardEstimator;
use std::time::Instant;

/// Q-error over cardinalities, floored at 1 row (join convention).
pub fn q_error_card(truth: f64, est: f64) -> f64 {
    let t = truth.max(1.0);
    let e = est.max(1.0);
    (t / e).max(e / t)
}

/// A prepared join experiment.
pub struct JoinExperiment {
    /// The star schema.
    pub star: StarSchema,
    /// Flat FOJ training sample.
    pub flat: Table,
    /// Flat layout metadata.
    pub schema: FlatSchema,
    /// Evaluation join queries with exact cardinalities.
    pub eval: Vec<(JoinQuery, f64)>,
    /// Training workload over the flat layout (`(flat query, FOJ-relative
    /// selectivity)`), for query-driven estimators.
    pub train: Vec<(RangeQuery, f64)>,
    /// Scale used.
    pub scale: BenchScale,
}

impl JoinExperiment {
    /// Generate schema, FOJ sample and workloads.
    pub fn prepare(scale: &BenchScale) -> Self {
        let star = synthetic_imdb(&ImdbConfig { movies: scale.rows / 3, seed: scale.seed });
        let (flat, schema) = flatten_foj(&star, scale.rows, scale.seed ^ 0xF0);
        let mut gen = JoinWorkloadGenerator::new(&star, scale.seed ^ 0xE1);
        let eval: Vec<(JoinQuery, f64)> = gen
            .gen_queries(scale.queries)
            .into_iter()
            .map(|q| {
                let truth = exact_card(&star, &q);
                (q, truth)
            })
            .collect();
        let mut tgen = JoinWorkloadGenerator::new(&star, scale.seed ^ 0x71);
        let train = tgen
            .gen_queries(scale.train_queries)
            .into_iter()
            .map(|q| {
                let truth = exact_card(&star, &q);
                (schema.rewrite(&q), truth / schema.foj_size)
            })
            .collect();
        JoinExperiment { star, flat, schema, eval, train, scale: scale.clone() }
    }

    /// Evaluate a flat-table estimator on the join workload.
    pub fn evaluate_flat(&self, est: &mut dyn SelectivityEstimator) -> (ErrorSummary, f64) {
        let started = Instant::now();
        let errs: Vec<f64> = self
            .eval
            .iter()
            .map(|(q, truth)| {
                let rq = self.schema.rewrite(q);
                let card = est.estimate(&rq) * self.schema.foj_size;
                q_error_card(*truth, card)
            })
            .collect();
        let ms = started.elapsed().as_secs_f64() * 1000.0 / self.eval.len().max(1) as f64;
        (ErrorSummary::from_errors(&errs).expect("nonempty"), ms)
    }

    /// Evaluate the Postgres-style independence estimator.
    pub fn evaluate_postgres(&self) -> (ErrorSummary, f64, usize, f64) {
        let t0 = Instant::now();
        let mut pg = IndependenceCardEstimator::new(&self.star);
        let train_s = t0.elapsed().as_secs_f64();
        let started = Instant::now();
        let errs: Vec<f64> = self
            .eval
            .iter()
            .map(|(q, truth)| {
                use iam_opt::JoinCardEstimator;
                q_error_card(*truth, pg.card(q, true, &q.join_dims))
            })
            .collect();
        let ms = started.elapsed().as_secs_f64() * 1000.0 / self.eval.len().max(1) as f64;
        (ErrorSummary::from_errors(&errs).expect("nonempty"), ms, 0, train_s)
    }
}

/// Run the Table-5 line-up (join-capable estimators only).
pub fn run_join_lineup(exp: &JoinExperiment) -> Vec<EstimatorRow> {
    let mut rows = Vec::new();
    let cfg = exp.scale.iam_config();

    // Postgres (independence over per-table stats)
    let (errors, ms, size, train_s) = exp.evaluate_postgres();
    rows.push(EstimatorRow {
        name: "Postgres".into(),
        errors,
        ms_per_query: ms,
        size_bytes: size,
        train_seconds: train_s,
    });

    let mut push = |name: &str, t0: Instant, est: &mut dyn SelectivityEstimator| {
        let train_s = t0.elapsed().as_secs_f64();
        let (errors, ms) = exp.evaluate_flat(est);
        rows.push(EstimatorRow {
            name: name.into(),
            errors,
            ms_per_query: ms,
            size_bytes: est.model_size_bytes(),
            train_seconds: train_s,
        });
    };

    let t0 = Instant::now();
    let mut spn = SpnEstimator::new(&exp.flat, SpnConfig::default());
    push("DeepDB", t0, &mut spn);

    let t0 = Instant::now();
    let mut mscn = MscnLite::fit(
        &exp.flat,
        &exp.train,
        MscnConfig { seed: exp.scale.seed, ..Default::default() },
    );
    push("MSCN", t0, &mut mscn);

    let t0 = Instant::now();
    let mut nc = IamEstimator::fit(&exp.flat, neurocard_lite(cfg.clone()));
    push("Neurocard", t0, &mut nc);

    let uae_cfg = iam_core::IamConfig { epochs: cfg.epochs.min(8), ..cfg.clone() };
    let t0 = Instant::now();
    let mut uae = iam_estimators::uae_lite(&exp.flat, &exp.train, uae_cfg.clone());
    push("UAE", t0, &mut uae);

    let t0 = Instant::now();
    let mut uae_q = iam_estimators::uae_q_lite(&exp.flat, &exp.train, uae_cfg);
    push("UAE-Q", t0, &mut uae_q);

    let t0 = Instant::now();
    let mut iam = IamEstimator::fit(&exp.flat, cfg);
    push("IAM", t0, &mut iam);

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_card_floors_at_one_row() {
        assert_eq!(q_error_card(0.0, 0.0), 1.0);
        assert_eq!(q_error_card(10.0, 10.0), 1.0);
        assert!((q_error_card(0.0, 5.0) - 5.0).abs() < 1e-12);
        assert!((q_error_card(100.0, 10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn prepare_small_join_experiment() {
        let scale = BenchScale {
            rows: 6000,
            queries: 15,
            train_queries: 20,
            epochs: 1,
            samples: 64,
            train_threads: 1,
            seed: 3,
        };
        let exp = JoinExperiment::prepare(&scale);
        assert_eq!(exp.eval.len(), 15);
        assert_eq!(exp.flat.nrows(), 6000);
        assert!(exp.schema.foj_size > 0.0);
        // Postgres baseline runs end to end
        let (errors, _, _, _) = exp.evaluate_postgres();
        assert!(errors.median >= 1.0);
    }
}
