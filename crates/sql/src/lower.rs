//! Lowering from the SQL AST onto the IAM library surface.
//!
//! * `WHERE` conjuncts become [`iam_data::Predicate`]s and normalise into
//!   a [`RangeQuery`] via [`iam_data::Query::normalize`] — the *same*
//!   normalisation the line protocol's `col=lo..hi` grammar reaches, so a
//!   `SELECT COUNT(*)` lowers to a query with the same
//!   [`RangeQuery::canonical_key`] as its line-protocol equivalent and the
//!   estimate comes back bit-identical (same per-query sampling seed, same
//!   cache entry).
//! * `EXPLAIN` builds a [`JoinQuery`] over the statement's tables, asks a
//!   [`CardSource`] for each table's filtered cardinality, and runs the
//!   `iam-opt` subset-DP optimizer under the independence assumption
//!   `card(S) = Π card_t / |from|^{|S|−1}` — per-node estimated
//!   cardinalities are rendered into the plan text.

use crate::parser::{CmpOp, ColRef, Cond, Select};
use crate::SqlError;
use iam_data::query::{Op, Predicate, Query};
use iam_data::RangeQuery;
use iam_join::JoinQuery;
use iam_opt::{JoinCardEstimator, TableRef};

/// Map a SQL comparison onto the predicate operator space.
fn to_op(op: CmpOp) -> Op {
    match op {
        CmpOp::Eq => Op::Eq,
        CmpOp::Lt => Op::Lt,
        CmpOp::Le => Op::Le,
        CmpOp::Gt => Op::Gt,
        CmpOp::Ge => Op::Ge,
    }
}

/// Check that `col` refers to `table` (unqualified references do) and
/// bounds-check the index against `ncols`.
fn check_col(col: &ColRef, table: &str, ncols: usize) -> Result<usize, SqlError> {
    if let Some(q) = &col.table {
        if q != table {
            return Err(SqlError::new(format!(
                "column {col} references table {q:?}, expected {table:?}"
            )));
        }
    }
    if col.col >= ncols {
        return Err(SqlError::new(format!(
            "column c{} out of range (table {table:?} has {ncols} columns)",
            col.col
        )));
    }
    Ok(col.col)
}

/// Lower `conds` (all referring to `table`, qualified or not) into a
/// [`RangeQuery`] over `ncols` columns.
pub fn lower_conjuncts(conds: &[Cond], table: &str, ncols: usize) -> Result<RangeQuery, SqlError> {
    let mut predicates = Vec::with_capacity(conds.len());
    for c in conds {
        match c {
            Cond::Cmp { col, op, value } => {
                let col = check_col(col, table, ncols)?;
                predicates.push(Predicate { col, op: to_op(*op), value: *value });
            }
            Cond::Between { col, lo, hi } => {
                let col = check_col(col, table, ncols)?;
                predicates.push(Predicate { col, op: Op::Ge, value: *lo });
                predicates.push(Predicate { col, op: Op::Le, value: *hi });
            }
        }
    }
    let (rq, nes) = Query::new(predicates)
        .normalize(ncols)
        .map_err(|e| SqlError::new(format!("lowering failed: {e:?}")))?;
    debug_assert!(nes.is_empty(), "the grammar cannot produce Ne predicates");
    Ok(rq)
}

/// Lower a single-table `SELECT` (no `JOIN` clauses) into a
/// [`RangeQuery`]. Errors if the statement joins, or if any predicate
/// references another table or an out-of-range column.
pub fn lower_single_table(sel: &Select, ncols: usize) -> Result<RangeQuery, SqlError> {
    if !sel.joins.is_empty() {
        return Err(SqlError::new("single-table lowering cannot handle JOIN clauses"));
    }
    lower_conjuncts(&sel.conds, &sel.table, ncols)
}

/// Resolve the `SUM`/`AVG` target column of a single-table statement.
pub fn resolve_target(col: &ColRef, sel: &Select, ncols: usize) -> Result<usize, SqlError> {
    check_col(col, &sel.table, ncols)
}

/// Supplies per-table filtered cardinalities to [`explain`]: given a table
/// name and the conjuncts that constrain it, return
/// `(selectivity, table_rows)`. The serve layer implements this against
/// its local model; the dist coordinator implements it with one
/// `SELECT COUNT(*)` RPC per table.
pub trait CardSource {
    /// Estimated selectivity of `conds` on `table`, plus the table's row
    /// count.
    fn table_sel(&mut self, table: &str, conds: &[Cond]) -> Result<(f64, u64), SqlError>;
}

/// Fixed per-table cardinalities under the independence assumption —
/// the [`JoinCardEstimator`] fed to the subset-DP optimizer by
/// [`explain`].
struct SqlIndependence {
    /// Filtered cardinality per table (index 0 = the FROM table).
    cards: Vec<f64>,
    /// FROM-table row count (the `|from|` of the key-matching divisor).
    from_rows: f64,
}

impl JoinCardEstimator for SqlIndependence {
    fn name(&self) -> &str {
        "sql-independence"
    }

    fn card(&mut self, _q: &JoinQuery, include_hub: bool, dims: &[bool]) -> f64 {
        let mut card = 1.0f64;
        let mut ntables = 0usize;
        if include_hub {
            card *= self.cards.first().copied().unwrap_or(0.0);
            ntables += 1;
        }
        for (t, &inc) in dims.iter().enumerate() {
            if inc {
                card *= self.cards.get(t + 1).copied().unwrap_or(0.0);
                ntables += 1;
            }
        }
        if ntables > 1 && self.from_rows > 0.0 {
            card /= self.from_rows.powi(ntables as i32 - 1);
        }
        card.max(0.0)
    }
}

/// Partition the statement's conjuncts by owning table (unqualified
/// conjuncts belong to the `FROM` table). Errors on a qualifier that
/// names no table in the statement.
fn conds_by_table(sel: &Select, tables: &[&str]) -> Result<Vec<Vec<Cond>>, SqlError> {
    let mut per: Vec<Vec<Cond>> = vec![Vec::new(); tables.len()];
    for c in &sel.conds {
        let owner = c.col().table.as_deref().unwrap_or(&sel.table);
        let idx = tables
            .iter()
            .position(|t| *t == owner)
            .ok_or_else(|| SqlError::new(format!("predicate on unknown table {owner:?}")))?;
        per[idx].push(c.clone());
    }
    Ok(per)
}

/// Run the join-order optimizer over an `EXPLAIN SELECT` and render the
/// chosen plan with per-node estimated cardinalities:
///
/// ```text
/// PLAN est_cost=123.456
/// scan hub est_card=1000.000
/// join d0 est_card=93.200
/// join d1 est_card=4.700
/// ```
///
/// Each `est_card` is the estimated cardinality of the join prefix up to
/// and including that node, under the independence assumption over
/// per-table cardinalities supplied by `src`.
pub fn explain(sel: &Select, src: &mut dyn CardSource) -> Result<String, SqlError> {
    let mut tables: Vec<&str> = vec![&sel.table];
    for j in &sel.joins {
        tables.push(&j.table);
    }
    for (i, t) in tables.iter().enumerate() {
        if tables[..i].contains(t) {
            return Err(SqlError::new(format!("duplicate table {t:?} in statement")));
        }
    }
    if tables.len() > 16 {
        return Err(SqlError::new("EXPLAIN caps at 16 tables (subset-DP optimizer limit)"));
    }
    let per_table = conds_by_table(sel, &tables)?;

    let mut cards = Vec::with_capacity(tables.len());
    let mut from_rows = 0.0f64;
    for (i, t) in tables.iter().enumerate() {
        let (s, n) = src.table_sel(t, &per_table[i])?;
        let s = if s.is_finite() { s.clamp(0.0, 1.0) } else { 0.0 };
        if i == 0 {
            from_rows = n as f64;
        }
        cards.push(s * n as f64);
    }
    let mut est = SqlIndependence { cards, from_rows };

    // the optimizer works over hub-plus-dims shapes: the FROM table plays
    // the hub, each JOINed table a dimension; predicate details are
    // already folded into `est`, so the JoinQuery carries structure only
    let ndims = tables.len() - 1;
    let jq =
        JoinQuery { join_dims: vec![true; ndims], hub: Vec::new(), dims: vec![Vec::new(); ndims] };
    let plan = iam_opt::optimize(&jq, &mut est);

    let name_of = |r: TableRef| match r {
        TableRef::Hub => tables[0],
        // Dim(d) indexes sel.joins, which tables[1..] mirrors in order
        TableRef::Dim(d) => tables.get(d + 1).copied().unwrap_or("?"),
    };
    let mut out = format!("PLAN est_cost={:.3}", plan.est_cost);
    let mut include_hub = false;
    let mut dims = vec![false; ndims];
    for (i, r) in plan.order.iter().enumerate() {
        match r {
            TableRef::Hub => include_hub = true,
            TableRef::Dim(d) => {
                if let Some(slot) = dims.get_mut(*d) {
                    *slot = true;
                }
            }
        }
        let prefix_card = est.card(&jq, include_hub, &dims);
        let verb = if i == 0 { "scan" } else { "join" };
        out.push_str(&format!("\n{verb} {} est_card={prefix_card:.3}", name_of(*r)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, Statement};
    use iam_data::Interval;

    fn sel(text: &str) -> Select {
        match parse(text).unwrap() {
            Statement::Select(s) | Statement::Explain(s) => s,
        }
    }

    #[test]
    fn lowering_matches_line_protocol_normalisation() {
        let s = sel("SELECT COUNT(*) FROM t WHERE c0 = 3 AND c1 BETWEEN 2.5 AND 9");
        let rq = lower_single_table(&s, 3).unwrap();
        assert_eq!(rq.cols[0], Some(Interval::point(3.0)));
        assert_eq!(rq.cols[1], Some(Interval::closed(2.5, 9.0)));
        assert_eq!(rq.cols[2], None);
    }

    #[test]
    fn repeated_conjuncts_intersect() {
        let s = sel("SELECT COUNT(*) FROM t WHERE c0 >= 1 AND c0 <= 10 AND c0 >= 5");
        let rq = lower_single_table(&s, 1).unwrap();
        assert_eq!(rq.cols[0], Some(Interval::closed(5.0, 10.0)));
    }

    #[test]
    fn rejects_foreign_and_out_of_range_columns() {
        let s = sel("SELECT COUNT(*) FROM t WHERE other.c0 = 1");
        assert!(lower_single_table(&s, 4).is_err());
        let s = sel("SELECT COUNT(*) FROM t WHERE c9 = 1");
        assert!(lower_single_table(&s, 4).is_err());
        let s = sel("SELECT COUNT(*) FROM t JOIN d ON t.c0 = d.c0");
        assert!(lower_single_table(&s, 4).is_err());
    }

    /// Fixed-card source for plan tests.
    struct Fixed(Vec<(f64, u64)>);
    impl CardSource for Fixed {
        fn table_sel(&mut self, table: &str, _conds: &[Cond]) -> Result<(f64, u64), SqlError> {
            let idx: usize = table
                .strip_prefix('t')
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| SqlError::new("unknown table"))?;
            self.0.get(idx).copied().ok_or_else(|| SqlError::new("unknown table"))
        }
    }

    #[test]
    fn explain_orders_selective_tables_first() {
        // t0 (FROM) is large; t1 is highly selective, t2 barely filtered —
        // the optimizer should join t1 before t2
        let s = sel("EXPLAIN SELECT COUNT(*) FROM t0 \
             JOIN t1 ON t0.c0 = t1.c0 JOIN t2 ON t0.c1 = t2.c0 \
             WHERE t1.c1 = 5");
        let mut src = Fixed(vec![(1.0, 10_000), (0.001, 10_000), (0.9, 10_000)]);
        let plan = explain(&s, &mut src).unwrap();
        let lines: Vec<&str> = plan.lines().collect();
        assert!(lines[0].starts_with("PLAN est_cost="), "{plan}");
        assert_eq!(lines.len(), 4, "{plan}");
        let t1_pos = lines.iter().position(|l| l.contains(" t1 ")).unwrap();
        let t2_pos = lines.iter().position(|l| l.contains(" t2 ")).unwrap();
        assert!(t1_pos < t2_pos, "selective table should join earlier:\n{plan}");
    }

    #[test]
    fn explain_single_table_is_a_scan() {
        let s = sel("EXPLAIN SELECT COUNT(*) FROM t0 WHERE c0 <= 3");
        let mut src = Fixed(vec![(0.25, 1000)]);
        let plan = explain(&s, &mut src).unwrap();
        assert_eq!(plan, "PLAN est_cost=250.000\nscan t0 est_card=250.000");
    }

    #[test]
    fn explain_rejects_duplicate_and_unknown_tables() {
        let s = sel("EXPLAIN SELECT COUNT(*) FROM t0 JOIN t0 ON t0.c0 = t0.c1");
        assert!(explain(&s, &mut Fixed(vec![(1.0, 10); 2])).is_err());
        let s = sel("EXPLAIN SELECT COUNT(*) FROM t0 WHERE nope.c0 = 1");
        assert!(explain(&s, &mut Fixed(vec![(1.0, 10)])).is_err());
    }
}
