//! Hand-rolled lexer for the SQL subset.
//!
//! Tokens carry their byte offset for error messages. Keywords are not
//! distinguished here — they arrive as [`Token::Ident`] and the parser
//! matches them case-insensitively — so table names that happen to spell
//! a keyword in another case still lex fine.

use crate::SqlError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`SELECT`, `my_table`, `c12`, …).
    Ident(String),
    /// Numeric literal (always finite; `NaN`/`inf` literals are rejected).
    Number(f64),
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(v) => write!(f, "{v}"),
            Token::Star => f.write_str("*"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Dot => f.write_str("."),
            Token::Comma => f.write_str(","),
            Token::Semi => f.write_str(";"),
            Token::Eq => f.write_str("="),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
        }
    }
}

/// Lex `input` into `(token, byte_offset)` pairs. Panic-free on arbitrary
/// input: unknown characters and malformed numbers come back as
/// [`SqlError`]s naming the offending byte offset.
pub fn lex(input: &str) -> Result<Vec<(Token, usize)>, SqlError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'*' => {
                out.push((Token::Star, i));
                i += 1;
            }
            b'(' => {
                out.push((Token::LParen, i));
                i += 1;
            }
            b')' => {
                out.push((Token::RParen, i));
                i += 1;
            }
            b'.' if !matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit()) => {
                out.push((Token::Dot, i));
                i += 1;
            }
            b',' => {
                out.push((Token::Comma, i));
                i += 1;
            }
            b';' => {
                out.push((Token::Semi, i));
                i += 1;
            }
            b'=' => {
                out.push((Token::Eq, i));
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Le, i));
                    i += 2;
                } else {
                    out.push((Token::Lt, i));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Ge, i));
                    i += 2;
                } else {
                    out.push((Token::Gt, i));
                    i += 1;
                }
            }
            b'-' | b'+' | b'0'..=b'9' | b'.' => {
                let (tok, next) = lex_number(input, i)?;
                out.push((tok, i));
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                // slice is ASCII by construction, so this never splits a
                // UTF-8 sequence
                out.push((Token::Ident(input[start..i].to_string()), start));
            }
            _ => {
                return Err(SqlError::new(format!(
                    "unexpected character {:?} at byte {i}",
                    char::from(b.min(0x7f))
                )));
            }
        }
    }
    Ok(out)
}

/// Scan a numeric literal starting at byte `start`:
/// `[+-]? digits [. digits] [(e|E) [+-]? digits]`, validated by
/// `f64::from_str` on the scanned slice.
fn lex_number(input: &str, start: usize) -> Result<(Token, usize), SqlError> {
    let bytes = input.as_bytes();
    let mut i = start;
    if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
        i += 1;
    }
    let digits_from = i;
    while matches!(bytes.get(i), Some(d) if d.is_ascii_digit()) {
        i += 1;
    }
    if bytes.get(i) == Some(&b'.') {
        i += 1;
        while matches!(bytes.get(i), Some(d) if d.is_ascii_digit()) {
            i += 1;
        }
    }
    if i == digits_from {
        return Err(SqlError::new(format!("malformed number at byte {start}")));
    }
    if matches!(bytes.get(i), Some(b'e') | Some(b'E')) {
        let mut j = i + 1;
        if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
            j += 1;
        }
        if matches!(bytes.get(j), Some(d) if d.is_ascii_digit()) {
            i = j;
            while matches!(bytes.get(i), Some(d) if d.is_ascii_digit()) {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    let v: f64 = text
        .parse()
        .map_err(|_| SqlError::new(format!("malformed number {text:?} at byte {start}")))?;
    if !v.is_finite() {
        // keeping literals finite makes the AST's text rendering a true
        // round trip: every parsed number re-renders to a parseable token
        return Err(SqlError::new(format!(
            "numeric literal {text:?} at byte {start} is not a finite f64"
        )));
    }
    Ok((Token::Number(v), i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_statement() {
        let toks = lex("SELECT COUNT(*) FROM t WHERE c0 <= -2.5e3").unwrap();
        let kinds: Vec<Token> = toks.into_iter().map(|(t, _)| t).collect();
        assert_eq!(
            kinds,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("COUNT".into()),
                Token::LParen,
                Token::Star,
                Token::RParen,
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("c0".into()),
                Token::Le,
                Token::Number(-2500.0),
            ]
        );
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in ["#", "c0 ? 3", "1..2", "0x10 @", "\u{1F600}", "--", "1e", "+"] {
            // either an error or a clean token stream — never a panic
            let _ = lex(bad);
        }
        assert!(lex("@").is_err());
        assert!(lex("-").is_err());
    }

    #[test]
    fn numbers_cover_hostile_shapes() {
        // overflow to ±∞ is rejected, not admitted, so rendered ASTs
        // always re-lex
        assert!(lex("1e309").is_err());
        assert!(lex("-1e999").is_err());
        assert_eq!(lex(".5").unwrap()[0].0, Token::Number(0.5));
        assert_eq!(lex("-0.0").unwrap()[0].0, Token::Number(-0.0));
        // `1e` falls back to plain `1` followed by ident `e`
        let toks = lex("1e").unwrap();
        assert_eq!(toks[0].0, Token::Number(1.0));
        assert_eq!(toks[1].0, Token::Ident("e".into()));
    }
}
