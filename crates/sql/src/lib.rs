//! SQL subset front-end for the IAM estimation stack.
//!
//! The paper's served surface ends at cardinalities over a bespoke
//! `col=lo..hi` line protocol; this crate gives the whole repo a query
//! language. A hand-rolled (zero-dependency, matching workspace policy)
//! lexer + recursive-descent parser accepts
//!
//! ```text
//! SELECT COUNT(*) | SUM(cN) | AVG(cN)
//!   FROM <table>
//!   [JOIN <table> ON <t>.cN = <t>.cM]*
//!   [WHERE <pred> [AND <pred>]*]
//! ```
//!
//! with predicates `cN <op> <number>` (`=, <, <=, >, >=`) or
//! `cN BETWEEN <number> AND <number>`, plus `EXPLAIN SELECT ...` for
//! join-order plans. Columns are addressed positionally as `c0, c1, …`
//! (optionally qualified, `t.c0`) because IAM schemas carry no column
//! names.
//!
//! Statements lower onto the existing library surface (see [`lower`]):
//! `COUNT(*)` becomes a [`iam_data::RangeQuery`] answered by the
//! estimator — bit-identical to the equivalent line-protocol query, since
//! both paths normalise to the same canonical predicate key — `SUM`/`AVG`
//! route to `core::aqp`, and `EXPLAIN` feeds per-table estimated
//! cardinalities into the `iam-opt` join-order optimizer and renders the
//! chosen plan with per-node estimates.
//!
//! Everything here is panic-free on arbitrary input (the iam-audit
//! `wire-panic` lint covers these modules, and a seeded fuzz target
//! mutates valid statements against the parser): errors are returned as
//! [`SqlError`], never thrown.

#![deny(missing_docs)]

pub mod lexer;
pub mod lower;
pub mod parser;

pub use lexer::{lex, Token};
pub use lower::{explain, lower_single_table, resolve_target, CardSource};
pub use parser::{parse, Agg, CmpOp, ColRef, Cond, JoinClause, Select, Statement};

/// An error from lexing, parsing, or lowering a SQL statement. Carries a
/// human-readable message surfaced verbatim in `ERR` protocol replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong, in one line.
    pub msg: String,
}

impl SqlError {
    /// Build an error from anything displayable.
    pub fn new(msg: impl Into<String>) -> Self {
        SqlError { msg: msg.into() }
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SqlError {}
