//! Recursive-descent parser for the SQL subset, plus the AST and its
//! canonical rendering.
//!
//! The grammar (keywords case-insensitive):
//!
//! ```text
//! statement := [EXPLAIN] SELECT agg FROM ident join* [WHERE pred (AND pred)*] [;]
//! agg       := COUNT ( * ) | SUM ( colref ) | AVG ( colref )
//! join      := JOIN ident ON colref = colref
//! pred      := colref (= | < | <= | > | >=) number
//!            | colref BETWEEN number AND number
//! colref    := [ident .] cN          # N = 0-based column index
//! ```
//!
//! The parser is panic-free on arbitrary token streams: every failure is
//! a [`SqlError`] naming what was expected. [`Statement`] implements
//! [`std::fmt::Display`] with a canonical rendering that re-parses to the
//! same AST — the dist coordinator uses it to forward per-table
//! sub-statements, and the fuzz target uses it as its seed corpus.

use crate::lexer::{lex, Token};
use crate::SqlError;

/// The aggregate requested by a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum Agg {
    /// `COUNT(*)` — cardinality of the region.
    CountStar,
    /// `SUM(col)` over the region.
    Sum(ColRef),
    /// `AVG(col)` over the region.
    Avg(ColRef),
}

/// A positional column reference, optionally table-qualified (`t.c3`).
#[derive(Debug, Clone, PartialEq)]
pub struct ColRef {
    /// Qualifying table name, when written as `table.cN`.
    pub table: Option<String>,
    /// 0-based column index (the `N` of `cN`).
    pub col: usize,
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.c{}", self.col),
            None => write!(f, "c{}", self.col),
        }
    }
}

/// Comparison operators accepted in predicates (`≠` is deliberately
/// excluded: it has no single-interval lowering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// One conjunct of the `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `col op value`.
    Cmp {
        /// Constrained column.
        col: ColRef,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal.
        value: f64,
    },
    /// `col BETWEEN lo AND hi` (inclusive on both ends).
    Between {
        /// Constrained column.
        col: ColRef,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl Cond {
    /// The column this conjunct constrains.
    pub fn col(&self) -> &ColRef {
        match self {
            Cond::Cmp { col, .. } => col,
            Cond::Between { col, .. } => col,
        }
    }
}

impl std::fmt::Display for Cond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cond::Cmp { col, op, value } => write!(f, "{col} {op} {value}"),
            Cond::Between { col, lo, hi } => write!(f, "{col} BETWEEN {lo} AND {hi}"),
        }
    }
}

/// One `JOIN <table> ON <left> = <right>` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Joined table name.
    pub table: String,
    /// Left side of the equi-join condition.
    pub left: ColRef,
    /// Right side of the equi-join condition.
    pub right: ColRef,
}

impl std::fmt::Display for JoinClause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JOIN {} ON {} = {}", self.table, self.left, self.right)
    }
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Requested aggregate.
    pub agg: Agg,
    /// `FROM` table name.
    pub table: String,
    /// `JOIN` clauses, in statement order.
    pub joins: Vec<JoinClause>,
    /// `WHERE` conjuncts, in statement order.
    pub conds: Vec<Cond>,
}

impl std::fmt::Display for Select {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.agg {
            Agg::CountStar => write!(f, "SELECT COUNT(*)")?,
            Agg::Sum(c) => write!(f, "SELECT SUM({c})")?,
            Agg::Avg(c) => write!(f, "SELECT AVG({c})")?,
        }
        write!(f, " FROM {}", self.table)?;
        for j in &self.joins {
            write!(f, " {j}")?;
        }
        for (i, c) in self.conds.iter().enumerate() {
            write!(f, " {} {c}", if i == 0 { "WHERE" } else { "AND" })?;
        }
        Ok(())
    }
}

/// A complete parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// Execute the aggregate.
    Select(Select),
    /// Explain the join-order plan instead of executing.
    Explain(Select),
}

impl std::fmt::Display for Statement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain(s) => write!(f, "EXPLAIN {s}"),
        }
    }
}

/// Parse one SQL statement. Panic-free on arbitrary input.
pub fn parse(input: &str) -> Result<Statement, SqlError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let explain = p.accept_kw("EXPLAIN");
    let sel = p.select()?;
    let _ = p.accept(&Token::Semi);
    if let Some((t, off)) = p.peek_at() {
        return Err(SqlError::new(format!("trailing input at byte {off}: {t}")));
    }
    Ok(if explain { Statement::Explain(sel) } else { Statement::Select(sel) })
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek_at(&self) -> Option<&(Token, usize)> {
        self.tokens.get(self.pos)
    }

    fn err_here(&self, expected: &str) -> SqlError {
        match self.peek_at() {
            Some((t, off)) => SqlError::new(format!("expected {expected} at byte {off}, got {t}")),
            None => SqlError::new(format!("expected {expected}, got end of statement")),
        }
    }

    /// Consume the next token if it equals `want`.
    fn accept(&mut self, want: &Token) -> bool {
        if matches!(self.peek_at(), Some((t, _)) if t == want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn require(&mut self, want: &Token, what: &str) -> Result<(), SqlError> {
        if self.accept(want) {
            Ok(())
        } else {
            Err(self.err_here(what))
        }
    }

    /// Consume the next token if it is `kw` (case-insensitive ident).
    fn accept_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek_at(), Some((Token::Ident(s), _)) if s.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn require_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(kw))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek_at() {
            Some((Token::Ident(s), _)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err_here(what)),
        }
    }

    fn number(&mut self) -> Result<f64, SqlError> {
        match self.peek_at() {
            Some((Token::Number(v), _)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err_here("a number")),
        }
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.require_kw("SELECT")?;
        let agg = self.agg()?;
        self.require_kw("FROM")?;
        let table = self.ident("a table name after FROM")?;
        let mut joins = Vec::new();
        while self.accept_kw("JOIN") {
            let t = self.ident("a table name after JOIN")?;
            self.require_kw("ON")?;
            let left = self.colref()?;
            self.require(&Token::Eq, "= in the join condition")?;
            let right = self.colref()?;
            joins.push(JoinClause { table: t, left, right });
        }
        let mut conds = Vec::new();
        if self.accept_kw("WHERE") {
            conds.push(self.cond()?);
            while self.accept_kw("AND") {
                conds.push(self.cond()?);
            }
        }
        Ok(Select { agg, table, joins, conds })
    }

    fn agg(&mut self) -> Result<Agg, SqlError> {
        if self.accept_kw("COUNT") {
            self.require(&Token::LParen, "( after COUNT")?;
            self.require(&Token::Star, "* inside COUNT()")?;
            self.require(&Token::RParen, ") after COUNT(*")?;
            Ok(Agg::CountStar)
        } else if self.accept_kw("SUM") {
            self.require(&Token::LParen, "( after SUM")?;
            let c = self.colref()?;
            self.require(&Token::RParen, ") after the SUM column")?;
            Ok(Agg::Sum(c))
        } else if self.accept_kw("AVG") {
            self.require(&Token::LParen, "( after AVG")?;
            let c = self.colref()?;
            self.require(&Token::RParen, ") after the AVG column")?;
            Ok(Agg::Avg(c))
        } else {
            Err(self.err_here("COUNT(*), SUM(col), or AVG(col)"))
        }
    }

    fn colref(&mut self) -> Result<ColRef, SqlError> {
        let first = self.ident("a column reference (cN or table.cN)")?;
        if self.accept(&Token::Dot) {
            let col_name = self.ident("a column (cN) after the table qualifier")?;
            let col = parse_col_index(&col_name)
                .ok_or_else(|| SqlError::new(format!("bad column reference {col_name:?}")))?;
            Ok(ColRef { table: Some(first), col })
        } else {
            let col = parse_col_index(&first)
                .ok_or_else(|| SqlError::new(format!("bad column reference {first:?}")))?;
            Ok(ColRef { table: None, col })
        }
    }

    fn cond(&mut self) -> Result<Cond, SqlError> {
        let col = self.colref()?;
        if self.accept_kw("BETWEEN") {
            let lo = self.number()?;
            self.require_kw("AND")?;
            let hi = self.number()?;
            return Ok(Cond::Between { col, lo, hi });
        }
        let op = match self.peek_at() {
            Some((Token::Eq, _)) => CmpOp::Eq,
            Some((Token::Lt, _)) => CmpOp::Lt,
            Some((Token::Le, _)) => CmpOp::Le,
            Some((Token::Gt, _)) => CmpOp::Gt,
            Some((Token::Ge, _)) => CmpOp::Ge,
            _ => return Err(self.err_here("a comparison operator or BETWEEN")),
        };
        self.pos += 1;
        let value = self.number()?;
        Ok(Cond::Cmp { col, op, value })
    }
}

/// Parse a positional column name `cN` into its index.
fn parse_col_index(name: &str) -> Option<usize> {
    let digits = name.strip_prefix('c').or_else(|| name.strip_prefix('C'))?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_count_star_with_conjuncts() {
        let s = parse("SELECT COUNT(*) FROM twi WHERE c0 = 3 AND c1 BETWEEN 2.5 AND 9").unwrap();
        let Statement::Select(sel) = s else { panic!("not a select") };
        assert_eq!(sel.agg, Agg::CountStar);
        assert_eq!(sel.table, "twi");
        assert_eq!(sel.conds.len(), 2);
        assert_eq!(
            sel.conds[1],
            Cond::Between { col: ColRef { table: None, col: 1 }, lo: 2.5, hi: 9.0 }
        );
    }

    #[test]
    fn parses_explain_with_joins() {
        let s = parse(
            "explain select count(*) from hub join d0 on hub.c0 = d0.c0 \
             join d1 on hub.c1 = d1.c0 where d0.c1 <= 5",
        )
        .unwrap();
        let Statement::Explain(sel) = s else { panic!("not an explain") };
        assert_eq!(sel.joins.len(), 2);
        assert_eq!(sel.joins[1].table, "d1");
        assert_eq!(sel.conds[0].col(), &ColRef { table: Some("d0".into()), col: 1 });
    }

    #[test]
    fn display_round_trips_to_the_same_ast() {
        for text in [
            "SELECT COUNT(*) FROM t",
            "SELECT SUM(c1) FROM t WHERE c0 = 3",
            "SELECT AVG(c2) FROM t WHERE c2 >= -1.5 AND c0 BETWEEN 0 AND 2",
            "EXPLAIN SELECT COUNT(*) FROM hub JOIN d0 ON hub.c0 = d0.c0 WHERE d0.c1 < 7",
        ] {
            let ast = parse(text).unwrap();
            let rendered = ast.to_string();
            let back = parse(&rendered).unwrap();
            assert_eq!(back, ast, "{text} → {rendered}");
        }
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "",
            "SELECT",
            "SELECT COUNT(*)",
            "SELECT COUNT(*) FROM",
            "SELECT MAX(c0) FROM t",
            "SELECT COUNT(c0) FROM t",
            "SELECT COUNT(*) FROM t WHERE",
            "SELECT COUNT(*) FROM t WHERE c0",
            "SELECT COUNT(*) FROM t WHERE c0 = ",
            "SELECT COUNT(*) FROM t WHERE c0 != 3",
            "SELECT COUNT(*) FROM t WHERE x = 3",
            "SELECT COUNT(*) FROM t WHERE c0 BETWEEN 1",
            "SELECT COUNT(*) FROM t WHERE c0 BETWEEN 1 AND",
            "SELECT COUNT(*) FROM t JOIN ON c0 = c1",
            "SELECT COUNT(*) FROM t extra garbage",
            "SELECT COUNT(*) FROM t; SELECT COUNT(*) FROM t",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn semicolon_and_case_are_tolerated() {
        assert!(parse("select count(*) from t;").is_ok());
        assert!(parse("SeLeCt AvG(C3) FrOm T wHeRe C3 > 0").is_ok());
    }
}
