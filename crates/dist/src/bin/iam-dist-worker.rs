//! The worker process binary.
//!
//! ```text
//! iam-dist-worker [--addr 127.0.0.1:0] [--serve-workers N] [--max-batch N]
//!                 [--obs-label NAME]
//! ```
//!
//! `--obs-label` turns span collection and trace-tree recording on (both
//! are off by default) and stamps NAME as this process's label in every
//! span record it ships back to the coordinator — pass a distinct label
//! per worker so merged traces attribute spans to the right process.
//!
//! Binds the given address (port 0 picks a free port), prints a single
//! `LISTENING <addr>` line on stdout so a parent process can harvest the
//! bound address, then serves protocol frames until a peer sends
//! `Shutdown` — at which point the listener closes, connections join, and
//! every per-table service drains before the process exits 0.

use iam_dist::{WorkerConfig, WorkerHandle};
use iam_serve::ServeConfig;
use std::io::Write;

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut serve = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--serve-workers" => {
                serve.workers = value("--serve-workers").parse().unwrap_or_else(|_| {
                    eprintln!("bad --serve-workers value");
                    std::process::exit(2);
                })
            }
            "--max-batch" => {
                serve.max_batch = value("--max-batch").parse().unwrap_or_else(|_| {
                    eprintln!("bad --max-batch value");
                    std::process::exit(2);
                })
            }
            "--obs-label" => {
                iam_obs::tracetree::set_process_label(&value("--obs-label"));
                iam_obs::span::enable();
                iam_obs::tracetree::enable();
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let worker = match WorkerHandle::spawn(&addr, WorkerConfig { serve, ..Default::default() }) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("bind {addr} failed: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", worker.addr);
    let _ = std::io::stdout().flush();

    worker.wait_for_shutdown();
    worker.stop();
}
