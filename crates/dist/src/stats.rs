//! Prometheus-exposition plumbing for the cluster metrics plane.
//!
//! Workers answer [`Msg::Stats`](crate::proto::Msg::Stats) with one text
//! exposition covering their process-global registry plus every hosted
//! table's service registry; the coordinator scrapes all workers and
//! merges the replies into a single cluster exposition. Both sides lean
//! on two pure helpers here:
//!
//! * [`inject_label`] rewrites every sample line to carry an extra label
//!   (`table="trips"` on the worker, `worker="2"` on the coordinator), so
//!   merged series from different origins stay distinguishable;
//! * [`merge_expositions`] concatenates expositions while deduplicating
//!   repeated `# TYPE`/`# HELP` header lines — Prometheus text format
//!   allows each header once per exposition, and every worker ships the
//!   same metric families.
//!
//! Both helpers keep line order stable (first occurrence wins), so merged
//! output is deterministic given deterministic inputs — the registry
//! renders from a `BTreeMap`, so that holds end to end.

use crate::coordinator::Coordinator;
use std::collections::HashSet;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Escape a label value per the Prometheus text format (`\`, `"`, `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Add `key="value"` to every sample line of a text exposition. Comment
/// (`#`) and blank lines pass through untouched; sample lines with an
/// existing label set get the new label prepended inside the braces,
/// bare-name lines gain a label set.
pub fn inject_label(exposition: &str, key: &str, value: &str) -> String {
    let val = escape_label(value);
    let mut out = String::with_capacity(exposition.len() + 16);
    for line in exposition.lines() {
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            out.push_str(line);
        } else if let Some(brace) = line.find('{') {
            out.push_str(&line[..=brace]);
            out.push_str(key);
            out.push_str("=\"");
            out.push_str(&val);
            out.push_str("\",");
            out.push_str(&line[brace + 1..]);
        } else if let Some(space) = line.find(' ') {
            out.push_str(&line[..space]);
            out.push('{');
            out.push_str(key);
            out.push_str("=\"");
            out.push_str(&val);
            out.push_str("\"}");
            out.push_str(&line[space..]);
        } else {
            // not a sample line; pass through rather than corrupt it
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Concatenate expositions, keeping only the first occurrence of each
/// `# TYPE`/`# HELP` header line. Sample lines are never dropped.
pub fn merge_expositions<S: AsRef<str>>(parts: &[S]) -> String {
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = String::new();
    for part in parts {
        for line in part.as_ref().lines() {
            if line.starts_with('#') && !seen.insert(line.to_string()) {
                continue;
            }
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// A minimal HTTP scrape endpoint over
/// [`Coordinator::cluster_prometheus`]: any request gets a `200 text/plain`
/// response carrying the merged cluster exposition, one request per
/// connection — enough for `curl`/Prometheus scrapes and the CI check,
/// with no HTTP machinery beyond a status line.
pub struct MetricsFrontend {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl MetricsFrontend {
    /// Bind `addr` and serve scrapes until [`MetricsFrontend::stop`].
    pub fn spawn<A: ToSocketAddrs>(
        coord: Arc<Coordinator>,
        addr: A,
    ) -> io::Result<MetricsFrontend> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new().name("iam-dist-metrics".into()).spawn(move || {
                while !stop.load(Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = serve_scrape(stream, &coord);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })?
        };
        Ok(MetricsFrontend { addr, stop, accept_thread })
    }

    /// Close the listener and join the accept thread.
    pub fn stop(self) {
        self.stop.store(true, Relaxed);
        let _ = self.accept_thread.join();
    }
}

fn serve_scrape(stream: std::net::TcpStream, coord: &Coordinator) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    // consume the request line (and nothing more — headers may follow,
    // but a scrape response does not depend on them)
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let body = coord.cluster_prometheus();
    let mut out = stream;
    write!(
        out,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_label_handles_bare_and_labeled_lines() {
        let src = "# TYPE a counter\na 3\nb{x=\"1\"} 4\n\n";
        let got = inject_label(src, "table", "trips");
        assert_eq!(got, "# TYPE a counter\na{table=\"trips\"} 3\nb{table=\"trips\",x=\"1\"} 4\n\n");
    }

    #[test]
    fn inject_label_escapes_values() {
        let got = inject_label("a 1\n", "t", "he said \"hi\"\\");
        assert_eq!(got, "a{t=\"he said \\\"hi\\\"\\\\\"} 1\n");
    }

    #[test]
    fn merge_dedupes_type_headers_first_wins() {
        let w0 = "# TYPE a counter\na{worker=\"0\"} 1\n";
        let w1 = "# TYPE a counter\na{worker=\"1\"} 2\n# TYPE b gauge\nb{worker=\"1\"} 5\n";
        let merged = merge_expositions(&[w0, w1]);
        assert_eq!(merged.matches("# TYPE a counter").count(), 1);
        assert_eq!(merged.matches("# TYPE b gauge").count(), 1);
        assert!(merged.contains("a{worker=\"0\"} 1"));
        assert!(merged.contains("a{worker=\"1\"} 2"));
        // order: first exposition's lines come first
        assert!(merged.find("a{worker=\"0\"}").unwrap() < merged.find("a{worker=\"1\"}").unwrap());
    }

    #[test]
    fn merge_is_deterministic() {
        let parts = ["# TYPE x counter\nx 1\n", "# TYPE x counter\nx 2\n"];
        assert_eq!(merge_expositions(&parts), merge_expositions(&parts));
    }
}
