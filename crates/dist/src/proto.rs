//! Length-prefixed binary wire protocol between coordinator and workers.
//!
//! Framing: every message travels as `[u32 LE length][payload]`, where
//! `length` counts payload bytes only. A reader enforces a hard bound on
//! the length prefix *before* allocating ([`MAX_FRAME`] by default,
//! [`MAX_SNAPSHOT_FRAME`] on channels that carry model snapshots), so a
//! corrupt or hostile peer cannot force a huge allocation. A truncated
//! frame surfaces as [`DistError::Io`]; an oversized prefix as
//! [`DistError::FrameTooLarge`]; neither ever panics.
//!
//! Payload: one byte of message tag, then a tag-specific body using the
//! same little-endian primitives as `iam_core::persist` (u32/u64/f64 bit
//! patterns, u64-length-prefixed strings and sequences). Floats are
//! shipped as raw IEEE-754 bits, so an estimate crosses the wire
//! **bit-exactly** — the cluster's answers can be compared to
//! single-process inference with `to_bits` equality.
//!
//! Every request tag has exactly one success reply tag; workers answer
//! anything unintelligible with [`Msg::Error`] and keep the connection
//! open (malformed *framing* closes it, since resynchronisation inside a
//! byte stream is impossible).
//!
//! # Envelope versions
//!
//! The original (v1) payload starts directly with the message tag; tags
//! are small (1..=15) and `0xFF` can never be one. Version 2 exploits
//! that: a payload whose first byte is [`ENVELOPE_MARKER`] (`0xFF`)
//! carries an *envelope* — `[0xFF][version][flags][optional trace
//! context][optional span records]` — followed by an ordinary v1 message
//! payload. [`Frame::decode`] accepts both shapes, so a v2 reader
//! interoperates with v1 peers bidirectionally: old frames decode as
//! envelopes with no context, and a v2 frame sent without tracing enabled
//! is byte-identical to a v1 frame. The trace context is a 128-bit trace
//! id plus parent span id ([`TraceCtx`]); span records piggyback worker
//! span buffers onto replies so the coordinator can stitch one
//! cross-process trace tree (see `iam_obs::tracetree`).

use crate::error::DistError;
use iam_data::{Interval, RangeQuery};
use iam_obs::tracetree::SpanRecord;
use iam_obs::TraceCtx;
use std::io::{Read, Write};

/// Hard bound on ordinary (query/control) frame payloads: 16 MiB.
pub const MAX_FRAME: u32 = 16 << 20;
/// Hard bound on snapshot-bearing frame payloads: 1 GiB.
pub const MAX_SNAPSHOT_FRAME: u32 = 1 << 30;

/// First payload byte announcing a versioned envelope (never a valid v1
/// message tag).
pub const ENVELOPE_MARKER: u8 = 0xFF;
/// Current envelope version.
pub const ENVELOPE_VERSION: u8 = 2;
/// Envelope flag: a [`TraceCtx`] follows the header.
const FLAG_CTX: u8 = 0b0000_0001;
/// Envelope flag: a span-record list follows the (optional) context.
const FLAG_SPANS: u8 = 0b0000_0010;

/// One protocol message (either direction).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Liveness probe.
    Ping,
    /// Reply to [`Msg::Ping`].
    Pong,
    /// Ship a framed model snapshot (an `IAMF` envelope, see
    /// `IamEstimator::save_framed`) for `table`; the worker verifies the
    /// envelope checksum, parses the payload, and only then hot-swaps —
    /// a torn ship can never become the serving model.
    LoadSnapshot {
        /// Logical table the model answers queries for.
        table: String,
        /// Operator label recorded in the worker's model registry.
        label: String,
        /// The framed snapshot bytes.
        bytes: Vec<u8>,
    },
    /// Reply to [`Msg::LoadSnapshot`]: the registry version now serving.
    LoadAck {
        /// Echoed table name.
        table: String,
        /// Version id assigned by the worker's registry.
        version: u64,
    },
    /// Estimate a batch of queries against `table`'s model.
    EstimateBatch {
        /// Target table.
        table: String,
        /// The queries, answered in order.
        queries: Vec<RangeQuery>,
    },
    /// Reply to [`Msg::EstimateBatch`]: one result per query, in order.
    EstimateReply {
        /// Per-query selectivity (bit-exact f64) or error text.
        results: Vec<Result<f64, String>>,
    },
    /// Ask which model version serves `table`.
    Version {
        /// Target table.
        table: String,
    },
    /// Reply to [`Msg::Version`].
    VersionReply {
        /// Active registry version id.
        version: u64,
        /// Its operator label.
        label: String,
    },
    /// Ask the worker to drain and exit its process/listener.
    Shutdown,
    /// Reply to [`Msg::Shutdown`], sent just before the worker stops.
    ShutdownAck,
    /// Ask the worker for its metrics exposition (cluster metrics plane).
    Stats,
    /// Reply to [`Msg::Stats`].
    StatsReply {
        /// Prometheus text exposition of the worker's registries.
        prom: String,
    },
    /// Application-level failure (unknown table, bad batch, failed
    /// snapshot install). The connection stays usable.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Execute one SQL statement against `table`'s model (single-table
    /// `SELECT`/`EXPLAIN`; the coordinator decomposes join statements
    /// into per-table sub-statements before forwarding).
    Sql {
        /// Target table (must match the statement's `FROM` table).
        table: String,
        /// The statement text, in the `iam-sql` grammar.
        stmt: String,
    },
    /// Reply to [`Msg::Sql`]: the rendered reply body, exactly as the
    /// serve layer's `SQL` line-protocol command prints it (NaN-free by
    /// construction — empty regions answer the `NULL` marker).
    SqlReply {
        /// Reply text (multi-line for `EXPLAIN`, `END`-terminated).
        body: String,
    },
}

// --- primitives ----------------------------------------------------------

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_str(out: &mut Vec<u8>, s: &str) {
    w_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn w_bytes(out: &mut Vec<u8>, b: &[u8]) {
    w_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Cursor over a received payload; all reads are bounds-checked.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DistError::Protocol("truncated message body".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DistError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, DistError> {
        let b: [u8; 8] =
            self.take(8)?.try_into().map_err(|_| DistError::Protocol("truncated u64".into()))?;
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, DistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A u64 length that must still fit in the remaining payload (each
    /// element needs ≥ 1 byte), so hostile lengths cannot drive a huge
    /// `Vec::with_capacity`.
    fn len(&mut self) -> Result<usize, DistError> {
        let n = self.u64()?;
        let remaining = self.buf.len() - self.pos;
        match usize::try_from(n) {
            Ok(n) if n <= remaining => Ok(n),
            _ => Err(DistError::Protocol("length prefix exceeds message body".into())),
        }
    }

    fn str(&mut self) -> Result<String, DistError> {
        let n = self.len()?;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_string)
            .map_err(|_| DistError::Protocol("non-utf8 string".into()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DistError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }
}

// --- query codec ----------------------------------------------------------

fn encode_query(out: &mut Vec<u8>, q: &RangeQuery) {
    w_u64(out, q.cols.len() as u64);
    for c in &q.cols {
        match c {
            None => out.push(0),
            Some(iv) => {
                out.push(1);
                w_u64(out, iv.lo.to_bits());
                w_u64(out, iv.hi.to_bits());
                out.push((iv.lo_strict as u8) | (iv.hi_strict as u8) << 1);
            }
        }
    }
}

fn decode_query(cur: &mut Cur) -> Result<RangeQuery, DistError> {
    let ncols = cur.len()?;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        cols.push(match cur.u8()? {
            0 => None,
            1 => {
                let lo = cur.f64()?;
                let hi = cur.f64()?;
                let s = cur.u8()?;
                if s > 3 {
                    return Err(DistError::Protocol("bad interval strictness bits".into()));
                }
                Some(Interval { lo, hi, lo_strict: s & 1 != 0, hi_strict: s & 2 != 0 })
            }
            t => return Err(DistError::Protocol(format!("bad interval tag {t}"))),
        });
    }
    Ok(RangeQuery { cols })
}

// --- message codec ---------------------------------------------------------

impl Msg {
    /// Encode into a payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Msg::Ping => out.push(1),
            Msg::Pong => out.push(2),
            Msg::LoadSnapshot { table, label, bytes } => {
                out.push(3);
                w_str(&mut out, table);
                w_str(&mut out, label);
                w_bytes(&mut out, bytes);
            }
            Msg::LoadAck { table, version } => {
                out.push(4);
                w_str(&mut out, table);
                w_u64(&mut out, *version);
            }
            Msg::EstimateBatch { table, queries } => {
                out.push(5);
                w_str(&mut out, table);
                w_u64(&mut out, queries.len() as u64);
                for q in queries {
                    encode_query(&mut out, q);
                }
            }
            Msg::EstimateReply { results } => {
                out.push(6);
                w_u64(&mut out, results.len() as u64);
                for r in results {
                    match r {
                        Ok(v) => {
                            out.push(0);
                            w_u64(&mut out, v.to_bits());
                        }
                        Err(e) => {
                            out.push(1);
                            w_str(&mut out, e);
                        }
                    }
                }
            }
            Msg::Version { table } => {
                out.push(7);
                w_str(&mut out, table);
            }
            Msg::VersionReply { version, label } => {
                out.push(8);
                w_u64(&mut out, *version);
                w_str(&mut out, label);
            }
            Msg::Shutdown => out.push(9),
            Msg::ShutdownAck => out.push(10),
            Msg::Error { message } => {
                out.push(11);
                w_str(&mut out, message);
            }
            Msg::Stats => out.push(12),
            Msg::StatsReply { prom } => {
                out.push(13);
                w_str(&mut out, prom);
            }
            Msg::Sql { table, stmt } => {
                out.push(14);
                w_str(&mut out, table);
                w_str(&mut out, stmt);
            }
            Msg::SqlReply { body } => {
                out.push(15);
                w_str(&mut out, body);
            }
        }
        out
    }

    /// Decode a payload. The whole slice must be consumed — trailing bytes
    /// are a protocol error, never silently ignored.
    pub fn decode(buf: &[u8]) -> Result<Msg, DistError> {
        let mut cur = Cur { buf, pos: 0 };
        let msg = match cur.u8()? {
            1 => Msg::Ping,
            2 => Msg::Pong,
            3 => Msg::LoadSnapshot { table: cur.str()?, label: cur.str()?, bytes: cur.bytes()? },
            4 => Msg::LoadAck { table: cur.str()?, version: cur.u64()? },
            5 => {
                let table = cur.str()?;
                let n = cur.len()?;
                let mut queries = Vec::with_capacity(n);
                for _ in 0..n {
                    queries.push(decode_query(&mut cur)?);
                }
                Msg::EstimateBatch { table, queries }
            }
            6 => {
                let n = cur.len()?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(match cur.u8()? {
                        0 => Ok(f64::from_bits(cur.u64()?)),
                        1 => Err(cur.str()?),
                        t => {
                            return Err(DistError::Protocol(format!("bad result tag {t}")));
                        }
                    });
                }
                Msg::EstimateReply { results }
            }
            7 => Msg::Version { table: cur.str()? },
            8 => Msg::VersionReply { version: cur.u64()?, label: cur.str()? },
            9 => Msg::Shutdown,
            10 => Msg::ShutdownAck,
            11 => Msg::Error { message: cur.str()? },
            12 => Msg::Stats,
            13 => Msg::StatsReply { prom: cur.str()? },
            14 => Msg::Sql { table: cur.str()?, stmt: cur.str()? },
            15 => Msg::SqlReply { body: cur.str()? },
            t => return Err(DistError::Protocol(format!("unknown message tag {t}"))),
        };
        if cur.pos != buf.len() {
            return Err(DistError::Protocol(format!(
                "{} trailing bytes after message",
                buf.len() - cur.pos
            )));
        }
        Ok(msg)
    }
}

// --- envelope codec (v2) ---------------------------------------------------

/// A message plus its optional envelope extras: the trace context a
/// request carries forward, and the span records a reply ships back.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The message itself.
    pub msg: Msg,
    /// Trace context (requests: coordinator → worker).
    pub ctx: Option<TraceCtx>,
    /// Span records (replies: worker → coordinator).
    pub spans: Vec<SpanRecord>,
}

impl From<Msg> for Frame {
    fn from(msg: Msg) -> Frame {
        Frame { msg, ctx: None, spans: Vec::new() }
    }
}

fn encode_span(out: &mut Vec<u8>, s: &SpanRecord) {
    w_u64(out, (s.trace_id >> 64) as u64);
    w_u64(out, s.trace_id as u64);
    w_u64(out, s.span_id);
    w_u64(out, s.parent_span);
    w_str(out, &s.name);
    w_str(out, &s.proc);
    w_u64(out, s.start_unix_us);
    w_u64(out, s.dur_us);
}

fn decode_span(cur: &mut Cur) -> Result<SpanRecord, DistError> {
    let hi = cur.u64()?;
    let lo = cur.u64()?;
    Ok(SpanRecord {
        trace_id: ((hi as u128) << 64) | lo as u128,
        span_id: cur.u64()?,
        parent_span: cur.u64()?,
        name: cur.str()?,
        proc: cur.str()?,
        start_unix_us: cur.u64()?,
        dur_us: cur.u64()?,
    })
}

impl Frame {
    /// Encode into a payload (no frame header). A frame with neither
    /// context nor spans encodes as a bare v1 payload — byte-identical to
    /// [`Msg::encode`] — so tracing-off clusters speak exactly the old
    /// protocol, and v1 peers only ever see bytes they understand as long
    /// as tracing stays off.
    pub fn encode(&self) -> Vec<u8> {
        if self.ctx.is_none() && self.spans.is_empty() {
            return self.msg.encode();
        }
        let mut out = Vec::new();
        out.push(ENVELOPE_MARKER);
        out.push(ENVELOPE_VERSION);
        let mut flags = 0u8;
        if self.ctx.is_some() {
            flags |= FLAG_CTX;
        }
        if !self.spans.is_empty() {
            flags |= FLAG_SPANS;
        }
        out.push(flags);
        if let Some(ctx) = self.ctx {
            w_u64(&mut out, (ctx.trace_id >> 64) as u64);
            w_u64(&mut out, ctx.trace_id as u64);
            w_u64(&mut out, ctx.parent_span);
        }
        if !self.spans.is_empty() {
            w_u64(&mut out, self.spans.len() as u64);
            for s in &self.spans {
                encode_span(&mut out, s);
            }
        }
        out.extend_from_slice(&self.msg.encode());
        out
    }

    /// Decode a payload in either envelope version: a leading
    /// [`ENVELOPE_MARKER`] byte introduces a v2 envelope, anything else is
    /// a bare v1 message (backward compatibility — old-version frames
    /// decode as frames with no context or spans). Unknown *future*
    /// envelope versions are rejected rather than misparsed.
    pub fn decode(buf: &[u8]) -> Result<Frame, DistError> {
        if buf.first() != Some(&ENVELOPE_MARKER) {
            return Ok(Frame::from(Msg::decode(buf)?));
        }
        let mut cur = Cur { buf, pos: 1 };
        let version = cur.u8()?;
        if version != ENVELOPE_VERSION {
            return Err(DistError::Protocol(format!("unsupported envelope version {version}")));
        }
        let flags = cur.u8()?;
        if flags & !(FLAG_CTX | FLAG_SPANS) != 0 {
            return Err(DistError::Protocol(format!("unknown envelope flags {flags:#04x}")));
        }
        let ctx = if flags & FLAG_CTX != 0 {
            let hi = cur.u64()?;
            let lo = cur.u64()?;
            let trace_id = ((hi as u128) << 64) | lo as u128;
            Some(TraceCtx { trace_id, parent_span: cur.u64()? })
        } else {
            None
        };
        let mut spans = Vec::new();
        if flags & FLAG_SPANS != 0 {
            let n = cur.len()?;
            spans.reserve(n.min(1024));
            for _ in 0..n {
                spans.push(decode_span(&mut cur)?);
            }
        }
        let msg = Msg::decode(&buf[cur.pos..])?;
        Ok(Frame { msg, ctx, spans })
    }
}

/// Write one framed message.
pub fn write_msg<W: Write>(w: &mut W, msg: &Msg) -> Result<(), DistError> {
    write_payload(w, msg.encode())
}

/// Write one framed message with envelope extras (context, span records).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), DistError> {
    write_payload(w, frame.encode())
}

/// Write one framed request with an optional trace context, borrowing the
/// message — the coordinator reuses one request message across failover
/// attempts and must not clone snapshot payloads per attempt. Without a
/// context this is byte-identical to [`write_msg`] (bare v1 frame).
pub fn write_request<W: Write>(
    w: &mut W,
    msg: &Msg,
    ctx: Option<TraceCtx>,
) -> Result<(), DistError> {
    let Some(ctx) = ctx else {
        return write_msg(w, msg);
    };
    let mut payload = Vec::new();
    payload.push(ENVELOPE_MARKER);
    payload.push(ENVELOPE_VERSION);
    payload.push(FLAG_CTX);
    w_u64(&mut payload, (ctx.trace_id >> 64) as u64);
    w_u64(&mut payload, ctx.trace_id as u64);
    w_u64(&mut payload, ctx.parent_span);
    payload.extend_from_slice(&msg.encode());
    write_payload(w, payload)
}

fn write_payload<W: Write>(w: &mut W, payload: Vec<u8>) -> Result<(), DistError> {
    let len = u32::try_from(payload.len()).map_err(|_| DistError::FrameTooLarge {
        len: payload.len() as u64,
        max: u32::MAX as u64,
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload bytes, rejecting length prefixes above
/// `max_frame` before any allocation. `Ok(None)` means the peer closed
/// the stream cleanly at a frame boundary.
fn read_payload<R: Read>(r: &mut R, max_frame: u32) -> Result<Option<Vec<u8>>, DistError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_frame {
        return Err(DistError::FrameTooLarge { len: len as u64, max: max_frame as u64 });
    }
    // chunked read: the length prefix is untrusted until the bytes behind
    // it arrive, so allocation tracks delivered input (a hostile 4-byte
    // header on a snapshot channel must not reserve a gigabyte upfront)
    let len = usize::try_from(len)
        .map_err(|_| DistError::Protocol("frame length exceeds platform usize".into()))?;
    let mut payload = Vec::with_capacity(len.min(PAYLOAD_CHUNK));
    let mut chunk = [0u8; PAYLOAD_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(Some(payload))
}

/// Read one framed message, discarding any envelope extras. Accepts both
/// envelope versions; `Ok(None)` means clean peer close.
pub fn read_msg<R: Read>(r: &mut R, max_frame: u32) -> Result<Option<Msg>, DistError> {
    match read_payload(r, max_frame)? {
        Some(payload) => Frame::decode(&payload).map(|f| Some(f.msg)),
        None => Ok(None),
    }
}

/// Read one framed message with its envelope extras intact.
pub fn read_frame<R: Read>(r: &mut R, max_frame: u32) -> Result<Option<Frame>, DistError> {
    match read_payload(r, max_frame)? {
        Some(payload) => Frame::decode(&payload).map(Some),
        None => Ok(None),
    }
}

/// Granularity of incremental payload reads (and the upfront capacity
/// bound): big enough to amortise `Read` calls, small enough that a
/// hostile length prefix reserves nothing of consequence.
const PAYLOAD_CHUNK: usize = 16 * 1024;

/// [`read_msg`] for readers with a read timeout installed (worker
/// connection handlers): a `WouldBlock`/`TimedOut` poll is retried, and
/// `cancelled()` is consulted on each retry so a handler can notice
/// shutdown between (or during) frames without ever tearing a frame in
/// half — partial header/payload bytes stay accumulated across retries.
/// Returns `Ok(None)` on clean peer close or cancellation.
pub fn read_msg_cancellable<R: Read>(
    r: &mut R,
    max_frame: u32,
    cancelled: &dyn Fn() -> bool,
) -> Result<Option<Msg>, DistError> {
    Ok(read_frame_cancellable(r, max_frame, cancelled)?.map(|f| f.msg))
}

/// [`read_frame`] with the retry/cancellation behaviour of
/// [`read_msg_cancellable`] — the worker connection loop uses this to
/// receive envelopes (trace context) without losing shutdown polling.
pub fn read_frame_cancellable<R: Read>(
    r: &mut R,
    max_frame: u32,
    cancelled: &dyn Fn() -> bool,
) -> Result<Option<Frame>, DistError> {
    fn fill<R: Read>(
        r: &mut R,
        buf: &mut [u8],
        cancelled: &dyn Fn() -> bool,
        header: bool,
    ) -> Result<bool, DistError> {
        let mut got = 0usize;
        while got < buf.len() {
            match r.read(&mut buf[got..]) {
                Ok(0) => {
                    if header && got == 0 {
                        return Ok(false); // clean close at a frame boundary
                    }
                    return Err(DistError::Protocol("eof inside frame".into()));
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if cancelled() {
                        return Ok(false);
                    }
                }
                Err(e) => return Err(DistError::Io(e)),
            }
        }
        Ok(true)
    }

    let mut len_buf = [0u8; 4];
    if !fill(r, &mut len_buf, cancelled, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_frame {
        return Err(DistError::FrameTooLarge { len: len as u64, max: max_frame as u64 });
    }
    let len = usize::try_from(len)
        .map_err(|_| DistError::Protocol("frame length exceeds platform usize".into()))?;
    // chunked as in [`read_msg`]; each chunk keeps `fill`'s accumulate-
    // across-retries behaviour, so cancellation polls still never tear a
    // frame and allocation still tracks delivered bytes only
    let mut payload = Vec::with_capacity(len.min(PAYLOAD_CHUNK));
    let mut chunk = [0u8; PAYLOAD_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        if !fill(r, &mut chunk[..take], cancelled, false)? {
            return Ok(None);
        }
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Frame::decode(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Msg) {
        let mut wire = Vec::new();
        write_msg(&mut wire, &m).unwrap();
        let got = read_msg(&mut wire.as_slice(), MAX_SNAPSHOT_FRAME).unwrap().unwrap();
        assert_eq!(got, m);
    }

    #[test]
    fn all_messages_round_trip() {
        let mut q = RangeQuery::unconstrained(3);
        q.cols[0] = Some(Interval::point(3.0));
        q.cols[2] = Some(Interval { lo: -1.5, hi: 2.5, lo_strict: true, hi_strict: false });
        roundtrip(Msg::Ping);
        roundtrip(Msg::Pong);
        roundtrip(Msg::LoadSnapshot {
            table: "wisdm".into(),
            label: "v2".into(),
            bytes: vec![1, 2, 3, 255],
        });
        roundtrip(Msg::LoadAck { table: "wisdm".into(), version: 7 });
        roundtrip(Msg::EstimateBatch {
            table: "twi".into(),
            queries: vec![q, RangeQuery::unconstrained(2)],
        });
        roundtrip(Msg::EstimateReply {
            results: vec![Ok(0.125), Err("bad query".into()), Ok(f64::MIN_POSITIVE)],
        });
        roundtrip(Msg::Version { table: "t".into() });
        roundtrip(Msg::VersionReply { version: 3, label: "refresh".into() });
        roundtrip(Msg::Shutdown);
        roundtrip(Msg::ShutdownAck);
        roundtrip(Msg::Error { message: "nope".into() });
        roundtrip(Msg::Stats);
        roundtrip(Msg::StatsReply { prom: "# TYPE x counter\nx 1\n".into() });
        roundtrip(Msg::Sql {
            table: "twi".into(),
            stmt: "SELECT COUNT(*) FROM twi WHERE c0 = 3".into(),
        });
        roundtrip(Msg::SqlReply { body: "COUNT 12.000000 SEL 0.015000 NROWS 800".into() });
    }

    fn span(trace: u128, id: u64, parent: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_span: parent,
            name: "worker.serve".into(),
            proc: "worker-1".into(),
            start_unix_us: 1_700_000_000_000_000,
            dur_us: 1234,
        }
    }

    #[test]
    fn envelope_round_trips_ctx_and_spans() {
        let trace = (7u128 << 64) | 9;
        for frame in [
            Frame {
                msg: Msg::Ping,
                ctx: Some(TraceCtx { trace_id: trace, parent_span: 42 }),
                spans: Vec::new(),
            },
            Frame {
                msg: Msg::EstimateReply { results: vec![Ok(0.25)] },
                ctx: None,
                spans: vec![span(trace, 1, 0), span(trace, 2, 1)],
            },
            Frame {
                msg: Msg::EstimateBatch {
                    table: "t".into(),
                    queries: vec![RangeQuery::unconstrained(2)],
                },
                ctx: Some(TraceCtx { trace_id: u128::MAX, parent_span: u64::MAX }),
                spans: vec![span(u128::MAX, 3, 2)],
            },
        ] {
            let mut wire = Vec::new();
            write_frame(&mut wire, &frame).unwrap();
            let got = read_frame(&mut wire.as_slice(), MAX_FRAME).unwrap().unwrap();
            assert_eq!(got, frame);
            // legacy readers still get the message, extras dropped
            let msg = read_msg(&mut wire.as_slice(), MAX_FRAME).unwrap().unwrap();
            assert_eq!(msg, frame.msg);
        }
    }

    #[test]
    fn bare_frames_stay_v1_byte_identical() {
        // no ctx, no spans → the payload must be exactly Msg::encode, so a
        // tracing-off v2 process emits bytes a v1 peer understands
        let m = Msg::Version { table: "t".into() };
        assert_eq!(Frame::from(m.clone()).encode(), m.encode());
    }

    #[test]
    fn old_version_frames_decode_through_frame() {
        // a v1 peer's payload (no envelope) decodes as a frame without extras
        let m =
            Msg::EstimateBatch { table: "t".into(), queries: vec![RangeQuery::unconstrained(1)] };
        let frame = Frame::decode(&m.encode()).unwrap();
        assert_eq!(frame.msg, m);
        assert_eq!(frame.ctx, None);
        assert!(frame.spans.is_empty());
        // and the v1 reader path accepts envelope frames (read_msg above),
        // while a *future* envelope version is rejected, not misparsed
        let mut future = Frame {
            msg: Msg::Ping,
            ctx: Some(TraceCtx { trace_id: 1, parent_span: 0 }),
            spans: Vec::new(),
        }
        .encode();
        future[1] = 3; // version bump
        assert!(Frame::decode(&future).is_err());
    }

    #[test]
    fn hostile_envelopes_never_panic() {
        assert!(Frame::decode(&[ENVELOPE_MARKER]).is_err(), "marker alone");
        assert!(Frame::decode(&[ENVELOPE_MARKER, ENVELOPE_VERSION]).is_err(), "no flags");
        assert!(
            Frame::decode(&[ENVELOPE_MARKER, ENVELOPE_VERSION, 0b1000_0000, 1]).is_err(),
            "unknown flag bits"
        );
        // ctx flag set but body truncated mid-context
        let mut t = vec![ENVELOPE_MARKER, ENVELOPE_VERSION, 1];
        t.extend_from_slice(&7u64.to_le_bytes());
        assert!(Frame::decode(&t).is_err());
        // span count far beyond the body
        let mut s = vec![ENVELOPE_MARKER, ENVELOPE_VERSION, 2];
        s.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Frame::decode(&s).is_err());
        // mutated garbage around a valid envelope
        let good = Frame {
            msg: Msg::EstimateReply { results: vec![Ok(0.5)] },
            ctx: Some(TraceCtx { trace_id: 77, parent_span: 3 }),
            spans: vec![span(77, 9, 3)],
        }
        .encode();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for _ in 0..2000 {
            let mut buf = good.clone();
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % buf.len();
            buf[i] ^= (x >> 17) as u8;
            let _ = Frame::decode(&buf); // must not panic
        }
    }

    #[test]
    fn estimates_cross_the_wire_bit_exactly() {
        // exercise bit patterns a text protocol would mangle
        for v in [0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1e-300, 0.3_f64.next_down()] {
            let m = Msg::EstimateReply { results: vec![Ok(v)] };
            let mut wire = Vec::new();
            write_msg(&mut wire, &m).unwrap();
            match read_msg(&mut wire.as_slice(), MAX_FRAME).unwrap().unwrap() {
                Msg::EstimateReply { results } => {
                    assert_eq!(results[0].as_ref().unwrap().to_bits(), v.to_bits());
                }
                other => panic!("wrong reply {other:?}"),
            }
        }
    }

    #[test]
    fn clean_eof_is_none_truncation_is_error() {
        assert!(read_msg(&mut &[][..], MAX_FRAME).unwrap().is_none());
        let mut wire = Vec::new();
        write_msg(&mut wire, &Msg::Version { table: "abc".into() }).unwrap();
        // a peer dying inside the 4-byte length prefix reads as disconnect;
        // dying inside the payload is a hard truncation error
        for cut in 1..4 {
            assert!(matches!(read_msg(&mut &wire[..cut], MAX_FRAME), Ok(None)));
        }
        for cut in 4..wire.len() {
            assert!(
                read_msg(&mut &wire[..cut], MAX_FRAME).is_err(),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        match read_msg(&mut wire.as_slice(), MAX_FRAME) {
            Err(DistError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as u64);
                assert_eq!(max, MAX_FRAME as u64);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn hostile_inner_lengths_and_garbage_never_panic() {
        // element-count prefix far beyond the body
        let mut payload = vec![5u8]; // EstimateBatch
        payload.extend_from_slice(&1u64.to_le_bytes()); // table len 1
        payload.push(b't');
        payload.extend_from_slice(&u64::MAX.to_le_bytes()); // "queries"
        assert!(Msg::decode(&payload).is_err());
        // unknown tags, trailing junk, random bytes
        assert!(Msg::decode(&[99]).is_err());
        assert!(Msg::decode(&[1, 0]).is_err(), "trailing byte after Ping");
        assert!(Msg::decode(&[]).is_err());
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for _ in 0..2000 {
            let mut junk = Vec::new();
            for _ in 0..(x % 64) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                junk.push((x >> 32) as u8);
            }
            let _ = Msg::decode(&junk); // must not panic
        }
    }
}
