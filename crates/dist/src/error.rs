//! Error type for the distributed layer.

use std::fmt;

/// Everything that can go wrong between a coordinator call and its reply.
#[derive(Debug)]
pub enum DistError {
    /// A socket operation failed (connect, read, write). The connection is
    /// torn down; the coordinator treats the worker as failed for this
    /// attempt and moves to the next replica.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as a protocol frame or
    /// message (bad magic, unknown tag, truncated body, non-UTF-8 string).
    Protocol(String),
    /// A length prefix exceeded the negotiated frame bound; the frame was
    /// rejected *before* any allocation.
    FrameTooLarge {
        /// Length the prefix claimed.
        len: u64,
        /// The enforced bound.
        max: u64,
    },
    /// The RPC did not complete within the per-request deadline.
    Timeout,
    /// The remote worker reported an application-level error (bad query,
    /// unknown table, failed snapshot install, …).
    Remote(String),
    /// Every replica of the query's table failed; the query is skipped
    /// with this error rather than blocking the rest of the batch.
    NoReplica {
        /// The table whose replicas were exhausted.
        table: String,
        /// How many replicas were tried.
        tried: usize,
    },
    /// The request referenced a table absent from the placement map.
    UnknownTable(String),
    /// A SQL statement failed to parse or lower at the coordinator — the
    /// statement never reached a worker.
    Sql(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "i/o error: {e}"),
            DistError::Protocol(m) => write!(f, "protocol error: {m}"),
            DistError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds bound {max}")
            }
            DistError::Timeout => write!(f, "rpc deadline exceeded"),
            DistError::Remote(m) => write!(f, "remote error: {m}"),
            DistError::NoReplica { table, tried } => {
                write!(f, "all {tried} replicas of table {table:?} failed")
            }
            DistError::UnknownTable(t) => write!(f, "table {t:?} is not placed on any worker"),
            DistError::Sql(m) => write!(f, "sql error: {m}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
            DistError::Timeout
        } else {
            DistError::Io(e)
        }
    }
}
