//! A cluster worker: one process (or thread group) hosting an
//! `iam-serve` [`Service`] — registry, cache, micro-batching workers — per
//! placed table, answering protocol frames over TCP.
//!
//! Workers start **empty**: models arrive via [`Msg::LoadSnapshot`]
//! (snapshot shipping). The worker verifies the framed envelope's checksum
//! and fully parses the payload *before* touching the serving state, then
//! installs it through the registry's atomic hot-swap — so a torn or
//! corrupt ship can never become (or tear) the serving model, and
//! estimates issued during a ship are answered entirely by the old or
//! entirely by the new version.
//!
//! Connection handling mirrors `iam_serve::net`: an accept loop plus one
//! thread per connection, all joined on [`WorkerHandle::stop`]. Malformed
//! *messages* inside an intact frame get an [`Msg::Error`] reply and the
//! connection survives; broken *framing* (oversized length prefix,
//! truncated frame) closes the connection, because a byte stream cannot
//! resynchronise mid-frame.

use crate::error::DistError;
use crate::proto::{
    read_frame_cancellable, write_frame, write_msg, Frame, Msg, MAX_SNAPSHOT_FRAME,
};
use iam_core::IamEstimator;
use iam_obs::Registry;
use iam_serve::{ServeConfig, Service};
use std::collections::HashMap;
use std::io::{self, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs for [`WorkerHandle::spawn`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Per-table serving configuration (queue, batcher, cache).
    pub serve: ServeConfig,
    /// Largest accepted frame payload; snapshot ships need room for model
    /// bytes, so this defaults to [`MAX_SNAPSHOT_FRAME`].
    pub max_frame: u32,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig { serve: ServeConfig::default(), max_frame: MAX_SNAPSHOT_FRAME }
    }
}

/// Shared worker state: the per-table services plus RPC counters.
struct WorkerState {
    cfg: WorkerConfig,
    tables: Mutex<HashMap<String, Service>>,
    /// Signalled when a peer sends [`Msg::Shutdown`].
    shutdown_tx: SyncSender<()>,
    frames: Arc<iam_obs::Counter>,
    estimates: Arc<iam_obs::Counter>,
    snapshots: Arc<iam_obs::Counter>,
    proto_errors: Arc<iam_obs::Counter>,
}

impl WorkerState {
    fn handle(&self, msg: Msg) -> Option<Msg> {
        self.frames.inc();
        match msg {
            Msg::Ping => Some(Msg::Pong),
            Msg::Shutdown => {
                let _ = self.shutdown_tx.try_send(());
                Some(Msg::ShutdownAck)
            }
            Msg::Version { table } => {
                let tables = self.lock_tables();
                Some(match tables.get(&table) {
                    Some(svc) => {
                        let (version, label) = svc.current_version();
                        Msg::VersionReply { version, label }
                    }
                    None => Msg::Error { message: format!("unknown table {table:?}") },
                })
            }
            Msg::LoadSnapshot { table, label, bytes } => {
                // checksum + full parse happen here, before any serving
                // state is touched — the active model survives a bad ship
                let model = match IamEstimator::load_framed(&mut bytes.as_slice()) {
                    Ok(m) => m,
                    Err(e) => {
                        return Some(Msg::Error {
                            message: format!("snapshot rejected for {table:?}: {e}"),
                        })
                    }
                };
                self.snapshots.inc();
                let mut tables = self.lock_tables();
                let version = match tables.get(&table) {
                    Some(svc) => svc.swap_model(model, &label),
                    None => {
                        let svc = Service::start(model, &label, self.cfg.serve.clone());
                        let v = svc.current_version().0;
                        tables.insert(table.clone(), svc);
                        v
                    }
                };
                Some(Msg::LoadAck { table, version })
            }
            Msg::EstimateBatch { table, queries } => {
                let client = {
                    let tables = self.lock_tables();
                    match tables.get(&table) {
                        Some(svc) => svc.client(),
                        None => {
                            return Some(Msg::Error { message: format!("unknown table {table:?}") })
                        }
                    }
                };
                self.estimates.add(queries.len() as u64);
                let results = client
                    .estimate_many(&queries)
                    .into_iter()
                    .map(|r| r.map_err(|e| e.to_string()))
                    .collect();
                Some(Msg::EstimateReply { results })
            }
            Msg::Stats => Some(Msg::StatsReply { prom: self.exposition() }),
            Msg::Sql { table, stmt } => {
                let client = {
                    let tables = self.lock_tables();
                    match tables.get(&table) {
                        Some(svc) => svc.client(),
                        None => {
                            return Some(Msg::Error { message: format!("unknown table {table:?}") })
                        }
                    }
                };
                self.estimates.inc();
                // the worker only executes single-table statements — the
                // coordinator decomposes joins before forwarding — so the
                // serve layer's SQL executor applies unchanged
                Some(match iam_serve::execute_sql(&stmt, &client) {
                    Ok(body) => Msg::SqlReply { body },
                    Err(e) => Msg::Error { message: e.to_string() },
                })
            }
            // reply-direction messages are meaningless as requests
            Msg::Pong
            | Msg::LoadAck { .. }
            | Msg::EstimateReply { .. }
            | Msg::VersionReply { .. }
            | Msg::ShutdownAck
            | Msg::StatsReply { .. }
            | Msg::SqlReply { .. }
            | Msg::Error { .. } => {
                Some(Msg::Error { message: "unexpected reply-direction message".into() })
            }
        }
    }

    /// This worker's whole metrics plane as one Prometheus exposition:
    /// every hosted table's service registry under a `table` label, then
    /// the process-global registry once. `# TYPE` headers repeated across
    /// tables are deduplicated; table order is sorted, so the output is
    /// deterministic.
    fn exposition(&self) -> String {
        let tables = self.lock_tables();
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort();
        let mut parts: Vec<String> = names
            .iter()
            .map(|name| {
                crate::stats::inject_label(&tables[*name].metrics_prometheus_local(), "table", name)
            })
            .collect();
        parts.push(Registry::global().render_prometheus());
        crate::stats::merge_expositions(&parts)
    }

    fn lock_tables(&self) -> std::sync::MutexGuard<'_, HashMap<String, Service>> {
        // the guarded map only ever holds fully constructed services, so a
        // panic mid-section leaves valid state — take and continue
        self.tables.lock().unwrap_or_else(|p| {
            self.tables.clear_poison();
            p.into_inner()
        })
    }
}

/// A running worker. [`WorkerHandle::stop`] closes the listener, joins the
/// connection handlers, and drains every per-table service.
pub struct WorkerHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    state: Arc<WorkerState>,
    shutdown_rx: Receiver<()>,
}

impl WorkerHandle {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve protocol frames.
    pub fn spawn<A: ToSocketAddrs>(addr: A, cfg: WorkerConfig) -> io::Result<WorkerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (shutdown_tx, shutdown_rx) = sync_channel(1);
        let reg = Registry::global();
        let state = Arc::new(WorkerState {
            cfg,
            tables: Mutex::new(HashMap::new()),
            shutdown_tx,
            frames: reg.counter("iam_dist_worker_frames_total", &[]),
            estimates: reg.counter("iam_dist_worker_estimates_total", &[]),
            snapshots: reg.counter("iam_dist_worker_snapshots_total", &[]),
            proto_errors: reg.counter("iam_dist_worker_proto_errors_total", &[]),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let (state, stop, conns) = (Arc::clone(&state), Arc::clone(&stop), Arc::clone(&conns));
            std::thread::Builder::new()
                .name("iam-dist-accept".into())
                .spawn(move || accept_loop(listener, &state, &stop, &conns))?
        };
        Ok(WorkerHandle { addr, stop, accept_thread, conns, state, shutdown_rx })
    }

    /// Block until a peer sends [`Msg::Shutdown`] (the worker binary's
    /// main-thread parking spot).
    pub fn wait_for_shutdown(&self) {
        let _ = self.shutdown_rx.recv();
    }

    /// Like [`Self::wait_for_shutdown`] with a timeout; returns whether a
    /// shutdown request arrived.
    pub fn wait_for_shutdown_timeout(&self, d: Duration) -> bool {
        self.shutdown_rx.recv_timeout(d).is_ok()
    }

    /// Tables currently hosting a model.
    pub fn tables(&self) -> Vec<String> {
        let mut t: Vec<String> = self.state.lock_tables().keys().cloned().collect();
        t.sort();
        t
    }

    /// Stop accepting, join every connection handler, and drain the
    /// per-table services (graceful: queued estimates are answered).
    pub fn stop(self) {
        self.stop.store(true, Relaxed);
        let _ = self.accept_thread.join();
        let handles: Vec<_> = {
            let mut conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
            conns.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        let tables = std::mem::take(&mut *self.state.lock_tables());
        for (_, svc) in tables {
            let _ = svc.shutdown();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    state: &Arc<WorkerState>,
    stop: &Arc<AtomicBool>,
    conns: &Mutex<Vec<std::thread::JoinHandle<()>>>,
) {
    while !stop.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                let stop = Arc::clone(stop);
                let spawned =
                    std::thread::Builder::new().name("iam-dist-conn".into()).spawn(move || {
                        let _ = handle_connection(stream, &state, &stop);
                    });
                match spawned {
                    Ok(handle) => {
                        conns.lock().unwrap_or_else(|p| p.into_inner()).push(handle);
                    }
                    // thread exhaustion is a transient resource failure: drop
                    // this connection (the stream closes) and keep accepting
                    Err(_) => continue,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    state: &WorkerState,
    stop: &AtomicBool,
) -> Result<(), DistError> {
    // short read timeout so the handler re-checks `stop` between frames;
    // read_msg_cancellable only treats a timeout as idle at a frame
    // boundary, so slow mid-frame peers are never corrupted
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut reader = stream.try_clone()?;
    let mut out = BufWriter::new(stream);
    loop {
        let frame = match read_frame_cancellable(&mut reader, state.cfg.max_frame, &|| {
            stop.load(Relaxed)
        }) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()), // peer closed, or we are stopping
            Err(e @ (DistError::FrameTooLarge { .. } | DistError::Io(_))) => {
                // framing is unrecoverable: report (best effort) and close
                state.proto_errors.inc();
                let _ = write_msg(&mut out, &Msg::Error { message: e.to_string() });
                return Err(e);
            }
            Err(e) => {
                // the frame boundary held; the *message* was garbage —
                // reply and keep serving this connection
                state.proto_errors.inc();
                write_msg(&mut out, &Msg::Error { message: e.to_string() })?;
                continue;
            }
        };
        let stopping = matches!(frame.msg, Msg::Shutdown);
        // an incoming trace context (envelope v2) scopes this request's
        // spans; both guards must drop before the drain so the records are
        // in the buffer when we pick them up for piggybacking
        let ctx = frame.ctx.filter(|_| iam_obs::tracetree::enabled());
        let reply = {
            let _ctx = ctx.map(iam_obs::tracetree::install);
            let _span = iam_obs::span!("worker.serve");
            state.handle(frame.msg)
        };
        let spans = match ctx {
            Some(c) => iam_obs::tracetree::drain_trace(c.trace_id),
            None => Vec::new(),
        };
        if let Some(reply) = reply {
            write_frame(&mut out, &Frame { msg: reply, ctx: None, spans })?;
        }
        if stopping {
            return Ok(());
        }
    }
}
