//! Table→worker placement with R-way replication and round-robin replica
//! selection.
//!
//! Placement is deterministic: replica `i` of a table lands on worker
//! `(fnv(table) + i) mod N`, so the same cluster shape always produces the
//! same map (debuggable, and stable across coordinator restarts). The
//! per-table round-robin cursor spreads read load across a table's
//! replicas; on failure the coordinator simply continues the rotation, so
//! "retry on the alternate replica" and "balance across replicas" are the
//! same mechanism.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// Index of a worker in the coordinator's membership list.
pub type WorkerId = usize;

/// One table's replica set plus its load-balancing cursor.
struct TablePlacement {
    replicas: Vec<WorkerId>,
    cursor: AtomicUsize,
}

/// The cluster's table→worker map. All methods take `&self`; the map is
/// immutable after construction (membership changes rebuild it), only the
/// round-robin cursors mutate.
pub struct PlacementMap {
    tables: BTreeMap<String, TablePlacement>,
    nworkers: usize,
}

impl PlacementMap {
    /// Place `tables` across `nworkers` workers with `replicas`-way
    /// replication (clamped to the worker count — a 2-worker cluster
    /// cannot hold 3 distinct replicas).
    pub fn new<S: AsRef<str>>(tables: &[S], nworkers: usize, replicas: usize) -> PlacementMap {
        assert!(nworkers > 0, "placement needs at least one worker");
        let r = replicas.clamp(1, nworkers);
        let tables = tables
            .iter()
            .map(|t| {
                let t = t.as_ref();
                let base = iam_core::persist::fnv1a(t.as_bytes()) as usize;
                let replicas: Vec<WorkerId> = (0..r).map(|i| (base + i) % nworkers).collect();
                (t.to_string(), TablePlacement { replicas, cursor: AtomicUsize::new(0) })
            })
            .collect();
        PlacementMap { tables, nworkers }
    }

    /// Number of workers the map was built over.
    pub fn nworkers(&self) -> usize {
        self.nworkers
    }

    /// The table names in the map, sorted.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// The replica set of `table` (empty slice when unknown).
    pub fn replicas(&self, table: &str) -> &[WorkerId] {
        self.tables.get(table).map(|p| p.replicas.as_slice()).unwrap_or(&[])
    }

    /// The full replica rotation for one request: every replica of
    /// `table`, starting at the round-robin cursor. The first entry is the
    /// preferred replica; the rest are the failover order.
    pub fn rotation(&self, table: &str) -> Vec<WorkerId> {
        let Some(p) = self.tables.get(table) else { return Vec::new() };
        let n = p.replicas.len();
        let start = p.cursor.fetch_add(1, Relaxed) % n;
        (0..n).map(|i| p.replicas[(start + i) % n]).collect()
    }

    /// Every table placed on `worker`.
    pub fn tables_on(&self, worker: WorkerId) -> Vec<&str> {
        self.tables
            .iter()
            .filter(|(_, p)| p.replicas.contains(&worker))
            .map(|(t, _)| t.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_are_distinct_and_bounded() {
        let pm = PlacementMap::new(&["a", "b", "c", "d"], 3, 2);
        for t in ["a", "b", "c", "d"] {
            let r = pm.replicas(t);
            assert_eq!(r.len(), 2);
            assert_ne!(r[0], r[1], "replicas of {t} must be distinct workers");
            assert!(r.iter().all(|&w| w < 3));
        }
        // replication factor clamps to the worker count
        let pm = PlacementMap::new(&["a"], 2, 5);
        assert_eq!(pm.replicas("a").len(), 2);
    }

    #[test]
    fn placement_is_deterministic() {
        let a = PlacementMap::new(&["x", "y"], 4, 2);
        let b = PlacementMap::new(&["x", "y"], 4, 2);
        assert_eq!(a.replicas("x"), b.replicas("x"));
        assert_eq!(a.replicas("y"), b.replicas("y"));
    }

    #[test]
    fn rotation_round_robins_and_covers_all_replicas() {
        let pm = PlacementMap::new(&["t"], 3, 3);
        let first = pm.rotation("t");
        let second = pm.rotation("t");
        assert_ne!(first[0], second[0], "consecutive requests start on different replicas");
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "rotation visits every replica exactly once");
    }

    #[test]
    fn unknown_table_is_empty() {
        let pm = PlacementMap::new(&["t"], 2, 1);
        assert!(pm.replicas("nope").is_empty());
        assert!(pm.rotation("nope").is_empty());
    }
}
