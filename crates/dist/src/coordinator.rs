//! The cluster coordinator: membership, placement, scatter/gather, and
//! snapshot shipping.
//!
//! # Request path
//!
//! [`Coordinator::estimate_batch`] takes a client batch of
//! `(table, query)` pairs and answers it in three stages, each under an
//! `iam-obs` span:
//!
//! 1. **partition** (`dist.partition`) — group the batch by table,
//!    remembering each query's original position;
//! 2. **scatter** (`dist.rpc`) — one thread per table group sends the
//!    group to a replica chosen by the placement map's round-robin
//!    rotation. A failed RPC (connect/read/write error, deadline, or an
//!    application error such as a replica that missed its snapshot) tears
//!    down that worker's connection and retries the group on the next
//!    replica in the rotation; when every replica has failed the group's
//!    queries are *skipped with an error* rather than stalling the batch;
//! 3. **merge** (`dist.merge`) — scatter results are written back into
//!    input order.
//!
//! Because a worker's estimates are a pure function of (model bytes,
//! query) — persistence is bitwise-lossless and serving is
//! deterministic — it does not matter *which* replica answers: any
//! non-skipped answer is bit-identical to single-process inference.
//!
//! # Snapshot shipping
//!
//! [`Coordinator::ship_snapshot`] streams a framed model snapshot to every
//! replica of a table; each worker checksums and parses the bytes fully
//! before flipping its registry's atomic hot-swap, so a refresh propagates
//! with zero dropped requests and no replica ever serves a torn model.

use crate::error::DistError;
use crate::placement::{PlacementMap, WorkerId};
use crate::proto::{read_frame, write_request, Msg, MAX_FRAME};
use iam_core::IamEstimator;
use iam_data::RangeQuery;
use iam_obs::{Registry, TraceCtx};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Coordinator::new`].
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Replicas per table (clamped to the worker count).
    pub replicas: usize,
    /// Deadline for one client batch RPC, shared across its failover
    /// attempts: retries use whatever time remains.
    pub rpc_timeout: Duration,
    /// Deadline for establishing a worker connection.
    pub connect_timeout: Duration,
    /// Deadline for one snapshot ship per replica (ships move model
    /// bytes, so they get more time than estimate RPCs).
    pub ship_timeout: Duration,
    /// Largest reply frame accepted from a worker.
    pub max_frame: u32,
    /// Seed for the coordinator's trace-id generator — trace ids are a
    /// deterministic function of this seed and the batch sequence, never
    /// ambient entropy, so traces replay bit-identically in tests.
    pub trace_seed: u64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            replicas: 2,
            rpc_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(2),
            ship_timeout: Duration::from_secs(30),
            max_frame: MAX_FRAME,
            trace_seed: 0x7ACE_5EED,
        }
    }
}

/// A lazily (re)connected worker endpoint. The stream mutex serialises
/// RPCs to one worker (scatter parallelism is across workers); any failure
/// drops the stream so the next RPC reconnects from scratch.
struct WorkerConn {
    addr: SocketAddr,
    stream: Mutex<Option<TcpStream>>,
}

impl WorkerConn {
    fn rpc(
        &self,
        msg: &Msg,
        ctx: Option<TraceCtx>,
        deadline: Instant,
        connect_timeout: Duration,
        max_frame: u32,
    ) -> Result<Msg, DistError> {
        let mut guard = self.stream.lock().unwrap_or_else(|p| p.into_inner());
        let result = (|| {
            let remaining =
                deadline.checked_duration_since(Instant::now()).ok_or(DistError::Timeout)?;
            if guard.is_none() {
                *guard =
                    Some(TcpStream::connect_timeout(&self.addr, connect_timeout.min(remaining))?);
            }
            let stream = guard.as_mut().expect("connected above");
            let remaining =
                deadline.checked_duration_since(Instant::now()).ok_or(DistError::Timeout)?;
            stream.set_write_timeout(Some(remaining))?;
            stream.set_read_timeout(Some(remaining))?;
            write_request(stream, msg, ctx)?;
            let frame = read_frame(stream, max_frame)?
                .ok_or_else(|| DistError::Protocol("worker closed mid-rpc".into()))?;
            // spans the worker recorded under our trace ride back on the
            // reply; merge them so one local drain yields the whole tree
            if !frame.spans.is_empty() {
                iam_obs::tracetree::absorb(frame.spans);
            }
            Ok(frame.msg)
        })();
        if result.is_err() {
            // never reuse a stream after a failure: a timed-out reply could
            // arrive later and desynchronise the next RPC's framing
            *guard = None;
        }
        result
    }
}

/// One query addressed to a table in the cluster.
#[derive(Debug, Clone)]
pub struct ClusterQuery {
    /// Target table (must be in the placement map).
    pub table: String,
    /// The predicate.
    pub query: RangeQuery,
}

/// One table group's scatter result: the original batch positions and the
/// per-query outcomes.
type GroupResult = (Vec<usize>, Vec<Result<f64, DistError>>);

/// One replica's answer to a version probe.
pub type VersionReport = (WorkerId, Result<(u64, String), DistError>);

/// Outcome of shipping one snapshot to one replica.
#[derive(Debug)]
pub struct ShipOutcome {
    /// The replica.
    pub worker: WorkerId,
    /// Registry version now serving on success, or the failure.
    pub result: Result<u64, DistError>,
}

/// The cluster coordinator. All methods take `&self`; clone-free sharing
/// via `Arc<Coordinator>` is the intended multi-client shape.
pub struct Coordinator {
    workers: Vec<WorkerConn>,
    placement: PlacementMap,
    cfg: DistConfig,
    trace_gen: Mutex<iam_obs::TraceIdGen>,
    batches: Arc<iam_obs::Counter>,
    queries: Arc<iam_obs::Counter>,
    rpcs: Vec<Arc<iam_obs::Counter>>,
    rpc_failures: Vec<Arc<iam_obs::Counter>>,
    failovers: Arc<iam_obs::Counter>,
    skipped: Arc<iam_obs::Counter>,
    ships: Arc<iam_obs::Counter>,
}

impl Coordinator {
    /// Build a coordinator over `workers`, placing `tables` with
    /// [`DistConfig::replicas`]-way replication. Connections are lazy —
    /// construction never blocks on the network.
    pub fn new<S: AsRef<str>>(
        workers: Vec<SocketAddr>,
        tables: &[S],
        cfg: DistConfig,
    ) -> Coordinator {
        assert!(!workers.is_empty(), "a cluster needs at least one worker");
        let placement = PlacementMap::new(tables, workers.len(), cfg.replicas);
        let reg = Registry::global();
        let per_worker = |name: &str| -> Vec<Arc<iam_obs::Counter>> {
            (0..workers.len()).map(|i| reg.counter(name, &[("worker", &i.to_string())])).collect()
        };
        reg.gauge("iam_dist_workers", &[]).set(workers.len() as i64);
        Coordinator {
            rpcs: per_worker("iam_dist_rpc_total"),
            rpc_failures: per_worker("iam_dist_rpc_failures_total"),
            batches: reg.counter("iam_dist_batches_total", &[]),
            queries: reg.counter("iam_dist_queries_total", &[]),
            failovers: reg.counter("iam_dist_failover_total", &[]),
            skipped: reg.counter("iam_dist_skipped_queries_total", &[]),
            ships: reg.counter("iam_dist_snapshots_shipped_total", &[]),
            workers: workers
                .into_iter()
                .map(|addr| WorkerConn { addr, stream: Mutex::new(None) })
                .collect(),
            placement,
            trace_gen: Mutex::new(iam_obs::TraceIdGen::new(cfg.trace_seed)),
            cfg,
        }
    }

    /// The placement map (which replicas serve which table).
    pub fn placement(&self) -> &PlacementMap {
        &self.placement
    }

    /// Worker addresses, in membership order.
    pub fn worker_addrs(&self) -> Vec<SocketAddr> {
        self.workers.iter().map(|w| w.addr).collect()
    }

    /// Answer a client batch by scatter/gather; one result per query, in
    /// input order. Failed tables are skipped with per-query errors —
    /// a dead worker never takes the whole batch down with it.
    pub fn estimate_batch(&self, batch: &[ClusterQuery]) -> Vec<Result<f64, DistError>> {
        // with tracing on, each batch becomes one trace: a deterministic
        // trace id rooted here, carried to workers on the RPC envelope
        let root = if iam_obs::tracetree::enabled() {
            let mut gen = self.trace_gen.lock().unwrap_or_else(|p| p.into_inner());
            Some(TraceCtx::root(gen.next_trace_id()))
        } else {
            None
        };
        let _root_guard = root.map(iam_obs::tracetree::install);
        let _whole = iam_obs::span!("dist.scatter_gather");
        self.batches.inc();
        self.queries.add(batch.len() as u64);

        // partition: group query indices by table
        let groups: Vec<(&str, Vec<usize>)> = {
            let _s = iam_obs::span!("dist.partition");
            let mut by_table: HashMap<&str, Vec<usize>> = HashMap::new();
            for (i, q) in batch.iter().enumerate() {
                by_table.entry(q.table.as_str()).or_default().push(i);
            }
            let mut groups: Vec<_> = by_table.into_iter().collect();
            groups.sort_unstable_by_key(|(t, _)| *t);
            groups
        };

        // scatter: one thread per table group, replica failover inside.
        // The trace context is thread-local, so each scatter thread
        // re-installs a child context parented under the scatter span.
        let scatter_ctx = iam_obs::tracetree::child_ctx();
        let gathered: Vec<GroupResult> = std::thread::scope(|s| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|(table, idxs)| {
                    s.spawn(move || {
                        let _ctx = scatter_ctx.map(iam_obs::tracetree::install);
                        let queries: Vec<RangeQuery> =
                            idxs.iter().map(|&i| batch[i].query.clone()).collect();
                        let results = self.estimate_group(table, queries);
                        (idxs, results)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("scatter thread")).collect()
        });

        // merge: back into input order
        let _s = iam_obs::span!("dist.merge");
        let mut out: Vec<Option<Result<f64, DistError>>> = (0..batch.len()).map(|_| None).collect();
        for (idxs, results) in gathered {
            for (i, r) in idxs.into_iter().zip(results) {
                if r.is_err() {
                    self.skipped.inc();
                }
                if iam_core::invariant::ACTIVE {
                    // scatter produced disjoint index sets, so the gather
                    // must write each answer slot exactly once — a double
                    // write means answers are crossing between queries
                    iam_core::invariant::check(
                        out[i].is_none(),
                        "scatter/gather permutation wrote an answer slot twice",
                    );
                }
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|r| r.expect("every query answered or skipped")).collect()
    }

    /// Answer one table group with replica failover under a shared
    /// deadline.
    fn estimate_group(&self, table: &str, queries: Vec<RangeQuery>) -> Vec<Result<f64, DistError>> {
        let rotation = self.placement.rotation(table);
        if rotation.is_empty() {
            return queries
                .iter()
                .map(|_| Err(DistError::UnknownTable(table.to_string())))
                .collect();
        }
        let deadline = Instant::now() + self.cfg.rpc_timeout;
        let msg = Msg::EstimateBatch { table: table.to_string(), queries: queries.clone() };
        for (attempt, &wid) in rotation.iter().enumerate() {
            if attempt > 0 {
                self.failovers.inc();
            }
            self.rpcs[wid].inc();
            let _s = iam_obs::span!("dist.rpc");
            // worker spans parent under this attempt's rpc span, so a
            // failover shows up as sibling rpc spans in the trace
            let ctx = iam_obs::tracetree::child_ctx();
            match self.workers[wid].rpc(
                &msg,
                ctx,
                deadline,
                self.cfg.connect_timeout,
                self.cfg.max_frame,
            ) {
                Ok(Msg::EstimateReply { results }) if results.len() == queries.len() => {
                    return results.into_iter().map(|r| r.map_err(DistError::Remote)).collect();
                }
                _ => {
                    // wrong-arity replies and unexpected message kinds are
                    // protocol violations; application Errors (e.g. a
                    // replica that missed its snapshot) and transport
                    // failures are equally retryable on the next replica
                    self.rpc_failures[wid].inc();
                }
            }
        }
        let tried = rotation.len();
        queries
            .iter()
            .map(|_| Err(DistError::NoReplica { table: table.to_string(), tried }))
            .collect()
    }

    /// Answer one SQL statement against the cluster.
    ///
    /// Single-table `SELECT COUNT(*)/SUM/AVG` statements are re-rendered
    /// canonically and forwarded (via [`Msg::Sql`]) to a replica of the
    /// statement's table with the same rotation failover as
    /// [`Coordinator::estimate_batch`]; the worker answers with the exact
    /// reply body a single-process TCP front-end would print, so COUNT
    /// answers stay bit-identical to the line protocol. `EXPLAIN SELECT
    /// ... JOIN ...` statements are decomposed at the coordinator: each
    /// referenced table's conjuncts become a per-table `SELECT COUNT(*)`
    /// RPC (tables may be placed on different workers), and the gathered
    /// cardinalities drive the join-order search locally.
    ///
    /// `SELECT` over a join (without `EXPLAIN`) is rejected: the paper's
    /// estimator factorises per-table, so cross-table aggregates have no
    /// sound answer here.
    pub fn sql(&self, stmt: &str) -> Result<String, DistError> {
        let _s = iam_obs::span!("dist.sql");
        match iam_sql::parse(stmt).map_err(|e| DistError::Sql(e.to_string()))? {
            iam_sql::Statement::Select(sel) => {
                if !sel.joins.is_empty() {
                    return Err(DistError::Sql(
                        "JOIN is supported under EXPLAIN only; aggregates over joins \
                         are not estimable per-table"
                            .into(),
                    ));
                }
                self.sql_table(&sel.table, &sel.to_string())
            }
            iam_sql::Statement::Explain(sel) => {
                let mut cards = RpcCards { coord: self };
                iam_sql::explain(&sel, &mut cards).map_err(|e| DistError::Sql(e.to_string()))
            }
        }
    }

    /// Forward one already-validated single-table SQL statement to a
    /// replica of `table`, with rotation failover under a shared deadline.
    /// Application errors are remembered across attempts so a statement
    /// that every replica rejects surfaces its reason instead of a bare
    /// replica-exhaustion error.
    fn sql_table(&self, table: &str, stmt: &str) -> Result<String, DistError> {
        let rotation = self.placement.rotation(table);
        if rotation.is_empty() {
            return Err(DistError::UnknownTable(table.to_string()));
        }
        let deadline = Instant::now() + self.cfg.rpc_timeout;
        let msg = Msg::Sql { table: table.to_string(), stmt: stmt.to_string() };
        let mut last_remote = None;
        for (attempt, &wid) in rotation.iter().enumerate() {
            if attempt > 0 {
                self.failovers.inc();
            }
            self.rpcs[wid].inc();
            let _s = iam_obs::span!("dist.rpc");
            let ctx = iam_obs::tracetree::child_ctx();
            match self.workers[wid].rpc(
                &msg,
                ctx,
                deadline,
                self.cfg.connect_timeout,
                self.cfg.max_frame,
            ) {
                Ok(Msg::SqlReply { body }) => return Ok(body),
                Ok(Msg::Error { message }) => {
                    // still retried — one replica may have missed a
                    // snapshot — but the reason is kept for the error
                    self.rpc_failures[wid].inc();
                    last_remote = Some(message);
                }
                _ => {
                    self.rpc_failures[wid].inc();
                }
            }
        }
        match last_remote {
            Some(message) => Err(DistError::Remote(message)),
            None => Err(DistError::NoReplica { table: table.to_string(), tried: rotation.len() }),
        }
    }

    /// Ship pre-framed snapshot bytes to every replica of `table`,
    /// returning one outcome per replica. Replicas are shipped
    /// sequentially so at most one replica is mid-install at a time (the
    /// rest keep serving the old or already-flipped version).
    pub fn ship_snapshot(&self, table: &str, bytes: &[u8], label: &str) -> Vec<ShipOutcome> {
        let _s = iam_obs::span!("dist.ship_snapshot");
        let msg = Msg::LoadSnapshot {
            table: table.to_string(),
            label: label.to_string(),
            bytes: bytes.to_vec(),
        };
        self.placement
            .replicas(table)
            .iter()
            .map(|&wid| {
                let deadline = Instant::now() + self.cfg.ship_timeout;
                self.rpcs[wid].inc();
                let result = match self.workers[wid].rpc(
                    &msg,
                    iam_obs::tracetree::child_ctx(),
                    deadline,
                    self.cfg.connect_timeout,
                    self.cfg.max_frame,
                ) {
                    Ok(Msg::LoadAck { version, .. }) => {
                        self.ships.inc();
                        Ok(version)
                    }
                    Ok(Msg::Error { message }) => Err(DistError::Remote(message)),
                    Ok(other) => {
                        Err(DistError::Protocol(format!("unexpected ship reply {other:?}")))
                    }
                    Err(e) => Err(e),
                };
                if result.is_err() {
                    self.rpc_failures[wid].inc();
                }
                ShipOutcome { worker: wid, result }
            })
            .collect()
    }

    /// Serialise `model` into a framed snapshot and ship it to every
    /// replica of `table` — the `refresh_model` path: workers flip via the
    /// registry's atomic hot-swap, so requests in flight during the ship
    /// are answered wholly by the old or wholly by the new version.
    pub fn deploy_model(
        &self,
        table: &str,
        model: &mut IamEstimator,
        label: &str,
    ) -> Result<Vec<ShipOutcome>, DistError> {
        let mut bytes = Vec::new();
        model
            .save_framed(&mut bytes)
            .map_err(|e| DistError::Protocol(format!("snapshot serialisation failed: {e}")))?;
        Ok(self.ship_snapshot(table, &bytes, label))
    }

    /// Ask every replica of `table` which model version it serves.
    pub fn versions(&self, table: &str) -> Vec<VersionReport> {
        let msg = Msg::Version { table: table.to_string() };
        self.placement
            .replicas(table)
            .iter()
            .map(|&wid| {
                let deadline = Instant::now() + self.cfg.rpc_timeout;
                let r = match self.workers[wid].rpc(
                    &msg,
                    None,
                    deadline,
                    self.cfg.connect_timeout,
                    self.cfg.max_frame,
                ) {
                    Ok(Msg::VersionReply { version, label }) => Ok((version, label)),
                    Ok(Msg::Error { message }) => Err(DistError::Remote(message)),
                    Ok(other) => {
                        Err(DistError::Protocol(format!("unexpected version reply {other:?}")))
                    }
                    Err(e) => Err(e),
                };
                (wid, r)
            })
            .collect()
    }

    /// Ping one worker.
    pub fn ping(&self, worker: WorkerId) -> Result<(), DistError> {
        let deadline = Instant::now() + self.cfg.rpc_timeout;
        match self.workers[worker].rpc(
            &Msg::Ping,
            None,
            deadline,
            self.cfg.connect_timeout,
            self.cfg.max_frame,
        )? {
            Msg::Pong => Ok(()),
            other => Err(DistError::Protocol(format!("unexpected ping reply {other:?}"))),
        }
    }

    /// Scrape every worker's metrics registry (via [`Msg::Stats`]) and
    /// merge the replies into one cluster-wide Prometheus exposition:
    /// each worker's section carries a `worker="<index>"` label, repeated
    /// `# TYPE` headers are deduplicated, and the coordinator's own
    /// process-global registry (batch/failover/deadline-skip counters) is
    /// appended once, unlabeled. A worker that fails to answer gets a
    /// comment line instead of silently vanishing from the exposition.
    pub fn cluster_prometheus(&self) -> String {
        let mut parts = Vec::new();
        for (i, conn) in self.workers.iter().enumerate() {
            let deadline = Instant::now() + self.cfg.rpc_timeout;
            match conn.rpc(
                &Msg::Stats,
                None,
                deadline,
                self.cfg.connect_timeout,
                self.cfg.max_frame,
            ) {
                Ok(Msg::StatsReply { prom }) => {
                    parts.push(crate::stats::inject_label(&prom, "worker", &i.to_string()));
                }
                _ => {
                    self.rpc_failures[i].inc();
                    parts.push(format!("# scrape failed: worker {i}\n"));
                }
            }
        }
        parts.push(Registry::global().render_prometheus());
        crate::stats::merge_expositions(&parts)
    }

    /// Drain every buffered span — the coordinator's own plus the worker
    /// spans absorbed from reply envelopes — and render the merged JSONL
    /// trace and folded stacks. One scattered batch with tracing on shows
    /// up here as a single trace id whose tree spans both processes.
    pub fn drain_traces(&self) -> (String, String) {
        let records = iam_obs::tracetree::drain();
        (iam_obs::tracetree::to_jsonl(&records), iam_obs::tracetree::folded_stacks(&records))
    }

    /// Ask every worker to drain and exit; best effort (already-dead
    /// workers are ignored).
    pub fn shutdown_cluster(&self) {
        for w in 0..self.workers.len() {
            let deadline = Instant::now() + self.cfg.rpc_timeout;
            let _ = self.workers[w].rpc(
                &Msg::Shutdown,
                None,
                deadline,
                self.cfg.connect_timeout,
                self.cfg.max_frame,
            );
        }
    }
}

/// [`iam_sql::CardSource`] backed by per-table `SELECT COUNT(*)` RPCs:
/// each table's conjuncts are rendered back to SQL and answered by that
/// table's own replicas, so an EXPLAIN over a star join gathers its
/// cardinalities from however many workers the placement map spreads the
/// tables across.
struct RpcCards<'a> {
    coord: &'a Coordinator,
}

impl iam_sql::CardSource for RpcCards<'_> {
    fn table_sel(
        &mut self,
        table: &str,
        conds: &[iam_sql::Cond],
    ) -> Result<(f64, u64), iam_sql::SqlError> {
        let mut stmt = format!("SELECT COUNT(*) FROM {table}");
        for (i, cond) in conds.iter().enumerate() {
            stmt.push_str(if i == 0 { " WHERE " } else { " AND " });
            stmt.push_str(&cond.to_string());
        }
        let body = self
            .coord
            .sql_table(table, &stmt)
            .map_err(|e| iam_sql::SqlError::new(format!("{table}: {e}")))?;
        parse_count_body(&body).ok_or_else(|| {
            iam_sql::SqlError::new(format!("{table}: malformed COUNT reply {body:?}"))
        })
    }
}

/// Parse a worker's `COUNT <count> SEL <sel> NROWS <nrows>` reply body
/// into `(selectivity, nrows)`.
fn parse_count_body(body: &str) -> Option<(f64, u64)> {
    let parts: Vec<&str> = body.split_whitespace().collect();
    if parts.len() != 6 || parts[0] != "COUNT" || parts[2] != "SEL" || parts[4] != "NROWS" {
        return None;
    }
    Some((parts[3].parse().ok()?, parts[5].parse().ok()?))
}
