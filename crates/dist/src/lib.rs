//! iam-dist — a distributed estimation cluster over `iam-serve`
//! (std-only, no external dependencies).
//!
//! The single-process service answers a query in ~0.16 ms, which puts the
//! serving tier in the regime where network fan-out, not inference,
//! bounds throughput — the right shape for horizontal scale-out. This
//! crate adds that scale-out:
//!
//! * [`proto`] — a length-prefixed binary wire protocol with hard frame
//!   bounds and bit-exact f64 transport;
//! * [`placement`] — a deterministic table→worker map with R-way replicas
//!   and round-robin replica rotation;
//! * [`worker`] — a worker process hosting one `iam-serve`
//!   [`Service`](iam_serve::Service) (registry + cache + micro-batcher)
//!   per placed table;
//! * [`coordinator`] — membership, scatter/gather over client batches
//!   (partition by table → parallel RPC with retry-on-alternate-replica →
//!   order-preserving merge), and snapshot shipping for cluster-wide
//!   `refresh_model` without dropped requests.
//!
//! The correctness story composes three invariants proved by the lower
//! layers: persistence is bitwise-lossless (`iam-core`), served estimates
//! are a pure function of (model, query) (`iam-serve`), and floats cross
//! the wire as raw bits ([`proto`]). Therefore *any* replica's answer to
//! a query is bit-identical to single-process inference — replica choice,
//! failover, and batch partitioning cannot change a single bit.

#![deny(missing_docs)]

pub mod coordinator;
pub mod error;
pub mod placement;
pub mod proto;
pub mod stats;
pub mod worker;

pub use coordinator::{ClusterQuery, Coordinator, DistConfig, ShipOutcome};
pub use error::DistError;
pub use placement::{PlacementMap, WorkerId};
pub use proto::{read_msg, write_msg, Frame, Msg, MAX_FRAME, MAX_SNAPSHOT_FRAME};
pub use stats::MetricsFrontend;
pub use worker::{WorkerConfig, WorkerHandle};
