//! Deterministic replay of the regression corpus (tier-1).
//!
//! Every file in `tests/corpus/` is a hostile input that once mattered:
//! handcrafted seeds pinning a known attack class (regenerate with
//! `cargo test -p iam-audit --test gen_corpus -- --ignored`) plus any
//! crash artifacts saved by `iam-audit fuzz --save-crashes`. The file
//! name's prefix routes it to the parser it targets:
//!
//! * `proto-*`   → `iam_dist::proto::read_msg` (framed) and `Msg::decode`
//! * `persist-*` → `iam_core::persist` via `IamEstimator::load_framed`
//! * `line-*`    → `iam_serve::net::parse_query`
//! * `sql-*`     → `iam_sql::parse`
//!
//! The contract for every entry is the same: the parser returns — `Ok`
//! or a typed error — without panicking. Unknown prefixes fail the test
//! so a typo'd corpus file cannot silently pin nothing.

use iam_core::IamEstimator;
use iam_dist::proto::{read_msg, Msg, MAX_FRAME};
use iam_serve::net::parse_query;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn replay(path: &Path, bytes: &[u8]) {
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let run: Box<dyn Fn()> = if name.starts_with("proto-") {
        Box::new(|| {
            let _ = read_msg(&mut &bytes[..], MAX_FRAME);
            // also feed the payload (sans frame header) to the raw decoder
            if bytes.len() >= 4 {
                let _ = Msg::decode(&bytes[4..]);
            }
            let _ = Msg::decode(bytes);
        })
    } else if name.starts_with("persist-") {
        Box::new(|| {
            let _ = IamEstimator::load_framed(&mut &bytes[..]);
        })
    } else if name.starts_with("line-") {
        Box::new(|| {
            let line = String::from_utf8_lossy(bytes);
            for ncols in 1..=4 {
                let _ = parse_query(&line, ncols);
            }
        })
    } else if name.starts_with("sql-") {
        Box::new(|| {
            let text = String::from_utf8_lossy(bytes);
            if let Ok(stmt) = iam_sql::parse(&text) {
                // valid parses must render to canonical re-parseable text
                let _ = iam_sql::parse(&stmt.to_string()).expect("canonical text re-parses");
            }
        })
    } else {
        panic!("corpus entry {name:?} has no parser prefix (proto-/persist-/line-/sql-)");
    };
    let result = catch_unwind(AssertUnwindSafe(run));
    assert!(result.is_ok(), "corpus entry {name:?} panicked its parser");
}

#[test]
fn corpus_replays_without_panics() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus directory must exist and be checked in")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.is_file())
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 8,
        "corpus unexpectedly small ({} entries) — seeds missing?",
        entries.len()
    );
    for path in &entries {
        let bytes = std::fs::read(path).expect("readable corpus file");
        replay(path, &bytes);
    }
}

/// The seeds are not just "doesn't panic": the two DoS-class entries must
/// be *rejected* — if one ever starts parsing successfully, the guard it
/// pins has been deleted.
#[test]
fn dos_seeds_still_rejected() {
    let dir = corpus_dir();
    for name in ["persist-len-dos", "persist-huge-veclen", "proto-u32max-frame"] {
        let bytes = std::fs::read(dir.join(name)).expect("seed entry present");
        match name {
            "proto-u32max-frame" => {
                assert!(
                    read_msg(&mut &bytes[..], MAX_FRAME).is_err(),
                    "{name}: oversized frame no longer rejected"
                );
            }
            _ => {
                assert!(
                    IamEstimator::load_framed(&mut &bytes[..]).is_err(),
                    "{name}: hostile snapshot no longer rejected"
                );
            }
        }
    }
}
