//! Cluster-wide observability acceptance: one scattered batch across
//! three worker **processes** produces a single stitched trace tree
//! (coordinator spans plus per-worker spans parented under `dist.rpc`),
//! workers still decode old-version (v1) frames, and the coordinator's
//! merged Prometheus exposition carries per-worker labels — both via
//! [`Coordinator::cluster_prometheus`] and over the HTTP scrape endpoint.

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, WorkloadConfig, WorkloadGenerator};
use iam_dist::proto::{read_msg, write_msg};
use iam_dist::{ClusterQuery, Coordinator, DistConfig, MetricsFrontend, Msg};
use iam_obs::tracetree::{self, SpanRecord, TraceTree};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

/// One worker child process; killed on drop so a failing test never leaks
/// processes.
struct WorkerProc {
    child: Child,
    addr: SocketAddr,
}

impl WorkerProc {
    fn spawn(label: &str) -> WorkerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_iam-dist-worker"))
            .args(["--addr", "127.0.0.1:0", "--serve-workers", "1", "--obs-label", label])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn iam-dist-worker");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected worker banner {line:?}"))
            .parse()
            .expect("parse worker addr");
        WorkerProc { child, addr }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tiny_model(seed: u64) -> (IamEstimator, Vec<RangeQuery>) {
    let table = Dataset::Twi.generate(800, seed);
    let cfg = IamConfig {
        components: 4,
        hidden: vec![16, 16],
        embed_dim: 6,
        epochs: 1,
        samples: 60,
        seed,
        ..IamConfig::default()
    };
    let est = IamEstimator::fit(&table, cfg);
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), seed ^ 0xAB);
    let queries =
        gen.gen_queries(2).iter().map(|q| q.normalize(table.ncols()).unwrap().0).collect();
    (est, queries)
}

#[test]
fn scattered_batch_stitches_into_one_trace_tree() {
    // tracing is opt-in on both sides: workers via --obs-label, the
    // coordinator (this process) explicitly
    iam_obs::span::enable();
    tracetree::enable();
    tracetree::set_process_label("coord");
    tracetree::reset();

    let workers: Vec<WorkerProc> =
        (0..3).map(|i| WorkerProc::spawn(&format!("worker-{i}"))).collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.addr).collect();
    // fnv("trips") % 3 == 2, "taxi" → 0, "sensors" → 1: with single
    // replicas, one batch over all three tables must touch all 3 workers
    let tables = ["trips", "taxi", "sensors"];
    let coord = Arc::new(Coordinator::new(
        addrs,
        &tables,
        DistConfig { replicas: 1, trace_seed: 42, ..DistConfig::default() },
    ));
    let expected_workers: BTreeSet<String> =
        tables.iter().map(|t| format!("worker-{}", coord.placement().replicas(t)[0])).collect();
    assert_eq!(expected_workers.len(), 3, "table names chosen to cover all workers");

    let (mut model, queries) = tiny_model(7);
    for table in tables {
        for outcome in coord.deploy_model(table, &mut model, &format!("{table}-v1")).unwrap() {
            outcome.result.expect("ship");
        }
    }
    // shipping traced too — flush those spans before the batch under test
    let _ = coord.drain_traces();

    // --- the batch under test: 2 queries per table, one scatter ---------
    let batch: Vec<ClusterQuery> = tables
        .iter()
        .flat_map(|t| {
            queries.iter().map(move |q| ClusterQuery { table: t.to_string(), query: q.clone() })
        })
        .collect();
    for r in coord.estimate_batch(&batch) {
        r.expect("healthy cluster answers everything");
    }

    let (jsonl, folded) = coord.drain_traces();

    // --- JSONL schema round-trips -----------------------------------------
    let records: Vec<SpanRecord> = jsonl
        .lines()
        .map(|l| SpanRecord::from_json_line(l).unwrap_or_else(|| panic!("bad trace line {l:?}")))
        .collect();
    assert!(!records.is_empty(), "tracing produced no records");

    // --- a single stitched trace ------------------------------------------
    let trace_ids = TraceTree::trace_ids(&records);
    assert_eq!(trace_ids.len(), 1, "one batch must be exactly one trace: {trace_ids:?}");
    let tree = TraceTree::build(&records, trace_ids[0]);
    assert_eq!(tree.len(), records.len());

    let roots = tree.root_spans();
    assert_eq!(roots.len(), 1, "one root span");
    assert_eq!((roots[0].proc.as_str(), roots[0].name.as_str()), ("coord", "dist.scatter_gather"));
    let root_id = roots[0].span_id;

    // coordinator phases are children of the root
    let child_names: BTreeSet<&str> =
        tree.children_of(root_id).iter().map(|s| s.name.as_str()).collect();
    assert!(child_names.contains("dist.partition"), "{child_names:?}");
    assert!(child_names.contains("dist.rpc"), "{child_names:?}");
    assert!(child_names.contains("dist.merge"), "{child_names:?}");

    // every worker span is parented under a coordinator dist.rpc span
    let rpc_ids: BTreeSet<u64> = records
        .iter()
        .filter(|r| r.proc == "coord" && r.name == "dist.rpc")
        .map(|r| r.span_id)
        .collect();
    assert_eq!(rpc_ids.len(), 3, "one rpc span per table group");
    let worker_serve: Vec<&SpanRecord> =
        records.iter().filter(|r| r.name == "worker.serve").collect();
    assert_eq!(worker_serve.len(), 3, "one worker.serve span per group");
    for s in &worker_serve {
        assert!(
            rpc_ids.contains(&s.parent_span),
            "worker span {s:?} not parented under any dist.rpc span"
        );
    }
    let got_workers: BTreeSet<String> = worker_serve.iter().map(|s| s.proc.clone()).collect();
    assert_eq!(got_workers, expected_workers, "spans attribute to the placed workers");

    // the serving layer's own span nests below worker.serve
    let serve_batch: Vec<&SpanRecord> =
        records.iter().filter(|r| r.name == "serve.batch").collect();
    assert!(!serve_batch.is_empty(), "serve-side spans crossed the wire");
    let worker_serve_ids: BTreeSet<u64> = worker_serve.iter().map(|s| s.span_id).collect();
    for s in &serve_batch {
        assert!(worker_serve_ids.contains(&s.parent_span), "{s:?}");
    }

    // ...and core inference spans below that: the tree reaches infer.*
    let serve_batch_ids: BTreeSet<u64> = serve_batch.iter().map(|s| s.span_id).collect();
    let infer_spans: Vec<&SpanRecord> =
        records.iter().filter(|r| r.name.starts_with("infer.")).collect();
    assert!(!infer_spans.is_empty(), "core inference spans crossed the wire");
    let infer_ids: BTreeSet<u64> = infer_spans.iter().map(|s| s.span_id).collect();
    for s in &infer_spans {
        assert!(
            serve_batch_ids.contains(&s.parent_span) || infer_ids.contains(&s.parent_span),
            "infer span {s:?} not nested under serve.batch"
        );
    }

    // --- folded stacks nest across processes ------------------------------
    for line in folded.lines() {
        let (stack, n) = line.rsplit_once(' ').expect("folded line shape");
        let _: u64 = n.parse().unwrap_or_else(|_| panic!("bad self-time in {line:?}"));
        assert!(!stack.is_empty());
    }
    assert!(
        folded.lines().any(|l| {
            l.starts_with("coord:dist.scatter_gather;coord:dist.rpc;")
                && l.contains(":worker.serve")
                && l.contains(":infer.")
        }),
        "no coordinator→worker→serve→infer stack in:\n{folded}"
    );

    // --- a second batch is a new, distinct trace --------------------------
    for r in coord.estimate_batch(&batch) {
        r.expect("second batch");
    }
    let (jsonl2, _) = coord.drain_traces();
    let records2: Vec<SpanRecord> = jsonl2.lines().filter_map(SpanRecord::from_json_line).collect();
    let ids2 = TraceTree::trace_ids(&records2);
    assert_eq!(ids2.len(), 1);
    assert_ne!(ids2[0], trace_ids[0], "each batch gets its own trace id");

    // --- backward compatibility: bare v1 frames still work ----------------
    // speak the old protocol directly to a worker: no envelope, no trace
    // context — the worker must answer in kind
    let mut raw = TcpStream::connect(workers[0].addr).expect("raw v1 connect");
    write_msg(&mut raw, &Msg::Ping).expect("v1 write");
    match read_msg(&mut raw, 1 << 20).expect("v1 read") {
        Some(Msg::Pong) => {}
        other => panic!("v1 ping got {other:?}"),
    }
    drop(raw);

    // --- cluster metrics plane --------------------------------------------
    let prom = coord.cluster_prometheus();
    for i in 0..3 {
        assert!(
            prom.contains(&format!("worker=\"{i}\"")),
            "merged exposition missing worker {i} labels:\n{prom}"
        );
    }
    assert!(prom.contains("iam_dist_worker_frames_total"), "worker counters present");
    assert!(prom.contains("table=\"trips\""), "per-table service labels present");
    assert!(prom.contains("iam_dist_batches_total"), "coordinator's own counters present");
    assert_eq!(
        prom.matches("# TYPE iam_dist_worker_frames_total counter").count(),
        1,
        "TYPE headers deduplicated across workers"
    );

    // the HTTP scrape endpoint serves the same exposition
    let front = MetricsFrontend::spawn(Arc::clone(&coord), "127.0.0.1:0").expect("metrics bind");
    let mut scrape = TcpStream::connect(front.addr).expect("scrape connect");
    scrape.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("scrape request");
    let mut response = String::new();
    scrape.read_to_string(&mut response).expect("scrape response");
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    for i in 0..3 {
        assert!(response.contains(&format!("worker=\"{i}\"")), "scrape missing worker {i}");
    }
    front.stop();

    coord.shutdown_cluster();
}

/// Lean scrape check CI runs as its own step: no models, no tracing —
/// just spawn workers, scrape the coordinator's HTTP endpoint, and demand
/// per-worker labels in the merged exposition.
#[test]
fn prom_endpoint_scrape_carries_worker_labels() {
    let workers: Vec<WorkerProc> =
        (0..2).map(|i| WorkerProc::spawn(&format!("scrape-{i}"))).collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.addr).collect();
    let coord = Arc::new(Coordinator::new(addrs, &["trips"], DistConfig::default()));

    let front = MetricsFrontend::spawn(Arc::clone(&coord), "127.0.0.1:0").expect("metrics bind");
    let mut scrape = TcpStream::connect(front.addr).expect("scrape connect");
    scrape.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("scrape request");
    let mut response = String::new();
    scrape.read_to_string(&mut response).expect("scrape response");
    front.stop();

    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    assert!(
        head.contains("Content-Type: text/plain"),
        "prometheus text exposition content type: {head}"
    );
    for i in 0..2 {
        assert!(body.contains(&format!("worker=\"{i}\"")), "missing worker {i} labels:\n{body}");
    }
    assert!(body.contains("iam_dist_worker_frames_total"), "worker counters present");

    coord.shutdown_cluster();
}
