//! The acceptance test for distributed serving: a coordinator plus three
//! **separate worker processes** (spawned from the `iam-dist-worker`
//! binary), 2-way replicas, snapshot shipping, a refresh under concurrent
//! load, and a worker killed mid-traffic.
//!
//! The invariant under test end-to-end: every non-skipped answer the
//! cluster returns is **bit-identical** to single-process inference on the
//! same model — regardless of which replica answered, of failover, and of
//! an in-flight refresh (answers during a refresh are wholly-old or
//! wholly-new, never a mix).

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, WorkloadConfig, WorkloadGenerator};
use iam_dist::{ClusterQuery, Coordinator, DistConfig};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::{Duration, Instant};

/// One worker child process; killed on drop so a failing test never leaks
/// processes.
struct WorkerProc {
    child: Child,
    addr: SocketAddr,
}

impl WorkerProc {
    fn spawn() -> WorkerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_iam-dist-worker"))
            .args(["--addr", "127.0.0.1:0", "--serve-workers", "1"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn iam-dist-worker");
        // harvest the port-0 bind from the announced LISTENING line
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected worker banner {line:?}"))
            .parse()
            .expect("parse worker addr");
        WorkerProc { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Wait for a voluntary exit (after the coordinator's `Shutdown`).
    fn wait_clean_exit(&mut self, timeout: Duration) {
        let t0 = Instant::now();
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "worker exited with {status}");
                    return;
                }
                None if t0.elapsed() > timeout => {
                    self.kill();
                    panic!("worker did not exit within {timeout:?} after Shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn train(dataset: Dataset, seed: u64) -> (IamEstimator, Vec<RangeQuery>) {
    let table = dataset.generate(1_200, seed);
    let cfg = IamConfig {
        components: 4,
        hidden: vec![16, 16],
        embed_dim: 6,
        epochs: 1,
        samples: 60,
        seed,
        ..IamConfig::default()
    };
    let est = IamEstimator::fit(&table, cfg);
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), seed ^ 0xAB);
    let queries =
        gen.gen_queries(8).iter().map(|q| q.normalize(table.ncols()).unwrap().0).collect();
    (est, queries)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn multi_process_cluster_bit_identical_with_kill_and_refresh() {
    // --- models and ground truth (single-process inference) ------------
    let (mut wisdm_v1, wisdm_queries) = train(Dataset::Wisdm, 7);
    let (mut twi, twi_queries) = train(Dataset::Twi, 11);
    let mut wisdm_v2 = wisdm_v1.clone();
    wisdm_v2.train_epochs(&Dataset::Wisdm.generate(1_200, 7), 1);

    let wisdm_bits_v1 = bits(&wisdm_v1.estimate_batch_shared(&wisdm_queries, 1));
    let wisdm_bits_v2 = bits(&wisdm_v2.estimate_batch_shared(&wisdm_queries, 1));
    let twi_bits = bits(&twi.estimate_batch_shared(&twi_queries, 1));
    assert_ne!(wisdm_bits_v1, wisdm_bits_v2, "refresh must actually change some answer");

    // --- cluster up: 3 worker processes, 2-way replicas ----------------
    let mut workers: Vec<WorkerProc> = (0..3).map(|_| WorkerProc::spawn()).collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.addr).collect();
    let coord = Coordinator::new(
        addrs,
        &["wisdm", "twi"],
        DistConfig { replicas: 2, ..DistConfig::default() },
    );

    for (table, model, label) in [("wisdm", &mut wisdm_v1, "wisdm-v1"), ("twi", &mut twi, "twi-v1")]
    {
        for outcome in coord.deploy_model(table, model, label).unwrap() {
            outcome.result.unwrap_or_else(|e| {
                panic!("ship {label} to worker {} failed: {e}", outcome.worker)
            });
        }
    }

    let batch: Vec<ClusterQuery> = wisdm_queries
        .iter()
        .map(|q| ClusterQuery { table: "wisdm".into(), query: q.clone() })
        .chain(twi_queries.iter().map(|q| ClusterQuery { table: "twi".into(), query: q.clone() }))
        .collect();
    let expect_v1: Vec<u64> = wisdm_bits_v1.iter().chain(&twi_bits).copied().collect();

    // --- healthy cluster: every answer bit-identical --------------------
    let got = coord.estimate_batch(&batch);
    assert_eq!(got.len(), batch.len());
    for (i, (g, &e)) in got.iter().zip(&expect_v1).enumerate() {
        let v = g.as_ref().unwrap_or_else(|err| panic!("query {i} failed: {err}"));
        assert_eq!(v.to_bits(), e, "query {i}: cluster answer differs from direct inference");
    }

    // --- refresh under concurrent load ----------------------------------
    // hammer wisdm while v2 ships; every answer must be wholly v1 or
    // wholly v2 bits for its query — replicas flip atomically, so a
    // mid-refresh estimate can never mix versions
    let stop = AtomicBool::new(false);
    let wisdm_batch: Vec<ClusterQuery> = batch[..wisdm_queries.len()].to_vec();
    std::thread::scope(|s| {
        let hammers: Vec<_> = (0..2)
            .map(|_| {
                let (coord, stop, wisdm_batch) = (&coord, &stop, &wisdm_batch);
                let (wisdm_bits_v1, wisdm_bits_v2) = (&wisdm_bits_v1, &wisdm_bits_v2);
                s.spawn(move || {
                    let mut answered = 0usize;
                    while !stop.load(Relaxed) {
                        for (i, r) in coord.estimate_batch(wisdm_batch).iter().enumerate() {
                            let v = r.as_ref().expect("no worker died in this phase");
                            let b = v.to_bits();
                            assert!(
                                b == wisdm_bits_v1[i] || b == wisdm_bits_v2[i],
                                "query {i} answered {v} — neither v1 nor v2 bits: a mixed or \
                                 torn model answered during the refresh"
                            );
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();

        for outcome in coord.deploy_model("wisdm", &mut wisdm_v2, "wisdm-v2").unwrap() {
            outcome.result.unwrap_or_else(|e| {
                panic!("refresh ship to worker {} failed: {e}", outcome.worker)
            });
        }
        stop.store(true, Relaxed);
        let answered: usize = hammers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(answered > 0, "load threads never got an answer in");
    });

    // the flip is complete: every replica reports v2, answers are v2 bits
    for (wid, v) in coord.versions("wisdm") {
        let (version, label) = v.unwrap_or_else(|e| panic!("version probe {wid} failed: {e}"));
        assert_eq!((version, label.as_str()), (2, "wisdm-v2"), "worker {wid}");
    }
    for (i, r) in coord.estimate_batch(&wisdm_batch).iter().enumerate() {
        assert_eq!(r.as_ref().unwrap().to_bits(), wisdm_bits_v2[i], "query {i} after refresh");
    }

    // --- kill one replica mid-traffic ------------------------------------
    // stream batches from a thread; main kills a wisdm replica while the
    // stream runs. Non-skipped answers must stay bit-identical; once the
    // kill is absorbed, failover must answer the full batch again.
    let expect_v2: Vec<u64> = wisdm_bits_v2.iter().chain(&twi_bits).copied().collect();
    let victim = coord.placement().replicas("wisdm")[0];
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let hammer = {
            let (coord, stop, batch, expect_v2) = (&coord, &stop, &batch, &expect_v2);
            s.spawn(move || {
                let (mut answered, mut skipped) = (0usize, 0usize);
                while !stop.load(Relaxed) {
                    for (i, r) in coord.estimate_batch(batch).iter().enumerate() {
                        match r {
                            Ok(v) => {
                                assert_eq!(
                                    v.to_bits(),
                                    expect_v2[i],
                                    "query {i}: wrong bits while a worker was dying"
                                );
                                answered += 1;
                            }
                            Err(_) => skipped += 1,
                        }
                    }
                }
                (answered, skipped)
            })
        };

        std::thread::sleep(Duration::from_millis(50)); // let traffic start
        workers[victim].kill();
        std::thread::sleep(Duration::from_millis(200)); // keep streaming over the corpse
        stop.store(true, Relaxed);
        let (answered, skipped) = hammer.join().unwrap();
        assert!(answered > 0, "kill phase produced no answers at all");
        // skips are permitted only as a transient during the kill — the
        // surviving replica must keep every table answerable
        println!("kill phase: {answered} answered, {skipped} skipped");
    });

    // steady state after the kill: failover answers everything, same bits
    let got = coord.estimate_batch(&batch);
    for (i, (g, &e)) in got.iter().zip(&expect_v2).enumerate() {
        let v = g
            .as_ref()
            .unwrap_or_else(|err| panic!("query {i} still failing after failover: {err}"));
        assert_eq!(v.to_bits(), e, "query {i}: failover answer differs from direct inference");
    }

    // --- drain: survivors exit 0 on Shutdown -----------------------------
    coord.shutdown_cluster();
    for (wid, w) in workers.iter_mut().enumerate() {
        if wid != victim {
            w.wait_clean_exit(Duration::from_secs(30));
        }
    }
}
