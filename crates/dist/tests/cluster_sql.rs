//! SQL through the cluster coordinator: single-table statements are
//! forwarded to the table's replicas and answer **byte-identically** to a
//! single-process `execute_sql` on the same model; `EXPLAIN` over a join
//! gathers per-table cardinalities by RPC (the tables live on different
//! workers) and renders a plan; failover keeps SQL answering after a
//! replica dies.

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_dist::{Coordinator, DistConfig, DistError};
use iam_serve::{ServeConfig, Service};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// One worker child process; killed on drop so a failing test never leaks
/// processes.
struct WorkerProc {
    child: Child,
    addr: SocketAddr,
}

impl WorkerProc {
    fn spawn() -> WorkerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_iam-dist-worker"))
            .args(["--addr", "127.0.0.1:0", "--serve-workers", "1"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn iam-dist-worker");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected worker banner {line:?}"))
            .parse()
            .expect("parse worker addr");
        WorkerProc { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn train(dataset: Dataset, seed: u64) -> IamEstimator {
    let table = dataset.generate(900, seed);
    let cfg = IamConfig {
        components: 4,
        hidden: vec![16, 16],
        embed_dim: 6,
        epochs: 1,
        samples: 60,
        seed,
        ..IamConfig::default()
    };
    IamEstimator::fit(&table, cfg)
}

#[test]
fn sql_through_coordinator_matches_single_process_and_fails_over() {
    let mut twi = train(Dataset::Twi, 7);
    let mut wisdm = train(Dataset::Wisdm, 11);

    // ground truth: the same statements through a single-process service
    let twi_local = Service::start(twi.clone(), "v1", ServeConfig::default());
    let wisdm_local = Service::start(wisdm.clone(), "v1", ServeConfig::default());

    let mut workers: Vec<WorkerProc> = (0..3).map(|_| WorkerProc::spawn()).collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.addr).collect();
    let coord = Coordinator::new(
        addrs,
        &["twi", "wisdm"],
        DistConfig { replicas: 2, ..DistConfig::default() },
    );
    for outcome in coord.deploy_model("twi", &mut twi, "twi-v1").unwrap() {
        outcome.result.expect("ship twi");
    }
    for outcome in coord.deploy_model("wisdm", &mut wisdm, "wisdm-v1").unwrap() {
        outcome.result.expect("ship wisdm");
    }

    // --- single-table statements: byte-identical to single-process -----
    let stmts = [
        ("twi", "SELECT COUNT(*) FROM twi WHERE c0 = 1 AND c1 BETWEEN 2.5 AND 9"),
        ("twi", "SELECT SUM(c1) FROM twi WHERE c0 >= 0"),
        ("twi", "SELECT AVG(c1) FROM twi WHERE c0 = 1"),
        ("wisdm", "SELECT COUNT(*) FROM wisdm WHERE c1 <= 0.5"),
    ];
    for (table, stmt) in stmts {
        let local = if table == "twi" { &twi_local } else { &wisdm_local };
        let expect = iam_serve::execute_sql(stmt, &local.client()).unwrap();
        let got = coord.sql(stmt).unwrap();
        assert_eq!(got, expect, "{stmt}");
        // a worker's answer is deterministic across repeats (and replicas)
        assert_eq!(coord.sql(stmt).unwrap(), expect, "{stmt}");
        assert!(!got.contains("NaN"), "{got}");
    }

    // --- EXPLAIN over a join: cardinalities gathered from two tables ---
    let plan = coord
        .sql(
            "EXPLAIN SELECT COUNT(*) FROM twi JOIN wisdm ON twi.c0 = wisdm.c0 \
             WHERE twi.c0 <= 1 AND wisdm.c1 > 0",
        )
        .unwrap();
    let lines: Vec<&str> = plan.lines().collect();
    assert_eq!(lines.len(), 3, "{plan}");
    assert!(lines[0].starts_with("PLAN est_cost="), "{plan}");
    assert!(lines[1].starts_with("scan "), "{plan}");
    assert!(lines[2].starts_with("join "), "{plan}");
    // both tables appear exactly once across the plan nodes
    assert_eq!(plan.matches("twi").count(), 1, "{plan}");
    assert_eq!(plan.matches("wisdm").count(), 1, "{plan}");
    assert_eq!(
        coord
            .sql(
                "EXPLAIN SELECT COUNT(*) FROM twi JOIN wisdm ON twi.c0 = wisdm.c0 \
         WHERE twi.c0 <= 1 AND wisdm.c1 > 0",
            )
            .unwrap(),
        plan,
        "explain is deterministic"
    );

    // --- rejections stay client errors, not replica exhaustion ---------
    let err = coord.sql("SELECT COUNT(*) FROM twi JOIN wisdm ON twi.c0 = wisdm.c0");
    assert!(matches!(err, Err(DistError::Sql(_))), "{err:?}");
    let err = coord.sql("SELEC COUNT(*) FROM twi");
    assert!(matches!(err, Err(DistError::Sql(_))), "{err:?}");
    let err = coord.sql("SELECT COUNT(*) FROM nope");
    assert!(matches!(err, Err(DistError::UnknownTable(_))), "{err:?}");
    // a statement every replica rejects surfaces the remote reason
    let err = coord.sql("SELECT COUNT(*) FROM twi WHERE c99 = 1");
    assert!(matches!(err, Err(DistError::Remote(_))), "{err:?}");

    // --- failover: kill the first replica of twi, SQL still answers ----
    let victim = coord.placement().replicas("twi")[0];
    workers[victim].kill();
    let stmt = "SELECT COUNT(*) FROM twi WHERE c0 = 1 AND c1 BETWEEN 2.5 AND 9";
    let expect = iam_serve::execute_sql(stmt, &twi_local.client()).unwrap();
    assert_eq!(coord.sql(stmt).unwrap(), expect, "failover answer drifted");

    coord.shutdown_cluster();
    twi_local.shutdown();
    wisdm_local.shutdown();
}
