//! Malformed-input hardening for the binary worker protocol: truncated
//! frames, oversized length prefixes, and garbage payloads must never
//! panic the worker — broken framing closes the connection, broken
//! messages get an [`Msg::Error`] reply with the connection intact, and
//! the worker keeps serving fresh connections throughout.

use iam_dist::{read_msg, write_msg, DistError, Msg, WorkerConfig, WorkerHandle, MAX_FRAME};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn spawn_worker() -> WorkerHandle {
    // tests only need control messages, so the tighter client-side frame
    // bound is plenty and makes the oversized-prefix case cheap to trigger
    let cfg = WorkerConfig { max_frame: MAX_FRAME, ..WorkerConfig::default() };
    WorkerHandle::spawn("127.0.0.1:0", cfg).expect("spawn worker")
}

fn connect(worker: &WorkerHandle) -> TcpStream {
    let s = TcpStream::connect(worker.addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

fn rpc(stream: &mut TcpStream, msg: &Msg) -> Result<Option<Msg>, DistError> {
    write_msg(stream, msg)?;
    read_msg(stream, MAX_FRAME)
}

/// Sanity: a well-formed round-trip works, so the failures below are
/// attributable to the malformed input and not the harness.
#[test]
fn well_formed_ping_gets_pong() {
    let worker = spawn_worker();
    let mut s = connect(&worker);
    assert!(matches!(rpc(&mut s, &Msg::Ping), Ok(Some(Msg::Pong))));
    worker.stop();
}

/// An oversized length prefix is rejected against the configured bound:
/// the worker replies with an error naming the limit (best effort) and
/// closes the connection rather than allocating the claimed size.
#[test]
fn oversized_length_prefix_is_rejected_bounded() {
    let worker = spawn_worker();
    let mut s = connect(&worker);

    // claim a frame of u32::MAX bytes; send nothing after the prefix
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    s.flush().unwrap();

    // the worker answers with Msg::Error (mentioning the frame bound) and
    // then closes; EOF before the reply is also acceptable best-effort
    match read_msg(&mut s, MAX_FRAME) {
        Ok(Some(Msg::Error { message })) => {
            assert!(message.contains("frame"), "unhelpful error: {message}");
            assert!(matches!(read_msg(&mut s, MAX_FRAME), Ok(None) | Err(_)));
        }
        Ok(None) | Err(_) => {}
        Ok(Some(other)) => panic!("expected error reply, got {other:?}"),
    }

    // the worker survives: a new connection serves normally
    let mut s2 = connect(&worker);
    assert!(matches!(rpc(&mut s2, &Msg::Ping), Ok(Some(Msg::Pong))));
    worker.stop();
}

/// A frame that is cut off mid-payload (peer disconnects) must not panic
/// or wedge the worker.
#[test]
fn truncated_frame_does_not_poison_worker() {
    let worker = spawn_worker();
    {
        let mut s = connect(&worker);
        let frame = {
            let mut buf = Vec::new();
            write_msg(&mut buf, &Msg::Version { table: "twi".into() }).unwrap();
            buf
        };
        // send the length prefix plus half the payload, then vanish
        s.write_all(&frame[..4 + (frame.len() - 4) / 2]).unwrap();
        s.flush().unwrap();
    } // drop → RST/EOF mid-frame on the worker side

    let mut s2 = connect(&worker);
    assert!(matches!(rpc(&mut s2, &Msg::Ping), Ok(Some(Msg::Pong))));
    worker.stop();
}

/// Garbage bytes inside an intact frame: the frame boundary holds, so the
/// worker replies [`Msg::Error`] and the *same* connection keeps working.
#[test]
fn garbage_payload_gets_error_reply_connection_survives() {
    let worker = spawn_worker();
    let mut s = connect(&worker);

    let garbage: &[&[u8]] = &[
        &[0xFF],                      // unknown tag
        &[],                          // empty payload
        &[5, 0xAA, 0xBB],             // EstimateBatch tag with junk body
        &[3, 0xFF, 0xFF, 0xFF, 0xFF], // LoadSnapshot with hostile inner length
    ];
    for payload in garbage {
        s.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
        s.write_all(payload).unwrap();
        s.flush().unwrap();
        match read_msg(&mut s, MAX_FRAME) {
            Ok(Some(Msg::Error { .. })) => {}
            other => panic!("garbage {payload:?} expected Error reply, got {other:?}"),
        }
    }

    // same connection, still alive
    assert!(matches!(rpc(&mut s, &Msg::Ping), Ok(Some(Msg::Pong))));
    worker.stop();
}

/// Well-formed messages that are semantically invalid — unknown table,
/// reply-direction messages, corrupt snapshots — get error replies, never
/// a panic, and never touch serving state.
#[test]
fn semantic_garbage_gets_error_replies() {
    let worker = spawn_worker();
    let mut s = connect(&worker);

    // estimate against a table no snapshot was shipped for
    let reply =
        rpc(&mut s, &Msg::EstimateBatch { table: "nope".into(), queries: Vec::new() }).unwrap();
    assert!(matches!(reply, Some(Msg::Error { .. })), "{reply:?}");

    // reply-direction message as a request
    let reply = rpc(&mut s, &Msg::Pong).unwrap();
    assert!(matches!(reply, Some(Msg::Error { .. })), "{reply:?}");

    // a snapshot whose bytes are not a framed model: rejected before any
    // state changes, so the worker still hosts no tables
    let reply = rpc(
        &mut s,
        &Msg::LoadSnapshot {
            table: "twi".into(),
            label: "bad".into(),
            bytes: b"IAMF not actually a model".to_vec(),
        },
    )
    .unwrap();
    assert!(matches!(reply, Some(Msg::Error { .. })), "{reply:?}");
    assert!(worker.tables().is_empty(), "rejected snapshot must not create a table");

    worker.stop();
}
