//! The estimation service: a bounded request queue, micro-batching workers,
//! and the in-process [`Client`] handle.
//!
//! # Request life cycle
//!
//! 1. [`Client::estimate`] canonicalizes the query, consults the cache, and
//!    on a miss `try_send`s a request into the bounded queue — a full queue
//!    rejects immediately with [`ServeError::Overloaded`] (backpressure,
//!    never blocking the caller).
//! 2. A worker thread pops the first pending request, then keeps popping
//!    until it has [`ServeConfig::max_batch`] requests or the
//!    [`ServeConfig::flush_interval`] window closes — the micro-batch.
//! 3. The batch is deduplicated by canonical key, evaluated in **one**
//!    batched inference call on the current model version, and each request
//!    gets its reply through a per-request channel. Results enter the cache
//!    tagged with the version id they were computed under.
//!
//! Because per-query sampling seeds derive from the canonical key (see
//! `iam_core::infer`), coalescing arbitrary requests into one batch returns
//! bitwise-identical estimates to answering each query alone.
//!
//! # Shutdown
//!
//! [`Service::shutdown`] flips the shutdown flag (new submissions are
//! rejected with [`ServeError::ShuttingDown`]) and joins the workers, which
//! drain every request already queued before exiting.

use crate::cache::QueryCache;
use crate::error::ServeError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::registry::{ModelRegistry, ModelVersion};
use iam_core::IamEstimator;
use iam_data::{RangeQuery, Table};
use std::collections::HashMap;
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Service::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Batch worker threads. `0` starts no workers — queued requests are
    /// never served (useful for deterministic overload/timeout tests).
    pub workers: usize,
    /// Maximum requests coalesced into one inference call.
    pub max_batch: usize,
    /// Bound of the request queue; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// How long a worker holding a non-full batch waits for more requests
    /// before flushing it.
    pub flush_interval: Duration,
    /// Threads used *inside* one batched inference call
    /// (`IamEstimator::estimate_batch_shared`); does not change results.
    pub inner_threads: usize,
    /// Total result-cache entries (`0` disables the cache).
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Default per-request timeout for [`Client::estimate`].
    pub request_timeout: Duration,
    /// Q-error reservoir capacity: how many estimate records are retained
    /// for later `REPORT` truth resolution. `0` (the default) disables
    /// accuracy tracking entirely.
    pub qerror_capacity: usize,
    /// Seed driving the q-error reservoir's deterministic eviction.
    pub qerror_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 32,
            queue_depth: 256,
            flush_interval: Duration::from_millis(2),
            inner_threads: 1,
            cache_capacity: 4096,
            cache_shards: 8,
            request_timeout: Duration::from_secs(5),
            qerror_capacity: 0,
            qerror_seed: 0xA11E_57E0,
        }
    }
}

/// One queued estimation request.
struct Request {
    query: RangeQuery,
    key: u64,
    enqueued: Instant,
    deadline: Instant,
    /// Trace context captured at submission, so the batch worker's spans
    /// join the submitting request's distributed trace tree.
    ctx: Option<iam_obs::TraceCtx>,
    reply: SyncSender<Result<f64, ServeError>>,
}

/// State shared by the service, its workers, and every client handle.
struct ServiceInner {
    cfg: ServeConfig,
    registry: ModelRegistry,
    cache: QueryCache,
    metrics: Metrics,
    qerror: iam_obs::QErrorTracker,
    tx: SyncSender<Request>,
    rx: Mutex<Receiver<Request>>,
    shutdown: AtomicBool,
}

impl ServiceInner {
    /// Poisoned-lock recoveries across the cache shards and the registry.
    fn lock_recoveries(&self) -> u64 {
        self.cache.recoveries() + self.registry.recoveries()
    }

    /// Metrics snapshot with the cache's hit/miss accounting, the
    /// lock-recovery count, and the q-error view merged in.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut s = self.metrics.snapshot();
        let (hits, misses) = self.cache.stats();
        s.cache_hits = hits;
        s.cache_misses = misses;
        s.lock_recoveries = self.lock_recoveries();
        let (_, reports, unmatched) = self.qerror.counts();
        s.qerror_reports = reports;
        s.qerror_unmatched = unmatched;
        let h = self.qerror.histogram_snapshot();
        s.qerror_p50_milli = h.quantile(0.50);
        s.qerror_p95_milli = h.quantile(0.95);
        s.qerror_p99_milli = h.quantile(0.99);
        s.qerror_buckets = h.bounds.iter().zip(&h.counts).map(|(&b, &c)| (b, c)).collect();
        s.table_precision =
            self.registry.current().model.table_precision().map_or("off", |p| p.name());
        s
    }

    /// Resolve a truth report against the q-error reservoir.
    fn report_true_count(&self, qid: u64, true_count: u64) -> Option<f64> {
        self.qerror.report(self.metrics.registry(), qid, true_count)
    }

    /// Prometheus exposition: service registry + cache accounting + the
    /// process-global registry (core training/inference probes).
    fn prometheus(&self) -> String {
        let (hits, misses) = self.cache.stats();
        self.metrics.render_prometheus(hits, misses, self.lock_recoveries())
    }

    /// Exposition without the process-global registry — for aggregators
    /// that merge several services and append the global section once.
    fn prometheus_local(&self) -> String {
        let (hits, misses) = self.cache.stats();
        self.metrics.render_prometheus_local(hits, misses, self.lock_recoveries())
    }
}

/// A running estimation service. Dropping it without calling
/// [`Service::shutdown`] detaches the workers (they keep serving until the
/// process exits); call `shutdown` for a graceful drain.
pub struct Service {
    inner: Arc<ServiceInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Start a service over `model` (registered as version 1).
    pub fn start(model: IamEstimator, label: &str, cfg: ServeConfig) -> Service {
        let (tx, rx) = sync_channel::<Request>(cfg.queue_depth.max(1));
        let metrics = Metrics::new();
        let qerror =
            iam_obs::QErrorTracker::new(cfg.qerror_capacity, cfg.qerror_seed, metrics.registry());
        let inner = Arc::new(ServiceInner {
            registry: ModelRegistry::new(model, label),
            cache: QueryCache::new(cfg.cache_capacity, cfg.cache_shards),
            metrics,
            qerror,
            tx,
            rx: Mutex::new(rx),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let workers = (0..inner.cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("iam-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Service { inner, workers }
    }

    /// A cheap, clonable handle for submitting queries.
    pub fn client(&self) -> Client {
        Client { inner: Arc::clone(&self.inner) }
    }

    /// Hot-swap `model` in as a new version; in-flight batches finish on
    /// the old version, the cache is invalidated. Returns the version id.
    pub fn swap_model(&self, model: IamEstimator, label: &str) -> u64 {
        let id = self.inner.registry.install(model, label);
        self.inner.cache.clear();
        self.inner.metrics.model_swap();
        id
    }

    /// Refresh the active model: clone it, train `epochs` additional epochs
    /// on `table` with `train_threads` worker threads (0 = one per core; the
    /// thread count never changes the resulting weights, only wall time),
    /// then hot-swap the retrained clone in as a new version. Serving
    /// continues on the old version for the whole training run. Returns the
    /// new version id.
    pub fn refresh_model(
        &self,
        table: &Table,
        epochs: usize,
        train_threads: usize,
        label: &str,
    ) -> u64 {
        let mut model = self.inner.registry.current().model.clone();
        model.set_train_threads(train_threads);
        model.train_epochs(table, epochs);
        self.swap_model(model, label)
    }

    /// Load a persisted snapshot and hot-swap it in. A snapshot that fails
    /// to parse leaves the active version (and the cache) untouched.
    pub fn load_model<R: Read>(&self, r: &mut R, label: &str) -> Result<u64, ServeError> {
        let id = self.inner.registry.load(r, label)?;
        self.inner.cache.clear();
        self.inner.metrics.model_swap();
        Ok(id)
    }

    /// Reactivate the previously active version (see
    /// [`ModelRegistry::rollback`]). The cache is cleared even though old
    /// entries would still be valid — simpler than resurrecting them.
    pub fn rollback_model(&self) -> Result<u64, ServeError> {
        let id = self.inner.registry.rollback()?;
        self.inner.cache.clear();
        self.inner.metrics.model_swap();
        Ok(id)
    }

    /// `(id, label)` of the active model version.
    pub fn current_version(&self) -> (u64, String) {
        let v = self.inner.registry.current();
        (v.id, v.label.clone())
    }

    /// Point-in-time metrics (cache accounting included).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.snapshot()
    }

    /// Prometheus text exposition of the service's metrics (plus the
    /// process-global training/inference probes).
    pub fn metrics_prometheus(&self) -> String {
        self.inner.prometheus()
    }

    /// Exposition of this service's own registry and cache accounting
    /// only, with no process-global section — cluster workers merge one of
    /// these per table under a `table` label and append the global
    /// registry once.
    pub fn metrics_prometheus_local(&self) -> String {
        self.inner.prometheus_local()
    }

    /// Resolve a reported true count against the q-error reservoir (see
    /// [`iam_obs::QErrorTracker::report`]). Returns the q-error when the
    /// qid's record was sampled, `None` otherwise (or when tracking is
    /// disabled).
    pub fn report_true_count(&self, qid: u64, true_count: u64) -> Option<f64> {
        self.inner.report_true_count(qid, true_count)
    }

    /// The q-error reservoir's current records, sorted by qid.
    pub fn qerror_records(&self) -> Vec<iam_obs::QRecord> {
        self.inner.qerror.records()
    }

    /// Stop accepting requests, drain everything already queued, join the
    /// workers, and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.inner.shutdown.store(true, Relaxed);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.inner.snapshot()
    }
}

/// An in-process handle to a [`Service`]. Clone freely; all methods take
/// `&self` and are safe from any thread.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ServiceInner>,
}

impl Client {
    /// Estimate the selectivity of `q` with the default timeout.
    pub fn estimate(&self, q: &RangeQuery) -> Result<f64, ServeError> {
        self.estimate_timeout(q, self.inner.cfg.request_timeout)
    }

    /// Estimate with an explicit per-request timeout.
    pub fn estimate_timeout(&self, q: &RangeQuery, timeout: Duration) -> Result<f64, ServeError> {
        self.estimate_many_timeout(std::slice::from_ref(q), timeout)
            .pop()
            .expect("one result per query")
    }

    /// Estimate a whole slice of queries with the default timeout,
    /// returning one result per query in input order.
    pub fn estimate_many(&self, queries: &[RangeQuery]) -> Vec<Result<f64, ServeError>> {
        self.estimate_many_timeout(queries, self.inner.cfg.request_timeout)
    }

    /// Estimate many queries under one deadline: every cache miss is
    /// enqueued *before* the first reply is awaited, so the batch workers
    /// see the whole set at once and can coalesce it into shared inference
    /// calls — the submission path remote front-ends (`iam-dist` workers)
    /// use for frame batches. Per-query failures (overload, timeout, bad
    /// arity) are reported in place and never fail the rest of the batch.
    pub fn estimate_many_timeout(
        &self,
        queries: &[RangeQuery],
        timeout: Duration,
    ) -> Vec<Result<f64, ServeError>> {
        let inner = &*self.inner;
        let start = Instant::now();
        let deadline = start + timeout;
        // captured once per call: the submitting thread's trace context,
        // re-parented under its innermost open span, rides along with every
        // request so the batch worker's spans land in the same tree
        let ctx = iam_obs::tracetree::child_ctx();
        let mut out: Vec<Option<Result<f64, ServeError>>> = vec![None; queries.len()];
        let mut pending: Vec<(usize, Receiver<Result<f64, ServeError>>)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            inner.metrics.request();
            if inner.shutdown.load(Relaxed) {
                out[i] = Some(Err(ServeError::ShuttingDown));
                continue;
            }
            let version = inner.registry.current();
            let ncols = version.model.schema.handlers.len();
            if q.cols.len() != ncols {
                inner.metrics.bad_query();
                out[i] = Some(Err(ServeError::BadQuery(format!(
                    "query has {} columns, model has {ncols}",
                    q.cols.len()
                ))));
                continue;
            }
            let key = q.canonical_key();
            if let Some(v) = inner.cache.get(key, version.id) {
                inner.metrics.latency(start.elapsed());
                out[i] = Some(Ok(v));
                continue;
            }
            let (reply_tx, reply_rx) = sync_channel(1);
            let req =
                Request { query: q.clone(), key, enqueued: start, deadline, ctx, reply: reply_tx };
            match inner.tx.try_send(req) {
                Ok(()) => {
                    inner.metrics.enqueued();
                    pending.push((i, reply_rx));
                }
                Err(TrySendError::Full(_)) => {
                    inner.metrics.overloaded();
                    out[i] = Some(Err(ServeError::Overloaded));
                }
                Err(TrySendError::Disconnected(_)) => {
                    out[i] = Some(Err(ServeError::ShuttingDown));
                }
            }
        }
        for (i, rx) in pending {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok(res) => out[i] = Some(res),
                Err(_) => {
                    // the worker will find the deadline expired (or reply
                    // into a dropped channel); count the timeout here, once
                    inner.metrics.timeout();
                    out[i] = Some(Err(ServeError::Timeout));
                }
            }
        }
        out.into_iter().map(|r| r.expect("every slot filled")).collect()
    }

    /// Column arity the active model expects.
    pub fn ncols(&self) -> usize {
        self.inner.registry.current().model.schema.handlers.len()
    }

    /// Row count of the table the active model was trained on.
    pub fn nrows(&self) -> usize {
        self.inner.registry.current().model.nrows()
    }

    /// Estimate `AVG`/`SUM`/`COUNT` of `target_col` over `q`'s region —
    /// the AQP path behind `SQL SELECT SUM/AVG`. Answers come straight
    /// from [`iam_core::aqp`]'s deterministic shared sampler (a pure
    /// function of model version, query, and target column), bypassing
    /// the micro-batch queue: aggregate traffic is expected to be rare
    /// relative to cardinality lookups and its per-query sampling cannot
    /// be coalesced across queries the way selectivity inference can.
    /// Returns the estimate and the model's row count.
    pub fn aggregate(
        &self,
        q: &RangeQuery,
        target_col: usize,
    ) -> Result<(iam_core::aqp::AggregateEstimate, usize), ServeError> {
        let start = Instant::now();
        self.inner.metrics.request();
        if self.inner.shutdown.load(Relaxed) {
            return Err(ServeError::ShuttingDown);
        }
        let version = self.inner.registry.current();
        let ncols = version.model.schema.handlers.len();
        if q.cols.len() != ncols {
            self.inner.metrics.bad_query();
            return Err(ServeError::BadQuery(format!(
                "query has {} columns, model has {ncols}",
                q.cols.len()
            )));
        }
        if target_col >= ncols {
            self.inner.metrics.bad_query();
            return Err(ServeError::BadQuery(format!(
                "aggregate column c{target_col} out of range (model has {ncols})"
            )));
        }
        let nrows = version.model.nrows();
        let agg = version.model.estimate_aggregate_shared(q, target_col, nrows);
        self.inner.metrics.latency(start.elapsed());
        Ok((agg, nrows))
    }

    /// `(id, label)` of the active model version.
    pub fn current_version(&self) -> (u64, String) {
        let v = self.inner.registry.current();
        (v.id, v.label.clone())
    }

    /// Point-in-time metrics (cache accounting included).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.snapshot()
    }

    /// Prometheus text exposition of the service's metrics (plus the
    /// process-global training/inference probes).
    pub fn metrics_prometheus(&self) -> String {
        self.inner.prometheus()
    }

    /// Resolve a reported true count against the q-error reservoir; the
    /// `REPORT` line-protocol command lands here.
    pub fn report_true_count(&self, qid: u64, true_count: u64) -> Option<f64> {
        self.inner.report_true_count(qid, true_count)
    }

    /// The q-error reservoir's current records, sorted by qid.
    pub fn qerror_records(&self) -> Vec<iam_obs::QRecord> {
        self.inner.qerror.records()
    }
}

/// How long an idle worker sleeps in `recv_timeout` before re-checking the
/// shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(20);

/// Worker-owned buffers for [`process_batch`], reused across micro-batches
/// so the steady-state batch path performs no per-batch allocation beyond
/// the query clones and reply sends it fundamentally needs.
#[derive(Default)]
struct BatchScratch {
    live: Vec<Request>,
    slot_of: HashMap<u64, usize>,
    queries: Vec<RangeQuery>,
    slots: Vec<usize>,
}

fn worker_loop(inner: &ServiceInner) {
    let mut batch: Vec<Request> = Vec::with_capacity(inner.cfg.max_batch.max(1));
    let mut scratch = BatchScratch::default();
    loop {
        batch.clear();
        {
            // hold the receiver only while assembling the batch, never
            // during inference — other workers collect the next batch
            // while this one computes
            let rx = inner.rx.lock().expect("queue receiver poisoned");
            match rx.recv_timeout(IDLE_POLL) {
                Ok(first) => {
                    batch.push(first);
                    let flush_at = Instant::now() + inner.cfg.flush_interval;
                    loop {
                        // natural batching: always take what is already
                        // queued without waiting …
                        while batch.len() < inner.cfg.max_batch {
                            match rx.try_recv() {
                                Ok(r) => batch.push(r),
                                Err(_) => break,
                            }
                        }
                        if batch.len() >= inner.cfg.max_batch {
                            break;
                        }
                        // … and only wait out the flush window for a batch
                        // that is still short
                        let now = Instant::now();
                        if now >= flush_at {
                            break;
                        }
                        match rx.recv_timeout(flush_at - now) {
                            Ok(r) => batch.push(r),
                            Err(_) => break,
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if inner.shutdown.load(Relaxed) {
                        // final drain: catch any request that slipped past
                        // the shutdown check concurrently with the flag flip
                        let mut rest: Vec<Request> = Vec::new();
                        while let Ok(r) = rx.try_recv() {
                            rest.push(r);
                        }
                        drop(rx);
                        inner.metrics.dequeued(rest.len());
                        while !rest.is_empty() {
                            let take = rest.len().min(inner.cfg.max_batch.max(1));
                            let mut b: Vec<Request> = rest.drain(..take).collect();
                            process_batch(inner, &mut b, &mut scratch);
                        }
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
        inner.metrics.dequeued(batch.len());
        process_batch(inner, &mut batch, &mut scratch);
    }
}

/// Answer one coalesced batch: expire dead requests, deduplicate by
/// canonical key, run a single batched inference call, reply and cache.
/// `scratch` is worker-owned and reused across batches.
fn process_batch(inner: &ServiceInner, batch: &mut Vec<Request>, scratch: &mut BatchScratch) {
    let version: Arc<ModelVersion> = inner.registry.current();
    let now = Instant::now();

    let BatchScratch { live, slot_of, queries, slots } = scratch;
    live.clear();
    slot_of.clear();
    queries.clear();
    slots.clear();

    // expire requests whose client has already given up
    for req in batch.drain(..) {
        if now >= req.deadline {
            let _ = req.reply.try_send(Err(ServeError::Timeout));
        } else {
            live.push(req);
        }
    }
    if live.is_empty() {
        return;
    }

    // the traced section: dedupe + inference under a `serve.batch` span,
    // inside the first traced request's context. The scope closes BEFORE
    // replies go out, so when a client (or the dist worker piggybacking
    // span buffers onto its reply) sees an answer, the batch's span
    // records are already in the trace buffer.
    let estimates = {
        let _ctx = live.iter().find_map(|r| r.ctx).map(iam_obs::tracetree::install);
        let _span = iam_obs::span!("serve.batch");

        // deduplicate: identical canonical keys share one model evaluation
        // (and, by the seeding invariant, would produce identical results
        // anyway — this just avoids paying for them twice)
        for req in live.iter() {
            let slot = *slot_of.entry(req.key).or_insert_with(|| {
                queries.push(req.query.clone());
                queries.len() - 1
            });
            slots.push(slot);
        }

        version.model.estimate_batch_shared(queries, inner.cfg.inner_threads)
    };
    inner.metrics.batch(live.len(), queries.len());

    // sample accuracy records before any reply leaves: a client that
    // learns its qid from the reply must be able to REPORT immediately
    if inner.qerror.enabled() {
        let nrows = version.model.nrows() as u64;
        for (req, &slot) in live.iter().zip(slots.iter()) {
            inner.qerror.record(iam_obs::QRecord {
                qid: req.key,
                predicate: crate::net::render_query(&req.query),
                cols: (0..req.query.cols.len())
                    .filter(|&i| req.query.cols[i].is_some())
                    .map(|i| i.to_string())
                    .collect(),
                estimate: estimates[slot],
                nrows,
                model_version: version.id,
                latency_us: req.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64,
            });
        }
    }

    for (req, &slot) in live.iter().zip(slots.iter()) {
        let value = estimates[slot];
        inner.cache.insert(req.key, version.id, value);
        let _ = req.reply.try_send(Ok(value));
        inner.metrics.latency(req.enqueued.elapsed());
    }
    // replies are sent; drop the request handles now rather than holding
    // them (and their channels) alive until the next batch arrives
    live.clear();
}
