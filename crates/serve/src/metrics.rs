//! Lock-free service metrics: atomic counters, a queue-depth gauge, and
//! fixed-bucket histograms for end-to-end latency and batch sizes.
//!
//! Everything is written with relaxed atomics on the hot path; a
//! [`Metrics::snapshot`] reads a consistent-enough view for reporting
//! (counters may be mid-update, which is fine for monitoring).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Upper bucket bounds for request latency, in microseconds. The last
/// bucket is a catch-all.
const LATENCY_BOUNDS_US: [u64; 15] = [
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    u64::MAX,
];

/// Upper bucket bounds for coalesced batch sizes (requests per inference
/// call). The last bucket is a catch-all.
const BATCH_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, u64::MAX];

/// A fixed-bucket histogram of `u64` observations.
struct Histogram<const N: usize> {
    bounds: [u64; N],
    counts: [AtomicU64; N],
    sum: AtomicU64,
    max: AtomicU64,
}

impl<const N: usize> Histogram<N> {
    fn new(bounds: [u64; N]) -> Self {
        Histogram {
            bounds,
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(N - 1);
        self.counts[idx].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    fn load(&self) -> ([u64; N], u64, u64) {
        (
            std::array::from_fn(|i| self.counts[i].load(Relaxed)),
            self.sum.load(Relaxed),
            self.max.load(Relaxed),
        )
    }
}

/// Estimate the `q`-quantile (0..=1) from bucket counts: returns the upper
/// bound of the first bucket whose cumulative count reaches the rank.
fn percentile<const N: usize>(bounds: &[u64; N], counts: &[u64; N], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0;
    for i in 0..N {
        cum += counts[i];
        if cum >= rank {
            return bounds[i];
        }
    }
    bounds[N - 1]
}

/// Shared, thread-safe service metrics. All mutators take `&self`.
pub struct Metrics {
    requests: AtomicU64,
    overloaded: AtomicU64,
    timeouts: AtomicU64,
    bad_queries: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    model_swaps: AtomicU64,
    queue_depth: AtomicI64,
    latency_us: Histogram<15>,
    batch_size: Histogram<9>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            bad_queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            model_swaps: AtomicU64::new(0),
            queue_depth: AtomicI64::new(0),
            latency_us: Histogram::new(LATENCY_BOUNDS_US),
            batch_size: Histogram::new(BATCH_BOUNDS),
        }
    }

    /// Count a client request (before any queue/cache interaction).
    pub fn request(&self) {
        self.requests.fetch_add(1, Relaxed);
    }

    /// Count a rejected submission (queue full).
    pub fn overloaded(&self) {
        self.overloaded.fetch_add(1, Relaxed);
    }

    /// Count a request that expired before a reply.
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Relaxed);
    }

    /// Count a malformed query.
    pub fn bad_query(&self) {
        self.bad_queries.fetch_add(1, Relaxed);
    }

    /// Count a model hot-swap (or rollback).
    pub fn model_swap(&self) {
        self.model_swaps.fetch_add(1, Relaxed);
    }

    /// A request entered the queue.
    pub fn enqueued(&self) {
        self.queue_depth.fetch_add(1, Relaxed);
    }

    /// `n` requests left the queue (coalesced into one batch).
    pub fn dequeued(&self, n: usize) {
        self.queue_depth.fetch_sub(n as i64, Relaxed);
    }

    /// Record one coalesced inference batch: `requests` replies produced by
    /// `distinct` model evaluations (duplicates are answered once).
    pub fn batch(&self, requests: usize, distinct: usize) {
        self.batches.fetch_add(1, Relaxed);
        self.batched_queries.fetch_add(distinct as u64, Relaxed);
        self.batch_size.record(requests as u64);
    }

    /// Record an end-to-end request latency.
    pub fn latency(&self, d: Duration) {
        self.latency_us.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Capture a point-in-time view of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (lat_counts, _lat_sum, lat_max) = self.latency_us.load();
        let (bat_counts, bat_sum, bat_max) = self.batch_size.load();
        let lat_total: u64 = lat_counts.iter().sum();
        let bat_total: u64 = bat_counts.iter().sum();
        MetricsSnapshot {
            requests: self.requests.load(Relaxed),
            cache_hits: 0,
            cache_misses: 0,
            overloaded: self.overloaded.load(Relaxed),
            timeouts: self.timeouts.load(Relaxed),
            bad_queries: self.bad_queries.load(Relaxed),
            batches: self.batches.load(Relaxed),
            batched_queries: self.batched_queries.load(Relaxed),
            queue_depth: self.queue_depth.load(Relaxed).max(0),
            model_swaps: self.model_swaps.load(Relaxed),
            replies: lat_total,
            latency_p50_us: percentile(&LATENCY_BOUNDS_US, &lat_counts, 0.50),
            latency_p95_us: percentile(&LATENCY_BOUNDS_US, &lat_counts, 0.95),
            latency_p99_us: percentile(&LATENCY_BOUNDS_US, &lat_counts, 0.99),
            latency_max_us: lat_max,
            mean_batch: if bat_total == 0 { 0.0 } else { bat_sum as f64 / bat_total as f64 },
            max_batch: bat_max,
            batch_buckets: BATCH_BOUNDS
                .iter()
                .zip(bat_counts.iter())
                .map(|(&b, &c)| (b, c))
                .collect(),
        }
    }
}

/// A point-in-time view of [`Metrics`], plus cache accounting filled in by
/// the service (the cache keeps its own hit/miss counters).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Client requests received (including cache hits and rejections).
    pub requests: u64,
    /// Cache lookups answered without touching the model.
    pub cache_hits: u64,
    /// Cache lookups that missed (and went to the queue).
    pub cache_misses: u64,
    /// Submissions rejected with `Overloaded`.
    pub overloaded: u64,
    /// Requests that expired before a reply.
    pub timeouts: u64,
    /// Malformed queries rejected before queueing.
    pub bad_queries: u64,
    /// Coalesced inference batches executed.
    pub batches: u64,
    /// Distinct queries evaluated by the model across all batches.
    pub batched_queries: u64,
    /// Requests currently sitting in the queue.
    pub queue_depth: i64,
    /// Model hot-swaps and rollbacks.
    pub model_swaps: u64,
    /// Replies whose latency was recorded.
    pub replies: u64,
    /// End-to-end latency, 50th percentile (bucket upper bound, µs).
    pub latency_p50_us: u64,
    /// End-to-end latency, 95th percentile (µs).
    pub latency_p95_us: u64,
    /// End-to-end latency, 99th percentile (µs).
    pub latency_p99_us: u64,
    /// Largest observed latency (µs, exact).
    pub latency_max_us: u64,
    /// Mean requests coalesced per batch.
    pub mean_batch: f64,
    /// Largest batch observed (exact).
    pub max_batch: u64,
    /// `(upper_bound, count)` per batch-size bucket; the last bound is
    /// `u64::MAX` (catch-all).
    pub batch_buckets: Vec<(u64, u64)>,
}

impl MetricsSnapshot {
    /// Fraction of cache lookups that hit, or 0 with no lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Plain-text dump, one `name value` pair per line — the format served
    /// by the TCP front-end's `STATS` command.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let mut line = |k: &str, v: String| {
            s.push_str(k);
            s.push(' ');
            s.push_str(&v);
            s.push('\n');
        };
        line("requests_total", self.requests.to_string());
        line("cache_hits", self.cache_hits.to_string());
        line("cache_misses", self.cache_misses.to_string());
        line("cache_hit_rate", format!("{:.4}", self.cache_hit_rate()));
        line("rejected_overloaded", self.overloaded.to_string());
        line("timeouts", self.timeouts.to_string());
        line("bad_queries", self.bad_queries.to_string());
        line("batches_total", self.batches.to_string());
        line("batched_queries_total", self.batched_queries.to_string());
        line("queue_depth", self.queue_depth.to_string());
        line("model_swaps", self.model_swaps.to_string());
        line("replies_total", self.replies.to_string());
        line("latency_us_p50", self.latency_p50_us.to_string());
        line("latency_us_p95", self.latency_p95_us.to_string());
        line("latency_us_p99", self.latency_p99_us.to_string());
        line("latency_us_max", self.latency_max_us.to_string());
        line("batch_size_mean", format!("{:.2}", self.mean_batch));
        line("batch_size_max", self.max_batch.to_string());
        for &(bound, count) in &self.batch_buckets {
            if bound == u64::MAX {
                line("batch_size_bucket_inf", count.to_string());
            } else {
                line(&format!("batch_size_bucket_le_{bound}"), count.to_string());
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_buckets() {
        let m = Metrics::new();
        // 90 fast replies (≤50µs), 10 slow (≤5ms)
        for _ in 0..90 {
            m.latency(Duration::from_micros(10));
        }
        for _ in 0..10 {
            m.latency(Duration::from_micros(3_000));
        }
        let s = m.snapshot();
        assert_eq!(s.latency_p50_us, 50);
        assert_eq!(s.latency_p95_us, 5_000);
        assert_eq!(s.latency_p99_us, 5_000);
        assert_eq!(s.latency_max_us, 3_000);
        assert_eq!(s.replies, 100);
    }

    #[test]
    fn batch_accounting() {
        let m = Metrics::new();
        m.batch(16, 12);
        m.batch(4, 4);
        let s = m.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.batched_queries, 16);
        assert_eq!(s.max_batch, 16);
        assert!((s.mean_batch - 10.0).abs() < 1e-9);
        // 16 lands in the ≤16 bucket, 4 in the ≤4 bucket
        assert_eq!(s.batch_buckets[4], (16, 1));
        assert_eq!(s.batch_buckets[2], (4, 1));
    }

    #[test]
    fn queue_gauge_never_renders_negative() {
        let m = Metrics::new();
        m.dequeued(3); // worker raced ahead of the client's increment
        assert_eq!(m.snapshot().queue_depth, 0);
        m.enqueued();
        m.enqueued();
        m.enqueued();
        assert_eq!(m.snapshot().queue_depth, 0);
        m.enqueued();
        assert_eq!(m.snapshot().queue_depth, 1);
    }

    #[test]
    fn render_is_line_oriented() {
        let s = Metrics::new().snapshot().render();
        assert!(s.lines().all(|l| l.split(' ').count() == 2));
        assert!(s.contains("requests_total 0"));
        assert!(s.contains("batch_size_bucket_inf 0"));
    }

    #[test]
    fn empty_percentile_is_zero() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.latency_p50_us, 0);
        assert_eq!(s.latency_p99_us, 0);
    }
}
