//! Service metrics: a thin facade over the [`iam_obs`] registry.
//!
//! Every instrument lives in a **per-service** [`iam_obs::Registry`] (so two
//! services in one process — common in tests — never share counters), with
//! the handles cached here so the hot path is a relaxed atomic op, never a
//! registry lookup. [`Metrics::snapshot`] keeps the historical plain-text
//! `STATS` view; [`Metrics::render_prometheus`] adds Prometheus text
//! exposition covering this service *and* the process-global registry where
//! the `iam-core` training/inference probes report.

use iam_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Upper bucket bounds for request latency, in microseconds. The last
/// bucket is a catch-all.
const LATENCY_BOUNDS_US: [u64; 15] = [
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    u64::MAX,
];

/// Upper bucket bounds for coalesced batch sizes (requests per inference
/// call). The last bucket is a catch-all.
const BATCH_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, u64::MAX];

/// Shared, thread-safe service metrics. All mutators take `&self`.
pub struct Metrics {
    registry: Registry,
    requests: Arc<Counter>,
    overloaded: Arc<Counter>,
    timeouts: Arc<Counter>,
    bad_queries: Arc<Counter>,
    batches: Arc<Counter>,
    batched_queries: Arc<Counter>,
    model_swaps: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    latency_us: Arc<Histogram>,
    batch_size: Arc<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics backed by a private registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests = registry.counter("iam_serve_requests_total", &[]);
        let overloaded = registry.counter("iam_serve_rejected_overloaded_total", &[]);
        let timeouts = registry.counter("iam_serve_timeouts_total", &[]);
        let bad_queries = registry.counter("iam_serve_bad_queries_total", &[]);
        let batches = registry.counter("iam_serve_batches_total", &[]);
        let batched_queries = registry.counter("iam_serve_batched_queries_total", &[]);
        let model_swaps = registry.counter("iam_serve_model_swaps_total", &[]);
        let queue_depth = registry.gauge("iam_serve_queue_depth", &[]);
        let latency_us = registry.histogram("iam_serve_latency_us", &[], &LATENCY_BOUNDS_US);
        let batch_size = registry.histogram("iam_serve_batch_size", &[], &BATCH_BOUNDS);
        Metrics {
            registry,
            requests,
            overloaded,
            timeouts,
            bad_queries,
            batches,
            batched_queries,
            model_swaps,
            queue_depth,
            latency_us,
            batch_size,
        }
    }

    /// The registry backing this service's instruments.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Count a client request (before any queue/cache interaction).
    pub fn request(&self) {
        self.requests.inc();
    }

    /// Count a rejected submission (queue full).
    pub fn overloaded(&self) {
        self.overloaded.inc();
    }

    /// Count a request that expired before a reply.
    pub fn timeout(&self) {
        self.timeouts.inc();
    }

    /// Count a malformed query.
    pub fn bad_query(&self) {
        self.bad_queries.inc();
    }

    /// Count a model hot-swap (or rollback).
    pub fn model_swap(&self) {
        self.model_swaps.inc();
    }

    /// A request entered the queue.
    pub fn enqueued(&self) {
        self.queue_depth.add(1);
    }

    /// `n` requests left the queue (coalesced into one batch).
    pub fn dequeued(&self, n: usize) {
        self.queue_depth.sub(n as i64);
    }

    /// Record one coalesced inference batch: `requests` replies produced by
    /// `distinct` model evaluations (duplicates are answered once).
    pub fn batch(&self, requests: usize, distinct: usize) {
        self.batches.inc();
        self.batched_queries.add(distinct as u64);
        self.batch_size.observe(requests as u64);
    }

    /// Record an end-to-end request latency.
    pub fn latency(&self, d: Duration) {
        self.latency_us.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Prometheus text exposition of this service's registry, the cache's
    /// hit/miss accounting (the cache keeps its own counters), lock-poison
    /// recoveries (counted by the cache and registry themselves), and the
    /// process-global registry (training/inference probes).
    pub fn render_prometheus(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        lock_recoveries: u64,
    ) -> String {
        let mut out = self.render_prometheus_local(cache_hits, cache_misses, lock_recoveries);
        out.push_str(&Registry::global().render_prometheus());
        out
    }

    /// Like [`Metrics::render_prometheus`] but without the process-global
    /// registry appended — for aggregators (the cluster worker) that merge
    /// several services into one exposition and must not repeat the global
    /// section per service.
    pub fn render_prometheus_local(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        lock_recoveries: u64,
    ) -> String {
        let mut out = self.registry.render_prometheus();
        out.push_str("# TYPE iam_serve_cache_hits_total counter\n");
        out.push_str(&format!("iam_serve_cache_hits_total {cache_hits}\n"));
        out.push_str("# TYPE iam_serve_cache_misses_total counter\n");
        out.push_str(&format!("iam_serve_cache_misses_total {cache_misses}\n"));
        out.push_str("# TYPE iam_serve_lock_recoveries_total counter\n");
        out.push_str(&format!("iam_serve_lock_recoveries_total {lock_recoveries}\n"));
        out
    }

    /// Capture a point-in-time view of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let lat = self.latency_us.snapshot();
        let bat = self.batch_size.snapshot();
        MetricsSnapshot {
            requests: self.requests.get(),
            cache_hits: 0,
            cache_misses: 0,
            lock_recoveries: 0,
            overloaded: self.overloaded.get(),
            timeouts: self.timeouts.get(),
            bad_queries: self.bad_queries.get(),
            batches: self.batches.get(),
            batched_queries: self.batched_queries.get(),
            queue_depth: self.queue_depth.get().max(0),
            model_swaps: self.model_swaps.get(),
            replies: lat.count(),
            latency_p50_us: lat.quantile(0.50),
            latency_p95_us: lat.quantile(0.95),
            latency_p99_us: lat.quantile(0.99),
            latency_max_us: lat.max,
            mean_batch: bat.mean(),
            max_batch: bat.max,
            batch_buckets: bat.bounds.iter().zip(&bat.counts).map(|(&b, &c)| (b, c)).collect(),
            table_precision: "off",
            qerror_reports: 0,
            qerror_unmatched: 0,
            qerror_p50_milli: 0,
            qerror_p95_milli: 0,
            qerror_p99_milli: 0,
            qerror_buckets: Vec::new(),
        }
    }
}

/// A point-in-time view of [`Metrics`], plus cache accounting filled in by
/// the service (the cache keeps its own hit/miss counters).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Client requests received (including cache hits and rejections).
    pub requests: u64,
    /// Cache lookups answered without touching the model.
    pub cache_hits: u64,
    /// Cache lookups that missed (and went to the queue).
    pub cache_misses: u64,
    /// Poisoned-lock recoveries (cache shards + registry), filled in by the
    /// service like the cache accounting above.
    pub lock_recoveries: u64,
    /// Submissions rejected with `Overloaded`.
    pub overloaded: u64,
    /// Requests that expired before a reply.
    pub timeouts: u64,
    /// Malformed queries rejected before queueing.
    pub bad_queries: u64,
    /// Coalesced inference batches executed.
    pub batches: u64,
    /// Distinct queries evaluated by the model across all batches.
    pub batched_queries: u64,
    /// Requests currently sitting in the queue.
    pub queue_depth: i64,
    /// Model hot-swaps and rollbacks.
    pub model_swaps: u64,
    /// Replies whose latency was recorded.
    pub replies: u64,
    /// End-to-end latency, 50th percentile (bucket upper bound, µs).
    pub latency_p50_us: u64,
    /// End-to-end latency, 95th percentile (µs).
    pub latency_p95_us: u64,
    /// End-to-end latency, 99th percentile (µs).
    pub latency_p99_us: u64,
    /// Largest observed latency (µs, exact).
    pub latency_max_us: u64,
    /// Mean requests coalesced per batch.
    pub mean_batch: f64,
    /// Largest batch observed (exact).
    pub max_batch: u64,
    /// `(upper_bound, count)` per batch-size bucket; the last bound is
    /// `u64::MAX` (catch-all).
    pub batch_buckets: Vec<(u64, u64)>,
    /// Truth reports resolved against the q-error reservoir.
    pub qerror_reports: u64,
    /// Truth reports whose qid had no sampled record.
    pub qerror_unmatched: u64,
    /// Q-error 50th percentile (milli-q bucket upper bound; 1000 = 1.0×).
    pub qerror_p50_milli: u64,
    /// Q-error 95th percentile (milli-q).
    pub qerror_p95_milli: u64,
    /// Q-error 99th percentile (milli-q).
    pub qerror_p99_milli: u64,
    /// `(upper_bound, count)` per q-error bucket (milli-q); the last bound
    /// is `u64::MAX` (catch-all).
    pub qerror_buckets: Vec<(u64, u64)>,
    /// Fused-table storage precision of the served model (`f32`, `f16`,
    /// `int8`, or `off` when the fused path is disabled). Filled in by the
    /// service, which can see the model; always a single token so the
    /// `STATS` rendering stays line-oriented.
    pub table_precision: &'static str,
}

impl MetricsSnapshot {
    /// Fraction of cache lookups that hit, or 0 with no lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Plain-text dump, one `name value` pair per line — the format served
    /// by the TCP front-end's `STATS` command.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let mut line = |k: &str, v: String| {
            s.push_str(k);
            s.push(' ');
            s.push_str(&v);
            s.push('\n');
        };
        line("requests_total", self.requests.to_string());
        line("cache_hits", self.cache_hits.to_string());
        line("cache_misses", self.cache_misses.to_string());
        line("cache_hit_rate", format!("{:.4}", self.cache_hit_rate()));
        line("lock_recoveries", self.lock_recoveries.to_string());
        line("rejected_overloaded", self.overloaded.to_string());
        line("timeouts", self.timeouts.to_string());
        line("bad_queries", self.bad_queries.to_string());
        line("batches_total", self.batches.to_string());
        line("batched_queries_total", self.batched_queries.to_string());
        line("queue_depth", self.queue_depth.to_string());
        line("model_swaps", self.model_swaps.to_string());
        line("replies_total", self.replies.to_string());
        line("latency_us_p50", self.latency_p50_us.to_string());
        line("latency_us_p95", self.latency_p95_us.to_string());
        line("latency_us_p99", self.latency_p99_us.to_string());
        line("latency_us_max", self.latency_max_us.to_string());
        line("batch_size_mean", format!("{:.2}", self.mean_batch));
        line("batch_size_max", self.max_batch.to_string());
        line("table_precision", self.table_precision.to_string());
        // bucket keys are sorted by bound before emit so this view, the
        // Prometheus exposition, and the JSONL snapshot all agree on
        // ordering — cross-exposition consistency asserts depend on it
        let mut batch_buckets = self.batch_buckets.clone();
        batch_buckets.sort_by_key(|&(bound, _)| bound);
        for (bound, count) in batch_buckets {
            if bound == u64::MAX {
                line("batch_size_bucket_inf", count.to_string());
            } else {
                line(&format!("batch_size_bucket_le_{bound}"), count.to_string());
            }
        }
        line("qerror_reports", self.qerror_reports.to_string());
        line("qerror_unmatched", self.qerror_unmatched.to_string());
        line("qerror_milli_p50", self.qerror_p50_milli.to_string());
        line("qerror_milli_p95", self.qerror_p95_milli.to_string());
        line("qerror_milli_p99", self.qerror_p99_milli.to_string());
        let mut qerror_buckets = self.qerror_buckets.clone();
        qerror_buckets.sort_by_key(|&(bound, _)| bound);
        for (bound, count) in qerror_buckets {
            if bound == u64::MAX {
                line("qerror_milli_bucket_inf", count.to_string());
            } else {
                line(&format!("qerror_milli_bucket_le_{bound}"), count.to_string());
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_buckets() {
        let m = Metrics::new();
        // 90 fast replies (≤50µs), 10 slow (≤5ms)
        for _ in 0..90 {
            m.latency(Duration::from_micros(10));
        }
        for _ in 0..10 {
            m.latency(Duration::from_micros(3_000));
        }
        let s = m.snapshot();
        assert_eq!(s.latency_p50_us, 50);
        assert_eq!(s.latency_p95_us, 5_000);
        assert_eq!(s.latency_p99_us, 5_000);
        assert_eq!(s.latency_max_us, 3_000);
        assert_eq!(s.replies, 100);
    }

    #[test]
    fn batch_accounting() {
        let m = Metrics::new();
        m.batch(16, 12);
        m.batch(4, 4);
        let s = m.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.batched_queries, 16);
        assert_eq!(s.max_batch, 16);
        assert!((s.mean_batch - 10.0).abs() < 1e-9);
        // 16 lands in the ≤16 bucket, 4 in the ≤4 bucket
        assert_eq!(s.batch_buckets[4], (16, 1));
        assert_eq!(s.batch_buckets[2], (4, 1));
    }

    #[test]
    fn queue_gauge_never_renders_negative() {
        let m = Metrics::new();
        m.dequeued(3); // worker raced ahead of the client's increment
        assert_eq!(m.snapshot().queue_depth, 0);
        m.enqueued();
        m.enqueued();
        m.enqueued();
        assert_eq!(m.snapshot().queue_depth, 0);
        m.enqueued();
        assert_eq!(m.snapshot().queue_depth, 1);
    }

    #[test]
    fn render_is_line_oriented() {
        let s = Metrics::new().snapshot().render();
        assert!(s.lines().all(|l| l.split(' ').count() == 2));
        assert!(s.contains("requests_total 0"));
        assert!(s.contains("batch_size_bucket_inf 0"));
        // the bare metrics snapshot can't see the model; the service
        // overwrites this with the live fused-table precision
        assert!(s.contains("table_precision off"));
    }

    #[test]
    fn empty_percentile_is_zero() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.latency_p50_us, 0);
        assert_eq!(s.latency_p99_us, 0);
    }

    #[test]
    fn services_do_not_share_instruments() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.request();
        a.request();
        b.request();
        assert_eq!(a.snapshot().requests, 2);
        assert_eq!(b.snapshot().requests, 1);
    }

    #[test]
    fn prometheus_exposition_covers_service_and_cache() {
        let m = Metrics::new();
        m.request();
        m.batch(4, 4);
        m.latency(Duration::from_micros(120));
        let prom = m.render_prometheus(7, 3, 2);
        assert!(prom.contains("# TYPE iam_serve_requests_total counter"), "{prom}");
        assert!(prom.contains("iam_serve_requests_total 1"), "{prom}");
        assert!(prom.contains("iam_serve_cache_hits_total 7"), "{prom}");
        assert!(prom.contains("iam_serve_cache_misses_total 3"), "{prom}");
        assert!(prom.contains("iam_serve_lock_recoveries_total 2"), "{prom}");
        // histogram catch-alls render as +Inf, never a raw u64::MAX
        assert!(prom.contains("iam_serve_latency_us_bucket{le=\"+Inf\"} 1"), "{prom}");
        assert!(!prom.contains(&u64::MAX.to_string()), "{prom}");
        // snapshot totals agree with the exposition
        assert!(prom.contains("iam_serve_batch_size_sum 4"), "{prom}");
        assert!(prom.contains("iam_serve_batch_size_count 1"), "{prom}");
    }
}
