//! Versioned model registry with atomic hot-swap and rollback.
//!
//! The active model lives behind `RwLock<Arc<ModelVersion>>`: readers clone
//! the `Arc` (a few ns under the read lock) and then run inference with no
//! lock held, so a swap never blocks in-flight batches — they simply finish
//! on the version they started with. Superseded versions are kept (bounded)
//! for [`ModelRegistry::rollback`].
//!
//! Loading a snapshot that fails to parse leaves the active version
//! untouched — failed loads roll back for free because the swap only
//! happens after a fully validated [`IamEstimator::load`].
//!
//! Both locks recover from poisoning rather than propagating the panic to
//! every later caller. Unlike the query cache there is nothing to discard:
//! each critical section only ever swaps or pushes fully formed
//! `Arc<ModelVersion>` values, so the protected state is valid even if the
//! holder panicked mid-section. Recovery is therefore take-and-continue;
//! occurrences are counted and surfaced through the service metrics.

use crate::error::ServeError;
use iam_core::IamEstimator;
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// How many superseded versions [`ModelRegistry`] retains for rollback.
pub const HISTORY_LIMIT: usize = 4;

/// One immutable, shareable trained model plus its registry metadata.
pub struct ModelVersion {
    /// Monotonically increasing version id (also tags cache entries).
    pub id: u64,
    /// Operator-supplied label (e.g. a training-run name).
    pub label: String,
    /// The trained estimator; only `&self` inference is used.
    pub model: IamEstimator,
}

/// Thread-safe registry of model versions. All methods take `&self`.
pub struct ModelRegistry {
    active: RwLock<Arc<ModelVersion>>,
    history: Mutex<Vec<Arc<ModelVersion>>>,
    next_id: AtomicU64,
    recoveries: AtomicU64,
}

impl ModelRegistry {
    /// Create a registry serving `model` as version 1.
    pub fn new(model: IamEstimator, label: &str) -> Self {
        let v = Arc::new(ModelVersion { id: 1, label: label.to_string(), model });
        ModelRegistry {
            active: RwLock::new(v),
            history: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(2),
            recoveries: AtomicU64::new(0),
        }
    }

    // The three lock helpers below recover from poisoning with
    // `into_inner`: the guarded values (an Arc swap target and a Vec of
    // Arcs) are valid at every program point inside the critical sections,
    // so the contents can be used as-is.

    fn read_active(&self) -> RwLockReadGuard<'_, Arc<ModelVersion>> {
        self.active.read().unwrap_or_else(|poisoned| {
            self.active.clear_poison();
            self.recoveries.fetch_add(1, Relaxed);
            poisoned.into_inner()
        })
    }

    fn write_active(&self) -> RwLockWriteGuard<'_, Arc<ModelVersion>> {
        self.active.write().unwrap_or_else(|poisoned| {
            self.active.clear_poison();
            self.recoveries.fetch_add(1, Relaxed);
            poisoned.into_inner()
        })
    }

    fn lock_history(&self) -> MutexGuard<'_, Vec<Arc<ModelVersion>>> {
        self.history.lock().unwrap_or_else(|poisoned| {
            self.history.clear_poison();
            self.recoveries.fetch_add(1, Relaxed);
            poisoned.into_inner()
        })
    }

    /// The currently active version (cheap: clones an `Arc`).
    pub fn current(&self) -> Arc<ModelVersion> {
        self.read_active().clone()
    }

    /// Id of the currently active version.
    pub fn current_id(&self) -> u64 {
        self.current().id
    }

    /// Atomically activate `model` as a new version; the previous version
    /// moves to the rollback history. Returns the new version id.
    pub fn install(&self, model: IamEstimator, label: &str) -> u64 {
        let id = self.next_id.fetch_add(1, Relaxed);
        let v = Arc::new(ModelVersion { id, label: label.to_string(), model });
        let old = {
            let mut active = self.write_active();
            std::mem::replace(&mut *active, v)
        };
        let mut h = self.lock_history();
        h.push(old);
        if h.len() > HISTORY_LIMIT {
            h.remove(0);
        }
        id
    }

    /// Parse a persisted snapshot and hot-swap it in. On a parse failure the
    /// active version is untouched (the error carries the reason).
    pub fn load<R: Read>(&self, r: &mut R, label: &str) -> Result<u64, ServeError> {
        let model = IamEstimator::load(r).map_err(|e| ServeError::Load(e.to_string()))?;
        Ok(self.install(model, label))
    }

    /// Reactivate the most recently superseded version (the current one
    /// moves into the history, so two rollbacks in a row swap back and
    /// forth). The reactivated version keeps its original id — its old
    /// cache entries are valid again, because it is byte-identical.
    pub fn rollback(&self) -> Result<u64, ServeError> {
        let mut h = self.lock_history();
        let prev = h.pop().ok_or(ServeError::NoPreviousVersion)?;
        let id = prev.id;
        let old = {
            let mut active = self.write_active();
            std::mem::replace(&mut *active, prev)
        };
        h.push(old);
        Ok(id)
    }

    /// Number of superseded versions available to [`Self::rollback`].
    pub fn history_len(&self) -> usize {
        self.lock_history().len()
    }

    /// Poisoned-lock recoveries since construction.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_core::IamConfig;
    use iam_data::synth::Dataset;

    fn tiny_model(seed: u64) -> IamEstimator {
        let table = Dataset::Twi.generate(600, seed);
        let cfg = IamConfig {
            components: 4,
            hidden: vec![16, 16],
            embed_dim: 4,
            epochs: 1,
            samples: 50,
            seed,
            ..IamConfig::default()
        };
        IamEstimator::fit(&table, cfg)
    }

    #[test]
    fn install_and_rollback_cycle() {
        let reg = ModelRegistry::new(tiny_model(1), "v1");
        assert_eq!(reg.current_id(), 1);
        assert_eq!(reg.current().label, "v1");

        let id2 = reg.install(tiny_model(2), "v2");
        assert_eq!(id2, 2);
        assert_eq!(reg.current_id(), 2);
        assert_eq!(reg.history_len(), 1);

        // rollback reactivates v1 with its original id
        assert_eq!(reg.rollback().unwrap(), 1);
        assert_eq!(reg.current().label, "v1");
        // and rolling back again swaps forward to v2
        assert_eq!(reg.rollback().unwrap(), 2);
        assert_eq!(reg.current().label, "v2");
    }

    #[test]
    fn rollback_without_history_errors() {
        let reg = ModelRegistry::new(tiny_model(3), "only");
        assert_eq!(reg.rollback(), Err(ServeError::NoPreviousVersion));
        assert_eq!(reg.current_id(), 1, "failed rollback must not disturb the active model");
    }

    #[test]
    fn failed_load_keeps_active_version() {
        let reg = ModelRegistry::new(tiny_model(4), "v1");
        let err = reg.load(&mut &b"not a snapshot"[..], "bad").unwrap_err();
        assert!(matches!(err, ServeError::Load(_)));
        assert_eq!(reg.current_id(), 1);
        assert_eq!(reg.history_len(), 0, "no history entry for a failed load");
    }

    #[test]
    fn successful_load_swaps() {
        let mut m = tiny_model(5);
        let mut buf = Vec::new();
        m.save(&mut buf).unwrap();
        let reg = ModelRegistry::new(tiny_model(6), "v1");
        let id = reg.load(&mut buf.as_slice(), "loaded").unwrap();
        assert_eq!(id, 2);
        assert_eq!(reg.current().label, "loaded");
    }

    #[test]
    fn poisoned_locks_recover_with_state_intact() {
        let reg = ModelRegistry::new(tiny_model(9), "v1");
        reg.install(tiny_model(10), "v2");

        // poison both the active RwLock and the history Mutex
        let res = std::thread::scope(|s| {
            s.spawn(|| {
                let _active = reg.active.write().unwrap();
                let _history = reg.history.lock().unwrap();
                panic!("poison the registry locks");
            })
            .join()
        });
        assert!(res.is_err(), "helper thread should have panicked");
        assert!(reg.active.is_poisoned());
        assert!(reg.history.is_poisoned());

        // every operation still works, and nothing was lost: the guarded
        // values are whole Arc swaps, valid even mid-panic
        assert_eq!(reg.current_id(), 2);
        assert_eq!(reg.history_len(), 1);
        assert_eq!(reg.rollback().unwrap(), 1);
        assert_eq!(reg.current().label, "v1");
        assert!(!reg.active.is_poisoned());
        assert!(!reg.history.is_poisoned());
        assert!(reg.recoveries() >= 2, "both locks should have recovered");
    }

    #[test]
    fn history_is_bounded() {
        let reg = ModelRegistry::new(tiny_model(7), "v1");
        for i in 0..(HISTORY_LIMIT + 3) {
            reg.install(tiny_model(8), &format!("v{}", i + 2));
        }
        assert_eq!(reg.history_len(), HISTORY_LIMIT);
    }
}
