//! Execution of parsed SQL statements against a [`Client`] — the handler
//! behind the line protocol's `SQL <statement>` command.
//!
//! Reply shapes (all single-line except `EXPLAIN`, and all NaN-free —
//! an aggregate over a region with no estimated mass answers the explicit
//! `NULL` marker, never a raw `NaN`):
//!
//! ```text
//! → SQL SELECT COUNT(*) FROM t WHERE c0 = 3 AND c1 BETWEEN 2.5 AND 9
//! ← COUNT 1273.410000 SEL 0.127341 NROWS 10000
//! → SQL SELECT SUM(c1) FROM t WHERE c0 = 3
//! ← SUM 31835.250000 COUNT 1273.410000 SEL 0.127341
//! → SQL SELECT AVG(c1) FROM t WHERE c0 = 99
//! ← AVG NULL COUNT 0.000000 SEL 0.000000
//! → SQL EXPLAIN SELECT COUNT(*) FROM t WHERE c0 <= 3
//! ← PLAN est_cost=2500.000
//! ← scan t est_card=2500.000
//! ← END
//! ```
//!
//! `COUNT` runs through [`Client::estimate`] — the same canonical-key →
//! seed → cache pipeline as the `col=lo..hi` line grammar, so for
//! equivalent predicates the selectivity is **bit-identical** and the
//! `SEL` field prints the exact line-protocol reply. `SUM`/`AVG` run
//! through [`Client::aggregate`] (the `core::aqp` shared sampler), and
//! `EXPLAIN` feeds per-table estimates into the `iam-opt` plan renderer.
//!
//! A single serve process hosts one table, so statements with `JOIN`
//! clauses are rejected here; the `iam-dist` coordinator decomposes them
//! into per-table statements and assembles the answer cluster-side.

use crate::error::ServeError;
use crate::service::Client;
use iam_sql::{parse, Agg, CardSource, Cond, Select, SqlError, Statement};

/// Render an `f64` aggregate field, mapping every non-finite value to the
/// explicit `NULL` marker (NaN is not valid JSON and breaks line parsing).
fn num_or_null(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "NULL".to_string()
    }
}

/// [`CardSource`] over the locally hosted model: one table, estimates via
/// the standard client path.
struct LocalCards<'c> {
    client: &'c Client,
}

impl CardSource for LocalCards<'_> {
    fn table_sel(&mut self, table: &str, conds: &[Cond]) -> Result<(f64, u64), SqlError> {
        let ncols = self.client.ncols();
        let rq = iam_sql::lower::lower_conjuncts(conds, table, ncols)?;
        let sel = self.client.estimate(&rq).map_err(|e| SqlError::new(e.to_string()))?;
        Ok((sel, self.client.nrows() as u64))
    }
}

/// Execute a single-table `SELECT`.
fn run_select(sel: &Select, client: &Client) -> Result<String, ServeError> {
    if !sel.joins.is_empty() {
        return Err(ServeError::BadQuery(
            "JOIN queries need the cluster front-end (iam-dist coordinator)".into(),
        ));
    }
    let ncols = client.ncols();
    let rq =
        iam_sql::lower_single_table(sel, ncols).map_err(|e| ServeError::BadQuery(e.to_string()))?;
    match &sel.agg {
        Agg::CountStar => {
            let s = client.estimate(&rq)?;
            let nrows = client.nrows();
            Ok(format!("COUNT {:.6} SEL {s:.6} NROWS {nrows}", s * nrows as f64))
        }
        Agg::Sum(c) => {
            let col = iam_sql::resolve_target(c, sel, ncols)
                .map_err(|e| ServeError::BadQuery(e.to_string()))?;
            let (agg, _) = client.aggregate(&rq, col)?;
            Ok(format!(
                "SUM {} COUNT {} SEL {}",
                num_or_null(agg.sum),
                num_or_null(agg.count),
                num_or_null(agg.selectivity)
            ))
        }
        Agg::Avg(c) => {
            let col = iam_sql::resolve_target(c, sel, ncols)
                .map_err(|e| ServeError::BadQuery(e.to_string()))?;
            let (agg, _) = client.aggregate(&rq, col)?;
            Ok(format!(
                "AVG {} COUNT {} SEL {}",
                num_or_null(agg.avg),
                num_or_null(agg.count),
                num_or_null(agg.selectivity)
            ))
        }
    }
}

/// Parse and execute one SQL statement against the locally hosted model.
///
/// Returns the reply body without a trailing newline; `EXPLAIN` bodies
/// are multi-line and end with an `END` line so stream clients know where
/// the plan stops.
pub fn execute_sql(stmt: &str, client: &Client) -> Result<String, ServeError> {
    let parsed = parse(stmt).map_err(|e| ServeError::BadQuery(e.to_string()))?;
    match &parsed {
        Statement::Select(sel) => run_select(sel, client),
        Statement::Explain(sel) => {
            if !sel.joins.is_empty() {
                return Err(ServeError::BadQuery(
                    "EXPLAIN over joins needs the cluster front-end (iam-dist coordinator)".into(),
                ));
            }
            let mut src = LocalCards { client };
            let plan =
                iam_sql::explain(sel, &mut src).map_err(|e| ServeError::BadQuery(e.to_string()))?;
            Ok(format!("{plan}\nEND"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_marker_replaces_non_finite_fields() {
        assert_eq!(num_or_null(1.5), "1.500000");
        assert_eq!(num_or_null(f64::NAN), "NULL");
        assert_eq!(num_or_null(f64::INFINITY), "NULL");
        assert_eq!(num_or_null(f64::NEG_INFINITY), "NULL");
    }
}
