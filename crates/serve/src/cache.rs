//! Sharded LRU cache of query results, keyed on
//! [`RangeQuery::canonical_key`](iam_data::RangeQuery::canonical_key).
//!
//! Every entry is tagged with the model-version id it was computed under.
//! Lookups validate the tag against the *current* version, so results from
//! a superseded model can never be served — even for an insert that raced
//! with a hot-swap. The service additionally calls [`QueryCache::clear`] on
//! swap to free the stale entries eagerly.
//!
//! Each shard is a true O(1) LRU: a hash map into a slab of nodes threaded
//! on an intrusive doubly-linked list (no per-access allocation).
//!
//! A worker that panics while holding a shard lock poisons it; without
//! recovery every later request touching that shard would panic too. Since
//! a cache may always forget, recovery is clear-and-continue: the shard's
//! contents are dropped (its LRU links may be mid-mutation), the poison
//! flag is cleared, and the access proceeds on the now-empty shard.
//! Recoveries are counted and surfaced through the service metrics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard};

const NIL: usize = usize::MAX;

struct Node {
    key: u64,
    version: u64,
    value: f64,
    prev: usize,
    next: usize,
}

struct Shard {
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    cap: usize,
}

impl Shard {
    fn new(cap: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(cap),
            nodes: Vec::with_capacity(cap),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            cap,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: u64, version: u64) -> Option<f64> {
        let &i = self.map.get(&key)?;
        if self.nodes[i].version != version {
            // stale entry from a superseded model: drop it
            self.unlink(i);
            self.map.remove(&key);
            self.free.push(i);
            return None;
        }
        self.unlink(i);
        self.push_front(i);
        Some(self.nodes[i].value)
    }

    fn insert(&mut self, key: u64, version: u64, value: f64) {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].version = version;
            self.nodes[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        let slot = if let Some(i) = self.free.pop() {
            i
        } else if self.nodes.len() < self.cap {
            self.nodes.push(Node { key: 0, version: 0, value: 0.0, prev: NIL, next: NIL });
            self.nodes.len() - 1
        } else {
            // evict the least recently used entry and reuse its slot
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old_key = self.nodes[lru].key;
            self.map.remove(&old_key);
            lru
        };
        self.nodes[slot].key = key;
        self.nodes[slot].version = version;
        self.nodes[slot].value = value;
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A sharded, version-tagged LRU cache mapping canonical query keys to
/// selectivities. Capacity 0 disables the cache (all lookups miss, inserts
/// are dropped) without branching at call sites.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recoveries: AtomicU64,
}

impl QueryCache {
    /// `capacity` total entries spread over `shards` shards (both rounded
    /// up: shards to a power of two, per-shard capacity to ≥1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        if capacity == 0 {
            return QueryCache {
                shards: Vec::new(),
                mask: 0,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                recoveries: AtomicU64::new(0),
            };
        }
        let nshards = shards.clamp(1, 256).next_power_of_two();
        let per_shard = capacity.div_ceil(nshards).max(1);
        QueryCache {
            shards: (0..nshards).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            mask: nshards - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    /// Lock a shard, recovering from poisoning by clearing it: a panicking
    /// lock holder may have left the LRU links mid-mutation, and an empty
    /// shard is always a correct cache state.
    fn lock_shard<'a>(&self, m: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                g.clear();
                m.clear_poison();
                self.recoveries.fetch_add(1, Relaxed);
                g
            }
        }
    }

    /// True when the cache was built with capacity 0.
    pub fn is_disabled(&self) -> bool {
        self.shards.is_empty()
    }

    #[inline]
    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // canonical keys are FNV-mixed already; a Fibonacci multiply spreads
        // the high bits used for shard selection
        let i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask;
        &self.shards[i]
    }

    /// Look up `key`, but only accept a value computed under `version`.
    /// Counts a hit or miss either way (disabled caches count nothing).
    pub fn get(&self, key: u64, version: u64) -> Option<f64> {
        if self.is_disabled() {
            return None;
        }
        let got = self.lock_shard(self.shard(key)).get(key, version);
        match got {
            Some(_) => self.hits.fetch_add(1, Relaxed),
            None => self.misses.fetch_add(1, Relaxed),
        };
        got
    }

    /// Insert (or refresh) `key → value`, tagged with `version`.
    pub fn insert(&self, key: u64, version: u64, value: f64) {
        if self.is_disabled() {
            return;
        }
        self.lock_shard(self.shard(key)).insert(key, version, value);
    }

    /// Drop every entry (called on model swap). Hit/miss counters survive.
    pub fn clear(&self) {
        for s in &self.shards {
            self.lock_shard(s).clear();
        }
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// Poisoned-lock recoveries since construction (each one dropped the
    /// contents of a single shard).
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Relaxed)
    }

    /// Entries currently resident (sums shard sizes; O(shards)).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock_shard(s).map.len()).sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let c = QueryCache::new(64, 4);
        assert_eq!(c.get(42, 1), None);
        c.insert(42, 1, 0.25);
        assert_eq!(c.get(42, 1), Some(0.25));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn stale_version_misses_and_evicts() {
        let c = QueryCache::new(64, 1);
        c.insert(7, 1, 0.5);
        assert_eq!(c.get(7, 2), None, "entry from version 1 must not serve version 2");
        assert_eq!(c.len(), 0, "stale entry should be dropped on lookup");
        // and the slot is reusable
        c.insert(7, 2, 0.75);
        assert_eq!(c.get(7, 2), Some(0.75));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = QueryCache::new(3, 1);
        c.insert(1, 1, 0.1);
        c.insert(2, 1, 0.2);
        c.insert(3, 1, 0.3);
        assert_eq!(c.get(1, 1), Some(0.1)); // touch 1 → LRU is now 2
        c.insert(4, 1, 0.4);
        assert_eq!(c.get(2, 1), None, "2 was least recently used");
        assert_eq!(c.get(1, 1), Some(0.1));
        assert_eq!(c.get(3, 1), Some(0.3));
        assert_eq!(c.get(4, 1), Some(0.4));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let c = QueryCache::new(2, 1);
        c.insert(1, 1, 0.1);
        c.insert(1, 1, 0.9);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, 1), Some(0.9));
    }

    #[test]
    fn clear_empties_all_shards() {
        let c = QueryCache::new(64, 8);
        for k in 0..50u64 {
            c.insert(k, 1, k as f64);
        }
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(10, 1), None);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = QueryCache::new(0, 8);
        assert!(c.is_disabled());
        c.insert(1, 1, 0.5);
        assert_eq!(c.get(1, 1), None);
        assert_eq!(c.stats(), (0, 0), "disabled cache records nothing");
    }

    #[test]
    fn poisoned_shard_recovers_by_clearing() {
        let c = QueryCache::new(64, 1); // one shard so the poison is where we look
        c.insert(1, 1, 0.1);
        c.insert(2, 1, 0.2);
        let res = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = c.shards[0].lock().unwrap();
                panic!("poison the shard");
            })
            .join()
        });
        assert!(res.is_err(), "helper thread should have panicked");
        assert!(c.shards[0].is_poisoned());

        // the next access recovers: the shard comes back empty but usable
        assert_eq!(c.get(1, 1), None, "recovery drops the shard's contents");
        assert!(!c.shards[0].is_poisoned());
        c.insert(3, 1, 0.3);
        assert_eq!(c.get(3, 1), Some(0.3));
        assert_eq!(c.recoveries(), 1);
    }

    #[test]
    fn churn_stays_within_capacity() {
        let c = QueryCache::new(32, 4);
        for k in 0..10_000u64 {
            c.insert(k, 1, k as f64);
            if k % 3 == 0 {
                c.get(k / 2, 1);
            }
        }
        assert!(c.len() <= 32 + 4, "len {} exceeds capacity", c.len());
    }
}
