//! Error type for the serving layer.

use std::fmt;

/// Everything that can go wrong between a client request and its reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is full; the caller should back off and
    /// retry. Returned immediately — submission never blocks.
    Overloaded,
    /// The request was accepted but no reply arrived within the per-request
    /// timeout (or the batch worker found the deadline already expired).
    Timeout,
    /// The service is draining and no longer accepts new requests.
    ShuttingDown,
    /// The query is malformed (wrong arity, unparsable term, …).
    BadQuery(String),
    /// A model snapshot failed to load; the previously active version is
    /// still serving.
    Load(String),
    /// A rollback was requested but no earlier version exists.
    NoPreviousVersion,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "request queue full"),
            ServeError::Timeout => write!(f, "request timed out"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::BadQuery(m) => write!(f, "bad query: {m}"),
            ServeError::Load(m) => write!(f, "model load failed: {m}"),
            ServeError::NoPreviousVersion => write!(f, "no previous model version"),
        }
    }
}

impl std::error::Error for ServeError {}
