//! iam-serve — a concurrent selectivity-estimation service over trained
//! IAM models (std-only, no external dependencies).
//!
//! The estimators in `iam-core` answer queries fastest in batches: one
//! progressive-sampling pass shares its forward passes across all queries
//! at each slot (§5.3 of the paper, "Batch Query Inference"). This crate
//! turns that batch advantage into a service for *concurrent* callers:
//!
//! * [`registry`] — versioned model registry: atomic hot-swap behind an
//!   `Arc`, bounded rollback history, and load-from-snapshot that leaves
//!   the active version untouched on failure;
//! * [`service`] — the micro-batching scheduler: a bounded request queue
//!   feeding worker threads that coalesce up to `max_batch` requests per
//!   inference call, with a flush deadline, per-request timeouts,
//!   [`ServeError::Overloaded`] backpressure, and graceful draining
//!   shutdown — fronted by the in-process [`Client`] handle;
//! * [`cache`] — a sharded, version-tagged LRU over canonical query keys;
//! * [`metrics`] — atomic counters, queue-depth gauge, and fixed-bucket
//!   latency/batch-size histograms with a [`Metrics::snapshot`] API and a
//!   plain-text dump;
//! * [`net`] — a `TcpListener` line protocol (one query per line, one
//!   selectivity per line) over the same [`Client`];
//! * [`sql`] — execution of parsed `iam-sql` statements against a
//!   [`Client`]: `COUNT(*)` through the estimator (bit-identical to the
//!   line protocol for equivalent predicates), `SUM`/`AVG` through
//!   `core::aqp`, `EXPLAIN` through the `iam-opt` plan renderer; reached
//!   over TCP as the `SQL <statement>` command.
//!
//! Correctness rests on one invariant from `iam_core::infer`: every
//! query's sampling seed derives from the model's salt and the query's
//! [`canonical_key`](iam_data::RangeQuery::canonical_key), so an estimate
//! is a pure function of (model version, query). Coalescing, thread
//! counts, and caching therefore cannot change any answer — the service
//! returns bitwise-identical results to direct batched inference.

#![deny(missing_docs)]

pub mod cache;
pub mod error;
pub mod metrics;
pub mod net;
pub mod registry;
pub mod service;
pub mod sql;

pub use cache::QueryCache;
pub use error::ServeError;
pub use metrics::{Metrics, MetricsSnapshot};
pub use net::{parse_query, render_query, TcpFrontend, MAX_LINE_BYTES};
pub use registry::{ModelRegistry, ModelVersion};
pub use service::{Client, ServeConfig, Service};
pub use sql::execute_sql;
